// Algorithm evaluation (the paper's §IV-C workflow): compare particle
// mapping strategies on a problem *before* implementing them at scale in
// the real application. Evaluates element-based, bin-based, and Hilbert
// mapping on the same trace and reports peak workload, utilization,
// migration traffic, and ghost load for each.
//
// Usage: ./examples/mapping_eval [num_ranks]

#include <cstdio>
#include <cstdlib>

#include "mapping/mapper.hpp"
#include "picsim/sim_driver.hpp"
#include "trace/trace_reader.hpp"
#include "workload/generator.hpp"
#include "workload/workload_stats.hpp"

using namespace picp;

int main(int argc, char** argv) {
  const Rank ranks = argc > 1 ? static_cast<Rank>(std::atoi(argv[1])) : 128;

  SimConfig sim;
  sim.nelx = 16;
  sim.nely = 16;
  sim.nelz = 32;
  sim.bed.num_particles = 8000;
  sim.num_iterations = 2000;
  sim.sample_every = 50;
  sim.num_ranks = ranks;
  const std::string trace_path = "mapping_eval_trace.bin";
  SimDriver driver(sim);
  std::printf("producing trace (%zu particles)...\n\n",
              sim.bed.num_particles);
  driver.run(trace_path);

  const MeshPartition partition = rcb_partition(driver.mesh(), ranks);
  std::printf("mapping strategy comparison at R=%d:\n\n", ranks);
  std::printf("%10s %14s %14s %12s %14s %12s\n", "mapper", "peak np/rank",
              "utilization %", "imbalance", "migrated", "ghosts");
  for (const std::string kind : {"element", "bin", "hilbert"}) {
    const auto mapper =
        make_mapper(kind, driver.mesh(), partition, sim.filter_size);
    WorkloadParams params;
    params.ghost_radius = sim.filter_size;
    WorkloadGenerator generator(driver.mesh(), partition, *mapper, params);
    TraceReader trace(trace_path);
    const WorkloadResult workload = generator.generate(trace);

    const UtilizationStats stats = utilization(workload.comp_real);
    const auto imbalance = imbalance_per_interval(workload.comp_real);
    double mean_imbalance = 0.0;
    for (const double v : imbalance) mean_imbalance += v;
    mean_imbalance /= static_cast<double>(imbalance.size());
    std::int64_t ghosts = 0;
    for (std::size_t t = 0; t < workload.num_intervals(); ++t)
      ghosts += workload.comp_ghost.interval_total(t);

    std::printf("%10s %14lld %14.1f %12.1f %14lld %12lld\n", kind.c_str(),
                static_cast<long long>(stats.peak_load),
                100.0 * stats.mean_active_fraction, mean_imbalance,
                static_cast<long long>(workload.comm_real.total_volume()),
                static_cast<long long>(ghosts));
  }
  std::printf(
      "\nreading the table:\n"
      " * element-based: minimal ghost/migration traffic but extreme peak "
      "load and idle processors;\n"
      " * bin-based: near-uniform load at the cost of grid-data exchange "
      "(ghosts);\n"
      " * hilbert: balanced counts with locality-limited migration — the "
      "trade-off curve the paper's framework lets you explore per problem.\n");
  return 0;
}
