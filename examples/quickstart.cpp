// Quickstart: the whole framework in ~80 lines.
//
//   1. Run a small Hele-Shaw-style PIC simulation and record its particle
//      trace (in production, the trace comes from one run of your real PIC
//      application).
//   2. Replay the trace through the Dynamic Workload Generator for a target
//      processor count the application never ran on.
//   3. Inspect the predicted workload: heat-map, peak load, utilization.
//
// Build & run:  ./examples/quickstart [trace.bin]

#include <cstdio>

#include "mapping/mapper.hpp"
#include "picsim/sim_driver.hpp"
#include "trace/trace_reader.hpp"
#include "workload/generator.hpp"
#include "workload/workload_stats.hpp"

using namespace picp;

int main(int argc, char** argv) {
  const std::string trace_path =
      argc > 1 ? argv[1] : "quickstart_trace.bin";

  // --- 1. produce a trace from a small simulation --------------------------
  SimConfig sim;
  sim.nelx = 16;
  sim.nely = 16;
  sim.nelz = 32;
  sim.bed.num_particles = 5000;
  sim.num_iterations = 1500;
  sim.sample_every = 50;
  sim.num_ranks = 64;  // the configuration the "application" ran on
  SimDriver driver(sim);
  std::printf("running the PIC proxy (%zu particles, %lld iterations)...\n",
              sim.bed.num_particles,
              static_cast<long long>(sim.num_iterations));
  const SimResult app = driver.run(trace_path);
  std::printf("trace written: %s (%llu samples, %.1f s wall)\n\n",
              trace_path.c_str(),
              static_cast<unsigned long long>(app.trace_samples),
              app.wall_seconds);

  // --- 2. replay the trace for a DIFFERENT processor count ----------------
  const Rank target_ranks = 256;  // never ran — predicted from the trace
  const SpectralMesh& mesh = driver.mesh();
  const MeshPartition partition = rcb_partition(mesh, target_ranks);
  const auto mapper = make_mapper("bin", mesh, partition, sim.filter_size);
  WorkloadParams params;
  params.ghost_radius = sim.filter_size;
  WorkloadGenerator generator(mesh, partition, *mapper, params);
  TraceReader trace(trace_path);
  const WorkloadResult workload = generator.generate(trace);

  // --- 3. inspect the predicted workload ----------------------------------
  std::printf("predicted particle workload on %d processors "
              "(bin-based mapping):\n",
              target_ranks);
  std::printf("%s\n", ascii_heatmap(workload.comp_real, 64, 16).c_str());
  const UtilizationStats stats = utilization(workload.comp_real);
  std::printf("peak particles per processor : %lld\n",
              static_cast<long long>(stats.peak_load));
  std::printf("resource utilization         : %.1f%% of processors hold "
              "particles on average\n",
              100.0 * stats.mean_active_fraction);
  std::printf("particles migrated (total)   : %lld\n",
              static_cast<long long>(workload.comm_real.total_volume()));
  std::printf("ghost particles (final)      : %lld\n",
              static_cast<long long>(workload.comp_ghost.interval_total(
                  workload.num_intervals() - 1)));
  return 0;
}
