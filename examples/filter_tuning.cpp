// Performance tuning (the paper's §IV-D workflow): study the projection
// filter size. The filter controls simulation accuracy (how far particle
// influence spreads) but also drives the ghost-particle count, the
// create_ghost_particles cost, and — because CMT-nek reuses it as the
// threshold bin size — the achievable parallelism of bin-based mapping.
//
// Usage: ./examples/filter_tuning

#include <cstdio>

#include "mapping/bin_mapper.hpp"
#include "picsim/kernels.hpp"
#include "picsim/instrumentation.hpp"
#include "picsim/sim_driver.hpp"
#include "trace/trace_reader.hpp"
#include "workload/ghost_finder.hpp"

using namespace picp;

int main() {
  SimConfig sim;
  sim.nelx = 16;
  sim.nely = 16;
  sim.nelz = 32;
  sim.bed.num_particles = 8000;
  sim.num_iterations = 1500;
  sim.sample_every = 50;
  sim.num_ranks = 128;
  const std::string trace_path = "filter_tuning_trace.bin";
  SimDriver driver(sim);
  std::printf("producing trace...\n\n");
  driver.run(trace_path);

  // Use the final (most dispersed) particle configuration.
  TraceReader trace(trace_path);
  TraceSample sample;
  while (trace.read_next(sample)) {
  }
  std::vector<std::uint32_t> ids(sample.positions.size());
  for (std::size_t i = 0; i < ids.size(); ++i)
    ids[i] = static_cast<std::uint32_t>(i);

  const MeshPartition partition = rcb_partition(driver.mesh(), sim.num_ranks);
  const GasModel gas(sim.gas, sim.domain);
  SolverKernels kernels(driver.mesh(), gas, sim.physics);

  std::printf("projection filter size trade-off (R=%d, %zu particles):\n\n",
              sim.num_ranks, sample.positions.size());
  std::printf("%10s %10s %12s %18s\n", "filter", "max bins", "ghosts",
              "create_ghost [ms]");
  for (const double filter : {0.02, 0.03, 0.045, 0.07, 0.1, 0.15}) {
    BinMapper relaxed(1, filter, BinTree::kUnlimitedBins);
    std::vector<Rank> owners;
    relaxed.map(sample.positions, owners);

    const GhostFinder finder(driver.mesh(), partition, filter);
    std::vector<GhostRecord> ghosts;
    const double seconds = measure_adaptive(
        [&] { kernels.create_ghost(sample.positions, ids, -1, finder, ghosts); },
        2e-3, 16);

    std::printf("%10.3f %10lld %12zu %18.3f\n", filter,
                static_cast<long long>(relaxed.num_partitions()),
                ghosts.size(), seconds * 1e3);
  }
  std::printf(
      "\nsmall filters maximize parallelism (more bins) and minimize ghost "
      "cost but narrow the\nphysical projection support; large filters do "
      "the opposite — the framework quantifies the\ntrade-off so application "
      "users can pick a value (paper §IV-D).\n");
  return 0;
}
