// Strong-scaling study (the paper's §IV-B workflow): from one trace,
// predict how the particle-solver workload and runtime scale with the
// processor count, and find the optimal count — without ever running the
// application at those scales.
//
// Usage: ./examples/hele_shaw_scaling [config.ini]
//
// The optional INI config uses the [mesh]/[bed]/[gas]/[physics]/[run]/
// [mapping] sections of SimConfig (see configs/hele_shaw_small.ini).

#include <cstdio>

#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "mapping/bin_mapper.hpp"
#include "picsim/sim_driver.hpp"
#include "trace/trace_reader.hpp"
#include "workload/workload_stats.hpp"

using namespace picp;

int main(int argc, char** argv) {
  SimConfig sim;
  if (argc > 1) {
    sim = SimConfig::from_config(Config::from_file(argv[1]));
  } else {
    sim.nelx = 16;
    sim.nely = 16;
    sim.nelz = 32;
    sim.bed.num_particles = 8000;
    sim.num_iterations = 2000;
    sim.sample_every = 50;
    sim.num_ranks = 128;
  }
  sim.measure = true;  // we also want models for runtime prediction

  const std::string trace_path = "hele_shaw_scaling_trace.bin";
  SimDriver driver(sim);
  std::printf("instrumented run at R=%d...\n", sim.num_ranks);
  const SimResult app = driver.run(trace_path);

  ModelGenConfig mg;
  const ModelSet models = train_models(app.timings, mg);
  const PredictionPipeline pipeline(driver.mesh(), models);

  // 1. The bin-count limit: the largest useful processor count.
  BinMapper relaxed(1, sim.filter_size, BinTree::kUnlimitedBins);
  std::int64_t max_bins = 0;
  {
    TraceReader trace(trace_path);
    TraceSample sample;
    std::vector<Rank> owners;
    while (trace.read_next(sample)) {
      relaxed.map(sample.positions, owners);
      max_bins = std::max(max_bins, relaxed.num_partitions());
    }
  }
  std::printf("\nbin-size threshold caps the decomposition at %lld bins\n"
              "=> processor counts beyond %lld cannot improve the particle "
              "phase\n\n",
              static_cast<long long>(max_bins),
              static_cast<long long>(max_bins));

  // 2. Strong-scaling prediction from the single trace.
  std::printf("%8s %14s %16s %14s\n", "ranks", "peak np/rank",
              "predicted time s", "utilization %");
  for (Rank ranks = 32; ranks <= 1024; ranks *= 2) {
    PredictionConfig pc;
    pc.mapper_kind = "bin";
    pc.num_ranks = ranks;
    pc.filter_size = sim.filter_size;
    TraceReader trace(trace_path);
    const PredictionOutcome outcome = pipeline.predict(trace, pc);
    const UtilizationStats stats = utilization(outcome.workload.comp_real);
    std::printf("%8d %14lld %16.5f %14.1f\n", ranks,
                static_cast<long long>(stats.peak_load),
                outcome.sim.total_seconds,
                100.0 * stats.mean_active_fraction);
  }
  std::printf("\n(each row predicted from the same trace — the application "
              "ran only once, at R=%d)\n",
              sim.num_ranks);
  return 0;
}
