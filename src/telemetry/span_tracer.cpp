#include "telemetry/span_tracer.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "telemetry/json.hpp"
#include "util/atomic_file.hpp"

namespace picp::telemetry {

namespace {

/// One thread-local registration per (thread, tracer). A thread that
/// outlives a tracer (there is one process-wide tracer in practice) simply
/// re-registers if a different tracer instance appears — tests construct
/// their own tracers.
thread_local std::shared_ptr<void> t_buffer;   // type-erased ThreadBuffer
thread_local const void* t_owner = nullptr;

/// Fixed-point microseconds with the precision Perfetto keys on; avoids
/// %.17g noise in the emitted file.
std::string format_us(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

}  // namespace

SpanTracer::SpanTracer() : epoch_(std::chrono::steady_clock::now()) {}

double SpanTracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

SpanTracer::ThreadBuffer& SpanTracer::local_buffer() {
  if (t_owner != this || t_buffer == nullptr) {
    auto buffer = std::make_shared<ThreadBuffer>();
    {
      std::lock_guard<std::mutex> lock(buffers_mutex_);
      buffer->tid = next_tid_++;
      buffers_.push_back(buffer);
    }
    t_buffer = buffer;
    t_owner = this;
  }
  return *static_cast<ThreadBuffer*>(t_buffer.get());
}

void SpanTracer::record(const char* name, const char* category, double ts_us,
                        double dur_us) {
  ThreadBuffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.spans.push_back(SpanRecord{name, category, ts_us, dur_us});
}

void SpanTracer::set_thread_name(const std::string& name) {
  ThreadBuffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.name = name;
}

std::vector<SpanTracer::TaggedSpan> SpanTracer::collect() const {
  std::vector<TaggedSpan> out;
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    for (const SpanRecord& span : buffer->spans)
      out.push_back(TaggedSpan{span, buffer->tid});
  }
  return out;
}

std::size_t SpanTracer::span_count() const {
  std::size_t total = 0;
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->spans.size();
  }
  return total;
}

std::string SpanTracer::chrome_trace_json() const {
  const int pid = static_cast<int>(::getpid());
  std::vector<TaggedSpan> spans = collect();
  std::stable_sort(spans.begin(), spans.end(),
                   [](const TaggedSpan& a, const TaggedSpan& b) {
                     if (a.span.ts_us != b.span.ts_us)
                       return a.span.ts_us < b.span.ts_us;
                     return a.tid < b.tid;
                   });

  // Thread metadata (names), gathered under the registry lock.
  std::vector<std::pair<int, std::string>> thread_names;
  {
    std::lock_guard<std::mutex> lock(buffers_mutex_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      thread_names.emplace_back(
          buffer->tid, buffer->name.empty()
                           ? "thread-" + std::to_string(buffer->tid)
                           : buffer->name);
    }
  }
  std::sort(thread_names.begin(), thread_names.end());

  // Hand-rolled emission: a big trace through Json values would double the
  // peak memory; the format is flat enough to print directly.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto append_event = [&](const std::string& body) {
    if (!first) out.push_back(',');
    first = false;
    out += "\n";
    out += body;
  };
  for (const auto& [tid, name] : thread_names)
    append_event("{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":" +
                 std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
                 ",\"args\":{\"name\":\"" + json_escape(name) + "\"}}");
  for (const TaggedSpan& tagged : spans)
    append_event("{\"name\":\"" + json_escape(tagged.span.name) +
                 "\",\"cat\":\"" + json_escape(tagged.span.category) +
                 "\",\"ph\":\"X\",\"ts\":" + format_us(tagged.span.ts_us) +
                 ",\"dur\":" + format_us(tagged.span.dur_us) +
                 ",\"pid\":" + std::to_string(pid) +
                 ",\"tid\":" + std::to_string(tagged.tid) + "}");
  out += "\n]}\n";
  return out;
}

void SpanTracer::write_chrome_trace(const std::string& path) const {
  const std::string json = chrome_trace_json();
  atomic_write_file(path, json.data(), json.size());
}

void SpanTracer::clear() {
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->spans.clear();
  }
}

}  // namespace picp::telemetry
