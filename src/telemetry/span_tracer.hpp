#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace picp::telemetry {

/// One completed span. `name` and `category` must point at storage that
/// outlives the tracer — in practice string literals, which is what every
/// instrumentation site uses; this keeps the record trivially copyable and
/// the hot path allocation-free once a thread's buffer has warmed up.
struct SpanRecord {
  const char* name = "";
  const char* category = "";
  double ts_us = 0.0;   // start, microseconds since the tracer epoch
  double dur_us = 0.0;  // duration, microseconds
};

/// Collects thread-attributed spans into per-thread buffers and serializes
/// them as Chrome trace-event JSON (the `{"traceEvents": [...]}` format
/// that chrome://tracing and Perfetto load directly).
///
/// Each thread appends to its own buffer — the only synchronization on the
/// record path is that buffer's own mutex, which is uncontended (the owner
/// is the sole writer; another thread takes it only at flush/clear time).
/// Buffers are kept alive by shared ownership after their thread exits, so
/// spans recorded by pool workers survive pool destruction until the final
/// flush.
class SpanTracer {
 public:
  SpanTracer();
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// Microseconds since the tracer epoch (steady clock).
  double now_us() const;

  /// Record a completed span on the calling thread's buffer.
  void record(const char* name, const char* category, double ts_us,
              double dur_us);

  /// Attach a display name to the calling thread ("main", "worker-3", ...).
  /// Threads that never call this are shown as "thread-<tid>".
  void set_thread_name(const std::string& name);

  /// All spans recorded so far, tagged with their thread id, in no
  /// particular order across threads.
  struct TaggedSpan {
    SpanRecord span;
    int tid = 0;
  };
  std::vector<TaggedSpan> collect() const;

  /// Total spans currently buffered (tests / overhead accounting).
  std::size_t span_count() const;

  /// Serialize every buffered span (sorted by start time) as Chrome
  /// trace-event JSON. Includes process/thread metadata events. Written
  /// atomically via util::AtomicFile.
  void write_chrome_trace(const std::string& path) const;

  /// Same serialization as a string (tests, embedding).
  std::string chrome_trace_json() const;

  /// Drop every buffered span and thread name (new session).
  void clear();

 private:
  struct ThreadBuffer {
    std::mutex mutex;
    std::vector<SpanRecord> spans;
    std::string name;
    int tid = 0;
  };

  ThreadBuffer& local_buffer();

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex buffers_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  int next_tid_ = 0;
};

}  // namespace picp::telemetry
