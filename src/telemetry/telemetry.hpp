#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/manifest.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span_tracer.hpp"

// Compile-time kill switch (-DPICP_TELEMETRY=OFF at configure time): with
// it off, enabled() folds to false and every instrumentation site compiles
// down to dead branches the optimizer removes.
#ifndef PICP_TELEMETRY_ENABLED
#define PICP_TELEMETRY_ENABLED 1
#endif

namespace picp {
struct ThreadPoolStats;  // util/thread_pool.hpp
}

/// Process-wide telemetry session: one metrics registry + one span tracer
/// + per-run manifest assembly. All hot-path entry points are guarded by a
/// single relaxed atomic load (`enabled()`), so a run without telemetry
/// pays one predictable branch per instrumentation site and allocates
/// nothing — the INI/CLI kill-switch path is a true no-op.
namespace picp::telemetry {

namespace detail {
extern std::atomic<bool> g_enabled;
}

inline bool enabled() {
#if PICP_TELEMETRY_ENABLED
  return detail::g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// CPU time consumed by the calling thread (seconds); 0 where unsupported.
double thread_cpu_seconds();
/// CPU time consumed by the whole process (seconds); 0 where unsupported.
double process_cpu_seconds();

/// The process-wide instances. Always constructed (registration is legal
/// with telemetry off — the metrics simply stay zero and unbuffered), so
/// cached Counter/Phase references never dangle across sessions.
MetricsRegistry& registry();
SpanTracer& tracer();

/// Aggregated wall/CPU/count totals of one span family. Lookups take a
/// mutex; hot call sites fetch the reference once (function-local static)
/// and then accumulate lock-free.
class Phase {
 public:
  void add(double wall_seconds, double cpu_seconds) {
    wall_ns_.fetch_add(to_ns(wall_seconds), std::memory_order_relaxed);
    cpu_ns_.fetch_add(to_ns(cpu_seconds), std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  double wall_seconds() const {
    return static_cast<double>(wall_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  double cpu_seconds() const {
    return static_cast<double>(cpu_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  void reset() {
    wall_ns_.store(0, std::memory_order_relaxed);
    cpu_ns_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  static std::uint64_t to_ns(double seconds) {
    return seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e9);
  }
  std::atomic<std::uint64_t> wall_ns_{0};
  std::atomic<std::uint64_t> cpu_ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Stable-for-process-lifetime phase handle by name.
Phase& phase(const std::string& name);
/// Every registered phase, sorted by name (zero-count phases included).
std::vector<PhaseTotal> phase_totals();

/// RAII span: measures wall + thread-CPU time of a scope, feeds the phase
/// aggregate, and emits a thread-attributed Chrome-trace span. With
/// telemetry disabled the constructor is one relaxed load and the
/// destructor one predictable branch; nothing is allocated or clocked.
/// `name` must be a string literal (it is stored, not copied).
class ScopedSpan {
 public:
  ScopedSpan(const char* name, Phase& phase_handle,
             const char* category = "picp")
      : active_(enabled()), name_(name), category_(category),
        phase_(&phase_handle) {
    if (active_) start();
  }
  explicit ScopedSpan(const char* name, const char* category = "picp")
      : active_(enabled()), name_(name), category_(category) {
    if (active_) {
      phase_ = &phase(name);
      start();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (active_) finish();
  }

 private:
  void start();
  void finish();

  bool active_;
  const char* name_;
  const char* category_;
  Phase* phase_ = nullptr;
  double start_us_ = 0.0;
  double cpu_start_ = 0.0;
};

// --- Session lifecycle ------------------------------------------------------

struct SessionOptions {
  /// Master switch; `false` configures a disabled session (hot paths
  /// no-op). Also forced off when compiled with PICP_TELEMETRY=OFF.
  bool enabled = true;
  /// Output directory for finalize(); empty = collect in memory only
  /// (tests, library embedders that snapshot programmatically).
  std::string directory;
};

/// Start a telemetry session: zero all metric values, drop buffered spans,
/// create the output directory, and flip the global enable flag. Safe to
/// call repeatedly; cached Counter/Phase references stay valid.
void configure(const SessionOptions& options);

/// Identity of the run, stamped into the manifest by finalize().
void set_run_info(const std::string& command,
                  std::uint64_t config_fingerprint, std::uint64_t threads);
/// Free-form manifest "extra" entry (models path, ranks list, ...).
void add_run_annotation(const std::string& key, const std::string& value);

/// Publish thread-pool observability (tasks executed, queue wait,
/// per-worker busy fractions) into the registry as `threadpool.*` metrics.
void publish_pool_stats(const ThreadPoolStats& stats);

/// Assemble the manifest for the current session (no I/O).
RunManifest build_manifest();

/// One info-level line: total wall/CPU, the hottest phases, and pool
/// utilization — the "signal without opening the JSON" summary.
std::string summary_line();

/// End the session: write `<dir>/trace.json` (Chrome trace events) and
/// `<dir>/manifest.json` (atomically), log the summary line at info level,
/// and disable collection. No-op when the session is disabled.
void finalize();

}  // namespace picp::telemetry
