#include "telemetry/telemetry.hpp"

#include <time.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace picp::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
}

namespace {

/// Session bookkeeping behind one mutex (all cold-path).
struct Session {
  std::string directory;
  std::string command = "unknown";
  std::uint64_t config_fingerprint = 0;
  std::uint64_t threads = 1;
  std::vector<std::pair<std::string, std::string>> extra;
  std::chrono::steady_clock::time_point started =
      std::chrono::steady_clock::now();
  double cpu_started = 0.0;
};

std::mutex g_session_mutex;
Session g_session;

std::mutex g_phase_mutex;
/// Stable addresses for the life of the process (sessions only zero the
/// values), so call sites may cache `Phase&` in function-local statics.
std::map<std::string, std::unique_ptr<Phase>>& phase_map() {
  static auto* phases = new std::map<std::string, std::unique_ptr<Phase>>();
  return *phases;
}

double clock_seconds(clockid_t id) {
  struct timespec ts;
  if (clock_gettime(id, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

std::string format_seconds(double seconds) {
  char buf[32];
  if (seconds >= 1.0)
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  else
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  return buf;
}

}  // namespace

double thread_cpu_seconds() {
#ifdef CLOCK_THREAD_CPUTIME_ID
  return clock_seconds(CLOCK_THREAD_CPUTIME_ID);
#else
  return 0.0;
#endif
}

double process_cpu_seconds() {
#ifdef CLOCK_PROCESS_CPUTIME_ID
  return clock_seconds(CLOCK_PROCESS_CPUTIME_ID);
#else
  return 0.0;
#endif
}

MetricsRegistry& registry() {
  static auto* instance = new MetricsRegistry();
  return *instance;
}

SpanTracer& tracer() {
  static auto* instance = new SpanTracer();
  return *instance;
}

Phase& phase(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_phase_mutex);
  auto& slot = phase_map()[name];
  if (slot == nullptr) slot = std::make_unique<Phase>();
  return *slot;
}

std::vector<PhaseTotal> phase_totals() {
  std::lock_guard<std::mutex> lock(g_phase_mutex);
  std::vector<PhaseTotal> totals;
  totals.reserve(phase_map().size());
  for (const auto& [name, p] : phase_map())
    totals.push_back(
        {name, p->wall_seconds(), p->cpu_seconds(), p->count()});
  return totals;
}

void ScopedSpan::start() {
  start_us_ = tracer().now_us();
  cpu_start_ = thread_cpu_seconds();
}

void ScopedSpan::finish() {
  const double end_us = tracer().now_us();
  const double cpu = thread_cpu_seconds() - cpu_start_;
  tracer().record(name_, category_, start_us_, end_us - start_us_);
  phase_->add((end_us - start_us_) * 1e-6, cpu);
}

void configure(const SessionOptions& options) {
  std::lock_guard<std::mutex> lock(g_session_mutex);
  registry().reset_values();
  tracer().clear();
  {
    std::lock_guard<std::mutex> phase_lock(g_phase_mutex);
    for (const auto& [name, p] : phase_map()) p->reset();
  }
  g_session = Session();
  g_session.directory = options.directory;
  g_session.cpu_started = process_cpu_seconds();
  const bool on = options.enabled && PICP_TELEMETRY_ENABLED != 0;
  if (on && !options.directory.empty())
    std::filesystem::create_directories(options.directory);
  detail::g_enabled.store(on, std::memory_order_relaxed);
  if (on) tracer().set_thread_name("main");
}

void set_run_info(const std::string& command,
                  std::uint64_t config_fingerprint, std::uint64_t threads) {
  std::lock_guard<std::mutex> lock(g_session_mutex);
  g_session.command = command;
  g_session.config_fingerprint = config_fingerprint;
  g_session.threads = threads;
}

void add_run_annotation(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lock(g_session_mutex);
  g_session.extra.emplace_back(key, value);
}

void publish_pool_stats(const ThreadPoolStats& stats) {
  if (!enabled()) return;
  auto& reg = registry();
  reg.gauge("threadpool.workers")
      .set(static_cast<double>(stats.worker_busy_seconds.size()));
  reg.counter("threadpool.tasks").add(stats.tasks);
  reg.counter("threadpool.queue_wait_us")
      .add(static_cast<std::uint64_t>(stats.queue_wait_seconds * 1e6));
  reg.gauge("threadpool.queue_wait_max_us")
      .set(stats.max_queue_wait_seconds * 1e6);
  reg.counter("threadpool.busy_us")
      .add(static_cast<std::uint64_t>(stats.busy_seconds * 1e6));
  const double denom =
      stats.lifetime_seconds *
      static_cast<double>(stats.worker_busy_seconds.size());
  reg.gauge("threadpool.utilization")
      .set(denom > 0.0 ? stats.busy_seconds / denom : 0.0);
  for (std::size_t i = 0; i < stats.worker_busy_seconds.size(); ++i)
    reg.gauge("threadpool.worker." + std::to_string(i) + ".busy_fraction")
        .set(stats.lifetime_seconds > 0.0
                 ? stats.worker_busy_seconds[i] / stats.lifetime_seconds
                 : 0.0);
}

RunManifest build_manifest() {
  std::lock_guard<std::mutex> lock(g_session_mutex);
  RunManifest manifest;
  manifest.command = g_session.command;
  manifest.git_describe = build_git_describe();
  manifest.hostname = current_hostname();
  manifest.created_utc = current_utc_timestamp();
  manifest.config_fingerprint = g_session.config_fingerprint;
  manifest.threads = g_session.threads;
  manifest.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    g_session.started)
          .count();
  manifest.process_cpu_seconds =
      process_cpu_seconds() - g_session.cpu_started;
  manifest.phases = phase_totals();
  // Drop never-hit phases: other subsystems register eagerly and a
  // manifest full of zeros buries the signal.
  std::erase_if(manifest.phases,
                [](const PhaseTotal& p) { return p.count == 0; });
  manifest.metrics = registry().snapshot();
  manifest.extra = g_session.extra;
  return manifest;
}

std::string summary_line() {
  std::vector<PhaseTotal> phases = phase_totals();
  std::erase_if(phases, [](const PhaseTotal& p) { return p.count == 0; });
  std::sort(phases.begin(), phases.end(),
            [](const PhaseTotal& a, const PhaseTotal& b) {
              return a.wall_seconds > b.wall_seconds;
            });
  std::string line = "telemetry:";
  const std::size_t top = std::min<std::size_t>(3, phases.size());
  if (top == 0) {
    line += " no phases recorded";
  } else {
    line += " top phases";
    for (std::size_t i = 0; i < top; ++i)
      line += (i == 0 ? " " : ", ") + phases[i].name + " " +
              format_seconds(phases[i].wall_seconds);
  }
  const MetricsSnapshot metrics = registry().snapshot();
  const double workers = metrics.gauge_value("threadpool.workers");
  if (workers > 0.0) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  " | pool %.0f%% busy (%.0f workers, %llu tasks)",
                  100.0 * metrics.gauge_value("threadpool.utilization"),
                  workers,
                  static_cast<unsigned long long>(
                      metrics.counter_value("threadpool.tasks")));
    line += buf;
  }
  return line;
}

void finalize() {
  if (!enabled()) return;
  std::string directory;
  {
    std::lock_guard<std::mutex> lock(g_session_mutex);
    directory = g_session.directory;
  }
  const RunManifest manifest = build_manifest();
  if (!directory.empty()) {
    tracer().write_chrome_trace(directory + "/trace.json");
    write_manifest(manifest, directory + "/manifest.json");
    PICP_LOG_INFO << "telemetry written to " << directory
                  << "/{manifest,trace}.json";
  }
  PICP_LOG_INFO << summary_line();
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

}  // namespace picp::telemetry
