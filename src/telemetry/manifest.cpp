#include "telemetry/manifest.hpp"

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/error.hpp"

namespace picp::telemetry {

namespace {

std::string fingerprint_hex(std::uint64_t fingerprint) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, fingerprint);
  return buf;
}

std::uint64_t parse_fingerprint(const std::string& hex) {
  PICP_REQUIRE(hex.rfind("0x", 0) == 0 && hex.size() > 2,
               "manifest config_fingerprint must be a 0x-prefixed hex "
               "string, got: " + hex);
  return std::strtoull(hex.c_str() + 2, nullptr, 16);
}

}  // namespace

Json metrics_to_json(const MetricsSnapshot& metrics) {
  Json counters = Json::object();
  for (const auto& c : metrics.counters) counters.set(c.name, Json(c.value));
  Json gauges = Json::object();
  for (const auto& g : metrics.gauges) gauges.set(g.name, Json(g.value));
  Json histograms = Json::object();
  for (const auto& h : metrics.histograms) {
    Json bounds = Json::array();
    for (const double b : h.bounds) bounds.push_back(Json(b));
    Json counts = Json::array();
    for (const std::uint64_t c : h.counts) counts.push_back(Json(c));
    Json entry = Json::object();
    entry.set("bounds", std::move(bounds));
    entry.set("counts", std::move(counts));
    entry.set("count", Json(h.count));
    entry.set("sum", Json(h.sum));
    histograms.set(h.name, std::move(entry));
  }
  Json out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

MetricsSnapshot metrics_from_json(const Json& json) {
  MetricsSnapshot metrics;
  for (const auto& [name, value] : json.at("counters").members())
    metrics.counters.push_back({name, value.as_uint()});
  for (const auto& [name, value] : json.at("gauges").members())
    metrics.gauges.push_back({name, value.as_double()});
  for (const auto& [name, value] : json.at("histograms").members()) {
    HistogramSnapshot h;
    h.name = name;
    for (const Json& b : value.at("bounds").items())
      h.bounds.push_back(b.as_double());
    for (const Json& c : value.at("counts").items())
      h.counts.push_back(c.as_uint());
    h.count = value.at("count").as_uint();
    h.sum = value.at("sum").as_double();
    metrics.histograms.push_back(std::move(h));
  }
  return metrics;
}

Json manifest_to_json(const RunManifest& m) {
  Json json = Json::object();
  json.set("schema", Json("picpredict.telemetry.manifest/v1"));
  json.set("tool", Json(m.tool));
  json.set("command", Json(m.command));
  json.set("git_describe", Json(m.git_describe));
  json.set("hostname", Json(m.hostname));
  json.set("created_utc", Json(m.created_utc));
  json.set("config_fingerprint", Json(fingerprint_hex(m.config_fingerprint)));
  json.set("threads", Json(m.threads));
  json.set("wall_seconds", Json(m.wall_seconds));
  json.set("process_cpu_seconds", Json(m.process_cpu_seconds));
  Json phases = Json::array();
  for (const PhaseTotal& phase : m.phases) {
    Json entry = Json::object();
    entry.set("name", Json(phase.name));
    entry.set("wall_seconds", Json(phase.wall_seconds));
    entry.set("cpu_seconds", Json(phase.cpu_seconds));
    entry.set("count", Json(phase.count));
    phases.push_back(std::move(entry));
  }
  json.set("phases", std::move(phases));
  json.set("metrics", metrics_to_json(m.metrics));
  Json extra = Json::object();
  for (const auto& [key, value] : m.extra) extra.set(key, Json(value));
  json.set("extra", std::move(extra));
  return json;
}

RunManifest manifest_from_json(const Json& json) {
  const std::string schema = json.at("schema").as_string();
  PICP_REQUIRE(schema == "picpredict.telemetry.manifest/v1",
               "unsupported manifest schema: " + schema);
  RunManifest m;
  m.tool = json.at("tool").as_string();
  m.command = json.at("command").as_string();
  m.git_describe = json.at("git_describe").as_string();
  m.hostname = json.at("hostname").as_string();
  m.created_utc = json.at("created_utc").as_string();
  m.config_fingerprint =
      parse_fingerprint(json.at("config_fingerprint").as_string());
  m.threads = json.at("threads").as_uint();
  m.wall_seconds = json.at("wall_seconds").as_double();
  m.process_cpu_seconds = json.at("process_cpu_seconds").as_double();
  for (const Json& entry : json.at("phases").items()) {
    PhaseTotal phase;
    phase.name = entry.at("name").as_string();
    phase.wall_seconds = entry.at("wall_seconds").as_double();
    phase.cpu_seconds = entry.at("cpu_seconds").as_double();
    phase.count = entry.at("count").as_uint();
    m.phases.push_back(std::move(phase));
  }
  m.metrics = metrics_from_json(json.at("metrics"));
  for (const auto& [key, value] : json.at("extra").members())
    m.extra.emplace_back(key, value.as_string());
  return m;
}

void write_manifest(const RunManifest& manifest, const std::string& path) {
  const std::string text = manifest_to_json(manifest).dump(2) + "\n";
  atomic_write_file(path, text.data(), text.size());
}

RunManifest load_manifest(const std::string& path) {
  std::ifstream in(path);
  PICP_REQUIRE(in.is_open(), "cannot open manifest: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return manifest_from_json(Json::parse(text.str()));
}

std::string build_git_describe() {
#ifdef PICP_GIT_DESCRIBE
  return PICP_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string current_hostname() {
  char buf[256] = {0};
  if (::gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf;
}

std::string current_utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buf;
}

}  // namespace picp::telemetry
