#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/registry.hpp"

namespace picp::telemetry {

/// Aggregate wall/CPU totals of one named phase (a span family rolled up).
struct PhaseTotal {
  std::string name;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  std::uint64_t count = 0;
};

/// One JSON document per run: what ran, where, and how long each stage
/// took — the provenance record the paper's methodology implies but ad-hoc
/// stopwatch locals can never provide. Schema (all keys required):
///
///   {
///     "schema": "picpredict.telemetry.manifest/v1",
///     "tool": "picpredict", "command": "simulate",
///     "git_describe": "...", "hostname": "...",
///     "created_utc": "2026-08-06T12:00:00Z",
///     "config_fingerprint": "0x1a2b...",      // hex: u64-exact in JSON
///     "threads": 8,
///     "wall_seconds": 1.25, "process_cpu_seconds": 8.9,
///     "phases": [{"name": ..., "wall_seconds": ..., "cpu_seconds": ...,
///                 "count": ...}, ...],
///     "metrics": {"counters": {...}, "gauges": {...},
///                 "histograms": {name: {"bounds": [...], "counts": [...],
///                                       "count": n, "sum": s}}},
///     "extra": {...}                          // free-form string pairs
///   }
struct RunManifest {
  std::string tool = "picpredict";
  std::string command;
  std::string git_describe = "unknown";
  std::string hostname;
  std::string created_utc;
  std::uint64_t config_fingerprint = 0;
  std::uint64_t threads = 1;
  double wall_seconds = 0.0;
  double process_cpu_seconds = 0.0;
  std::vector<PhaseTotal> phases;
  MetricsSnapshot metrics;
  std::vector<std::pair<std::string, std::string>> extra;
};

Json manifest_to_json(const RunManifest& manifest);
RunManifest manifest_from_json(const Json& json);

/// The manifest's "metrics" sub-document on its own — shared with the
/// serving layer's /metricsz endpoint so scrapes and manifests agree.
Json metrics_to_json(const MetricsSnapshot& metrics);
MetricsSnapshot metrics_from_json(const Json& json);

/// Write atomically (temp + fsync + rename via util::AtomicFile) so a
/// crashed finalize never leaves a torn manifest under the final name.
void write_manifest(const RunManifest& manifest, const std::string& path);
RunManifest load_manifest(const std::string& path);

/// Build-stamped `git describe` (CMake configure time; "unknown" outside a
/// git checkout) and the current hostname / UTC timestamp — the manifest's
/// environment fields.
std::string build_git_describe();
std::string current_hostname();
std::string current_utc_timestamp();

}  // namespace picp::telemetry
