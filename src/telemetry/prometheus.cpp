#include "telemetry/prometheus.hpp"

#include <cstdio>
#include <set>

namespace picp::telemetry {

namespace {

/// Shortest round-trip decimal for a double ("100", "0.5", "3e+06").
std::string number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  // Prefer the short form when it round-trips: Prometheus clients parse
  // both, but "100" beats "100.00000000000000" in every scrape diff.
  char short_buf[64];
  std::snprintf(short_buf, sizeof short_buf, "%g", value);
  double parsed = 0.0;
  if (std::sscanf(short_buf, "%lf", &parsed) == 1 && parsed == value)
    return short_buf;
  return buf;
}

std::string integer(std::uint64_t value) {
  return std::to_string(value);
}

bool name_start_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool name_char(char c) {
  return name_start_char(c) || (c >= '0' && c <= '9');
}

/// One family header. `help` doubles as provenance: the registry name the
/// family was sanitized from, so operators can map a scrape back to
/// /metricsz JSON.
void family_header(std::string& out, const std::string& family,
                   const std::string& source, const char* type) {
  out += "# HELP " + family + " picpredict metric " + source + "\n";
  out += "# TYPE " + family + " ";
  out += type;
  out += "\n";
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "picp_";
  for (const char c : name) out += name_char(c) ? c : '_';
  return out;
}

const char* prometheus_content_type() {
  return "text/plain; version=0.0.4";
}

std::string to_prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  std::set<std::string> emitted;  // defensive duplicate-family guard

  for (const auto& counter : snapshot.counters) {
    const std::string family = prometheus_name(counter.name);
    if (!emitted.insert(family).second) continue;
    family_header(out, family, counter.name, "counter");
    out += family + " " + integer(counter.value) + "\n";
  }

  for (const auto& gauge : snapshot.gauges) {
    const std::string family = prometheus_name(gauge.name);
    if (!emitted.insert(family).second) continue;
    family_header(out, family, gauge.name, "gauge");
    out += family + " " + number(gauge.value) + "\n";
  }

  for (const auto& histogram : snapshot.histograms) {
    const std::string family = prometheus_name(histogram.name);
    if (!emitted.insert(family).second) continue;
    family_header(out, family, histogram.name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram.bounds.size(); ++i) {
      if (i < histogram.counts.size()) cumulative += histogram.counts[i];
      out += family + "_bucket{le=\"" + number(histogram.bounds[i]) +
             "\"} " + integer(cumulative) + "\n";
    }
    out += family + "_bucket{le=\"+Inf\"} " + integer(histogram.count) +
           "\n";
    out += family + "_sum " + number(histogram.sum) + "\n";
    out += family + "_count " + integer(histogram.count) + "\n";
  }

  return out;
}

}  // namespace picp::telemetry
