#pragma once

// Prometheus text exposition (format version 0.0.4) of a MetricsSnapshot.
// The same registry snapshot that backs the JSON /metricsz body renders
// here as scrape-ready plaintext: one `# HELP` + `# TYPE` pair per metric
// family, `_bucket{le="..."}` cumulative series plus `_sum`/`_count` for
// histograms, and every name mapped into the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*) under a `picp_` prefix — dots and any other
// illegal characters become underscores, so `serve.queue_depth` scrapes as
// `picp_serve_queue_depth`. Distinct registry names can collide after
// sanitization only if they differ solely in punctuation, which the
// registry's naming convention (dots + underscores used consistently)
// never produces; the emitter nevertheless de-duplicates defensively so
// the output always passes a duplicate-series check.

#include <string>

#include "telemetry/registry.hpp"

namespace picp::telemetry {

/// Map one registry metric name to its Prometheus family name.
std::string prometheus_name(const std::string& name);

/// Render the whole snapshot as Prometheus text format 0.0.4.
std::string to_prometheus_text(const MetricsSnapshot& snapshot);

/// Content-Type for the exposition ("text/plain; version=0.0.4").
const char* prometheus_content_type();

}  // namespace picp::telemetry
