#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace picp {

/// Minimal JSON document model for the telemetry layer: run manifests,
/// Chrome trace-event files, and the `picpredict report` validator all
/// speak through it. Self-contained on purpose — the container bakes no
/// JSON library, and the telemetry schema is small enough that a complete
/// reader/writer costs less than a dependency.
///
/// Numbers distinguish integers from doubles so 64-bit metric counters
/// round-trip exactly (a plain double mantissa cannot hold them). Object
/// members keep insertion order, which keeps emitted manifests diffable.
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}
  Json(std::int64_t value) : kind_(Kind::kInt), int_(value) {}
  Json(std::uint64_t value)
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(value)) {}
  Json(int value) : kind_(Kind::kInt), int_(value) {}
  Json(double value) : kind_(Kind::kDouble), num_(value) {}
  Json(std::string value) : kind_(Kind::kString), str_(std::move(value)) {}
  Json(const char* value) : kind_(Kind::kString), str_(value) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  /// Typed accessors; throw picp::Error on a kind mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  double as_double() const;  // accepts kInt too
  const std::string& as_string() const;

  // --- Arrays --------------------------------------------------------------
  void push_back(Json value);
  std::size_t size() const;
  const Json& at(std::size_t index) const;
  const std::vector<Json>& items() const;

  // --- Objects -------------------------------------------------------------
  /// Insert or overwrite a member (insertion order preserved).
  void set(const std::string& key, Json value);
  bool has(const std::string& key) const;
  /// Member lookup; throws picp::Error when the key is absent.
  const Json& at(const std::string& key) const;
  /// nullptr when absent — the validator's non-throwing probe.
  const Json* find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Serialize. indent < 0 emits the compact single-line form; indent >= 0
  /// pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Parse a complete document; trailing non-whitespace is an error.
  /// Throws picp::Error with a line/column locus on malformed input.
  /// Container nesting deeper than 256 levels is rejected (the serving
  /// layer feeds untrusted bodies through here).
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Escape a string for embedding in a JSON document (no surrounding quotes).
std::string json_escape(const std::string& text);

}  // namespace picp
