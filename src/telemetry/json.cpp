#include "telemetry/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace picp {

namespace {

void require_kind(Json::Kind actual, Json::Kind wanted, const char* what) {
  if (actual != wanted) throw Error(std::string("JSON value is not ") + what);
}

/// Shortest round-trip double formatting: try increasing precision until
/// strtod reads back the identical bits (17 digits always suffices).
std::string format_double(double value) {
  if (!std::isfinite(value))
    throw Error("JSON cannot represent non-finite number");
  char buf[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

class Parser {
 public:
  /// Deepest container nesting accepted. Real documents nest a handful of
  /// levels; without a cap, recursive descent lets an adversarial body of
  /// repeated '[' characters overflow the stack before hitting end-of-input.
  static constexpr int kMaxDepth = 256;

  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1, column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw Error("JSON parse error at line " + std::to_string(line) +
                ", column " + std::to_string(column) + ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("bad literal");
      default: return parse_number();
    }
  }

  struct DepthGuard {
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxDepth) parser_.fail("nesting too deep");
    }
    ~DepthGuard() { --parser_.depth_; }
    Parser& parser_;
  };

  Json parse_object() {
    DepthGuard guard(*this);
    expect('{');
    Json object = Json::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      skip_whitespace();
      const std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.set(key, parse_value());
      skip_whitespace();
      const char sep = next();
      if (sep == '}') return object;
      if (sep != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Json parse_array() {
    DepthGuard guard(*this);
    expect('[');
    Json array = Json::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      const char sep = next();
      if (sep == ']') return array;
      if (sep != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_codepoint(out, parse_hex4()); break;
        default: --pos_; fail("bad escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      value <<= 4;
      if (c >= '0' && c <= '9')
        value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<unsigned>(c - 'A' + 10);
      else {
        --pos_;
        fail("bad \\u escape");
      }
    }
    return value;
  }

  /// UTF-8 encode a BMP codepoint (surrogate pairs are joined first).
  void append_codepoint(std::string& out, unsigned cp) {
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need the pair
      if (next() != '\\' || next() != 'u') {
        --pos_;
        fail("unpaired surrogate in \\u escape");
      }
      const unsigned lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' ||
                 ((c == '+' || c == '-') && pos_ > start &&
                  (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))) {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("bad number");
    const std::size_t digit0 = token[0] == '-' ? 1 : 0;
    if (token.size() > digit0 + 1 && token[digit0] == '0' &&
        token[digit0 + 1] >= '0' && token[digit0 + 1] <= '9')
      fail("leading zero in number");
    errno = 0;
    if (integral) {
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size() && errno == 0)
        return Json(static_cast<std::int64_t>(v));
      // Fall through to double on overflow.
    }
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE)
      fail("bad number: " + token);
    return Json(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  require_kind(kind_, Kind::kBool, "a bool");
  return bool_;
}

std::int64_t Json::as_int() const {
  require_kind(kind_, Kind::kInt, "an integer");
  return int_;
}

std::uint64_t Json::as_uint() const {
  require_kind(kind_, Kind::kInt, "an integer");
  return static_cast<std::uint64_t>(int_);
}

double Json::as_double() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  require_kind(kind_, Kind::kDouble, "a number");
  return num_;
}

const std::string& Json::as_string() const {
  require_kind(kind_, Kind::kString, "a string");
  return str_;
}

void Json::push_back(Json value) {
  require_kind(kind_, Kind::kArray, "an array");
  items_.push_back(std::move(value));
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  throw Error("JSON value has no size");
}

const Json& Json::at(std::size_t index) const {
  require_kind(kind_, Kind::kArray, "an array");
  if (index >= items_.size()) throw Error("JSON array index out of range");
  return items_[index];
}

const std::vector<Json>& Json::items() const {
  require_kind(kind_, Kind::kArray, "an array");
  return items_;
}

void Json::set(const std::string& key, Json value) {
  require_kind(kind_, Kind::kObject, "an object");
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

bool Json::has(const std::string& key) const {
  return find(key) != nullptr;
}

const Json* Json::find(const std::string& key) const {
  require_kind(kind_, Kind::kObject, "an object");
  for (const auto& member : members_)
    if (member.first == key) return &member.second;
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* value = find(key);
  if (value == nullptr) throw Error("JSON object has no key '" + key + "'");
  return *value;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  require_kind(kind_, Kind::kObject, "an object");
  return members_;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int levels) {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * levels), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kDouble: out += format_double(num_); break;
    case Kind::kString:
      out.push_back('"');
      out += json_escape(str_);
      out.push_back('"');
      break;
    case Kind::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_pad(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline_pad(depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_pad(depth + 1);
        out.push_back('"');
        out += json_escape(members_[i].first);
        out += indent < 0 ? "\":" : "\": ";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) newline_pad(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace picp
