#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace picp::telemetry {

/// Monotonic 64-bit counter. `add` is a single relaxed fetch_add — safe and
/// cheap to call from any thread, including the solver hot loop.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written double (thread count, utilization fraction, virtual time).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations in
/// (bounds[i-1], bounds[i]]; one implicit overflow bucket holds everything
/// above the last bound. The hot path is a short linear scan (bucket lists
/// are small by design) plus one relaxed fetch_add; the running sum uses a
/// CAS loop, still lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Estimate the q-quantile (q in [0, 1]) from the bucket counts by
  /// linear interpolation within the bucket that holds the target rank —
  /// the same estimator Prometheus' histogram_quantile() uses. The first
  /// bucket interpolates from 0; a rank landing in the overflow bucket
  /// clamps to the largest finite bound (there is no upper edge to
  /// interpolate toward). Returns 0.0 for an empty histogram.
  double quantile(double q) const;
};

/// Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Counter value by exact name (0 when absent) — convenience for tests
  /// and the summary line.
  std::uint64_t counter_value(const std::string& name) const;
  /// Gauge value by exact name (0.0 when absent).
  double gauge_value(const std::string& name) const;
};

/// Process-wide named-metric registry. Registration (the `counter` /
/// `gauge` / `histogram` lookups) takes a mutex and should be done once per
/// call site — the returned references are stable for the life of the
/// process, so hot paths cache them (typically in a function-local static)
/// and then increment lock-free. `reset_values` zeroes every metric without
/// invalidating references, which is what a new telemetry session needs.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First registration fixes the bucket bounds (must be strictly
  /// increasing and non-empty); later lookups ignore `upper_bounds`.
  Histogram& histogram(const std::string& name,
                       std::span<const double> upper_bounds);

  MetricsSnapshot snapshot() const;
  void reset_values();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace picp::telemetry
