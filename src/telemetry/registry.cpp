#include "telemetry/registry.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace picp::telemetry {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  PICP_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  PICP_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                   std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                       bounds_.end(),
               "histogram bounds must be strictly increasing");
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

void Histogram::observe(double value) {
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double seen = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(seen, seen + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  return counts;
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0 || counts.empty() || bounds.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t below = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= bounds.size()) return bounds.back();  // overflow: clamp
    if (counts[i] == 0) return bounds[i];
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double fraction = (rank - static_cast<double>(below)) /
                            static_cast<double>(counts[i]);
    return lower + (bounds[i] - lower) * fraction;
  }
  return bounds.back();
}

std::uint64_t MetricsSnapshot::counter_value(const std::string& name) const {
  for (const auto& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

double MetricsSnapshot::gauge_value(const std::string& name) const {
  for (const auto& g : gauges)
    if (g.name == name) return g.value;
  return 0.0;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::span<const double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    // Construct before inserting: a throwing constructor (bad bounds) must
    // not leave a null entry behind for snapshot()/reset_values() to trip
    // over.
    auto fresh = std::make_unique<Histogram>(
        std::vector<double>(upper_bounds.begin(), upper_bounds.end()));
    it = histograms_.emplace(name, std::move(fresh)).first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    snap.counters.push_back({name, counter->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_)
    snap.gauges.push_back({name, gauge->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.bounds = histogram->bounds();
    h.counts = histogram->bucket_counts();
    h.count = histogram->count();
    h.sum = histogram->sum();
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace picp::telemetry
