#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "mesh/partition.hpp"
#include "picsim/kernels.hpp"
#include "util/timer.hpp"

namespace picp {

/// One measured kernel execution on one virtual rank at one sampled interval,
/// with the workload features the Model Generator trains on.
struct TimingRecord {
  std::uint32_t interval = 0;
  Rank rank = 0;
  Kernel kernel = Kernel::kInterpolate;
  /// Wall seconds for a single kernel execution (repetition-normalized).
  double seconds = 0.0;
  /// Workload features at measurement time.
  double np = 0.0;     // real particles on the rank
  double ngp = 0.0;    // ghost particles on the rank
  double nmove = 0.0;  // particles migrating off the rank
  double filter = 0.0; // projection filter size in effect
  double nel = 0.0;    // spectral elements owned by the rank
};

/// Container for instrumented measurements of a proxy-application run — the
/// stand-in for profiling CMT-nek on Quartz. Serializable to CSV so bench
/// binaries can cache expensive instrumented runs.
///
/// Per-kernel aggregates (how many measurements, total measured seconds,
/// the seconds distribution) live in the telemetry registry as
/// `picsim.kernel.<name>.*`, fed by `add()` — not in parallel accumulator
/// fields here. Consumers wanting aggregates snapshot the registry;
/// `records()` remains the exact per-measurement ground truth.
class KernelTimings {
 public:
  void add(const TimingRecord& record);
  std::span<const TimingRecord> records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// All records for one kernel.
  std::vector<TimingRecord> for_kernel(Kernel k) const;

  void save_csv(const std::string& path) const;
  static KernelTimings load_csv(const std::string& path);

 private:
  std::vector<TimingRecord> records_;
};

/// Repetition-based micro-measurement: runs `fn` in `windows` independent
/// timing windows, each accumulating until `min_seconds` of wall time or
/// `max_reps` repetitions, and returns the *minimum* per-run time across
/// windows. Virtual ranks carry microsecond-scale kernel work, so
/// single-shot timing would be clock-noise dominated; the min-of-windows
/// estimator additionally rejects OS preemption spikes, the dominant error
/// source for sub-millisecond measurements on a shared machine.
///
/// `Clock` must be stateless-constructible with a `seconds()` member
/// measuring elapsed time since construction (Stopwatch's shape). Tests
/// inject a fake clock to pin down the repetition policy deterministically —
/// wall-clock assertions on this loop are inherently flaky under sanitizers
/// and loaded CI machines.
template <typename Clock = Stopwatch, typename F>
double measure_adaptive(F&& fn, double min_seconds = 25e-6,
                        int max_reps = 128, int windows = 3) {
  fn();  // warm-up: caches and lazily-built tables are realistic steady state
  double best = std::numeric_limits<double>::infinity();
  for (int w = 0; w < windows; ++w) {
    Clock watch;
    int reps = 0;
    do {
      fn();
      ++reps;
    } while (watch.seconds() < min_seconds && reps < max_reps);
    best = std::min(best, watch.seconds() / reps);
  }
  return best;
}

}  // namespace picp
