#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/grid_indexer.hpp"
#include "geom/vec3.hpp"

namespace picp {

class ThreadPool;

/// Uniform cell list for particle-particle collision detection (the
/// collision force F_c in the CMT-nek particle solver, Eq. 2). The grid is
/// rebuilt every iteration over the *current particle bounding box* — a
/// domain-sized grid would waste orders of magnitude more memory and
/// clearing time when the particles occupy a small bed. Cell size is at
/// least the collision cutoff (larger if needed to respect `max_cells`), so
/// all partners of a particle lie within its 27-cell neighborhood.
class CollisionGrid {
 public:
  /// `cutoff` is the maximum collision interaction distance that will be
  /// queried; `max_cells` caps the grid footprint.
  explicit CollisionGrid(double cutoff, std::size_t max_cells = 1u << 21);

  /// Rebuild cell lists from current positions (counting sort, O(N)).
  /// With a pool, the particle-bounds reduction, cell indexing, and the
  /// counting sort itself run chunked across workers (per-chunk cell counts
  /// merged by prefix sum); the resulting cell lists are bit-identical to
  /// the serial build for any worker count because chunks are contiguous,
  /// in-order particle ranges.
  void rebuild(std::span<const Vec3> positions, ThreadPool* pool = nullptr);

  /// Visit up to `max_neighbors` particles within `cutoff` of particle i
  /// (excluding i itself), calling visit(j, delta, dist2) for each, where
  /// delta = p_i - p_j. Returns the number visited. The neighbor cap bounds
  /// the per-particle collision cost in densely packed beds (standard
  /// practice in soft-sphere DEM kernels). `cutoff` must not exceed the
  /// constructor cutoff.
  template <typename Visitor>
  int visit_neighbors(std::size_t i, double cutoff, int max_neighbors,
                      Visitor&& visit) const {
    const Vec3 p = positions_[i];
    const double cutoff2 = cutoff * cutoff;
    const auto lo = indexer_.cell_of(
        Vec3(p.x - cutoff, p.y - cutoff, p.z - cutoff));
    const auto hi = indexer_.cell_of(
        Vec3(p.x + cutoff, p.y + cutoff, p.z + cutoff));
    int visited = 0;
    for (std::int64_t iz = lo[2]; iz <= hi[2]; ++iz)
      for (std::int64_t iy = lo[1]; iy <= hi[1]; ++iy)
        for (std::int64_t ix = lo[0]; ix <= hi[0]; ++ix) {
          const auto cell =
              static_cast<std::size_t>(indexer_.flat_index(ix, iy, iz));
          for (std::uint32_t k = cell_start_[cell]; k < cell_start_[cell + 1];
               ++k) {
            const std::uint32_t j = cell_items_[k];
            if (j == i) continue;
            const Vec3 d = p - positions_[j];
            const double d2 = d.norm2();
            if (d2 >= cutoff2) continue;
            visit(static_cast<std::size_t>(j), d, d2);
            if (++visited >= max_neighbors) return visited;
          }
        }
    return visited;
  }

  std::size_t cell_count() const {
    return static_cast<std::size_t>(indexer_.cell_count());
  }

 private:
  double cutoff_;
  std::size_t max_cells_;
  GridIndexer indexer_;
  std::span<const Vec3> positions_;
  std::vector<std::uint32_t> cell_start_;  // prefix sums, size cells+1
  std::vector<std::uint32_t> cell_items_;  // particle ids grouped by cell
  std::vector<std::uint32_t> counts_;      // scratch
  std::vector<std::uint32_t> cell_index_;  // scratch: cell of each particle
  std::vector<std::uint32_t> chunk_counts_;  // scratch: per-chunk cell counts
};

}  // namespace picp
