#include "picsim/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace picp {

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kInterpolate: return "interpolate";
    case Kernel::kEqSolve: return "eq_solve";
    case Kernel::kPush: return "push";
    case Kernel::kProject: return "project";
    case Kernel::kCreateGhost: return "create_ghost";
    case Kernel::kMigrate: return "migrate";
    case Kernel::kFluid: return "fluid";
  }
  return "unknown";
}

Kernel kernel_from_name(const std::string& name) {
  for (int k = 0; k < kNumKernels; ++k)
    if (name == kernel_name(static_cast<Kernel>(k)))
      return static_cast<Kernel>(k);
  throw Error("unknown kernel name: " + name);
}

ProjectionField::ProjectionField(int points_per_dim,
                                 std::int64_t num_elements_hint)
    : n_(points_per_dim),
      block_size_(static_cast<std::size_t>(points_per_dim) *
                  static_cast<std::size_t>(points_per_dim) *
                  static_cast<std::size_t>(points_per_dim)) {
  PICP_REQUIRE(points_per_dim >= 2, "projection field needs N >= 2");
  if (num_elements_hint > 0) {
    data_.assign(static_cast<std::size_t>(num_elements_hint) * block_size_,
                 0.0);
    touched_flag_.assign(static_cast<std::size_t>(num_elements_hint), 0);
  }
}

std::span<double> ProjectionField::element_data(ElementId e) {
  const auto idx = static_cast<std::size_t>(e);
  if (idx >= touched_flag_.size()) {
    // Geometric growth so repeated first touches of increasing ids stay
    // amortized O(1); new storage arrives zeroed.
    const std::size_t elements =
        std::max(idx + 1, 2 * touched_flag_.size());
    data_.resize(elements * block_size_, 0.0);
    touched_flag_.resize(elements, 0);
  }
  if (!touched_flag_[idx]) {
    touched_flag_[idx] = 1;
    touched_.push_back(e);
  }
  return {data_.data() + idx * block_size_, block_size_};
}

void ProjectionField::clear() {
  for (const ElementId e : touched_) {
    const auto idx = static_cast<std::size_t>(e);
    std::fill_n(data_.begin() +
                    static_cast<std::ptrdiff_t>(idx * block_size_),
                block_size_, 0.0);
    touched_flag_[idx] = 0;
  }
  touched_.clear();
}

SolverKernels::SolverKernels(const SpectralMesh& mesh, const GasModel& gas,
                             const PhysicsParams& params)
    : mesh_(&mesh), gas_(&gas), params_(params), field_cache_(mesh, gas) {
  PICP_REQUIRE(params.dt > 0.0, "dt must be positive");
  PICP_REQUIRE(params.drag_tau > 0.0, "drag tau must be positive");
}

void SolverKernels::interpolate(std::span<const Vec3> positions,
                                std::span<const std::uint32_t> indices,
                                double time, std::span<Vec3> gas_out) const {
  for (const std::uint32_t i : indices)
    gas_out[i] = field_cache_.interpolate(positions[i], time);
}

void SolverKernels::eq_solve(std::span<const Vec3> velocities,
                             std::span<const Vec3> gas,
                             const CollisionGrid& grid,
                             std::span<const std::uint32_t> indices,
                             std::span<Vec3> vel_out) const {
  const double inv_tau = 1.0 / params_.drag_tau;
  const bool collide = params_.collision_radius > 0.0;
  for (const std::uint32_t i : indices) {
    Vec3 force = inv_tau * (gas[i] - velocities[i]) + params_.gravity;
    if (collide) {
      Vec3 fc;
      grid.visit_neighbors(
          i, params_.collision_radius, params_.max_collision_neighbors,
          [&](std::size_t, const Vec3& delta, double d2) {
            // Linear soft-sphere repulsion along the separation vector.
            const double dist = std::sqrt(d2);
            if (dist < 1e-12) return;
            const double overlap = params_.collision_radius - dist;
            fc += (params_.collision_stiffness * overlap / dist) * delta;
          });
      force += fc;
    }
    vel_out[i] = velocities[i] + params_.dt * force;
  }
}

void SolverKernels::push(std::span<const Vec3> positions,
                         std::span<Vec3> vel_inout,
                         std::span<const std::uint32_t> indices,
                         std::span<Vec3> pos_out) const {
  const Aabb& domain = mesh_->domain();
  // Keep reflected particles strictly inside so element lookups stay valid.
  const Vec3 ext = domain.extent();
  const double eps = 1e-9 * std::max({ext.x, ext.y, ext.z});
  for (const std::uint32_t i : indices) {
    Vec3 p = positions[i] + params_.dt * vel_inout[i];
    Vec3 v = vel_inout[i];
    for (int axis = 0; axis < 3; ++axis) {
      const double lo = domain.lo[axis] + eps;
      const double hi = domain.hi[axis] - eps;
      double x = p[axis];
      if (x < lo) {
        x = std::min(2.0 * lo - x, hi);
        v.set(axis, -params_.wall_restitution * v[axis]);
      } else if (x > hi) {
        x = std::max(2.0 * hi - x, lo);
        v.set(axis, -params_.wall_restitution * v[axis]);
      }
      p.set(axis, x);
    }
    pos_out[i] = p;
    vel_inout[i] = v;
  }
}

std::int64_t SolverKernels::project(std::span<const Vec3> positions,
                                    std::span<const std::uint32_t> indices,
                                    double filter,
                                    ProjectionField& field) const {
  PICP_REQUIRE(filter > 0.0, "projection filter must be positive");
  const int n = field.points_per_dim();
  const double inv_f2 = 1.0 / (filter * filter);
  std::int64_t updates = 0;
  for (const std::uint32_t i : indices) {
    const Vec3& p = positions[i];
    const ElementId e = mesh_->element_of(p);
    const Aabb box = mesh_->element_bounds(e);
    const Vec3 ext = box.extent();
    const double hx = ext.x / (n - 1);
    const double hy = ext.y / (n - 1);
    const double hz = ext.z / (n - 1);
    // Grid-point index range of this element covered by the filter support.
    const auto range = [n](double lo, double h, double c, double f) {
      int a = static_cast<int>(std::ceil((c - f - lo) / h));
      int b = static_cast<int>(std::floor((c + f - lo) / h));
      return std::pair<int, int>{std::max(a, 0), std::min(b, n - 1)};
    };
    const auto [ix0, ix1] = range(box.lo.x, hx, p.x, filter);
    const auto [iy0, iy1] = range(box.lo.y, hy, p.y, filter);
    const auto [iz0, iz1] = range(box.lo.z, hz, p.z, filter);
    if (ix0 > ix1 || iy0 > iy1 || iz0 > iz1) continue;
    auto data = field.element_data(e);
    for (int iz = iz0; iz <= iz1; ++iz) {
      const double dz = box.lo.z + iz * hz - p.z;
      for (int iy = iy0; iy <= iy1; ++iy) {
        const double dy = box.lo.y + iy * hy - p.y;
        for (int ix = ix0; ix <= ix1; ++ix) {
          const double dx = box.lo.x + ix * hx - p.x;
          const double q2 = (dx * dx + dy * dy + dz * dz) * inv_f2;
          if (q2 >= 1.0) continue;
          // Compact quartic (Wendland-style) projection weight.
          const double w = (1.0 - q2) * (1.0 - q2);
          data[static_cast<std::size_t>((iz * n + iy) * n + ix)] += w;
          ++updates;
        }
      }
    }
  }
  return updates;
}

std::size_t SolverKernels::create_ghost(std::span<const Vec3> positions,
                                        std::span<const std::uint32_t> indices,
                                        Rank owner, const GhostFinder& finder,
                                        std::vector<GhostRecord>& out) const {
  out.clear();
  for (const std::uint32_t i : indices) {
    finder.ranks_near(positions[i], owner, ghost_scratch_);
    for (const Rank r : ghost_scratch_) out.push_back(GhostRecord{i, r});
  }
  return out.size();
}

std::int64_t SolverKernels::fluid_update(std::span<const ElementId> elements,
                                         double time,
                                         ProjectionField& field) const {
  const int n = field.points_per_dim();
  const double amp = gas_->amplitude(time);
  std::int64_t updates = 0;
  for (const ElementId e : elements) {
    const Aabb box = mesh_->element_bounds(e);
    const Vec3 ext = box.extent();
    const double hx = ext.x / (n - 1);
    const double hy = ext.y / (n - 1);
    const double hz = ext.z / (n - 1);
    auto data = field.element_data(e);
    std::size_t idx = 0;
    for (int iz = 0; iz < n; ++iz) {
      const double z = box.lo.z + iz * hz;
      for (int iy = 0; iy < n; ++iy) {
        const double y = box.lo.y + iy * hy;
        for (int ix = 0; ix < n; ++ix, ++idx) {
          const double x = box.lo.x + ix * hx;
          // Relax the stored field toward the gas speed magnitude at this
          // point — a stand-in update with the fluid solve's per-point cost.
          const double target =
              amp * gas_->front_factor(gas_->front_coord(Vec3(x, y, z)),
                                       time);
          data[idx] = 0.9 * data[idx] + 0.1 * target;
          ++updates;
        }
      }
    }
  }
  return updates;
}

std::size_t SolverKernels::migrate(std::span<const Vec3> positions,
                                   std::span<const Vec3> velocities,
                                   std::span<const std::uint32_t> indices,
                                   std::span<const Rank> prev_owners,
                                   std::span<const Rank> owners,
                                   std::vector<MigrantRecord>& out) const {
  out.clear();
  for (const std::uint32_t i : indices)
    if (prev_owners[i] != owners[i])
      out.push_back(MigrantRecord{positions[i], velocities[i], i});
  return out.size();
}

}  // namespace picp
