#include "picsim/instrumentation.hpp"

#include <fstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace picp {

std::vector<TimingRecord> KernelTimings::for_kernel(Kernel k) const {
  std::vector<TimingRecord> out;
  for (const TimingRecord& r : records_)
    if (r.kernel == k) out.push_back(r);
  return out;
}

void KernelTimings::save_csv(const std::string& path) const {
  CsvWriter csv(path);
  csv.row("interval", "rank", "kernel", "seconds", "np", "ngp", "nmove",
          "filter", "nel");
  for (const TimingRecord& r : records_)
    csv.row(r.interval, r.rank, kernel_name(r.kernel), r.seconds, r.np, r.ngp,
            r.nmove, r.filter, r.nel);
}

KernelTimings KernelTimings::load_csv(const std::string& path) {
  std::ifstream in(path);
  PICP_REQUIRE(in.is_open(), "cannot open timings CSV: " + path);
  KernelTimings timings;
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (header) {
      header = false;
      continue;
    }
    if (trim(line).empty()) continue;
    const auto fields = split(line, ',');
    PICP_REQUIRE(fields.size() == 8 || fields.size() == 9,
                 "malformed timings row: " + line);
    TimingRecord r;
    r.interval = static_cast<std::uint32_t>(parse_int(fields[0]));
    r.rank = static_cast<Rank>(parse_int(fields[1]));
    r.kernel = kernel_from_name(trim(fields[2]));
    r.seconds = parse_double(fields[3]);
    r.np = parse_double(fields[4]);
    r.ngp = parse_double(fields[5]);
    r.nmove = parse_double(fields[6]);
    r.filter = parse_double(fields[7]);
    r.nel = fields.size() > 8 ? parse_double(fields[8]) : 0.0;
    timings.add(r);
  }
  return timings;
}

}  // namespace picp
