#include "picsim/instrumentation.hpp"

#include <array>
#include <fstream>

#include "telemetry/telemetry.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace picp {

namespace {

/// Registry handles for one kernel's aggregate metrics. Resolved once per
/// process (registry entries are never deleted) so the publish path in
/// KernelTimings::add is three lock-free updates.
struct KernelMetrics {
  telemetry::Counter* measurements = nullptr;
  telemetry::Counter* measured_ns = nullptr;
  telemetry::Histogram* seconds = nullptr;
};

KernelMetrics& metrics_for(Kernel k) {
  static std::array<KernelMetrics, kNumKernels> cache = [] {
    // Kernel measurements span ~1 µs (sparse ranks) to ~10 ms (dense
    // projection on large filters); decade buckets cover that range.
    const std::array<double, 5> bounds{1e-6, 1e-5, 1e-4, 1e-3, 1e-2};
    std::array<KernelMetrics, kNumKernels> handles;
    auto& reg = telemetry::registry();
    for (int i = 0; i < kNumKernels; ++i) {
      const std::string base =
          std::string("picsim.kernel.") + kernel_name(static_cast<Kernel>(i));
      handles[static_cast<std::size_t>(i)] = KernelMetrics{
          &reg.counter(base + ".measurements"),
          &reg.counter(base + ".measured_ns"),
          &reg.histogram(base + ".seconds", bounds)};
    }
    return handles;
  }();
  return cache[static_cast<std::size_t>(k)];
}

}  // namespace

void KernelTimings::add(const TimingRecord& record) {
  records_.push_back(record);
  if (telemetry::enabled()) {
    KernelMetrics& m = metrics_for(record.kernel);
    m.measurements->add();
    m.measured_ns->add(record.seconds <= 0.0
                           ? 0
                           : static_cast<std::uint64_t>(record.seconds * 1e9));
    m.seconds->observe(record.seconds);
  }
}

std::vector<TimingRecord> KernelTimings::for_kernel(Kernel k) const {
  std::vector<TimingRecord> out;
  for (const TimingRecord& r : records_)
    if (r.kernel == k) out.push_back(r);
  return out;
}

void KernelTimings::save_csv(const std::string& path) const {
  CsvWriter csv(path);
  csv.row("interval", "rank", "kernel", "seconds", "np", "ngp", "nmove",
          "filter", "nel");
  for (const TimingRecord& r : records_)
    csv.row(r.interval, r.rank, kernel_name(r.kernel), r.seconds, r.np, r.ngp,
            r.nmove, r.filter, r.nel);
}

KernelTimings KernelTimings::load_csv(const std::string& path) {
  std::ifstream in(path);
  PICP_REQUIRE(in.is_open(), "cannot open timings CSV: " + path);
  KernelTimings timings;
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (header) {
      header = false;
      continue;
    }
    if (trim(line).empty()) continue;
    const auto fields = split(line, ',');
    PICP_REQUIRE(fields.size() == 8 || fields.size() == 9,
                 "malformed timings row: " + line);
    TimingRecord r;
    r.interval = static_cast<std::uint32_t>(parse_int(fields[0]));
    r.rank = static_cast<Rank>(parse_int(fields[1]));
    r.kernel = kernel_from_name(trim(fields[2]));
    r.seconds = parse_double(fields[3]);
    r.np = parse_double(fields[4]);
    r.ngp = parse_double(fields[5]);
    r.nmove = parse_double(fields[6]);
    r.filter = parse_double(fields[7]);
    r.nel = fields.size() > 8 ? parse_double(fields[8]) : 0.0;
    timings.add(r);
  }
  return timings;
}

}  // namespace picp
