#include "picsim/checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace picp {

namespace {

template <typename T>
void append_pod(std::vector<char>& out, const T& value) {
  const auto* bytes = reinterpret_cast<const char*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

template <typename T>
T take_pod(const char*& cursor) {
  T value;
  std::memcpy(&value, cursor, sizeof(T));
  cursor += sizeof(T);
  return value;
}

}  // namespace

void SimCheckpoint::save(const std::string& path) const {
  failpoint::inject("checkpoint.save");
  PICP_REQUIRE(positions.size() == velocities.size(),
               "checkpoint particle arrays disagree");
  std::vector<char> out;
  out.reserve(sizeof(kMagic) + 64 + positions.size() * 2 * sizeof(Vec3));
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  append_pod(out, kVersion);
  append_pod(out, std::uint32_t{0});  // reserved / alignment
  append_pod(out, config_fingerprint);
  append_pod(out, rng_seed);
  append_pod(out, next_iteration);
  append_pod(out, sim_time);
  append_pod(out, trace_samples);
  append_pod(out, trace_bytes);
  append_pod(out, static_cast<std::uint64_t>(positions.size()));
  const auto* pos = reinterpret_cast<const char*>(positions.data());
  out.insert(out.end(), pos, pos + positions.size() * sizeof(Vec3));
  const auto* vel = reinterpret_cast<const char*>(velocities.data());
  out.insert(out.end(), vel, vel + velocities.size() * sizeof(Vec3));
  append_pod(out, crc32c(out.data(), out.size()));
  atomic_write_file(path, out.data(), out.size());
}

SimCheckpoint SimCheckpoint::load(const std::string& path) {
  failpoint::inject("checkpoint.load");
  std::ifstream in(path, std::ios::binary);
  PICP_REQUIRE(in.is_open(), "cannot open checkpoint: " + path);
  std::vector<char> raw{std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>()};
  constexpr std::size_t kFixedBytes =
      sizeof(kMagic) + 2 * sizeof(std::uint32_t) + 7 * sizeof(std::uint64_t) +
      sizeof(std::uint32_t);
  if (raw.size() < kFixedBytes)
    throw CorruptInputError(path, "checkpoint shorter than its fixed fields",
                            "delete it and restart without --resume");
  const std::uint32_t stored =
      [&] {
        std::uint32_t v;
        std::memcpy(&v, raw.data() + raw.size() - sizeof(v), sizeof(v));
        return v;
      }();
  if (stored != crc32c(raw.data(), raw.size() - sizeof(std::uint32_t)))
    throw CorruptInputError(path, "checkpoint checksum mismatch",
                            "delete it and restart without --resume");
  const char* cursor = raw.data();
  if (std::memcmp(cursor, kMagic, sizeof(kMagic)) != 0)
    throw CorruptInputError(path, "not a picpredict checkpoint");
  cursor += sizeof(kMagic);
  SimCheckpoint ckpt;
  const auto version = take_pod<std::uint32_t>(cursor);
  if (version != kVersion)
    throw CorruptInputError(
        path, "unsupported checkpoint version " + std::to_string(version));
  take_pod<std::uint32_t>(cursor);  // reserved
  ckpt.config_fingerprint = take_pod<std::uint64_t>(cursor);
  ckpt.rng_seed = take_pod<std::uint64_t>(cursor);
  ckpt.next_iteration = take_pod<std::int64_t>(cursor);
  ckpt.sim_time = take_pod<double>(cursor);
  ckpt.trace_samples = take_pod<std::uint64_t>(cursor);
  ckpt.trace_bytes = take_pod<std::uint64_t>(cursor);
  const auto np = take_pod<std::uint64_t>(cursor);
  const std::uint64_t payload = raw.size() - kFixedBytes;
  if (np != payload / (2 * sizeof(Vec3)) ||
      np * 2 * sizeof(Vec3) != payload)
    throw CorruptInputError(
        path, "checkpoint particle count (" + std::to_string(np) +
                  ") disagrees with its payload size");
  ckpt.positions.resize(static_cast<std::size_t>(np));
  std::memcpy(ckpt.positions.data(), cursor, np * sizeof(Vec3));
  cursor += np * sizeof(Vec3);
  ckpt.velocities.resize(static_cast<std::size_t>(np));
  std::memcpy(ckpt.velocities.data(), cursor, np * sizeof(Vec3));
  return ckpt;
}

std::uint64_t sim_config_fingerprint(const SimConfig& config) {
  Crc32c crc;
  const auto add_d = [&crc](double v) { crc.update_pod(v); };
  const auto add_i = [&crc](std::int64_t v) { crc.update_pod(v); };
  add_d(config.domain.lo.x);
  add_d(config.domain.lo.y);
  add_d(config.domain.lo.z);
  add_d(config.domain.hi.x);
  add_d(config.domain.hi.y);
  add_d(config.domain.hi.z);
  add_i(config.nelx);
  add_i(config.nely);
  add_i(config.nelz);
  add_i(config.points_per_dim);
  add_i(static_cast<std::int64_t>(config.bed.num_particles));
  add_d(config.bed.bed_bottom);
  add_d(config.bed.bed_height);
  add_d(config.bed.radius_fraction);
  add_i(static_cast<std::int64_t>(config.bed.seed));
  add_d(config.gas.center.x);
  add_d(config.gas.center.y);
  add_d(config.gas.center.z);
  add_d(config.gas.shock_speed);
  add_d(config.gas.gas_speed);
  add_d(config.gas.decay_time);
  add_d(config.gas.front_width);
  add_d(config.gas.front_start);
  add_d(config.gas.lift);
  add_d(config.gas.expansion_rate);
  add_d(config.gas.expansion_ref);
  add_d(config.gas.jet_amplitude);
  add_i(config.gas.jet_count);
  add_d(config.physics.dt);
  add_d(config.physics.drag_tau);
  add_d(config.physics.gravity.x);
  add_d(config.physics.gravity.y);
  add_d(config.physics.gravity.z);
  add_d(config.physics.collision_radius);
  add_d(config.physics.collision_stiffness);
  add_i(config.physics.max_collision_neighbors);
  add_d(config.physics.wall_restitution);
  add_i(config.num_iterations);
  add_i(config.sample_every);
  add_i(config.trace_float64 ? 1 : 0);
  return crc.value();
}

}  // namespace picp
