#include "picsim/particle_store.hpp"

#include <cmath>

#include "util/error.hpp"

namespace picp {

Aabb ParticleStore::bounds() const {
  Aabb box;
  for (const Vec3& p : positions_) box.expand(p);
  return box;
}

void init_hele_shaw_bed(ParticleStore& store, const Aabb& domain,
                        const BedParams& params) {
  PICP_REQUIRE(params.num_particles > 0, "bed needs particles");
  PICP_REQUIRE(params.bed_height > 0.0, "bed height must be positive");
  PICP_REQUIRE(params.radius_fraction > 0.0 && params.radius_fraction <= 1.0,
               "bed radius fraction must be in (0, 1]");
  const Vec3 extent = domain.extent();
  const Vec3 center = domain.center();
  const double radius =
      params.radius_fraction * 0.5 * std::min(extent.x, extent.y);
  const double z_lo = domain.lo.z + params.bed_bottom;
  const double z_hi = z_lo + params.bed_height;
  PICP_REQUIRE(z_hi <= domain.hi.z, "bed does not fit in the domain");

  store.resize(params.num_particles);
  Xoshiro256 rng(params.seed);
  auto positions = store.positions();
  auto velocities = store.velocities();
  for (std::size_t i = 0; i < params.num_particles; ++i) {
    // Uniform in the cylinder: sqrt-radius sampling.
    const double r = radius * std::sqrt(rng.uniform());
    const double theta = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    positions[i] = Vec3(center.x + r * std::cos(theta),
                        center.y + r * std::sin(theta),
                        rng.uniform(z_lo, z_hi));
    velocities[i] = Vec3();
  }
}

}  // namespace picp
