#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"
#include "util/rng.hpp"

namespace picp {

/// Structure-of-arrays particle state for the PIC proxy. Positions and
/// velocities are kept in separate contiguous arrays so the per-kernel loops
/// stream exactly the fields they touch.
class ParticleStore {
 public:
  ParticleStore() = default;

  std::size_t size() const { return positions_.size(); }
  bool empty() const { return positions_.empty(); }

  std::span<Vec3> positions() { return positions_; }
  std::span<const Vec3> positions() const { return positions_; }
  std::span<Vec3> velocities() { return velocities_; }
  std::span<const Vec3> velocities() const { return velocities_; }

  const Vec3& position(std::size_t i) const { return positions_[i]; }
  const Vec3& velocity(std::size_t i) const { return velocities_[i]; }

  void resize(std::size_t n) {
    positions_.resize(n);
    velocities_.resize(n);
  }

  /// Exchange the state with externally-computed next-step buffers (the
  /// driver double-buffers positions/velocities through the kernels).
  void swap_in(std::vector<Vec3>& next_positions,
               std::vector<Vec3>& next_velocities) {
    positions_.swap(next_positions);
    velocities_.swap(next_velocities);
  }

  /// Tight bounding box of all particles (the paper's "particle boundary").
  Aabb bounds() const;

 private:
  std::vector<Vec3> positions_;
  std::vector<Vec3> velocities_;
};

/// Parameters of the initial Hele-Shaw particle bed: a dense cylindrical
/// plug of particles at the bottom of the domain (the configuration that
/// produces the paper's extreme element-mapping load imbalance, Fig 1).
struct BedParams {
  std::size_t num_particles = 30000;
  /// Bed occupies z in [bed_bottom, bed_bottom + bed_height] (absolute).
  double bed_bottom = 0.06;
  double bed_height = 0.10;
  /// Bed radius as a fraction of the smaller lateral half-extent.
  double radius_fraction = 0.2;
  std::uint64_t seed = 12345;
};

/// Fill the store with a uniformly random dense bed inside the domain.
/// Deterministic for a fixed seed. Velocities start at rest.
void init_hele_shaw_bed(ParticleStore& store, const Aabb& domain,
                        const BedParams& params);

}  // namespace picp
