#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mapping/mapper.hpp"
#include "mesh/partition.hpp"
#include "mesh/spectral_mesh.hpp"
#include "picsim/instrumentation.hpp"
#include "picsim/sim_config.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

namespace picp {

/// Everything a proxy-application run produces for the prediction framework.
struct SimResult {
  /// Instrumented per-(kernel, rank, interval) timings (empty unless
  /// config.measure) — the stand-in for profiling the real app on the
  /// target system.
  KernelTimings timings;
  /// In-situ per-interval workload, counted by the application itself with
  /// the same accounting the generator uses — ground truth for validating
  /// the Dynamic Workload Generator (the paper validated Fig 5 this way).
  WorkloadResult actual;
  /// Particle state after the final iteration, exposed so callers can
  /// verify bit-exact invariants (e.g. thread-count independence).
  std::vector<Vec3> final_positions;
  std::vector<Vec3> final_velocities;
  /// Wall-clock cost of the run, split into physics and instrumentation
  /// (the §II "running the app is ~3 orders costlier" comparison).
  double wall_seconds = 0.0;
  double measure_seconds = 0.0;
  std::uint64_t trace_samples = 0;
  /// First iteration this run executed (non-zero after --resume).
  std::int64_t start_iteration = 0;
  /// True when the run stopped early via RunOptions::abort_after_iterations
  /// (crash simulation) — the trace was left unsealed.
  bool aborted = false;
};

/// Per-run options orthogonal to the SimConfig.
struct RunOptions {
  /// Continue from `<trace>.ckpt` instead of starting at iteration zero.
  /// The checkpointed configuration fingerprint must match; the resumed
  /// run's trace is byte-identical to an uninterrupted run's.
  bool resume = false;
  /// Testing / crash-drill hook: stop after this many iterations have
  /// completed, leaving the unsealed trace `.part` and the last checkpoint
  /// on disk exactly as a crash would (no footer, no final seal). Negative
  /// = run to completion.
  std::int64_t abort_after_iterations = -1;
};

/// The CMT-nek proxy: a multi-phase PIC solver over the spectral-element
/// mesh whose particles are explosively dispersed by the analytic airblast
/// gas field. Executes the full PIC solver loop each iteration, writes the
/// particle trace, and (optionally) measures every kernel on every virtual
/// rank at sampled intervals.
///
/// With `config.threads != 1` the solver loop, collision-grid rebuilds, and
/// the measurement-path rank/ghost builds run on an internal ThreadPool.
/// Every parallel phase writes only disjoint per-particle slots and every
/// merge is performed in deterministic chunk order, so the trace, the
/// workload accounting, and the final particle state are bit-identical for
/// any thread count.
class SimDriver {
 public:
  explicit SimDriver(const SimConfig& config);

  /// Run the simulation. Writes a trace when `trace_path` is non-empty.
  /// With `config.checkpoint_every > 0` the run periodically fsyncs the
  /// partial trace and atomically writes `<trace_path>.ckpt`;
  /// `options.resume` picks the run back up from that checkpoint.
  SimResult run(const std::string& trace_path = "",
                const RunOptions& options = {});

  const SimConfig& config() const { return config_; }
  const SpectralMesh& mesh() const { return mesh_; }
  const MeshPartition& partition() const { return partition_; }

  /// Worker threads the driver will use (1 when running serial).
  std::size_t threads() const { return pool_ ? pool_->size() : 1; }

 private:
  SimConfig config_;
  SpectralMesh mesh_;
  MeshPartition partition_;
  std::unique_ptr<ThreadPool> pool_;  // null when config.threads == 1
};

}  // namespace picp
