#include "picsim/collision_grid.hpp"

#include <algorithm>
#include <cmath>

#include "geom/aabb.hpp"
#include "util/error.hpp"

namespace picp {

CollisionGrid::CollisionGrid(double cutoff, std::size_t max_cells)
    : cutoff_(cutoff), max_cells_(max_cells) {
  PICP_REQUIRE(cutoff > 0.0, "collision cutoff must be positive");
  PICP_REQUIRE(max_cells >= 1, "need at least one cell");
}

void CollisionGrid::rebuild(std::span<const Vec3> positions) {
  positions_ = positions;
  PICP_REQUIRE(!positions.empty(), "rebuild with no particles");

  // Tight particle bounds, slightly inflated so boundary particles never
  // sit exactly on the upper faces.
  Aabb box;
  for (const Vec3& p : positions) box.expand(p);
  box = box.inflated(1e-9 + 1e-9 * box.extent().norm());

  // Cell size: the cutoff, enlarged if necessary to respect max_cells.
  double cell = cutoff_;
  const Vec3 e = box.extent();
  const auto dims_for = [&](double size) {
    const auto along = [size](double extent) {
      return std::max<std::int64_t>(
          1, static_cast<std::int64_t>(std::floor(extent / size)));
    };
    return std::array<std::int64_t, 3>{along(e.x), along(e.y), along(e.z)};
  };
  auto dims = dims_for(cell);
  while (static_cast<std::size_t>(dims[0]) * static_cast<std::size_t>(dims[1]) *
             static_cast<std::size_t>(dims[2]) >
         max_cells_) {
    cell *= 1.5;
    dims = dims_for(cell);
  }
  indexer_ = GridIndexer(box, dims[0], dims[1], dims[2]);

  const std::size_t cells = cell_count();
  counts_.assign(cells, 0);
  for (const Vec3& p : positions)
    ++counts_[static_cast<std::size_t>(indexer_.flat_cell_of(p))];

  cell_start_.resize(cells + 1);
  cell_start_[0] = 0;
  for (std::size_t c = 0; c < cells; ++c)
    cell_start_[c + 1] = cell_start_[c] + counts_[c];

  cell_items_.resize(positions.size());
  // counts_ becomes the per-cell write cursor.
  std::copy(cell_start_.begin(), cell_start_.end() - 1, counts_.begin());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const auto cell_index =
        static_cast<std::size_t>(indexer_.flat_cell_of(positions[i]));
    cell_items_[counts_[cell_index]++] = static_cast<std::uint32_t>(i);
  }
}

}  // namespace picp
