#include "picsim/collision_grid.hpp"

#include <algorithm>
#include <cmath>

#include "geom/aabb.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace picp {

namespace {

/// Parallel counting only pays off when the per-chunk count arrays stay
/// cache-resident; beyond this the serial count from cached cell indices
/// wins (and avoids a cells × workers scratch allocation).
constexpr std::size_t kMaxParallelCountCells = 1u << 16;
constexpr std::size_t kMinParallelParticles = 4096;

}  // namespace

CollisionGrid::CollisionGrid(double cutoff, std::size_t max_cells)
    : cutoff_(cutoff), max_cells_(max_cells) {
  PICP_REQUIRE(cutoff > 0.0, "collision cutoff must be positive");
  PICP_REQUIRE(max_cells >= 1, "need at least one cell");
}

void CollisionGrid::rebuild(std::span<const Vec3> positions,
                            ThreadPool* pool) {
  positions_ = positions;
  PICP_REQUIRE(!positions.empty(), "rebuild with no particles");
  const std::size_t n = positions.size();
  if (pool != nullptr &&
      (pool->size() <= 1 || n < kMinParallelParticles))
    pool = nullptr;

  // Tight particle bounds, slightly inflated so boundary particles never
  // sit exactly on the upper faces. min/max are exact, so merging per-chunk
  // partial boxes gives the identical box for any chunking.
  Aabb box;
  if (pool == nullptr) {
    for (const Vec3& p : positions) box.expand(p);
  } else {
    const std::size_t workers = pool->size();
    const std::size_t chunk = (n + workers - 1) / workers;
    std::vector<Aabb> partial((n + chunk - 1) / chunk);
    for (std::size_t w = 0; w < partial.size(); ++w) {
      const std::size_t begin = w * chunk;
      const std::size_t end = std::min(begin + chunk, n);
      pool->submit([&positions, &partial, w, begin, end] {
        Aabb local;
        for (std::size_t i = begin; i < end; ++i)
          local.expand(positions[i]);
        partial[w] = local;
      });
    }
    pool->wait_idle();
    for (const Aabb& b : partial) {
      box.expand(b.lo);
      box.expand(b.hi);
    }
  }
  box = box.inflated(1e-9 + 1e-9 * box.extent().norm());

  // Cell size: the cutoff, enlarged if necessary to respect max_cells.
  double cell = cutoff_;
  const Vec3 e = box.extent();
  const auto dims_for = [&](double size) {
    const auto along = [size](double extent) {
      return std::max<std::int64_t>(
          1, static_cast<std::int64_t>(std::floor(extent / size)));
    };
    return std::array<std::int64_t, 3>{along(e.x), along(e.y), along(e.z)};
  };
  auto dims = dims_for(cell);
  while (static_cast<std::size_t>(dims[0]) * static_cast<std::size_t>(dims[1]) *
             static_cast<std::size_t>(dims[2]) >
         max_cells_) {
    cell *= 1.5;
    dims = dims_for(cell);
  }
  indexer_ = GridIndexer(box, dims[0], dims[1], dims[2]);

  // Cell of every particle — the arithmetically heavy pass — chunked across
  // workers; each slot is written by exactly one chunk.
  cell_index_.resize(n);
  const auto index_range = [this, &positions](std::size_t begin,
                                              std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      cell_index_[i] =
          static_cast<std::uint32_t>(indexer_.flat_cell_of(positions[i]));
  };
  if (pool == nullptr)
    index_range(0, n);
  else
    pool->parallel_for(n, 1024, index_range);

  const std::size_t cells = cell_count();
  if (pool != nullptr && cells <= kMaxParallelCountCells) {
    // Counting sort with per-chunk cell counts. Chunks are contiguous
    // in-order particle ranges, so concatenating chunk contents per cell
    // reproduces the serial (stable, ascending id) cell order exactly.
    const std::size_t workers = pool->size();
    const std::size_t chunk = (n + workers - 1) / workers;
    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    chunk_counts_.assign(num_chunks * cells, 0);
    for (std::size_t w = 0; w < num_chunks; ++w) {
      const std::size_t begin = w * chunk;
      const std::size_t end = std::min(begin + chunk, n);
      pool->submit([this, cells, w, begin, end] {
        std::uint32_t* local = chunk_counts_.data() + w * cells;
        for (std::size_t i = begin; i < end; ++i) ++local[cell_index_[i]];
      });
    }
    pool->wait_idle();

    // Serial merge: global prefix sums over cells, then rewrite each
    // (chunk, cell) count into that chunk's write cursor.
    cell_start_.resize(cells + 1);
    cell_start_[0] = 0;
    for (std::size_t c = 0; c < cells; ++c) {
      std::uint32_t cursor = cell_start_[c];
      for (std::size_t w = 0; w < num_chunks; ++w) {
        const std::uint32_t count = chunk_counts_[w * cells + c];
        chunk_counts_[w * cells + c] = cursor;
        cursor += count;
      }
      cell_start_[c + 1] = cursor;
    }

    cell_items_.resize(n);
    for (std::size_t w = 0; w < num_chunks; ++w) {
      const std::size_t begin = w * chunk;
      const std::size_t end = std::min(begin + chunk, n);
      pool->submit([this, cells, w, begin, end] {
        std::uint32_t* cursor = chunk_counts_.data() + w * cells;
        for (std::size_t i = begin; i < end; ++i)
          cell_items_[cursor[cell_index_[i]]++] =
              static_cast<std::uint32_t>(i);
      });
    }
    pool->wait_idle();
    return;
  }

  // Serial counting sort from the cached cell indices.
  counts_.assign(cells, 0);
  for (std::size_t i = 0; i < n; ++i) ++counts_[cell_index_[i]];

  cell_start_.resize(cells + 1);
  cell_start_[0] = 0;
  for (std::size_t c = 0; c < cells; ++c)
    cell_start_[c + 1] = cell_start_[c] + counts_[c];

  cell_items_.resize(n);
  // counts_ becomes the per-cell write cursor.
  std::copy(cell_start_.begin(), cell_start_.end() - 1, counts_.begin());
  for (std::size_t i = 0; i < n; ++i)
    cell_items_[counts_[cell_index_[i]]++] = static_cast<std::uint32_t>(i);
}

}  // namespace picp
