#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mesh/partition.hpp"
#include "mesh/spectral_mesh.hpp"
#include "picsim/collision_grid.hpp"
#include "picsim/field_cache.hpp"
#include "picsim/gas_model.hpp"
#include "workload/ghost_finder.hpp"

namespace picp {

/// The PIC solver-loop kernels instrumented by the framework (paper §III-A
/// lists the loop; §IV-D names create_ghost_particles explicitly).
enum class Kernel : int {
  kInterpolate = 0,  // grid → particle gather of fluid properties
  kEqSolve = 1,      // forces (drag + gravity + collisions) → velocity
  kPush = 2,         // advance positions
  kProject = 3,      // particle → grid scatter within the filter radius
  kCreateGhost = 4,  // pack ghost particles for neighboring ranks
  kMigrate = 5,      // pack particles whose residing processor changed
  kFluid = 6,        // fluid-solver grid update (element workload, Nel*N^3)
};
constexpr int kNumKernels = 7;

const char* kernel_name(Kernel k);
Kernel kernel_from_name(const std::string& name);

/// Particle-dynamics constants of the proxy app.
struct PhysicsParams {
  double dt = 2.5e-4;
  /// Drag relaxation time (particle velocity → gas velocity).
  double drag_tau = 0.02;
  Vec3 gravity{0.0, 0.0, -1.0};
  /// Soft-sphere collision cutoff and stiffness; cutoff 0 disables.
  double collision_radius = 0.0;
  double collision_stiffness = 50.0;
  /// Per-particle partner cap (bounds cost in densely packed beds).
  int max_collision_neighbors = 8;
  /// Velocity retained (per component) after a wall bounce.
  double wall_restitution = 0.3;
};

/// One ghost particle packed for a neighboring rank.
struct GhostRecord {
  std::uint32_t particle = 0;
  Rank target = kInvalidRank;
};

/// One migrating particle packed for its new owner (full state, as the real
/// application ships position + velocity + material data).
struct MigrantRecord {
  Vec3 position;
  Vec3 velocity;
  std::uint32_t particle = 0;
};

/// Particle→grid deposit field: per element, an N×N×N accumulation array
/// (the projected particle volume fraction). Storage is one dense
/// contiguous array indexed by ElementId — no hash lookup on the deposit
/// path — plus a touched-element list so `clear()` re-zeroes only the
/// blocks that actually received deposits instead of deallocating
/// everything. The backing array grows geometrically on demand (or is
/// pre-sized via `num_elements_hint`), so steady-state measurement reps
/// never allocate.
class ProjectionField {
 public:
  explicit ProjectionField(int points_per_dim,
                           std::int64_t num_elements_hint = 0);

  /// Accumulation block of element e, zeroed on first touch since the last
  /// clear(). Marks e as occupied.
  std::span<double> element_data(ElementId e);

  std::size_t occupied_elements() const { return touched_.size(); }
  std::span<const ElementId> touched_elements() const { return touched_; }

  /// Reset every touched block to zero; keeps the backing storage.
  void clear();

  int points_per_dim() const { return n_; }

 private:
  int n_;
  std::size_t block_size_;
  std::vector<double> data_;           // num_elements * N^3, dense
  std::vector<std::uint8_t> touched_flag_;
  std::vector<ElementId> touched_;     // occupied since last clear()
};

/// Stateless-per-call kernel implementations. Every kernel operates on an
/// arbitrary subset of particle indices, so the same code path serves both
/// the global physics step and the per-virtual-rank measured execution —
/// the proxy's substitute for running each kernel on a real MPI rank.
///
/// interpolate / eq_solve / push are const and write only to the slots of
/// the listed particle indices, so disjoint index spans may execute
/// concurrently on one kernels object (the driver's threaded solver loop
/// relies on this). create_ghost uses internal scratch and is not safe to
/// call concurrently on the same object.
class SolverKernels {
 public:
  SolverKernels(const SpectralMesh& mesh, const GasModel& gas,
                const PhysicsParams& params);

  const PhysicsParams& params() const { return params_; }
  const FieldCache& field_cache() const { return field_cache_; }

  /// 1. Interpolation: gas velocity at each listed particle → gas_out[i].
  void interpolate(std::span<const Vec3> positions,
                   std::span<const std::uint32_t> indices, double time,
                   std::span<Vec3> gas_out) const;

  /// 2. Equation solver: drag + gravity + collision forces → vel_out[i].
  /// `grid` must be rebuilt for `positions` when collisions are enabled.
  void eq_solve(std::span<const Vec3> velocities, std::span<const Vec3> gas,
                const CollisionGrid& grid,
                std::span<const std::uint32_t> indices,
                std::span<Vec3> vel_out) const;

  /// 3. Particle pusher: advance positions by dt with wall reflection;
  /// writes pos_out[i] and may flip components of vel_inout[i].
  void push(std::span<const Vec3> positions, std::span<Vec3> vel_inout,
            std::span<const std::uint32_t> indices,
            std::span<Vec3> pos_out) const;

  /// 4. Projection: deposit a compact quartic kernel of radius `filter`
  /// onto the grid points of each particle's element. Returns grid-point
  /// updates performed (the kernel's work measure).
  std::int64_t project(std::span<const Vec3> positions,
                       std::span<const std::uint32_t> indices, double filter,
                       ProjectionField& field) const;

  /// 5. create_ghost_particles: pack each listed particle once per rank
  /// (other than `owner`, the rank holding the particle data) whose grid
  /// region its filter radius touches. Returns ghosts made. The exclusion
  /// matches the Dynamic Workload Generator's ghost accounting so measured
  /// and predicted ghost counts are comparable.
  std::size_t create_ghost(std::span<const Vec3> positions,
                           std::span<const std::uint32_t> indices, Rank owner,
                           const GhostFinder& finder,
                           std::vector<GhostRecord>& out) const;

  /// 6. Migration: pack the full state of listed particles whose owner
  /// changed between intervals. Returns movers.
  std::size_t migrate(std::span<const Vec3> positions,
                      std::span<const Vec3> velocities,
                      std::span<const std::uint32_t> indices,
                      std::span<const Rank> prev_owners,
                      std::span<const Rank> owners,
                      std::vector<MigrantRecord>& out) const;

  /// 7. Fluid update: advance a scalar gas field on every grid point of the
  /// listed elements (the fluid-solver phase; cost = Nel * N^3 per rank, the
  /// paper's uniformly-scaling element workload). Returns point updates.
  std::int64_t fluid_update(std::span<const ElementId> elements, double time,
                            ProjectionField& field) const;

 private:
  const SpectralMesh* mesh_;
  const GasModel* gas_;
  PhysicsParams params_;
  FieldCache field_cache_;
  mutable std::vector<Rank> ghost_scratch_;
};

}  // namespace picp
