#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/vec3.hpp"
#include "picsim/sim_config.hpp"

namespace picp {

/// Everything needed to restart an interrupted proxy-application run and
/// produce a trace byte-identical to an uninterrupted one: the exact f64
/// particle state, the accumulated simulation clock (re-deriving it as
/// iteration * dt would break bit-identity — it is summed incrementally),
/// and how far the partial trace `.part` file had been fsynced.
///
/// Checkpoints are written atomically (temp + fsync + rename) and sealed
/// with a CRC32C, so `<trace>.ckpt` is always either the previous complete
/// checkpoint or the new one — never torn.
struct SimCheckpoint {
  static constexpr char kMagic[8] = {'P', 'I', 'C', 'P', 'C', 'K', 'P', '1'};
  static constexpr std::uint32_t kVersion = 1;

  /// Fingerprint of every config field that shapes the trajectory — resume
  /// under a different configuration is refused instead of silently
  /// producing a mismatched trace.
  std::uint64_t config_fingerprint = 0;
  /// Seed of the RNG stream that initialized the particle bed (the solver
  /// loop itself draws no random numbers; stored so future stochastic
  /// physics has a slot and mismatched seeds are caught today).
  std::uint64_t rng_seed = 0;
  /// First iteration the resumed run executes.
  std::int64_t next_iteration = 0;
  /// Accumulated simulation clock at that iteration.
  double sim_time = 0.0;
  /// Samples fully written and fsynced to the trace `.part` file.
  std::uint64_t trace_samples = 0;
  /// Byte offset in the `.part` file just after those samples.
  std::uint64_t trace_bytes = 0;
  std::vector<Vec3> positions;
  std::vector<Vec3> velocities;

  /// Atomically write to `path` (CRC-sealed; temp + fsync + rename).
  void save(const std::string& path) const;

  /// Load and verify; throws picp::CorruptInputError on damage or
  /// picp::Error if the file cannot be opened.
  static SimCheckpoint load(const std::string& path);
};

/// CRC fingerprint over the SimConfig fields that determine the particle
/// trajectory and trace layout (mesh, bed, gas, physics, iteration/sampling
/// plan, coordinate kind). Fields that provably do not affect the trace —
/// threads (bit-identical by design), mapping choices, measurement knobs —
/// are excluded so e.g. resuming with a different thread count stays legal.
std::uint64_t sim_config_fingerprint(const SimConfig& config);

}  // namespace picp
