#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "geom/aabb.hpp"
#include "mesh/partition.hpp"
#include "picsim/gas_model.hpp"
#include "picsim/kernels.hpp"
#include "picsim/particle_store.hpp"
#include "util/config.hpp"

namespace picp {

/// Complete configuration of one proxy-application run — the union of the
/// paper's "system configuration" (processor count) and "application
/// configuration" (particles, elements, grid dims, mapping algorithm,
/// problem parameters). Defaults reproduce the scaled Hele-Shaw case study
/// described in DESIGN.md.
struct SimConfig {
  // --- Domain and spectral-element mesh -----------------------------------
  Aabb domain{Vec3(0.0, 0.0, 0.0), Vec3(1.0, 1.0, 2.0)};
  std::int64_t nelx = 32;
  std::int64_t nely = 32;
  std::int64_t nelz = 64;
  int points_per_dim = 5;  // the paper's N (grid resolution per element)

  // --- Initial particle bed ------------------------------------------------
  BedParams bed;

  // --- Gas field and particle physics --------------------------------------
  GasParams gas;
  PhysicsParams physics;

  // --- Time stepping and trace sampling ------------------------------------
  std::int64_t num_iterations = 6000;
  std::int64_t sample_every = 50;
  /// Store trace coordinates in double precision (exact generator-vs-app
  /// validation); f32 matches the paper's compact production traces.
  bool trace_float64 = true;
  /// Worker threads for the solver loop, collision-grid rebuilds, and the
  /// measurement-path rank/ghost builds. 1 = fully serial (no pool),
  /// 0 = hardware concurrency. Every parallel phase writes only disjoint
  /// per-particle slots, so results are bit-identical for any value.
  std::size_t threads = 1;
  /// Write a crash-recovery checkpoint (`<trace>.ckpt`) every N iterations
  /// when a trace is being written; 0 disables. `simulate --resume`
  /// continues from the last checkpoint and provably reproduces the
  /// uninterrupted trace byte for byte (see DESIGN.md, "Trace format v2 &
  /// crash safety").
  std::int64_t checkpoint_every = 0;
  /// Kill-switch for the telemetry layer: with `run.telemetry = false` the
  /// CLI's `--telemetry-dir` is ignored and every instrumentation site in
  /// the run is a no-op (see DESIGN.md, "Telemetry").
  bool telemetry = true;

  // --- Mapping and prediction ----------------------------------------------
  std::string mapper_kind = "bin";
  Rank num_ranks = 1044;
  /// Projection filter size (absolute units). Also the threshold bin size
  /// for bin-based mapping, as in CMT-nek (§IV-D).
  double filter_size = 0.024;

  // --- Instrumentation ------------------------------------------------------
  bool measure = false;
  std::int64_t measure_every = 1;  // measure at every k-th sampled interval
  double measure_min_seconds = 25e-6;
  int measure_max_reps = 128;

  /// Parse from an INI config (missing keys keep defaults). Section names:
  /// [mesh], [bed], [gas], [physics], [run], [mapping], [measure].
  static SimConfig from_config(const Config& config);

  /// Total trace samples this configuration produces.
  std::int64_t num_samples() const {
    return (num_iterations + sample_every - 1) / sample_every;
  }

  /// Validate cross-field constraints; throws picp::Error on bad configs.
  void validate() const;
};

}  // namespace picp
