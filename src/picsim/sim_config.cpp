#include "picsim/sim_config.hpp"

#include "util/error.hpp"

namespace picp {

SimConfig SimConfig::from_config(const Config& c) {
  SimConfig s;
  s.domain.lo.x = c.get_double("mesh.lo_x", s.domain.lo.x);
  s.domain.lo.y = c.get_double("mesh.lo_y", s.domain.lo.y);
  s.domain.lo.z = c.get_double("mesh.lo_z", s.domain.lo.z);
  s.domain.hi.x = c.get_double("mesh.hi_x", s.domain.hi.x);
  s.domain.hi.y = c.get_double("mesh.hi_y", s.domain.hi.y);
  s.domain.hi.z = c.get_double("mesh.hi_z", s.domain.hi.z);
  s.nelx = c.get_int("mesh.nelx", s.nelx);
  s.nely = c.get_int("mesh.nely", s.nely);
  s.nelz = c.get_int("mesh.nelz", s.nelz);
  s.points_per_dim = static_cast<int>(
      c.get_int("mesh.points_per_dim", s.points_per_dim));

  s.bed.num_particles = static_cast<std::size_t>(
      c.get_int("bed.num_particles",
                static_cast<long long>(s.bed.num_particles)));
  s.bed.bed_bottom = c.get_double("bed.bottom", s.bed.bed_bottom);
  s.bed.bed_height = c.get_double("bed.height", s.bed.bed_height);
  s.bed.radius_fraction = c.get_double("bed.radius_fraction",
                                       s.bed.radius_fraction);
  s.bed.seed = static_cast<std::uint64_t>(
      c.get_int("bed.seed", static_cast<long long>(s.bed.seed)));

  s.gas.center.x = c.get_double("gas.center_x", s.gas.center.x);
  s.gas.center.y = c.get_double("gas.center_y", s.gas.center.y);
  s.gas.center.z = c.get_double("gas.center_z", s.gas.center.z);
  s.gas.shock_speed = c.get_double("gas.shock_speed", s.gas.shock_speed);
  s.gas.gas_speed = c.get_double("gas.gas_speed", s.gas.gas_speed);
  s.gas.decay_time = c.get_double("gas.decay_time", s.gas.decay_time);
  s.gas.front_width = c.get_double("gas.front_width", s.gas.front_width);
  s.gas.front_start = c.get_double("gas.front_start", s.gas.front_start);
  s.gas.lift = c.get_double("gas.lift", s.gas.lift);
  s.gas.expansion_rate =
      c.get_double("gas.expansion_rate", s.gas.expansion_rate);
  s.gas.expansion_ref = c.get_double("gas.expansion_ref", s.gas.expansion_ref);
  s.gas.jet_amplitude = c.get_double("gas.jet_amplitude", s.gas.jet_amplitude);
  s.gas.jet_count =
      static_cast<int>(c.get_int("gas.jet_count", s.gas.jet_count));

  s.physics.dt = c.get_double("physics.dt", s.physics.dt);
  s.physics.drag_tau = c.get_double("physics.drag_tau", s.physics.drag_tau);
  s.physics.gravity.z = c.get_double("physics.gravity_z", s.physics.gravity.z);
  s.physics.collision_radius =
      c.get_double("physics.collision_radius", s.physics.collision_radius);
  s.physics.collision_stiffness = c.get_double(
      "physics.collision_stiffness", s.physics.collision_stiffness);
  s.physics.max_collision_neighbors = static_cast<int>(c.get_int(
      "physics.max_collision_neighbors", s.physics.max_collision_neighbors));
  s.physics.wall_restitution =
      c.get_double("physics.wall_restitution", s.physics.wall_restitution);

  s.num_iterations = c.get_int("run.num_iterations", s.num_iterations);
  s.sample_every = c.get_int("run.sample_every", s.sample_every);
  s.trace_float64 = c.get_bool("run.trace_float64", s.trace_float64);
  const long long threads =
      c.get_int("run.threads", static_cast<long long>(s.threads));
  PICP_REQUIRE(threads >= 0, "run.threads must be >= 0 (0 = all cores)");
  s.threads = static_cast<std::size_t>(threads);
  s.checkpoint_every = c.get_int("run.checkpoint_every", s.checkpoint_every);
  s.telemetry = c.get_bool("run.telemetry", s.telemetry);

  s.mapper_kind = c.get_string("mapping.mapper", s.mapper_kind);
  s.num_ranks =
      static_cast<Rank>(c.get_int("mapping.num_ranks", s.num_ranks));
  s.filter_size = c.get_double("mapping.filter_size", s.filter_size);

  s.measure = c.get_bool("measure.enabled", s.measure);
  s.measure_every = c.get_int("measure.every", s.measure_every);
  s.measure_min_seconds =
      c.get_double("measure.min_seconds", s.measure_min_seconds);
  s.measure_max_reps = static_cast<int>(
      c.get_int("measure.max_reps", s.measure_max_reps));

  s.validate();
  return s;
}

void SimConfig::validate() const {
  PICP_REQUIRE(domain.valid() && domain.volume() > 0.0,
               "domain must be non-degenerate");
  PICP_REQUIRE(nelx > 0 && nely > 0 && nelz > 0, "element counts positive");
  PICP_REQUIRE(points_per_dim >= 2, "points_per_dim >= 2");
  PICP_REQUIRE(num_iterations > 0, "num_iterations positive");
  PICP_REQUIRE(sample_every > 0, "sample_every positive");
  PICP_REQUIRE(num_ranks > 0, "num_ranks positive");
  PICP_REQUIRE(filter_size > 0.0, "filter_size positive");
  PICP_REQUIRE(measure_every > 0, "measure_every positive");
  PICP_REQUIRE(checkpoint_every >= 0, "checkpoint_every non-negative");
  PICP_REQUIRE(bed.num_particles > 0, "need particles");
}

}  // namespace picp
