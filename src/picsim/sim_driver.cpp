#include "picsim/sim_driver.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "picsim/checkpoint.hpp"
#include "picsim/collision_grid.hpp"
#include "picsim/gas_model.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/trace_writer.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"
#include "workload/ghost_finder.hpp"

namespace picp {

namespace {

/// Minimum particles before the per-interval builds bother going parallel —
/// below this the chunk bookkeeping costs more than the loop.
constexpr std::size_t kMinParallelBuild = 4096;
/// Minimum particles per chunk in the threaded solver loop.
constexpr std::size_t kSolverGrain = 256;

struct ChunkPlan {
  std::size_t chunk = 0;  // particles per chunk
  std::size_t count = 0;  // number of chunks
};

ChunkPlan plan_chunks(std::size_t n, std::size_t workers) {
  ChunkPlan plan;
  plan.chunk = (n + workers - 1) / workers;
  plan.count = (n + plan.chunk - 1) / plan.chunk;
  return plan;
}

/// Particle ids grouped by owning rank (counting sort), giving each virtual
/// rank's particle list for per-rank kernel execution. The parallel build
/// counts per chunk and merges by prefix sum; chunks are contiguous
/// ascending particle ranges, so the merged fill is bit-identical to the
/// serial counting sort for any worker count.
class RankBuckets {
 public:
  void build(std::span<const Rank> owners, Rank num_ranks, ThreadPool* pool) {
    const std::size_t n = owners.size();
    const auto ranks = static_cast<std::size_t>(num_ranks);
    offsets_.assign(ranks + 1, 0);
    ids_.resize(n);
    if (pool == nullptr || pool->size() <= 1 || n < kMinParallelBuild) {
      for (const Rank r : owners) ++offsets_[static_cast<std::size_t>(r) + 1];
      for (std::size_t r = 1; r < offsets_.size(); ++r)
        offsets_[r] += offsets_[r - 1];
      cursor_.assign(offsets_.begin(), offsets_.end() - 1);
      for (std::size_t i = 0; i < n; ++i)
        ids_[cursor_[static_cast<std::size_t>(owners[i])]++] =
            static_cast<std::uint32_t>(i);
      return;
    }

    const ChunkPlan plan = plan_chunks(n, pool->size());
    chunk_counts_.assign(plan.count * ranks, 0);
    for (std::size_t w = 0; w < plan.count; ++w) {
      const std::size_t begin = w * plan.chunk;
      const std::size_t end = std::min(begin + plan.chunk, n);
      pool->submit([this, owners, ranks, w, begin, end] {
        std::uint32_t* local = chunk_counts_.data() + w * ranks;
        for (std::size_t i = begin; i < end; ++i)
          ++local[static_cast<std::size_t>(owners[i])];
      });
    }
    pool->wait_idle();
    // Global prefix sums over ranks; each (chunk, rank) count becomes that
    // chunk's write cursor.
    for (std::size_t r = 0; r < ranks; ++r) {
      std::uint32_t cursor = offsets_[r];
      for (std::size_t w = 0; w < plan.count; ++w) {
        const std::uint32_t count = chunk_counts_[w * ranks + r];
        chunk_counts_[w * ranks + r] = cursor;
        cursor += count;
      }
      offsets_[r + 1] = cursor;
    }
    for (std::size_t w = 0; w < plan.count; ++w) {
      const std::size_t begin = w * plan.chunk;
      const std::size_t end = std::min(begin + plan.chunk, n);
      pool->submit([this, owners, ranks, w, begin, end] {
        std::uint32_t* cursor = chunk_counts_.data() + w * ranks;
        for (std::size_t i = begin; i < end; ++i)
          ids_[cursor[static_cast<std::size_t>(owners[i])]++] =
              static_cast<std::uint32_t>(i);
      });
    }
    pool->wait_idle();
  }

  std::span<const std::uint32_t> rank_ids(Rank r) const {
    return {ids_.data() + offsets_[static_cast<std::size_t>(r)],
            offsets_[static_cast<std::size_t>(r) + 1] -
                offsets_[static_cast<std::size_t>(r)]};
  }

 private:
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> ids_;
  std::vector<std::uint32_t> cursor_;        // scratch
  std::vector<std::uint32_t> chunk_counts_;  // scratch
};

/// (rank, particle) ghost pairs grouped by rank. Pairs are generated in
/// ascending particle order and grouped with a stable counting sort by rank
/// — O(pairs + R), replacing the former full std::sort while producing the
/// identical (rank, then particle) order. The parallel build runs the ghost
/// search per contiguous chunk and merges the per-chunk pair lists with the
/// same prefix-sum cursors, so output is bit-identical for any worker count.
class GhostLists {
 public:
  void build(std::span<const Vec3> positions, std::span<const Rank> owners,
             const GhostFinder& finder, Rank num_ranks, ThreadPool* pool) {
    const std::size_t n = positions.size();
    const auto ranks = static_cast<std::size_t>(num_ranks);
    offsets_.assign(ranks + 1, 0);
    if (pool == nullptr || pool->size() <= 1 || n < kMinParallelBuild) {
      pair_ranks_.clear();
      pair_ids_.clear();
      std::vector<Rank> scratch;
      for (std::size_t i = 0; i < n; ++i) {
        finder.ranks_near(positions[i], owners[i], scratch);
        for (const Rank r : scratch) {
          pair_ranks_.push_back(r);
          pair_ids_.push_back(static_cast<std::uint32_t>(i));
        }
      }
      for (const Rank r : pair_ranks_)
        ++offsets_[static_cast<std::size_t>(r) + 1];
      for (std::size_t r = 1; r < offsets_.size(); ++r)
        offsets_[r] += offsets_[r - 1];
      ids_.resize(pair_ids_.size());
      cursor_.assign(offsets_.begin(), offsets_.end() - 1);
      for (std::size_t k = 0; k < pair_ids_.size(); ++k)
        ids_[cursor_[static_cast<std::size_t>(pair_ranks_[k])]++] =
            pair_ids_[k];
      return;
    }

    const ChunkPlan plan = plan_chunks(n, pool->size());
    locals_.resize(plan.count);
    for (std::size_t w = 0; w < plan.count; ++w) {
      const std::size_t begin = w * plan.chunk;
      const std::size_t end = std::min(begin + plan.chunk, n);
      pool->submit([this, positions, owners, &finder, ranks, w, begin, end] {
        Local& local = locals_[w];
        local.pair_ranks.clear();
        local.pair_ids.clear();
        local.counts.assign(ranks, 0);
        std::vector<Rank> near;
        for (std::size_t i = begin; i < end; ++i) {
          finder.ranks_near(positions[i], owners[i], near);
          for (const Rank r : near) {
            local.pair_ranks.push_back(r);
            local.pair_ids.push_back(static_cast<std::uint32_t>(i));
            ++local.counts[static_cast<std::size_t>(r)];
          }
        }
      });
    }
    pool->wait_idle();

    cursor_.resize(plan.count * ranks);
    for (std::size_t r = 0; r < ranks; ++r) {
      std::uint32_t cursor = offsets_[r];
      for (std::size_t w = 0; w < plan.count; ++w) {
        cursor_[w * ranks + r] = cursor;
        cursor += locals_[w].counts[r];
      }
      offsets_[r + 1] = cursor;
    }
    ids_.resize(offsets_[ranks]);
    for (std::size_t w = 0; w < plan.count; ++w) {
      pool->submit([this, ranks, w] {
        const Local& local = locals_[w];
        std::uint32_t* cursor = cursor_.data() + w * ranks;
        for (std::size_t k = 0; k < local.pair_ids.size(); ++k)
          ids_[cursor[static_cast<std::size_t>(local.pair_ranks[k])]++] =
              local.pair_ids[k];
      });
    }
    pool->wait_idle();
  }

  std::span<const std::uint32_t> rank_ghosts(Rank r) const {
    return {ids_.data() + offsets_[static_cast<std::size_t>(r)],
            offsets_[static_cast<std::size_t>(r) + 1] -
                offsets_[static_cast<std::size_t>(r)]};
  }

 private:
  struct Local {
    std::vector<Rank> pair_ranks;
    std::vector<std::uint32_t> pair_ids;
    std::vector<std::uint32_t> counts;
  };

  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> ids_;
  std::vector<Rank> pair_ranks_;      // serial-path pair list
  std::vector<std::uint32_t> pair_ids_;
  std::vector<std::uint32_t> cursor_;  // scratch
  std::vector<Local> locals_;          // parallel-path per-chunk pairs
};

}  // namespace

SimDriver::SimDriver(const SimConfig& config)
    : config_(config),
      mesh_(config.domain, config.nelx, config.nely, config.nelz,
            config.points_per_dim),
      partition_(rcb_partition(mesh_, config.num_ranks)) {
  config_.validate();
  if (config_.threads != 1)
    pool_ = std::make_unique<ThreadPool>(config_.threads);
}

SimResult SimDriver::run(const std::string& trace_path,
                         const RunOptions& options) {
  const Stopwatch total_watch;
  SimResult result;
  ThreadPool* const pool = pool_.get();
  const telemetry::ScopedSpan run_span("picsim.run");

  GasModel gas(config_.gas, config_.domain);
  SolverKernels kernels(mesh_, gas, config_.physics);
  GhostFinder finder(mesh_, partition_, config_.filter_size);
  const auto mapper = make_mapper(config_.mapper_kind, mesh_, partition_,
                                  config_.filter_size);

  ParticleStore store;
  init_hele_shaw_bed(store, config_.domain, config_.bed);
  const std::size_t np = store.size();

  // Collision grid sized by the collision cutoff (or a nominal cell when
  // collisions are disabled — then it is never queried).
  const double cell = config_.physics.collision_radius > 0.0
                          ? config_.physics.collision_radius
                          : 0.05 * config_.domain.extent().z;
  CollisionGrid grid(cell);

  // Crash-safety state: where this run starts (non-zero after --resume), the
  // simulated time carried across the restart (stored in the checkpoint as
  // the accumulated double so the resumed trajectory is bit-identical), and
  // the checkpoint path derived from the trace path.
  std::int64_t start_iter = 0;
  double time = 0.0;
  const std::uint64_t fingerprint = sim_config_fingerprint(config_);
  const std::string ckpt_path =
      trace_path.empty() ? std::string() : trace_path + ".ckpt";

  std::unique_ptr<TraceWriter> trace;
  if (options.resume) {
    PICP_REQUIRE(!trace_path.empty(), "--resume requires a trace path");
    SimCheckpoint ckpt = SimCheckpoint::load(ckpt_path);
    if (ckpt.config_fingerprint != fingerprint)
      throw CorruptInputError(
          ckpt_path,
          "checkpoint was written by a different simulation configuration",
          "re-run with the original config, or delete the checkpoint and "
          "restart without --resume");
    PICP_REQUIRE(ckpt.positions.size() == np,
                 "checkpoint particle count disagrees with the bed");
    PICP_REQUIRE(ckpt.next_iteration > 0 &&
                     ckpt.next_iteration < config_.num_iterations,
                 "checkpoint iteration outside this run's range");
    std::copy(ckpt.positions.begin(), ckpt.positions.end(),
              store.positions().begin());
    std::copy(ckpt.velocities.begin(), ckpt.velocities.end(),
              store.velocities().begin());
    start_iter = ckpt.next_iteration;
    time = ckpt.sim_time;
    trace = TraceWriter::resume(trace_path, ckpt.trace_samples,
                                ckpt.trace_bytes);
    PICP_LOG_INFO << "picsim resume: continuing " << trace_path
                  << " at iteration " << start_iter << " ("
                  << ckpt.trace_samples << " samples already on disk)";
  } else if (!trace_path.empty()) {
    trace = std::make_unique<TraceWriter>(
        trace_path, np, static_cast<std::uint64_t>(config_.sample_every),
        config_.domain,
        config_.trace_float64 ? CoordKind::kFloat64 : CoordKind::kFloat32);
  }
  result.start_iteration = start_iter;

  // Double buffers driven through the kernels.
  std::vector<Vec3> gas_at_particles(np);
  std::vector<Vec3> next_velocities(np);
  std::vector<Vec3> next_positions(np);
  std::vector<Vec3> vel_scratch;  // measurement-only
  std::vector<std::uint32_t> all_ids(np);
  std::iota(all_ids.begin(), all_ids.end(), 0u);

  const std::size_t num_samples =
      static_cast<std::size_t>(config_.num_samples());
  result.actual.num_ranks = config_.num_ranks;
  result.actual.comp_real = CompMatrix(config_.num_ranks, num_samples);
  result.actual.comp_ghost = CompMatrix(config_.num_ranks, num_samples);
  result.actual.comm_real = CommMatrix(config_.num_ranks, num_samples);
  result.actual.comm_ghost = CommMatrix(config_.num_ranks, num_samples);

  WorkloadParams acc_params;
  acc_params.ghost_radius = config_.filter_size;

  std::vector<Rank> owners;
  std::vector<Rank> prev_owners;
  RankBuckets buckets;
  GhostLists ghosts;
  ProjectionField proj_field(config_.points_per_dim);
  ProjectionField fluid_field(config_.points_per_dim,
                              config_.measure ? mesh_.num_elements() : 0);
  // Per-rank element lists for the fluid-phase kernel (static partition).
  std::vector<std::vector<ElementId>> rank_elements(
      static_cast<std::size_t>(config_.num_ranks));
  if (config_.measure) {
    const auto& owners_of_elements = partition_.element_owners();
    for (std::size_t e = 0; e < owners_of_elements.size(); ++e)
      rank_elements[static_cast<std::size_t>(owners_of_elements[e])]
          .push_back(static_cast<ElementId>(e));
    result.actual.elements_per_rank = partition_.elements_per_rank();
  } else {
    result.actual.elements_per_rank = partition_.elements_per_rank();
  }
  std::vector<GhostRecord> ghost_out;
  std::vector<MigrantRecord> migrate_out;
  std::vector<std::uint32_t> project_ids;
  TimeAccumulator measure_time;

  const bool collide = config_.physics.collision_radius > 0.0;

  for (std::int64_t iter = start_iter; iter < config_.num_iterations;
       ++iter) {
    if (telemetry::enabled()) {
      static telemetry::Counter& iters =
          telemetry::registry().counter("picsim.iterations");
      iters.add();
    }
    const bool sampling = iter % config_.sample_every == 0;
    if (collide || sampling) {
      const telemetry::ScopedSpan span("picsim.grid_rebuild", "picsim");
      grid.rebuild(store.positions(), pool);
    }

    if (sampling) {
      const auto t = static_cast<std::size_t>(iter / config_.sample_every);
      if (trace) {
        const telemetry::ScopedSpan span("picsim.trace_append", "picsim");
        trace->append(static_cast<std::uint64_t>(iter), store.positions());
      }

      // The application's own mapping pass (bin trees rebuilt, etc.).
      {
        const telemetry::ScopedSpan span("picsim.mapping", "picsim");
        mapper->map(store.positions(), owners);
      }
      result.actual.iterations.push_back(static_cast<std::uint64_t>(iter));
      result.actual.partitions_per_interval.push_back(
          mapper->num_partitions());
      {
        const telemetry::ScopedSpan span("picsim.workload_accounting",
                                         "picsim");
        accumulate_interval_workload(mesh_, partition_, store.positions(),
                                     owners, prev_owners, acc_params, t,
                                     result.actual);
      }

      const bool measure_now =
          config_.measure &&
          (t % static_cast<std::size_t>(config_.measure_every) == 0);
      if (measure_now) {
        const telemetry::ScopedSpan measure_span("picsim.measure", "picsim");
        const ScopedTimer mt(measure_time);
        {
          const telemetry::ScopedSpan span("picsim.rank_buckets", "picsim");
          buckets.build(owners, config_.num_ranks, pool);
        }
        {
          const telemetry::ScopedSpan span("picsim.ghost", "picsim");
          ghosts.build(store.positions(), owners, finder, config_.num_ranks,
                       pool);
        }
        vel_scratch.assign(store.velocities().begin(),
                           store.velocities().end());

        // Fluid phase: measured once per run (its cost depends only on the
        // static element partition), covering every rank — including the
        // particle-idle ones that still carry grid work.
        if (t == 0) {
          for (Rank r = 0; r < config_.num_ranks; ++r) {
            const auto& elements =
                rank_elements[static_cast<std::size_t>(r)];
            if (elements.empty()) continue;
            TimingRecord rec;
            rec.interval = 0;
            rec.rank = r;
            rec.kernel = Kernel::kFluid;
            rec.np = static_cast<double>(buckets.rank_ids(r).size());
            rec.filter = config_.filter_size;
            rec.nel = static_cast<double>(elements.size());
            rec.seconds = measure_adaptive(
                [&] { kernels.fluid_update(elements, time, fluid_field); },
                config_.measure_min_seconds, config_.measure_max_reps);
            result.timings.add(rec);
            fluid_field.clear();
          }
        }

        for (Rank r = 0; r < config_.num_ranks; ++r) {
          const auto ids = buckets.rank_ids(r);
          const auto gids = ghosts.rank_ghosts(r);
          if (ids.empty() && gids.empty()) continue;

          TimingRecord rec;
          rec.interval = static_cast<std::uint32_t>(t);
          rec.rank = r;
          rec.np = static_cast<double>(ids.size());
          rec.ngp = static_cast<double>(gids.size());
          rec.filter = config_.filter_size;
          rec.nel = static_cast<double>(
              rank_elements[static_cast<std::size_t>(r)].size());

          const auto measure = [&](auto&& fn) {
            return measure_adaptive(fn, config_.measure_min_seconds,
                                    config_.measure_max_reps);
          };

          if (!ids.empty()) {
            rec.kernel = Kernel::kInterpolate;
            rec.seconds = measure([&] {
              kernels.interpolate(store.positions(), ids, time,
                                  gas_at_particles);
            });
            result.timings.add(rec);

            rec.kernel = Kernel::kEqSolve;
            rec.seconds = measure([&] {
              kernels.eq_solve(store.velocities(), gas_at_particles, grid,
                               ids, next_velocities);
            });
            result.timings.add(rec);

            rec.kernel = Kernel::kPush;
            rec.seconds = measure([&] {
              kernels.push(store.positions(), vel_scratch, ids,
                           next_positions);
            });
            result.timings.add(rec);

            rec.kernel = Kernel::kCreateGhost;
            rec.seconds = measure([&] {
              kernels.create_ghost(store.positions(), ids, r, finder,
                                   ghost_out);
            });
            result.timings.add(rec);
          }

          // Projection deposits owned + ghost particles onto local grid.
          project_ids.assign(ids.begin(), ids.end());
          project_ids.insert(project_ids.end(), gids.begin(), gids.end());
          if (!project_ids.empty()) {
            const telemetry::ScopedSpan span("picsim.project", "picsim");
            rec.kernel = Kernel::kProject;
            rec.seconds = measure([&] {
              kernels.project(store.positions(), project_ids,
                              config_.filter_size, proj_field);
            });
            result.timings.add(rec);
            proj_field.clear();
          }

          // Migration: unpack side — particles that arrived on r this
          // interval (prev owner differs).
          if (t > 0 && !ids.empty()) {
            rec.kernel = Kernel::kMigrate;
            rec.nmove = static_cast<double>([&] {
              std::size_t movers = 0;
              for (const std::uint32_t i : ids)
                if (prev_owners[i] != owners[i]) ++movers;
              return movers;
            }());
            rec.seconds = measure([&] {
              kernels.migrate(store.positions(), store.velocities(), ids,
                              prev_owners, owners, migrate_out);
            });
            result.timings.add(rec);
          }
        }
      }
      prev_owners = owners;
    }

    // --- Physics step (the PIC solver loop, executed globally) -------------
    // interpolate → eq_solve → push fused per chunk: each phase for particle
    // i reads only shared immutable state (positions, velocities, the
    // collision grid) plus slot i of the buffers written this step, so one
    // chunk's particles never observe another chunk's writes and the result
    // is bit-identical for any thread count.
    const auto physics_chunk = [&](std::size_t begin, std::size_t end) {
      const std::span<const std::uint32_t> ids(all_ids.data() + begin,
                                               end - begin);
      if (telemetry::enabled()) {
        // Phase handles are process-stable; fetch them once per process so
        // the per-chunk cost stays at clock reads + relaxed adds.
        static telemetry::Phase& ph_interp =
            telemetry::phase("picsim.interpolate");
        static telemetry::Phase& ph_eq = telemetry::phase("picsim.eq_solve");
        static telemetry::Phase& ph_push = telemetry::phase("picsim.push");
        {
          const telemetry::ScopedSpan span("picsim.interpolate", ph_interp);
          kernels.interpolate(store.positions(), ids, time, gas_at_particles);
        }
        {
          const telemetry::ScopedSpan span("picsim.eq_solve", ph_eq);
          kernels.eq_solve(store.velocities(), gas_at_particles, grid, ids,
                           next_velocities);
        }
        const telemetry::ScopedSpan span("picsim.push", ph_push);
        kernels.push(store.positions(), next_velocities, ids, next_positions);
      } else {
        kernels.interpolate(store.positions(), ids, time, gas_at_particles);
        kernels.eq_solve(store.velocities(), gas_at_particles, grid, ids,
                         next_velocities);
        kernels.push(store.positions(), next_velocities, ids,
                     next_positions);
      }
    };
    if (pool != nullptr)
      pool->parallel_for(np, kSolverGrain, physics_chunk);
    else
      physics_chunk(0, np);
    store.swap_in(next_positions, next_velocities);
    next_positions.resize(np);
    next_velocities.resize(np);
    time += config_.physics.dt;

    // --- Crash safety ------------------------------------------------------
    const std::int64_t done = iter + 1;
    const bool final_iter = done >= config_.num_iterations;
    if (trace && config_.checkpoint_every > 0 && !final_iter &&
        done % config_.checkpoint_every == 0) {
      const telemetry::ScopedSpan span("picsim.checkpoint", "picsim");
      if (telemetry::enabled()) {
        static telemetry::Counter& ckpts =
            telemetry::registry().counter("picsim.checkpoints");
        ckpts.add();
      }
      trace->sync();  // trace bytes must be durable before the ckpt says so
      SimCheckpoint ckpt;
      ckpt.config_fingerprint = fingerprint;
      ckpt.rng_seed = config_.bed.seed;
      ckpt.next_iteration = done;
      ckpt.sim_time = time;
      ckpt.trace_samples = trace->samples_written();
      ckpt.trace_bytes = trace->bytes_written();
      ckpt.positions.assign(store.positions().begin(),
                            store.positions().end());
      ckpt.velocities.assign(store.velocities().begin(),
                             store.velocities().end());
      ckpt.save(ckpt_path);
    }
    if (options.abort_after_iterations >= 0 && !final_iter &&
        done >= options.abort_after_iterations) {
      result.aborted = true;
      break;
    }
  }

  if (trace) {
    const telemetry::ScopedSpan span("picsim.trace_seal", "picsim");
    if (result.aborted) {
      // Crash drill: leave the unsealed `.part` and the last checkpoint on
      // disk exactly as a kill would; never publish the final trace.
      trace->abandon();
      result.trace_samples = trace->samples_written();
    } else {
      trace->close();
      result.trace_samples = trace->samples_written();
      if (!ckpt_path.empty()) std::remove(ckpt_path.c_str());
    }
  }
  if (telemetry::enabled()) {
    telemetry::registry().counter("picsim.trace_samples")
        .add(result.trace_samples);
    telemetry::registry().gauge("picsim.particles")
        .set(static_cast<double>(np));
    if (pool != nullptr) telemetry::publish_pool_stats(pool->stats());
  }
  result.final_positions.assign(store.positions().begin(),
                                store.positions().end());
  result.final_velocities.assign(store.velocities().begin(),
                                 store.velocities().end());
  result.measure_seconds = measure_time.total_seconds();
  result.wall_seconds = total_watch.seconds();
  PICP_LOG_INFO << "picsim run: " << np << " particles, "
                << config_.num_iterations << " iterations, "
                << result.actual.num_intervals() << " intervals, "
                << threads() << " threads, wall " << result.wall_seconds
                << " s (measure " << result.measure_seconds << " s)";
  return result;
}

}  // namespace picp
