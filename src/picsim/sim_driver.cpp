#include "picsim/sim_driver.hpp"

#include <algorithm>
#include <numeric>

#include "picsim/collision_grid.hpp"
#include "picsim/gas_model.hpp"
#include "trace/trace_writer.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"
#include "workload/ghost_finder.hpp"

namespace picp {

namespace {

/// Particle ids grouped by owning rank (counting sort), giving each virtual
/// rank's particle list for per-rank kernel execution.
class RankBuckets {
 public:
  void build(std::span<const Rank> owners, Rank num_ranks) {
    offsets_.assign(static_cast<std::size_t>(num_ranks) + 1, 0);
    for (const Rank r : owners) ++offsets_[static_cast<std::size_t>(r) + 1];
    for (std::size_t r = 1; r < offsets_.size(); ++r)
      offsets_[r] += offsets_[r - 1];
    ids_.resize(owners.size());
    std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (std::size_t i = 0; i < owners.size(); ++i)
      ids_[cursor[static_cast<std::size_t>(owners[i])]++] =
          static_cast<std::uint32_t>(i);
  }

  std::span<const std::uint32_t> rank_ids(Rank r) const {
    return {ids_.data() + offsets_[static_cast<std::size_t>(r)],
            offsets_[static_cast<std::size_t>(r) + 1] -
                offsets_[static_cast<std::size_t>(r)]};
  }

 private:
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> ids_;
};

/// (rank, particle) ghost pairs grouped by rank.
class GhostLists {
 public:
  void build(std::span<const Vec3> positions, std::span<const Rank> owners,
             const GhostFinder& finder, Rank num_ranks) {
    pairs_.clear();
    std::vector<Rank> scratch;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      finder.ranks_near(positions[i], owners[i], scratch);
      for (const Rank r : scratch)
        pairs_.push_back({r, static_cast<std::uint32_t>(i)});
    }
    std::sort(pairs_.begin(), pairs_.end());
    offsets_.assign(static_cast<std::size_t>(num_ranks) + 1, 0);
    for (const auto& [r, i] : pairs_)
      ++offsets_[static_cast<std::size_t>(r) + 1];
    for (std::size_t r = 1; r < offsets_.size(); ++r)
      offsets_[r] += offsets_[r - 1];
    ids_.resize(pairs_.size());
    for (std::size_t k = 0; k < pairs_.size(); ++k) ids_[k] = pairs_[k].second;
  }

  std::span<const std::uint32_t> rank_ghosts(Rank r) const {
    return {ids_.data() + offsets_[static_cast<std::size_t>(r)],
            offsets_[static_cast<std::size_t>(r) + 1] -
                offsets_[static_cast<std::size_t>(r)]};
  }

 private:
  std::vector<std::pair<Rank, std::uint32_t>> pairs_;
  std::vector<std::size_t> offsets_;
  std::vector<std::uint32_t> ids_;
};

}  // namespace

SimDriver::SimDriver(const SimConfig& config)
    : config_(config),
      mesh_(config.domain, config.nelx, config.nely, config.nelz,
            config.points_per_dim),
      partition_(rcb_partition(mesh_, config.num_ranks)) {
  config_.validate();
}

SimResult SimDriver::run(const std::string& trace_path) {
  const Stopwatch total_watch;
  SimResult result;

  GasModel gas(config_.gas, config_.domain);
  SolverKernels kernels(mesh_, gas, config_.physics);
  GhostFinder finder(mesh_, partition_, config_.filter_size);
  const auto mapper = make_mapper(config_.mapper_kind, mesh_, partition_,
                                  config_.filter_size);

  ParticleStore store;
  init_hele_shaw_bed(store, config_.domain, config_.bed);
  const std::size_t np = store.size();

  // Collision grid sized by the collision cutoff (or a nominal cell when
  // collisions are disabled — then it is never queried).
  const double cell = config_.physics.collision_radius > 0.0
                          ? config_.physics.collision_radius
                          : 0.05 * config_.domain.extent().z;
  CollisionGrid grid(cell);

  std::unique_ptr<TraceWriter> trace;
  if (!trace_path.empty())
    trace = std::make_unique<TraceWriter>(
        trace_path, np, static_cast<std::uint64_t>(config_.sample_every),
        config_.domain,
        config_.trace_float64 ? CoordKind::kFloat64 : CoordKind::kFloat32);

  // Double buffers driven through the kernels.
  std::vector<Vec3> gas_at_particles(np);
  std::vector<Vec3> next_velocities(np);
  std::vector<Vec3> next_positions(np);
  std::vector<Vec3> vel_scratch;  // measurement-only
  std::vector<std::uint32_t> all_ids(np);
  std::iota(all_ids.begin(), all_ids.end(), 0u);

  const std::size_t num_samples =
      static_cast<std::size_t>(config_.num_samples());
  result.actual.num_ranks = config_.num_ranks;
  result.actual.comp_real = CompMatrix(config_.num_ranks, num_samples);
  result.actual.comp_ghost = CompMatrix(config_.num_ranks, num_samples);
  result.actual.comm_real = CommMatrix(config_.num_ranks, num_samples);
  result.actual.comm_ghost = CommMatrix(config_.num_ranks, num_samples);

  WorkloadParams acc_params;
  acc_params.ghost_radius = config_.filter_size;

  std::vector<Rank> owners;
  std::vector<Rank> prev_owners;
  RankBuckets buckets;
  GhostLists ghosts;
  ProjectionField proj_field(config_.points_per_dim);
  ProjectionField fluid_field(config_.points_per_dim);
  // Per-rank element lists for the fluid-phase kernel (static partition).
  std::vector<std::vector<ElementId>> rank_elements(
      static_cast<std::size_t>(config_.num_ranks));
  if (config_.measure) {
    const auto& owners_of_elements = partition_.element_owners();
    for (std::size_t e = 0; e < owners_of_elements.size(); ++e)
      rank_elements[static_cast<std::size_t>(owners_of_elements[e])]
          .push_back(static_cast<ElementId>(e));
    result.actual.elements_per_rank = partition_.elements_per_rank();
  } else {
    result.actual.elements_per_rank = partition_.elements_per_rank();
  }
  std::vector<GhostRecord> ghost_out;
  std::vector<MigrantRecord> migrate_out;
  std::vector<std::uint32_t> project_ids;
  TimeAccumulator measure_time;

  const bool collide = config_.physics.collision_radius > 0.0;
  double time = 0.0;

  for (std::int64_t iter = 0; iter < config_.num_iterations; ++iter) {
    const bool sampling = iter % config_.sample_every == 0;
    if (collide || sampling) grid.rebuild(store.positions());

    if (sampling) {
      const auto t = static_cast<std::size_t>(iter / config_.sample_every);
      if (trace) trace->append(static_cast<std::uint64_t>(iter),
                               store.positions());

      // The application's own mapping pass (bin trees rebuilt, etc.).
      mapper->map(store.positions(), owners);
      result.actual.iterations.push_back(static_cast<std::uint64_t>(iter));
      result.actual.partitions_per_interval.push_back(
          mapper->num_partitions());
      accumulate_interval_workload(mesh_, partition_, store.positions(),
                                   owners, prev_owners, acc_params, t,
                                   result.actual);

      const bool measure_now =
          config_.measure &&
          (t % static_cast<std::size_t>(config_.measure_every) == 0);
      if (measure_now) {
        const ScopedTimer mt(measure_time);
        buckets.build(owners, config_.num_ranks);
        ghosts.build(store.positions(), owners, finder, config_.num_ranks);
        vel_scratch.assign(store.velocities().begin(),
                           store.velocities().end());

        // Fluid phase: measured once per run (its cost depends only on the
        // static element partition), covering every rank — including the
        // particle-idle ones that still carry grid work.
        if (t == 0) {
          for (Rank r = 0; r < config_.num_ranks; ++r) {
            const auto& elements =
                rank_elements[static_cast<std::size_t>(r)];
            if (elements.empty()) continue;
            TimingRecord rec;
            rec.interval = 0;
            rec.rank = r;
            rec.kernel = Kernel::kFluid;
            rec.np = static_cast<double>(buckets.rank_ids(r).size());
            rec.filter = config_.filter_size;
            rec.nel = static_cast<double>(elements.size());
            rec.seconds = measure_adaptive(
                [&] { kernels.fluid_update(elements, time, fluid_field); },
                config_.measure_min_seconds, config_.measure_max_reps);
            result.timings.add(rec);
            fluid_field.clear();
          }
        }

        for (Rank r = 0; r < config_.num_ranks; ++r) {
          const auto ids = buckets.rank_ids(r);
          const auto gids = ghosts.rank_ghosts(r);
          if (ids.empty() && gids.empty()) continue;

          TimingRecord rec;
          rec.interval = static_cast<std::uint32_t>(t);
          rec.rank = r;
          rec.np = static_cast<double>(ids.size());
          rec.ngp = static_cast<double>(gids.size());
          rec.filter = config_.filter_size;
          rec.nel = static_cast<double>(
              rank_elements[static_cast<std::size_t>(r)].size());

          const auto measure = [&](auto&& fn) {
            return measure_adaptive(fn, config_.measure_min_seconds,
                                    config_.measure_max_reps);
          };

          if (!ids.empty()) {
            rec.kernel = Kernel::kInterpolate;
            rec.seconds = measure([&] {
              kernels.interpolate(store.positions(), ids, time,
                                  gas_at_particles);
            });
            result.timings.add(rec);

            rec.kernel = Kernel::kEqSolve;
            rec.seconds = measure([&] {
              kernels.eq_solve(store.velocities(), gas_at_particles, grid,
                               ids, next_velocities);
            });
            result.timings.add(rec);

            rec.kernel = Kernel::kPush;
            rec.seconds = measure([&] {
              kernels.push(store.positions(), vel_scratch, ids,
                           next_positions);
            });
            result.timings.add(rec);

            rec.kernel = Kernel::kCreateGhost;
            rec.seconds = measure([&] {
              kernels.create_ghost(store.positions(), ids, r, finder,
                                   ghost_out);
            });
            result.timings.add(rec);
          }

          // Projection deposits owned + ghost particles onto local grid.
          project_ids.assign(ids.begin(), ids.end());
          project_ids.insert(project_ids.end(), gids.begin(), gids.end());
          if (!project_ids.empty()) {
            rec.kernel = Kernel::kProject;
            rec.seconds = measure([&] {
              kernels.project(store.positions(), project_ids,
                              config_.filter_size, proj_field);
            });
            result.timings.add(rec);
            proj_field.clear();
          }

          // Migration: unpack side — particles that arrived on r this
          // interval (prev owner differs).
          if (t > 0 && !ids.empty()) {
            rec.kernel = Kernel::kMigrate;
            rec.nmove = static_cast<double>([&] {
              std::size_t movers = 0;
              for (const std::uint32_t i : ids)
                if (prev_owners[i] != owners[i]) ++movers;
              return movers;
            }());
            rec.seconds = measure([&] {
              kernels.migrate(store.positions(), store.velocities(), ids,
                              prev_owners, owners, migrate_out);
            });
            result.timings.add(rec);
          }
        }
      }
      prev_owners = owners;
    }

    // --- Physics step (the PIC solver loop, executed globally) -------------
    kernels.interpolate(store.positions(), all_ids, time, gas_at_particles);
    kernels.eq_solve(store.velocities(), gas_at_particles, grid, all_ids,
                     next_velocities);
    kernels.push(store.positions(), next_velocities, all_ids, next_positions);
    store.swap_in(next_positions, next_velocities);
    next_positions.resize(np);
    next_velocities.resize(np);
    time += config_.physics.dt;
  }

  if (trace) {
    trace->close();
    result.trace_samples = trace->samples_written();
  }
  result.measure_seconds = measure_time.total_seconds();
  result.wall_seconds = total_watch.seconds();
  PICP_LOG_INFO << "picsim run: " << np << " particles, "
                << config_.num_iterations << " iterations, "
                << result.actual.num_intervals() << " intervals, wall "
                << result.wall_seconds << " s (measure "
                << result.measure_seconds << " s)";
  return result;
}

}  // namespace picp
