#include "picsim/gas_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace picp {

GasModel::GasModel(const GasParams& params, const Aabb& domain)
    : params_(params) {
  PICP_REQUIRE(params.shock_speed > 0.0, "shock speed must be positive");
  PICP_REQUIRE(params.decay_time > 0.0, "decay time must be positive");
  PICP_REQUIRE(params.front_width > 0.0, "front width must be positive");
  PICP_REQUIRE(params.jet_count >= 1, "need at least one jet lobe");
  PICP_REQUIRE(params.jet_amplitude >= 0.0 && params.jet_amplitude <= 1.0,
               "jet amplitude must be in [0, 1]");
  PICP_REQUIRE(params.expansion_rate >= 0.0, "expansion rate non-negative");
  PICP_REQUIRE(params.expansion_ref > 0.0, "expansion ref must be positive");
  PICP_REQUIRE(domain.valid(), "domain must be valid");
}

double GasModel::amplitude(double t) const {
  return params_.gas_speed * std::exp(-t / params_.decay_time);
}

double GasModel::front_factor(double d, double t) const {
  const double df = params_.front_start + params_.shock_speed * t;
  // Clamped linear ramp over [df - w, df + w]: 1 behind, 0 ahead. A ramp
  // instead of tanh keeps the per-corner field update transcendental-free.
  const double s = (df - d) / params_.front_width;
  return std::clamp(0.5 * (s + 1.0), 0.0, 1.0);
}

Vec3 GasModel::direction(const Vec3& p) const {
  const Vec3 rel = p - params_.center;
  // Azimuthal jet lobes: expansion modulated between (1 - jet_amplitude)
  // and 1.
  double lobes = 1.0;
  const double r_xy = std::sqrt(rel.x * rel.x + rel.y * rel.y);
  if (params_.jet_amplitude > 0.0 && r_xy > 1e-12) {
    const double theta = std::atan2(rel.y, rel.x);
    lobes = 1.0 - params_.jet_amplitude +
            params_.jet_amplitude * 0.5 *
                (1.0 + std::cos(static_cast<double>(params_.jet_count) * theta));
  }
  const double fan = lobes * params_.expansion_rate / params_.expansion_ref;
  return fan * rel + Vec3(0.0, 0.0, params_.lift);
}

}  // namespace picp
