#pragma once

#include <array>
#include <vector>

#include "mesh/spectral_mesh.hpp"
#include "picsim/gas_model.hpp"

namespace picp {

/// Dense per-element table of the gas field's time-independent direction
/// vectors at the 8 element corners. Interpolation gathers corner values and
/// scales them by the time-dependent blast factor inline, so the expensive
/// direction evaluation happens once per element for the whole run (the
/// proxy's analogue of the fluid solver handing the particle solver a grid
/// field).
///
/// The table is built eagerly at construction — one contiguous
/// `std::vector<ElementField>` indexed by ElementId — so `interpolate` is a
/// pure read: no hash lookup per particle and no mutation, which makes
/// concurrent interpolation from many threads safe by construction. Corner
/// evaluations are shared between adjacent elements via the (nelx+1) ×
/// (nely+1) × (nelz+1) corner lattice, so construction costs one gas-field
/// evaluation per lattice point instead of eight per element.
class FieldCache {
 public:
  FieldCache(const SpectralMesh& mesh, const GasModel& gas);

  struct ElementField {
    std::array<Vec3, 8> corner_dir;  // direction at the 8 corners
    std::array<double, 8> corner_d;  // blast-center distance (front factor)
    Aabb bounds;
  };

  /// Corner data for an element (precomputed; plain indexed load).
  const ElementField& element_field(ElementId e) const {
    return fields_[static_cast<std::size_t>(e)];
  }

  /// Gas velocity at point p and time t by trilinear interpolation of the
  /// cached corner directions (the PIC "Interpolation" kernel's gather).
  Vec3 interpolate(const Vec3& p, double t) const;

  std::size_t cached_elements() const { return fields_.size(); }

 private:
  const SpectralMesh* mesh_;
  const GasModel* gas_;
  std::vector<ElementField> fields_;
};

}  // namespace picp
