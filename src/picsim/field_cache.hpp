#pragma once

#include <array>
#include <unordered_map>

#include "mesh/spectral_mesh.hpp"
#include "picsim/gas_model.hpp"

namespace picp {

/// Per-element cache of the gas field's time-independent direction vectors
/// at the 8 element corners. Interpolation gathers corner values and scales
/// them by the time-dependent blast factor inline, so the expensive
/// direction evaluation happens once per element for the whole run (the
/// proxy's analogue of the fluid solver handing the particle solver a grid
/// field).
class FieldCache {
 public:
  FieldCache(const SpectralMesh& mesh, const GasModel& gas);

  struct ElementField {
    std::array<Vec3, 8> corner_dir;  // direction at the 8 corners
    std::array<double, 8> corner_d;  // blast-center distance (front factor)
    Aabb bounds;
  };

  /// Corner data for an element, computed on first access.
  const ElementField& element_field(ElementId e);

  /// Gas velocity at point p and time t by trilinear interpolation of the
  /// cached corner directions (the PIC "Interpolation" kernel's gather).
  Vec3 interpolate(const Vec3& p, double t);

  std::size_t cached_elements() const { return cache_.size(); }

 private:
  const SpectralMesh* mesh_;
  const GasModel* gas_;
  std::unordered_map<ElementId, ElementField> cache_;
};

}  // namespace picp
