#include "picsim/field_cache.hpp"

#include <algorithm>

namespace picp {

FieldCache::FieldCache(const SpectralMesh& mesh, const GasModel& gas)
    : mesh_(&mesh), gas_(&gas) {}

const FieldCache::ElementField& FieldCache::element_field(ElementId e) {
  const auto it = cache_.find(e);
  if (it != cache_.end()) return it->second;
  ElementField field;
  field.bounds = mesh_->element_bounds(e);
  const Vec3& lo = field.bounds.lo;
  const Vec3& hi = field.bounds.hi;
  int corner = 0;
  for (int cz = 0; cz <= 1; ++cz)
    for (int cy = 0; cy <= 1; ++cy)
      for (int cx = 0; cx <= 1; ++cx) {
        const Vec3 point(cx ? hi.x : lo.x, cy ? hi.y : lo.y,
                         cz ? hi.z : lo.z);
        field.corner_dir[static_cast<std::size_t>(corner)] =
            gas_->direction(point);
        field.corner_d[static_cast<std::size_t>(corner)] =
            gas_->front_coord(point);
        ++corner;
      }
  return cache_.emplace(e, field).first->second;
}

Vec3 FieldCache::interpolate(const Vec3& p, double t) {
  const ElementId e = mesh_->element_of(p);
  const ElementField& field = element_field(e);
  const Vec3 ext = field.bounds.extent();
  const double tx =
      std::clamp((p.x - field.bounds.lo.x) / ext.x, 0.0, 1.0);
  const double ty =
      std::clamp((p.y - field.bounds.lo.y) / ext.y, 0.0, 1.0);
  const double tz =
      std::clamp((p.z - field.bounds.lo.z) / ext.z, 0.0, 1.0);
  const double amp = gas_->amplitude(t);

  Vec3 out;
  int corner = 0;
  for (int cz = 0; cz <= 1; ++cz)
    for (int cy = 0; cy <= 1; ++cy)
      for (int cx = 0; cx <= 1; ++cx) {
        const double w = (cx ? tx : 1.0 - tx) * (cy ? ty : 1.0 - ty) *
                         (cz ? tz : 1.0 - tz);
        const auto c = static_cast<std::size_t>(corner);
        const double scale =
            w * amp * gas_->front_factor(field.corner_d[c], t);
        out += scale * field.corner_dir[c];
        ++corner;
      }
  return out;
}

}  // namespace picp
