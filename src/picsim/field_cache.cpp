#include "picsim/field_cache.hpp"

#include <algorithm>

namespace picp {

FieldCache::FieldCache(const SpectralMesh& mesh, const GasModel& gas)
    : mesh_(&mesh), gas_(&gas) {
  // Evaluate the gas field once per corner-lattice point, then gather the
  // 8 corners of every element from the shared lattice.
  const std::int64_t nx = mesh.nelx() + 1;
  const std::int64_t ny = mesh.nely() + 1;
  const std::int64_t nz = mesh.nelz() + 1;
  const Aabb& domain = mesh.domain();
  const Vec3 ext = domain.extent();
  const Vec3 h(ext.x / static_cast<double>(mesh.nelx()),
               ext.y / static_cast<double>(mesh.nely()),
               ext.z / static_cast<double>(mesh.nelz()));

  std::vector<Vec3> lattice_dir(
      static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
      static_cast<std::size_t>(nz));
  std::vector<double> lattice_d(lattice_dir.size());
  const auto lattice_index = [nx, ny](std::int64_t ix, std::int64_t iy,
                                      std::int64_t iz) {
    return static_cast<std::size_t>((iz * ny + iy) * nx + ix);
  };
  for (std::int64_t iz = 0; iz < nz; ++iz)
    for (std::int64_t iy = 0; iy < ny; ++iy)
      for (std::int64_t ix = 0; ix < nx; ++ix) {
        const Vec3 point(domain.lo.x + static_cast<double>(ix) * h.x,
                         domain.lo.y + static_cast<double>(iy) * h.y,
                         domain.lo.z + static_cast<double>(iz) * h.z);
        const std::size_t k = lattice_index(ix, iy, iz);
        lattice_dir[k] = gas.direction(point);
        lattice_d[k] = gas.front_coord(point);
      }

  fields_.resize(static_cast<std::size_t>(mesh.num_elements()));
  for (std::size_t e = 0; e < fields_.size(); ++e) {
    ElementField& field = fields_[e];
    const auto coords = mesh.element_coords(static_cast<ElementId>(e));
    field.bounds = mesh.element_bounds(static_cast<ElementId>(e));
    int corner = 0;
    for (int cz = 0; cz <= 1; ++cz)
      for (int cy = 0; cy <= 1; ++cy)
        for (int cx = 0; cx <= 1; ++cx) {
          const std::size_t k =
              lattice_index(coords[0] + cx, coords[1] + cy, coords[2] + cz);
          field.corner_dir[static_cast<std::size_t>(corner)] = lattice_dir[k];
          field.corner_d[static_cast<std::size_t>(corner)] = lattice_d[k];
          ++corner;
        }
  }
}

Vec3 FieldCache::interpolate(const Vec3& p, double t) const {
  const ElementId e = mesh_->element_of(p);
  const ElementField& field = element_field(e);
  const Vec3 ext = field.bounds.extent();
  const double tx =
      std::clamp((p.x - field.bounds.lo.x) / ext.x, 0.0, 1.0);
  const double ty =
      std::clamp((p.y - field.bounds.lo.y) / ext.y, 0.0, 1.0);
  const double tz =
      std::clamp((p.z - field.bounds.lo.z) / ext.z, 0.0, 1.0);
  const double amp = gas_->amplitude(t);

  Vec3 out;
  int corner = 0;
  for (int cz = 0; cz <= 1; ++cz)
    for (int cy = 0; cy <= 1; ++cy)
      for (int cx = 0; cx <= 1; ++cx) {
        const double w = (cx ? tx : 1.0 - tx) * (cy ? ty : 1.0 - ty) *
                         (cz ? tz : 1.0 - tz);
        const auto c = static_cast<std::size_t>(corner);
        const double scale =
            w * amp * gas_->front_factor(field.corner_d[c], t);
        out += scale * field.corner_dir[c];
        ++corner;
      }
  return out;
}

}  // namespace picp
