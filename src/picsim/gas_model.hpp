#pragma once

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"

namespace picp {

/// Parameters of the analytic airblast gas field that stands in for the
/// Hele-Shaw case study's compressible flow solve (see DESIGN.md —
/// substitutions). A charge below the particle bed bursts at t = 0; a
/// spherical blast front sweeps up through the bed, and the gas behind it
/// carries two components with exponentially decaying amplitude:
///
///   * a uniform axial carry (`lift`) that advects the whole bed up the
///     cylinder — this drives element crossings and migration traffic;
///   * a self-similar radial expansion fan (velocity proportional to the
///     distance from the blast center, scaled by `expansion_rate`) — this
///     grows the particle boundary monotonically while keeping the cloud's
///     density near-uniform, the regime in which the paper's bin counts
///     (Figs 5/6) behave as reported.
///
/// An azimuthal lobe pattern modulates the expansion, reproducing the
/// particle jetting Koneru et al. observe in this configuration.
struct GasParams {
  /// Blast center (below the bed, slightly outside the domain).
  Vec3 center{0.5, 0.5, -0.12};
  /// Blast front speed (domain units per time unit).
  double shock_speed = 2.0;
  /// Peak gas speed immediately after the burst.
  double gas_speed = 0.6;
  /// e-folding time of the blast.
  double decay_time = 0.3;
  /// Thickness of the smoothed front.
  double front_width = 0.05;
  /// Front starts this far from the center at t = 0.
  double front_start = 0.0;
  /// Axial carry weight (fraction of gas_speed pushing straight up).
  double lift = 1.0;
  /// Expansion-fan weight: radial speed = gas_speed * expansion_rate *
  /// (distance / expansion_ref).
  double expansion_rate = 0.8;
  /// Reference distance for the expansion fan.
  double expansion_ref = 0.25;
  /// Azimuthal modulation depth of the expansion in [0, 1].
  double jet_amplitude = 0.35;
  /// Number of azimuthal jet lobes.
  int jet_count = 6;
};

/// Analytic gas velocity field. Factorizes as
///   u(p, t) = amplitude(t) * front_factor(front_coord(p), t) * direction(p)
/// where `direction` (radial unit vector scaled by the jet-lobe pattern) and
/// `front_coord` (distance from the blast center) are time-independent —
/// that lets the field cache evaluate the expensive part once per grid
/// corner for the whole run.
class GasModel {
 public:
  GasModel(const GasParams& params, const Aabb& domain);

  const GasParams& params() const { return params_; }

  /// Gas velocity at point p and time t.
  Vec3 velocity(const Vec3& p, double t) const {
    const double a = amplitude(t) * front_factor(front_coord(p), t);
    return a == 0.0 ? Vec3() : a * direction(p);
  }

  /// Time-independent direction field: unit vector away from the blast
  /// center, scaled by the azimuthal jet-lobe factor (the transcendentals
  /// live here).
  Vec3 direction(const Vec3& p) const;

  /// Distance from the blast center — the coordinate the front travels in.
  double front_coord(const Vec3& p) const { return (p - params_.center).norm(); }

  /// Blast amplitude factor at time t (exponential decay).
  double amplitude(double t) const;

  /// Front profile in [0, 1]: 1 well behind the front (d << front position),
  /// 0 ahead of it. Transcendental-free (clamped ramp) — evaluated per grid
  /// corner per step.
  double front_factor(double d, double t) const;

 private:
  GasParams params_;
};

}  // namespace picp
