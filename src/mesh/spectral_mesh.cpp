#include "mesh/spectral_mesh.hpp"

#include "util/error.hpp"

namespace picp {

SpectralMesh::SpectralMesh(const Aabb& domain, std::int64_t nelx,
                           std::int64_t nely, std::int64_t nelz,
                           int points_per_dim)
    : indexer_(domain, nelx, nely, nelz), n_(points_per_dim) {
  PICP_REQUIRE(points_per_dim >= 2, "spectral element needs N >= 2");
}

}  // namespace picp
