#include "mesh/partition.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace picp {

MeshPartition::MeshPartition(Rank num_ranks, std::vector<Rank> element_owner,
                             const SpectralMesh& mesh)
    : num_ranks_(num_ranks),
      element_owner_(std::move(element_owner)),
      elements_per_rank_(static_cast<std::size_t>(num_ranks), 0),
      rank_bounds_(static_cast<std::size_t>(num_ranks)) {
  PICP_REQUIRE(num_ranks > 0, "partition needs at least one rank");
  PICP_REQUIRE(static_cast<std::int64_t>(element_owner_.size()) ==
                   mesh.num_elements(),
               "owner array size must match element count");
  for (std::size_t e = 0; e < element_owner_.size(); ++e) {
    const Rank r = element_owner_[e];
    PICP_REQUIRE(r >= 0 && r < num_ranks, "element owner out of range");
    ++elements_per_rank_[static_cast<std::size_t>(r)];
    rank_bounds_[static_cast<std::size_t>(r)].expand(
        mesh.element_bounds(static_cast<ElementId>(e)));
  }
}

std::int64_t MeshPartition::max_elements_per_rank() const {
  return *std::max_element(elements_per_rank_.begin(),
                           elements_per_rank_.end());
}

std::int64_t MeshPartition::min_elements_per_rank() const {
  return *std::min_element(elements_per_rank_.begin(),
                           elements_per_rank_.end());
}

namespace {

struct RcbContext {
  const SpectralMesh& mesh;
  std::vector<Rank>& owner;
  std::vector<ElementId>& ids;  // permuted in place during recursion
};

// Assign elements ids[begin, end) to ranks [r0, r1).
void rcb_recurse(RcbContext& ctx, std::size_t begin, std::size_t end, Rank r0,
                 Rank r1) {
  if (r1 - r0 == 1) {
    for (std::size_t i = begin; i < end; ++i)
      ctx.owner[static_cast<std::size_t>(ctx.ids[i])] = r0;
    return;
  }
  // Bounding box of this subset's element centers.
  Aabb box;
  for (std::size_t i = begin; i < end; ++i)
    box.expand(ctx.mesh.element_center(ctx.ids[i]));
  const int axis = box.valid() ? box.longest_axis() : 0;

  const Rank ranks = r1 - r0;
  const Rank left_ranks = ranks / 2;
  const std::size_t count = end - begin;
  // Elements proportional to the rank split, so odd rank counts stay balanced.
  std::size_t left_count = count * static_cast<std::size_t>(left_ranks) /
                           static_cast<std::size_t>(ranks);
  left_count = std::min(left_count, count);

  const auto mid = ctx.ids.begin() + static_cast<std::ptrdiff_t>(begin) +
                   static_cast<std::ptrdiff_t>(left_count);
  std::nth_element(
      ctx.ids.begin() + static_cast<std::ptrdiff_t>(begin), mid,
      ctx.ids.begin() + static_cast<std::ptrdiff_t>(end),
      [&ctx, axis](ElementId a, ElementId b) {
        const double ca = ctx.mesh.element_center(a)[axis];
        const double cb = ctx.mesh.element_center(b)[axis];
        if (ca != cb) return ca < cb;
        return a < b;  // deterministic tie-break
      });

  rcb_recurse(ctx, begin, begin + left_count, r0, r0 + left_ranks);
  rcb_recurse(ctx, begin + left_count, end, r0 + left_ranks, r1);
}

}  // namespace

namespace {

struct WeightedRcbContext {
  const SpectralMesh& mesh;
  std::span<const double> weights;
  std::vector<Rank>& owner;
  std::vector<ElementId>& ids;
};

// Assign elements ids[begin, end) to ranks [r0, r1), splitting weight
// proportionally to the rank split.
void weighted_rcb_recurse(WeightedRcbContext& ctx, std::size_t begin,
                          std::size_t end, Rank r0, Rank r1) {
  if (begin == end) return;  // more ranks than elements in this subtree
  if (r1 - r0 == 1) {
    for (std::size_t i = begin; i < end; ++i)
      ctx.owner[static_cast<std::size_t>(ctx.ids[i])] = r0;
    return;
  }
  if (end - begin == 1) {  // single element: the subtree's first rank owns it
    ctx.owner[static_cast<std::size_t>(ctx.ids[begin])] = r0;
    return;
  }
  Aabb box;
  for (std::size_t i = begin; i < end; ++i)
    box.expand(ctx.mesh.element_center(ctx.ids[i]));
  const int axis = box.valid() ? box.longest_axis() : 0;

  std::sort(ctx.ids.begin() + static_cast<std::ptrdiff_t>(begin),
            ctx.ids.begin() + static_cast<std::ptrdiff_t>(end),
            [&ctx, axis](ElementId a, ElementId b) {
              const double ca = ctx.mesh.element_center(a)[axis];
              const double cb = ctx.mesh.element_center(b)[axis];
              if (ca != cb) return ca < cb;
              return a < b;
            });

  const Rank ranks = r1 - r0;
  const Rank left_ranks = ranks / 2;
  double total = 0.0;
  for (std::size_t i = begin; i < end; ++i)
    total += ctx.weights[static_cast<std::size_t>(ctx.ids[i])];
  const double target = total * static_cast<double>(left_ranks) /
                        static_cast<double>(ranks);

  // Walk the sorted elements until the left side holds the target weight;
  // keep at least one element per side.
  std::size_t split = begin;
  double acc = 0.0;
  while (split < end && acc < target) {
    acc += ctx.weights[static_cast<std::size_t>(ctx.ids[split])];
    ++split;
  }
  split = std::clamp(split, begin + 1, end - 1);

  weighted_rcb_recurse(ctx, begin, split, r0, r0 + left_ranks);
  weighted_rcb_recurse(ctx, split, end, r0 + left_ranks, r1);
}

}  // namespace

MeshPartition weighted_rcb_partition(const SpectralMesh& mesh, Rank num_ranks,
                                     std::span<const double> weights) {
  PICP_REQUIRE(num_ranks > 0, "weighted_rcb_partition needs ranks");
  PICP_REQUIRE(static_cast<std::int64_t>(weights.size()) ==
                   mesh.num_elements(),
               "one weight per element required");
  double total = 0.0;
  for (const double w : weights) {
    PICP_REQUIRE(w >= 0.0, "element weights must be non-negative");
    total += w;
  }
  if (total == 0.0) return rcb_partition(mesh, num_ranks);

  const auto nel = static_cast<std::size_t>(mesh.num_elements());
  std::vector<Rank> owner(nel, kInvalidRank);
  std::vector<ElementId> ids(nel);
  std::iota(ids.begin(), ids.end(), ElementId{0});
  WeightedRcbContext ctx{mesh, weights, owner, ids};
  weighted_rcb_recurse(ctx, 0, nel, 0, num_ranks);
  return MeshPartition(num_ranks, std::move(owner), mesh);
}

MeshPartition rcb_partition(const SpectralMesh& mesh, Rank num_ranks) {
  PICP_REQUIRE(num_ranks > 0, "rcb_partition needs at least one rank");
  const auto nel = static_cast<std::size_t>(mesh.num_elements());
  std::vector<Rank> owner(nel, kInvalidRank);
  std::vector<ElementId> ids(nel);
  std::iota(ids.begin(), ids.end(), ElementId{0});
  RcbContext ctx{mesh, owner, ids};
  rcb_recurse(ctx, 0, nel, 0, num_ranks);
  return MeshPartition(num_ranks, std::move(owner), mesh);
}

MeshPartition block_partition(const SpectralMesh& mesh, Rank num_ranks) {
  PICP_REQUIRE(num_ranks > 0, "block_partition needs at least one rank");
  const std::int64_t nel = mesh.num_elements();
  std::vector<Rank> owner(static_cast<std::size_t>(nel));
  for (std::int64_t e = 0; e < nel; ++e) {
    // Balanced contiguous chunks: first (nel % R) ranks get one extra.
    const std::int64_t r = e * num_ranks / nel;
    owner[static_cast<std::size_t>(e)] = static_cast<Rank>(r);
  }
  return MeshPartition(num_ranks, std::move(owner), mesh);
}

}  // namespace picp
