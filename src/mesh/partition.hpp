#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/aabb.hpp"
#include "mesh/spectral_mesh.hpp"

namespace picp {

using Rank = std::int32_t;
constexpr Rank kInvalidRank = -1;

/// Assignment of spectral elements to processors, produced by the recursive
/// coordinate bisection partitioner (CMT-nek distributes elements with a
/// recursive-bisection algorithm [Hsieh et al.] to minimize grid exchange).
class MeshPartition {
 public:
  MeshPartition(Rank num_ranks, std::vector<Rank> element_owner,
                const SpectralMesh& mesh);

  Rank num_ranks() const { return num_ranks_; }

  Rank owner_of(ElementId e) const {
    return element_owner_[static_cast<std::size_t>(e)];
  }

  const std::vector<Rank>& element_owners() const { return element_owner_; }

  /// Number of elements owned by each rank.
  const std::vector<std::int64_t>& elements_per_rank() const {
    return elements_per_rank_;
  }

  /// Bounding box of the elements owned by a rank (tight union). For RCB on
  /// a structured mesh these regions are near-rectangular; the bounding box
  /// is what the ghost-particle search consults.
  const Aabb& rank_bounds(Rank r) const {
    return rank_bounds_[static_cast<std::size_t>(r)];
  }
  const std::vector<Aabb>& all_rank_bounds() const { return rank_bounds_; }

  /// Largest / smallest per-rank element count (load-balance diagnostics).
  std::int64_t max_elements_per_rank() const;
  std::int64_t min_elements_per_rank() const;

 private:
  Rank num_ranks_;
  std::vector<Rank> element_owner_;
  std::vector<std::int64_t> elements_per_rank_;
  std::vector<Aabb> rank_bounds_;
};

/// Recursive coordinate bisection of the mesh's elements across `num_ranks`
/// processors. Splits the longest axis of the current element subset's
/// bounding box at the element that divides the count proportionally to the
/// rank split (supports non-power-of-two rank counts such as the paper's
/// 1044). Deterministic.
MeshPartition rcb_partition(const SpectralMesh& mesh, Rank num_ranks);

/// Weighted recursive coordinate bisection: like rcb_partition, but splits
/// so each side receives element *weight* proportional to its rank share
/// (weights = grid work + particle load, after Zhai et al.'s load-balanced
/// partitioning). `weights` must have one non-negative entry per element;
/// all-zero weights fall back to counting elements.
MeshPartition weighted_rcb_partition(const SpectralMesh& mesh, Rank num_ranks,
                                     std::span<const double> weights);

/// Simple lexicographic block partition (elements in x-fastest order split
/// into R contiguous chunks). Used as a baseline and in tests.
MeshPartition block_partition(const SpectralMesh& mesh, Rank num_ranks);

}  // namespace picp
