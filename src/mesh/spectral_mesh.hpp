#pragma once

#include <cstdint>

#include "geom/aabb.hpp"
#include "geom/grid_indexer.hpp"
#include "geom/vec3.hpp"

namespace picp {

using ElementId = std::int64_t;

/// Structured spectral-element mesh: the domain is divided into
/// nelx × nely × nelz hexahedral elements, each carrying an N × N × N tensor
/// grid of Gauss-Lobatto-style points (uniformly spaced here; the point
/// placement does not affect workload accounting, only the fluid kernel's
/// arithmetic intensity, which scales as N^3 either way).
///
/// This mirrors the Nek5000/CMT-nek discretization the paper builds on: the
/// fluid workload per processor is (elements per rank) × N^3 grid points.
class SpectralMesh {
 public:
  SpectralMesh(const Aabb& domain, std::int64_t nelx, std::int64_t nely,
               std::int64_t nelz, int points_per_dim);

  const Aabb& domain() const { return indexer_.domain(); }
  std::int64_t nelx() const { return indexer_.nx(); }
  std::int64_t nely() const { return indexer_.ny(); }
  std::int64_t nelz() const { return indexer_.nz(); }
  std::int64_t num_elements() const { return indexer_.cell_count(); }

  /// Grid points per dimension within an element (the paper's N).
  int points_per_dim() const { return n_; }
  std::int64_t points_per_element() const {
    return static_cast<std::int64_t>(n_) * n_ * n_;
  }
  std::int64_t total_grid_points() const {
    return num_elements() * points_per_element();
  }

  /// Element containing a point (points outside the domain clamp to the
  /// nearest boundary element, matching CMT-nek's outflow handling where
  /// escaped particles are associated with the boundary element until
  /// removed).
  ElementId element_of(const Vec3& p) const { return indexer_.flat_cell_of(p); }

  Aabb element_bounds(ElementId e) const { return indexer_.cell_bounds(e); }
  Vec3 element_center(ElementId e) const {
    return indexer_.cell_bounds(e).center();
  }
  std::array<std::int64_t, 3> element_coords(ElementId e) const {
    return indexer_.unflatten(e);
  }
  ElementId element_at(std::int64_t ix, std::int64_t iy,
                       std::int64_t iz) const {
    return indexer_.flat_index(ix, iy, iz);
  }

  const Vec3& element_size() const { return indexer_.cell_size(); }
  const GridIndexer& indexer() const { return indexer_; }

 private:
  GridIndexer indexer_;
  int n_;
};

}  // namespace picp
