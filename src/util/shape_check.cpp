#include "util/shape_check.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace picp::shape {

namespace {

std::string fmt(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

std::string preview(std::span<const double> values, std::size_t max_items) {
  std::ostringstream out;
  out << "[";
  if (values.size() <= max_items) {
    for (std::size_t i = 0; i < values.size(); ++i)
      out << (i == 0 ? "" : ", ") << values[i];
  } else {
    const std::size_t head = max_items - max_items / 2;
    const std::size_t tail = max_items - head;
    for (std::size_t i = 0; i < head; ++i)
      out << (i == 0 ? "" : ", ") << values[i];
    out << ", ...";
    for (std::size_t i = values.size() - tail; i < values.size(); ++i)
      out << ", " << values[i];
  }
  out << "] (n=" << values.size() << ")";
  return out.str();
}

ShapeResult monotone_increasing(std::span<const double> values,
                                double rel_slack) {
  ShapeResult result;
  double running_max = values.empty() ? 0.0 : values.front();
  for (std::size_t i = 1; i < values.size(); ++i) {
    const double allowed = running_max - rel_slack * std::abs(running_max);
    if (values[i] < allowed) {
      result.pass = false;
      result.detail = "claimed monotone increasing (rel slack " +
                      fmt(rel_slack) + ") but value[" + std::to_string(i) +
                      "] = " + fmt(values[i]) + " drops below running max " +
                      fmt(running_max) + "; measured " + preview(values);
      return result;
    }
    running_max = std::max(running_max, values[i]);
  }
  result.pass = true;
  result.detail = "monotone increasing (rel slack " + fmt(rel_slack) +
                  "): measured " + preview(values);
  return result;
}

ShapeResult monotone_decreasing(std::span<const double> values,
                                double rel_slack) {
  ShapeResult result;
  double running_min = values.empty() ? 0.0 : values.front();
  for (std::size_t i = 1; i < values.size(); ++i) {
    const double allowed = running_min + rel_slack * std::abs(running_min);
    if (values[i] > allowed) {
      result.pass = false;
      result.detail = "claimed monotone decreasing (rel slack " +
                      fmt(rel_slack) + ") but value[" + std::to_string(i) +
                      "] = " + fmt(values[i]) + " rises above running min " +
                      fmt(running_min) + "; measured " + preview(values);
      return result;
    }
    running_min = std::min(running_min, values[i]);
  }
  result.pass = true;
  result.detail = "monotone decreasing (rel slack " + fmt(rel_slack) +
                  "): measured " + preview(values);
  return result;
}

std::size_t plateau_prefix_length(std::span<const double> values,
                                  double rel_tol) {
  if (values.empty()) return 0;
  const double base = values.front();
  const double band = rel_tol * std::abs(base);
  std::size_t length = 1;
  while (length < values.size() &&
         std::abs(values[length] - base) <= band)
    ++length;
  return length;
}

ShapeResult plateau_prefix(std::span<const double> values, double rel_tol,
                           std::size_t min_length) {
  const std::size_t length = plateau_prefix_length(values, rel_tol);
  ShapeResult result;
  result.pass = length >= min_length;
  result.detail = "claimed a plateau of >= " + std::to_string(min_length) +
                  " leading intervals (rel tol " + fmt(rel_tol) +
                  "); measured plateau length " + std::to_string(length) +
                  " in " + preview(values);
  return result;
}

double orders_of_magnitude(double large, double small) {
  if (large <= 0.0 || small <= 0.0) return 0.0;
  return std::log10(large / small);
}

ShapeResult order_separation(double large, double small, double min_orders) {
  const double orders = orders_of_magnitude(large, small);
  ShapeResult result;
  result.pass = orders >= min_orders;
  result.detail = "claimed >= " + fmt(min_orders) +
                  " orders of magnitude separation; measured " + fmt(large) +
                  " vs " + fmt(small) + " = " + fmt(orders) + " orders";
  return result;
}

ShapeResult below_threshold(double value, double limit,
                            const std::string& what) {
  ShapeResult result;
  result.pass = value <= limit;
  result.detail = what + ": claimed <= " + fmt(limit) + ", measured " +
                  fmt(value);
  return result;
}

ShapeResult above_threshold(double value, double limit,
                            const std::string& what) {
  ShapeResult result;
  result.pass = value >= limit;
  result.detail = what + ": claimed >= " + fmt(limit) + ", measured " +
                  fmt(value);
  return result;
}

ShapeResult within_factor(double value, double reference, double max_factor,
                          const std::string& what) {
  ShapeResult result;
  const bool positive = value > 0.0 && reference > 0.0 && max_factor >= 1.0;
  result.pass = positive && value <= reference * max_factor &&
                value >= reference / max_factor;
  result.detail = what + ": claimed within " + fmt(max_factor) +
                  "x of " + fmt(reference) + ", measured " + fmt(value);
  return result;
}

ShapeResult span_ratio_at_least(std::span<const double> values,
                                double min_ratio, const std::string& what) {
  ShapeResult result;
  if (values.size() < 2 || values.front() <= 0.0) {
    result.pass = false;
    result.detail = what + ": claimed last/first >= " + fmt(min_ratio) +
                    " but series unusable: " + preview(values);
    return result;
  }
  const double ratio = values.back() / values.front();
  result.pass = ratio >= min_ratio;
  result.detail = what + ": claimed last/first >= " + fmt(min_ratio) +
                  ", measured " + fmt(ratio) + " from " + preview(values);
  return result;
}

std::vector<double> to_doubles(std::span<const std::int64_t> values) {
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    out[i] = static_cast<double>(values[i]);
  return out;
}

}  // namespace picp::shape
