#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace picp {

namespace {

std::string errno_text() { return std::strerror(errno); }

bool transient(int err) { return err == EINTR || err == EAGAIN; }

int open_retry(const char* path, int flags, mode_t mode, int max_retries) {
  int retries = 0;
  while (true) {
    const int fd = ::open(path, flags, mode);
    if (fd >= 0) return fd;
    if (!transient(errno) || retries++ >= max_retries) return -1;
  }
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

AtomicFile::AtomicFile(std::string final_path, AtomicFileOptions options)
    : final_path_(std::move(final_path)),
      temp_path_(final_path_ + options.suffix),
      options_(std::move(options)) {
  PICP_REQUIRE(!final_path_.empty(), "AtomicFile needs a path");
  fd_ = open_retry(temp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644,
                   options_.max_retries);
  PICP_ENSURE(fd_ >= 0,
              "cannot create temp file " + temp_path_ + ": " + errno_text());
}

AtomicFile::AtomicFile(ReopenTag, std::string final_path,
                       std::uint64_t keep_bytes, AtomicFileOptions options)
    : final_path_(std::move(final_path)),
      temp_path_(final_path_ + options.suffix),
      options_(std::move(options)) {
  fd_ = open_retry(temp_path_.c_str(), O_WRONLY, 0644, options_.max_retries);
  PICP_ENSURE(fd_ >= 0,
              "cannot reopen temp file " + temp_path_ + ": " + errno_text());
  if (::ftruncate(fd_, static_cast<off_t>(keep_bytes)) != 0) {
    const std::string err = errno_text();
    ::close(fd_);
    fd_ = -1;
    PICP_ENSURE(false, "cannot truncate " + temp_path_ + ": " + err);
  }
  if (::lseek(fd_, static_cast<off_t>(keep_bytes), SEEK_SET) < 0) {
    const std::string err = errno_text();
    ::close(fd_);
    fd_ = -1;
    PICP_ENSURE(false, "cannot seek " + temp_path_ + ": " + err);
  }
  offset_ = keep_bytes;
}

std::unique_ptr<AtomicFile> AtomicFile::reopen(std::string final_path,
                                               std::uint64_t keep_bytes,
                                               AtomicFileOptions options) {
  return std::unique_ptr<AtomicFile>(new AtomicFile(
      ReopenTag{}, std::move(final_path), keep_bytes, std::move(options)));
}

AtomicFile::~AtomicFile() {
  if (!committed_) abort();
}

void AtomicFile::write_fully(int fd, std::uint64_t offset, const void* data,
                             std::size_t size) {
  const auto* bytes = static_cast<const char*>(data);
  if (failpoint::any_armed()) {
    if (const auto action = failpoint::fire("atomicfile.write")) {
      // partial_write: land only the first N bytes on disk (a real pwrite,
      // so the torn state is genuinely there), then fail the call — the
      // ENOSPC-mid-write shape AtomicFile must never publish.
      if (action->kind == failpoint::ActionKind::kPartialWrite) {
        const std::size_t keep = std::min(action->partial_bytes, size);
        std::size_t landed = 0;
        while (landed < keep) {
          const ssize_t n = ::pwrite(fd, bytes + landed, keep - landed,
                                     static_cast<off_t>(offset + landed));
          if (n <= 0) break;
          landed += static_cast<std::size_t>(n);
        }
        throw Error("failpoint atomicfile.write: injected short write (" +
                    std::to_string(landed) + "/" + std::to_string(size) +
                    " bytes)");
      }
      failpoint::apply(*action, "atomicfile.write");
    }
  }
  int retries = 0;
  while (size > 0) {
    const ssize_t n = ::pwrite(fd, bytes, size, static_cast<off_t>(offset));
    if (n > 0) {
      bytes += n;
      offset += static_cast<std::uint64_t>(n);
      size -= static_cast<std::size_t>(n);
      retries = 0;
      continue;
    }
    const bool retryable = n < 0 && transient(errno);
    PICP_ENSURE(retryable && retries++ < options_.max_retries,
                "write to " + temp_path_ + " failed after " +
                    std::to_string(retries) + " retries: " + errno_text());
  }
}

void AtomicFile::write(const void* data, std::size_t size) {
  PICP_REQUIRE(fd_ >= 0 && !committed_, "write on closed AtomicFile");
  write_fully(fd_, offset_, data, size);
  offset_ += size;
}

void AtomicFile::write_at(std::uint64_t offset, const void* data,
                          std::size_t size) {
  PICP_REQUIRE(fd_ >= 0 && !committed_, "write_at on closed AtomicFile");
  write_fully(fd_, offset, data, size);
}

void AtomicFile::sync() {
  PICP_REQUIRE(fd_ >= 0 && !committed_, "sync on closed AtomicFile");
  PICP_ENSURE(::fdatasync(fd_) == 0,
              "fdatasync " + temp_path_ + " failed: " + errno_text());
}

void AtomicFile::commit() {
  PICP_REQUIRE(fd_ >= 0 && !committed_, "commit on closed AtomicFile");
  // Fires before the rename: an injected crash here leaves only the temp
  // file, which crash-consistency tests expect readers to never observe.
  failpoint::inject("atomicfile.commit");
  sync();
  const int close_rc = ::close(fd_);
  fd_ = -1;
  PICP_ENSURE(close_rc == 0,
              "close " + temp_path_ + " failed: " + errno_text());
  PICP_ENSURE(::rename(temp_path_.c_str(), final_path_.c_str()) == 0,
              "rename " + temp_path_ + " -> " + final_path_ +
                  " failed: " + errno_text());
  committed_ = true;
  // Make the rename itself durable: fsync the containing directory.
  const std::string dir = parent_dir(final_path_);
  const int dir_fd =
      open_retry(dir.c_str(), O_RDONLY | O_DIRECTORY, 0, options_.max_retries);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

void AtomicFile::abort() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!committed_ && !options_.keep_on_abort)
    ::unlink(temp_path_.c_str());
}

void atomic_write_file(const std::string& path, const void* data,
                       std::size_t size) {
  AtomicFile file(path);
  file.write(data, size);
  file.commit();
}

}  // namespace picp
