#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace picp {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_emit_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

double elapsed_seconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

LogLevel parse_log_level(const std::string& name) {
  const std::string lower = to_lower(trim(name));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  throw Error("unknown log level: " + name);
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  if (level < log_level() || level == LogLevel::kOff) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%9.3f %s] %s\n", elapsed_seconds(), level_tag(level),
               message.c_str());
}
}  // namespace detail

}  // namespace picp
