#pragma once

#include <stdexcept>
#include <string>

namespace picp {

/// Exception type thrown by all picpredict precondition / invariant checks.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& msg) {
  std::string full = std::string(kind) + " failed: " + expr + " at " + file +
                     ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw Error(full);
}
}  // namespace detail

}  // namespace picp

/// Precondition check on public API arguments; throws picp::Error on failure.
#define PICP_REQUIRE(expr, msg)                                          \
  do {                                                                   \
    if (!(expr))                                                         \
      ::picp::detail::fail("precondition", #expr, __FILE__, __LINE__,    \
                           (msg));                                       \
  } while (false)

/// Internal invariant check; throws picp::Error on failure.
#define PICP_ENSURE(expr, msg)                                           \
  do {                                                                   \
    if (!(expr))                                                         \
      ::picp::detail::fail("invariant", #expr, __FILE__, __LINE__,       \
                           (msg));                                       \
  } while (false)
