#pragma once

#include <stdexcept>
#include <string>

namespace picp {

/// Exception type thrown by all picpredict precondition / invariant checks.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A user-supplied on-disk artifact (trace, checkpoint, CSV, model file)
/// failed integrity or plausibility checks. Carries the offending path and
/// an optional remedy hint so front ends can tell the user what to run
/// next instead of just echoing a parse failure.
class CorruptInputError : public Error {
 public:
  CorruptInputError(std::string path, const std::string& detail,
                    std::string hint = "")
      : Error(compose(path, detail, hint)),
        path_(std::move(path)),
        hint_(std::move(hint)) {}

  const std::string& input_path() const { return path_; }
  const std::string& hint() const { return hint_; }

 private:
  static std::string compose(const std::string& path,
                             const std::string& detail,
                             const std::string& hint) {
    std::string full = "corrupt input " + path + ": " + detail;
    if (!hint.empty()) full += "\n  hint: " + hint;
    return full;
  }

  std::string path_;
  std::string hint_;
};

namespace detail {
[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& msg) {
  std::string full = std::string(kind) + " failed: " + expr + " at " + file +
                     ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw Error(full);
}
}  // namespace detail

}  // namespace picp

/// Precondition check on public API arguments; throws picp::Error on failure.
#define PICP_REQUIRE(expr, msg)                                          \
  do {                                                                   \
    if (!(expr))                                                         \
      ::picp::detail::fail("precondition", #expr, __FILE__, __LINE__,    \
                           (msg));                                       \
  } while (false)

/// Internal invariant check; throws picp::Error on failure.
#define PICP_ENSURE(expr, msg)                                           \
  do {                                                                   \
    if (!(expr))                                                         \
      ::picp::detail::fail("invariant", #expr, __FILE__, __LINE__,       \
                           (msg));                                       \
  } while (false)
