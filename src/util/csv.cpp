#include "util/csv.hpp"

#include <sstream>

#include "util/error.hpp"

namespace picp {

CsvWriter::CsvWriter(std::ostream& out) : out_(&out) {}

CsvWriter::CsvWriter(const std::string& path) : file_(path), out_(&file_) {
  PICP_REQUIRE(file_.is_open(), "cannot open CSV output: " + path);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << escape(fields[i]);
  }
  *out_ << '\n';
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += "\"\"";
    else quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace picp
