#pragma once

// Deterministic fault injection for the I/O choke points. Every boundary
// that can fail in production (AtomicFile writes, trace frames, cache
// spill, checkpoints, HTTP sockets, workload generation) hosts a *named
// failpoint* that is compiled in unconditionally but costs one relaxed
// atomic load while nothing is armed — cheap enough to leave in release
// builds, which is the point: the binary you chaos-test is the binary you
// ship.
//
// Arming sources (all share one grammar):
//   - environment:  PICP_FAILPOINTS='site=action[:trigger...];...'
//                   PICP_FAILPOINTS_SEED=<N> (deterministic 1inN draws)
//   - admin API:    POST /v1/failpoints on a daemon started with
//                   --enable-failpoints (loopback-only)
//   - in-process:   failpoint::arm("...") from tests and benches
//
// Grammar, one spec per failpoint (specs joined with ';'):
//   <site>=<action>[:<trigger>][:<trigger>]
//   actions:  error            throw picp::Error at the site
//             errno(E)         set errno = E, then throw (strerror in text)
//             delay(MS)        sleep MS milliseconds, then continue
//             partial_write(N) sites that support it write only N bytes,
//                              then fail (others treat it as `error`)
//             crash            std::_Exit(134) — no atexit, no flushing:
//                              a hard crash for crash-consistency tests
//   triggers (AND-combined; omitted = fire on every hit):
//             1inN             fire with probability 1/N per hit, drawn
//                              from a per-site xoshiro stream seeded by
//                              set_seed() — same seed, same fire pattern
//             afterN           stay silent for the first N hits
//             timesN           fire at most N times, then go inert

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace picp::failpoint {

enum class ActionKind { kError, kErrno, kDelay, kPartialWrite, kCrash };

/// What an armed failpoint does when its trigger fires.
struct Action {
  ActionKind kind = ActionKind::kError;
  int errno_value = 0;            // kErrno
  int delay_ms = 0;               // kDelay
  std::size_t partial_bytes = 0;  // kPartialWrite
};

namespace detail {
extern std::atomic<std::uint64_t> g_armed_count;
}

/// The only cost a disarmed process pays at a failpoint site.
inline bool any_armed() {
  return detail::g_armed_count.load(std::memory_order_relaxed) != 0;
}

/// Evaluate the named site: engaged iff a failpoint is armed there and its
/// trigger fires this hit. Sites that need custom semantics (partial
/// writes) branch on the returned Action; everything else uses inject().
std::optional<Action> fire(const char* site);

/// Apply an Action that already fired: throw (error/errno), sleep (delay),
/// or std::_Exit (crash). partial_write is applied as `error` — only sites
/// that can truncate a write handle it themselves.
[[maybe_unused]] void apply(const Action& action, const char* site);

/// fire() + apply() — the one-liner for sites without custom semantics.
inline void inject(const char* site) {
  if (!any_armed()) return;
  if (const auto action = fire(site)) apply(*action, site);
}

/// Arm one failpoint from a spec ("site=action[:trigger...]"). Re-arming a
/// site replaces its previous spec and resets its counters. Throws
/// picp::Error on malformed specs.
void arm(const std::string& spec);

/// Arm a ';'-separated list of specs (empty segments ignored).
void arm_many(const std::string& specs);

/// Arm from PICP_FAILPOINTS / PICP_FAILPOINTS_SEED. Returns true iff any
/// failpoint was armed. Called once from the CLI front end.
bool arm_from_env();

/// Disarm one site; returns false when it was not armed.
bool disarm(const std::string& site);

void disarm_all();

/// Seed for the deterministic 1inN draws; each site forks its own stream.
/// Takes effect for failpoints armed after the call.
void set_seed(std::uint64_t seed);

/// Introspection row for the admin endpoint and tests.
struct Info {
  std::string site;
  std::string spec;         // the spec text it was armed with
  std::uint64_t hits = 0;   // times the site was evaluated
  std::uint64_t fires = 0;  // times the action actually fired
};

/// All armed failpoints, sorted by site name.
std::vector<Info> list();

}  // namespace picp::failpoint
