#pragma once

// Shape-assertion toolkit for the paper-claims conformance suite: every
// figure in the evaluation makes a *shape* claim (a plateau, a monotone
// trend, an order-of-magnitude separation, an error ceiling) rather than an
// absolute-value claim. These checks turn such claims into assertions that
// fail loudly with the measured shape next to the claimed one, so a claims
// test's failure message reads like a regression report, not a bare
// boolean. Shared by tests/ (the `claims` ctest tier) and bench/ (the
// figure-reproduction summaries).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace picp::shape {

/// Outcome of one shape check. `detail` always describes the measured
/// series/value against the claimed shape, whether the check passed or not.
struct ShapeResult {
  bool pass = false;
  std::string detail;
};

/// Non-decreasing within a relative slack: each value may undershoot the
/// running maximum by at most `rel_slack * |running max|` (0 = strict).
ShapeResult monotone_increasing(std::span<const double> values,
                                double rel_slack = 0.0);

/// Non-increasing within a relative slack (mirror of monotone_increasing).
ShapeResult monotone_decreasing(std::span<const double> values,
                                double rel_slack = 0.0);

/// Length of the longest prefix whose values all stay within
/// `rel_tol * |first|` of the first value (the Fig 5 "early plateau").
std::size_t plateau_prefix_length(std::span<const double> values,
                                  double rel_tol);

/// The first `min_length` values form a plateau at the series' initial
/// level (within `rel_tol` relative tolerance).
ShapeResult plateau_prefix(std::span<const double> values, double rel_tol,
                           std::size_t min_length);

/// log10(large / small); 0 when either side is <= 0.
double orders_of_magnitude(double large, double small);

/// `large` exceeds `small` by at least `min_orders` decimal orders of
/// magnitude (Fig 8's "two orders of magnitude lower peak workload").
ShapeResult order_separation(double large, double small, double min_orders);

/// value <= limit, labelled (MAPE gates, utilization ceilings).
ShapeResult below_threshold(double value, double limit,
                            const std::string& what);

/// value >= limit, labelled.
ShapeResult above_threshold(double value, double limit,
                            const std::string& what);

/// value within [reference / max_factor, reference * max_factor] — the
/// generous-bounds form used for wall-clock comparisons that must survive
/// sanitizers and loaded CI machines.
ShapeResult within_factor(double value, double reference, double max_factor,
                          const std::string& what);

/// last / first >= min_ratio — "grows by at least X over the sweep"
/// (Fig 10b's superlinear create_ghost cost, Fig 6's bin growth).
ShapeResult span_ratio_at_least(std::span<const double> values,
                                double min_ratio, const std::string& what);

/// Convenience conversion for integer series (peaks, bin counts).
std::vector<double> to_doubles(std::span<const std::int64_t> values);

/// Render a short preview of a series for failure messages
/// ("[12, 18, 18, ... , 44] (n=30)").
std::string preview(std::span<const double> values, std::size_t max_items = 8);

}  // namespace picp::shape
