#pragma once

// Per-request deadline propagation. A Deadline is a cheap value handle
// (one steady_clock time_point) threaded from the HTTP layer down through
// the pipeline; stage boundaries call check("stage") and a request that
// has run out of time unwinds with DeadlineExceeded — carrying the stage
// it died in — instead of burning a worker to completion. The default
// constructed Deadline is unlimited, so every call site that does not
// care keeps its old behavior for free.

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

#include "util/error.hpp"

namespace picp {

/// Thrown when a Deadline expires at a checked stage boundary; `stage()`
/// names the pipeline stage that was about to start, for 504 telemetry.
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(std::string stage)
      : Error("deadline exceeded at stage '" + stage + "'"),
        stage_(std::move(stage)) {}

  const std::string& stage() const { return stage_; }

 private:
  std::string stage_;
};

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unlimited: never expires, checks are free of surprises.
  Deadline() = default;

  /// Expires `budget_ms` from now (<= 0 means already expired).
  static Deadline after_ms(std::int64_t budget_ms) {
    Deadline deadline;
    deadline.limited_ = true;
    deadline.expiry_ = Clock::now() + std::chrono::milliseconds(budget_ms);
    return deadline;
  }

  bool limited() const { return limited_; }

  bool expired() const { return limited_ && Clock::now() >= expiry_; }

  /// Milliseconds until expiry; 0 when expired, a large value when
  /// unlimited (callers use it to bound waits).
  std::int64_t remaining_ms() const {
    if (!limited_) return std::numeric_limits<std::int64_t>::max() / 4;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        expiry_ - Clock::now());
    return left.count() > 0 ? left.count() : 0;
  }

  Clock::time_point time_point() const {
    return limited_ ? expiry_ : Clock::time_point::max();
  }

  /// Throw DeadlineExceeded(stage) if the budget is spent.
  void check(const char* stage) const {
    if (expired()) throw DeadlineExceeded(stage);
  }

 private:
  bool limited_ = false;
  Clock::time_point expiry_{};
};

}  // namespace picp
