#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace picp {

/// splitmix64 — used to seed Xoshiro and to derive per-stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality PRNG for simulation use. Deterministic
/// given a seed; satisfies UniformRandomBitGenerator so it can be used with
/// <random> distributions as well.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Unbiased via rejection.
  std::uint64_t uniform_below(std::uint64_t n) {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;
    while (true) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0, v = 0.0, s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  /// Derive an independent stream for worker `index` (e.g. per-thread RNGs).
  Xoshiro256 fork(std::uint64_t index) const {
    std::uint64_t sm = state_[0] ^ (index * 0x9e3779b97f4a7c15ULL + 1);
    return Xoshiro256(splitmix64(sm));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace picp
