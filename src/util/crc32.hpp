#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace picp {

namespace detail {
/// Reflected CRC32C (Castagnoli) polynomial — the variant with hardware
/// support on modern CPUs and strong burst-error detection, used by iSCSI,
/// ext4, and most storage formats.
constexpr std::uint32_t kCrc32cPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kCrc32cPoly : crc >> 1;
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable =
    make_crc32c_table();
}  // namespace detail

/// Incremental CRC32C accumulator for streamed data (trace frames, file
/// digests). `value()` may be called at any point; `update` continues the
/// same running checksum.
class Crc32c {
 public:
  void update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint32_t crc = state_;
    for (std::size_t i = 0; i < size; ++i)
      crc = detail::kCrc32cTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
    state_ = crc;
  }

  /// Checksum a trivially-copyable value by its object representation.
  template <typename T>
  void update_pod(const T& value) {
    update(&value, sizeof(T));
  }

  std::uint32_t value() const { return ~state_; }
  void reset() { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC32C of a buffer. crc32c("123456789") == 0xE3069283.
inline std::uint32_t crc32c(const void* data, std::size_t size) {
  Crc32c crc;
  crc.update(data, size);
  return crc.value();
}

}  // namespace picp
