#include "util/failpoint.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace picp::failpoint {

namespace detail {
std::atomic<std::uint64_t> g_armed_count{0};
}

namespace {

/// One armed failpoint: the parsed action, its trigger state, and a private
/// deterministic RNG stream for 1inN draws.
struct Armed {
  Action action;
  std::string spec;
  std::uint64_t one_in = 0;  // 0 = no probabilistic trigger
  std::uint64_t after = 0;   // silent for the first `after` hits
  std::uint64_t times = 0;   // 0 = unlimited fires
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  Xoshiro256 rng;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, Armed> armed;
  std::uint64_t seed = 20210517;  // default: the paper's magic date seed
};

Registry& registry() {
  static Registry* instance = new Registry();  // immortal: sites may fire late
  return *instance;
}

/// Stable per-site RNG stream: seed ^ hash(site), so two sites armed with
/// the same global seed still draw independently.
Xoshiro256 site_rng(std::uint64_t seed, const std::string& site) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return Xoshiro256(seed ^ h);
}

/// "action" or "action(arg)" → Action. Throws on unknown names / bad args.
Action parse_action(const std::string& text, const std::string& spec) {
  std::string name = text;
  std::string arg;
  const std::size_t open = text.find('(');
  if (open != std::string::npos) {
    PICP_REQUIRE(text.back() == ')',
                 "failpoint spec \"" + spec + "\": unterminated '(' in \"" +
                     text + "\"");
    name = text.substr(0, open);
    arg = text.substr(open + 1, text.size() - open - 2);
  }
  Action action;
  if (name == "error") {
    action.kind = ActionKind::kError;
    PICP_REQUIRE(arg.empty(), "failpoint action error takes no argument");
    return action;
  }
  if (name == "crash") {
    action.kind = ActionKind::kCrash;
    PICP_REQUIRE(arg.empty(), "failpoint action crash takes no argument");
    return action;
  }
  const auto int_arg = [&](const char* what) {
    PICP_REQUIRE(!arg.empty(), "failpoint spec \"" + spec + "\": " +
                                   std::string(what) + " needs an argument");
    const long long value = parse_int(arg);
    PICP_REQUIRE(value >= 0, std::string(what) + " argument must be >= 0");
    return value;
  };
  if (name == "errno") {
    action.kind = ActionKind::kErrno;
    action.errno_value = static_cast<int>(int_arg("errno"));
    return action;
  }
  if (name == "delay") {
    action.kind = ActionKind::kDelay;
    action.delay_ms = static_cast<int>(int_arg("delay"));
    return action;
  }
  if (name == "partial_write") {
    action.kind = ActionKind::kPartialWrite;
    action.partial_bytes = static_cast<std::size_t>(int_arg("partial_write"));
    return action;
  }
  throw Error("failpoint spec \"" + spec + "\": unknown action \"" + name +
              "\" (have error, errno(E), delay(MS), partial_write(N), "
              "crash)");
}

/// "1inN" / "afterN" / "timesN" → trigger fields on `armed`.
void parse_trigger(const std::string& text, Armed& armed,
                   const std::string& spec) {
  const auto tail_int = [&](std::size_t prefix_len) {
    const long long value = parse_int(text.substr(prefix_len));
    PICP_REQUIRE(value >= 1, "failpoint trigger \"" + text +
                                 "\" needs a count >= 1");
    return static_cast<std::uint64_t>(value);
  };
  if (starts_with(text, "1in")) {
    armed.one_in = tail_int(3);
    return;
  }
  if (starts_with(text, "after")) {
    armed.after = tail_int(5);
    return;
  }
  if (starts_with(text, "times")) {
    armed.times = tail_int(5);
    return;
  }
  throw Error("failpoint spec \"" + spec + "\": unknown trigger \"" + text +
              "\" (have 1inN, afterN, timesN)");
}

}  // namespace

std::optional<Action> fire(const char* site) {
  if (!any_armed()) return std::nullopt;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.armed.find(site);
  if (it == reg.armed.end()) return std::nullopt;
  Armed& armed = it->second;
  ++armed.hits;
  if (armed.hits <= armed.after) return std::nullopt;
  if (armed.times != 0 && armed.fires >= armed.times) return std::nullopt;
  if (armed.one_in > 1 && armed.rng.uniform_below(armed.one_in) != 0)
    return std::nullopt;
  ++armed.fires;
  return armed.action;
}

void apply(const Action& action, const char* site) {
  switch (action.kind) {
    case ActionKind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(action.delay_ms));
      return;
    case ActionKind::kCrash:
      PICP_LOG_WARN << "failpoint " << site << ": injected crash";
      std::_Exit(134);  // simulate a hard crash: no atexit, no flushing
    case ActionKind::kErrno:
      errno = action.errno_value;
      throw Error(std::string("failpoint ") + site + ": injected errno " +
                  std::to_string(action.errno_value) + " (" +
                  std::strerror(action.errno_value) + ")");
    case ActionKind::kError:
    case ActionKind::kPartialWrite:  // site can't truncate — degrade to error
      throw Error(std::string("failpoint ") + site + ": injected error");
  }
}

void arm(const std::string& spec) {
  const std::size_t eq = spec.find('=');
  PICP_REQUIRE(eq != std::string::npos && eq > 0,
               "failpoint spec \"" + spec + "\" must be site=action[:trig]");
  const std::string site = trim(spec.substr(0, eq));
  const std::vector<std::string> parts = split(spec.substr(eq + 1), ':');
  PICP_REQUIRE(!parts.empty() && !trim(parts[0]).empty(),
               "failpoint spec \"" + spec + "\" names no action");

  Armed armed;
  armed.spec = spec;
  armed.action = parse_action(trim(parts[0]), spec);
  for (std::size_t i = 1; i < parts.size(); ++i)
    parse_trigger(trim(parts[i]), armed, spec);

  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  armed.rng = site_rng(reg.seed, site);
  const bool replaced = reg.armed.count(site) > 0;
  reg.armed[site] = std::move(armed);
  if (!replaced)
    detail::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  PICP_LOG_WARN << "failpoint armed: " << spec;
}

void arm_many(const std::string& specs) {
  for (const std::string& field : split(specs, ';'))
    if (!trim(field).empty()) arm(trim(field));
}

bool arm_from_env() {
  if (const char* seed = std::getenv("PICP_FAILPOINTS_SEED"))
    set_seed(static_cast<std::uint64_t>(parse_int(seed)));
  const char* specs = std::getenv("PICP_FAILPOINTS");
  if (specs == nullptr || *specs == '\0') return false;
  arm_many(specs);
  return any_armed();
}

bool disarm(const std::string& site) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (reg.armed.erase(site) == 0) return false;
  detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void disarm_all() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  detail::g_armed_count.fetch_sub(reg.armed.size(),
                                  std::memory_order_relaxed);
  reg.armed.clear();
}

void set_seed(std::uint64_t seed) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.seed = seed;
}

std::vector<Info> list() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<Info> infos;
  infos.reserve(reg.armed.size());
  for (const auto& [site, armed] : reg.armed) {
    Info info;
    info.site = site;
    info.spec = armed.spec;
    info.hits = armed.hits;
    info.fires = armed.fires;
    infos.push_back(std::move(info));
  }
  return infos;
}

}  // namespace picp::failpoint
