#pragma once

#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace picp {

/// Minimal CSV emitter used by benches and examples to dump figure data.
/// Values are written row-by-row; strings containing separators/quotes are
/// quoted per RFC 4180.
class CsvWriter {
 public:
  /// Write to an externally-owned stream (e.g. std::cout).
  explicit CsvWriter(std::ostream& out);
  /// Write to a file; throws picp::Error if it cannot be opened.
  explicit CsvWriter(const std::string& path);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& fields);

  /// Convenience: format each value with operator<< and write one row.
  template <typename... Ts>
  void row(const Ts&... values) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(values));
    (fields.push_back(format(values)), ...);
    write_row(fields);
  }

 private:
  template <typename T>
  static std::string format(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(value);
    } else {
      return to_string_impl(value);
    }
  }
  template <typename T>
  static std::string to_string_impl(const T& value) {
    std::ostringstream os;
    os << value;
    return os.str();
  }

  static std::string escape(const std::string& field);

  std::ofstream file_;
  std::ostream* out_;
};

}  // namespace picp
