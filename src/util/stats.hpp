#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace picp {

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> values);

/// Population standard deviation; 0 for fewer than two values.
double stddev(std::span<const double> values);

double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// Linear-interpolated percentile, q in [0, 100]. Input need not be sorted.
double percentile(std::span<const double> values, double q);

/// Mean Absolute Percentage Error in percent:
///   100/n * sum |actual - predicted| / |actual|
/// Pairs with |actual| < floor are skipped (guards division by ~zero); if all
/// pairs are skipped the result is 0.
double mape(std::span<const double> actual, std::span<const double> predicted,
            double floor = 1e-12);

/// Coefficient of determination R^2 of `predicted` against `actual`.
double r_squared(std::span<const double> actual,
                 std::span<const double> predicted);

/// Simple fixed-width histogram over [lo, hi); values outside are clamped to
/// the first/last bin. Used for workload-distribution summaries.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;

  Histogram(double lo_, double hi_, std::size_t bins);
  void add(double value);
  std::size_t total() const;
};

/// Streaming min/max/mean/count accumulator.
class RunningStats {
 public:
  void add(double value);
  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace picp
