#pragma once

#include <sstream>
#include <string>

namespace picp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Thread-safe.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// Stream-style logger: LogLine(LogLevel::kInfo) << "x=" << x;
/// The message is emitted (with level tag and elapsed wall time) at
/// destruction, as a single write so concurrent threads do not interleave.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { detail::log_emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace picp

#define PICP_LOG_DEBUG ::picp::LogLine(::picp::LogLevel::kDebug)
#define PICP_LOG_INFO ::picp::LogLine(::picp::LogLevel::kInfo)
#define PICP_LOG_WARN ::picp::LogLine(::picp::LogLevel::kWarn)
#define PICP_LOG_ERROR ::picp::LogLine(::picp::LogLevel::kError)
