#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace picp {

/// Fixed-size worker pool used to parallelize embarrassingly-parallel loops
/// (per-particle mapping, GP fitness evaluation, per-rank kernel models, the
/// picsim solver loop).
///
/// The pool is intentionally simple: FIFO task queue, no work stealing. The
/// heavy loops in picpredict are partitioned into one chunk per worker, so a
/// deque-per-thread design would buy nothing.
///
/// Exception safety: a throwing task does not terminate the process. The
/// first exception thrown by any task in a batch is captured and rethrown
/// from the next `wait_idle()` (and therefore from `parallel_for`); the
/// remaining tasks of the batch still run to completion, and the pool stays
/// usable afterwards.
class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task. If it throws, the exception surfaces at the next
  /// wait_idle() call.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished, then rethrow the first
  /// exception any of them raised (clearing it, so the pool is reusable).
  void wait_idle();

  /// Run fn(begin, end) over [0, n) split into one contiguous chunk per
  /// worker, blocking until done. Calls fn inline when n is small or the
  /// pool has a single worker. Exceptions from fn propagate to the caller.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Grain-size-aware variant: never splits the range into chunks smaller
  /// than `grain` items, so small index sets stay inline instead of paying
  /// queue and wake-up latency for sub-microsecond chunks.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace picp
