#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace picp {

/// Point-in-time observability snapshot of a ThreadPool — the raw material
/// for the telemetry layer's `threadpool.*` metrics (tasks executed, queue
/// wait, per-worker busy fraction). The pool maintains these with a few
/// relaxed atomic adds per task; tasks are chunk-granularity, so the cost
/// is noise even with telemetry disabled.
struct ThreadPoolStats {
  /// Tasks fully executed so far.
  std::uint64_t tasks = 0;
  /// Total submit-to-dequeue latency summed over executed tasks.
  double queue_wait_seconds = 0.0;
  /// Largest single submit-to-dequeue latency seen.
  double max_queue_wait_seconds = 0.0;
  /// Total task execution time summed over all workers.
  double busy_seconds = 0.0;
  /// Execution time accumulated by each worker (index = worker).
  std::vector<double> worker_busy_seconds;
  /// Wall seconds since the pool was constructed.
  double lifetime_seconds = 0.0;
};

/// Fixed-size worker pool used to parallelize embarrassingly-parallel loops
/// (per-particle mapping, GP fitness evaluation, per-rank kernel models, the
/// picsim solver loop).
///
/// The pool is intentionally simple: FIFO task queue, no work stealing. The
/// heavy loops in picpredict are partitioned into one chunk per worker, so a
/// deque-per-thread design would buy nothing.
///
/// Exception safety: a throwing task does not terminate the process. The
/// first exception thrown by any task in a batch is captured and rethrown
/// from the next `wait_idle()` (and therefore from `parallel_for`); the
/// remaining tasks of the batch still run to completion, and the pool stays
/// usable afterwards.
class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task. If it throws, the exception surfaces at the next
  /// wait_idle() call.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished, then rethrow the first
  /// exception any of them raised (clearing it, so the pool is reusable).
  void wait_idle();

  /// Run fn(begin, end) over [0, n) split into one contiguous chunk per
  /// worker, blocking until done. Calls fn inline when n is small or the
  /// pool has a single worker. Exceptions from fn propagate to the caller.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Grain-size-aware variant: never splits the range into chunks smaller
  /// than `grain` items, so small index sets stay inline instead of paying
  /// queue and wake-up latency for sub-microsecond chunks.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Cumulative execution statistics since construction. Thread-safe;
  /// callable while tasks are in flight (values are a consistent-enough
  /// snapshot for reporting, not a barrier).
  ThreadPoolStats stats() const;

 private:
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };
  /// Cache-line-sized so workers never false-share their busy counters.
  struct alignas(64) WorkerCounters {
    std::atomic<std::uint64_t> busy_ns{0};
  };

  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;

  // Observability (relaxed atomics; see ThreadPoolStats).
  const std::chrono::steady_clock::time_point created_ =
      std::chrono::steady_clock::now();
  std::unique_ptr<WorkerCounters[]> worker_counters_;
  std::atomic<std::uint64_t> tasks_done_{0};
  std::atomic<std::uint64_t> queue_wait_ns_{0};
  std::atomic<std::uint64_t> max_queue_wait_ns_{0};
};

}  // namespace picp
