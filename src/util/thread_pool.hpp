#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace picp {

/// Fixed-size worker pool used to parallelize embarrassingly-parallel loops
/// (per-particle mapping, GP fitness evaluation, per-rank kernel models).
///
/// The pool is intentionally simple: FIFO task queue, no work stealing. The
/// heavy loops in picpredict are partitioned into one chunk per worker, so a
/// deque-per-thread design would buy nothing.
class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; tasks must not throw (exceptions terminate).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Run fn(begin, end) over [0, n) split into one contiguous chunk per
  /// worker, blocking until done. Calls fn inline when n is small or the
  /// pool has a single worker.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace picp
