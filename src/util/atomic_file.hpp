#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace picp {

struct AtomicFileOptions {
  /// Temp-file name is `<final_path><suffix>`.
  std::string suffix = ".tmp";
  /// Keep the temp file on abort/destruction instead of unlinking it —
  /// used by writers whose partial output is salvageable (trace `.part`
  /// files that a crashed run leaves behind for `--resume`).
  bool keep_on_abort = false;
  /// Consecutive transient-error (EINTR/EAGAIN) retries per write before
  /// giving up. Progress resets the counter.
  int max_retries = 8;
};

/// Crash-safe file writer: all bytes go to a temp file next to the target;
/// `commit()` fsyncs, renames the temp over the final path, and fsyncs the
/// parent directory. A crash at any point leaves either the previous file
/// intact or (with `keep_on_abort`) a clearly-named partial — never a
/// half-written file under the final name. Writes retry transient POSIX
/// errors a bounded number of times, then throw picp::Error.
class AtomicFile {
 public:
  explicit AtomicFile(std::string final_path, AtomicFileOptions options = {});

  /// Reopen an existing temp file (e.g. a trace `.part` left by a crashed
  /// run) for appending: truncates it to `keep_bytes` — discarding any
  /// partial tail — and positions the cursor at the end.
  static std::unique_ptr<AtomicFile> reopen(std::string final_path,
                                            std::uint64_t keep_bytes,
                                            AtomicFileOptions options = {});

  ~AtomicFile();
  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  /// Append at the cursor (bounded transient-error retry).
  void write(const void* data, std::size_t size);

  /// Overwrite at an absolute offset without moving the cursor (header
  /// patches).
  void write_at(std::uint64_t offset, const void* data, std::size_t size);

  /// Current append cursor (== bytes written so far for pure appends).
  std::uint64_t offset() const { return offset_; }

  /// Flush the temp file's data to stable storage (fdatasync).
  void sync();

  /// Seal: sync, close, rename temp → final, fsync the parent directory.
  /// After commit the writer is closed; further writes throw.
  void commit();

  /// Close without publishing. Unlinks the temp unless `keep_on_abort`.
  void abort() noexcept;

  bool committed() const { return committed_; }
  const std::string& final_path() const { return final_path_; }
  const std::string& temp_path() const { return temp_path_; }

 private:
  struct ReopenTag {};
  AtomicFile(ReopenTag, std::string final_path, std::uint64_t keep_bytes,
             AtomicFileOptions options);

  void write_fully(int fd, std::uint64_t offset, const void* data,
                   std::size_t size);

  std::string final_path_;
  std::string temp_path_;
  AtomicFileOptions options_;
  int fd_ = -1;
  std::uint64_t offset_ = 0;
  bool committed_ = false;
};

/// Write a whole small file atomically (temp + fsync + rename) — the
/// one-call path for checkpoints and other must-not-be-torn artifacts.
void atomic_write_file(const std::string& path, const void* data,
                       std::size_t size);

}  // namespace picp
