#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace picp {

namespace {
using SteadyClock = std::chrono::steady_clock;

std::uint64_t elapsed_ns(SteadyClock::time_point from,
                         SteadyClock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  worker_counters_ = std::make_unique<WorkerCounters[]>(n);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  PICP_REQUIRE(task != nullptr, "null task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(Task{std::move(task), SteadyClock::now()});
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  // Default grain of 2 preserves the historical behavior: ranges smaller
  // than two items per worker run inline.
  parallel_for(n, 2, fn);
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t chunks = std::min(workers_.size(), n / grain);
  if (chunks <= 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(begin + chunk_size, n);
    if (begin >= end) break;
    submit([&fn, begin, end] { fn(begin, end); });
  }
  wait_idle();
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats stats;
  stats.tasks = tasks_done_.load(std::memory_order_relaxed);
  stats.queue_wait_seconds =
      static_cast<double>(queue_wait_ns_.load(std::memory_order_relaxed)) *
      1e-9;
  stats.max_queue_wait_seconds =
      static_cast<double>(
          max_queue_wait_ns_.load(std::memory_order_relaxed)) *
      1e-9;
  stats.worker_busy_seconds.resize(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    stats.worker_busy_seconds[i] =
        static_cast<double>(
            worker_counters_[i].busy_ns.load(std::memory_order_relaxed)) *
        1e-9;
    stats.busy_seconds += stats.worker_busy_seconds[i];
  }
  stats.lifetime_seconds =
      static_cast<double>(elapsed_ns(created_, SteadyClock::now())) * 1e-9;
  return stats;
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  WorkerCounters& counters = worker_counters_[worker_index];
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    const SteadyClock::time_point started = SteadyClock::now();
    const std::uint64_t wait_ns = elapsed_ns(task.enqueued, started);
    queue_wait_ns_.fetch_add(wait_ns, std::memory_order_relaxed);
    std::uint64_t seen_max =
        max_queue_wait_ns_.load(std::memory_order_relaxed);
    while (wait_ns > seen_max &&
           !max_queue_wait_ns_.compare_exchange_weak(
               seen_max, wait_ns, std::memory_order_relaxed)) {
    }
    std::exception_ptr error;
    try {
      task.fn();
    } catch (...) {
      error = std::current_exception();
    }
    counters.busy_ns.fetch_add(elapsed_ns(started, SteadyClock::now()),
                               std::memory_order_relaxed);
    tasks_done_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && first_error_ == nullptr) first_error_ = std::move(error);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace picp
