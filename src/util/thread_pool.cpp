#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace picp {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  PICP_REQUIRE(task != nullptr, "null task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  // Default grain of 2 preserves the historical behavior: ranges smaller
  // than two items per worker run inline.
  parallel_for(n, 2, fn);
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t chunks = std::min(workers_.size(), n / grain);
  if (chunks <= 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(begin + chunk_size, n);
    if (begin >= end) break;
    submit([&fn, begin, end] { fn(begin, end); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && first_error_ == nullptr) first_error_ = std::move(error);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace picp
