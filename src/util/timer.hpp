#pragma once

#include <chrono>

namespace picp {

/// Monotonic stopwatch for measuring kernel and wall time.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates total time and call count for a repeatedly-invoked region.
class TimeAccumulator {
 public:
  void add(double seconds) {
    total_ += seconds;
    ++count_;
  }

  double total_seconds() const { return total_; }
  std::size_t count() const { return count_; }
  double mean_seconds() const {
    return count_ == 0 ? 0.0 : total_ / static_cast<double>(count_);
  }
  void reset() {
    total_ = 0.0;
    count_ = 0;
  }

 private:
  double total_ = 0.0;
  std::size_t count_ = 0;
};

/// RAII region timer: adds the elapsed time to an accumulator on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimeAccumulator& acc) : acc_(acc) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { acc_.add(watch_.seconds()); }

 private:
  TimeAccumulator& acc_;
  Stopwatch watch_;
};

}  // namespace picp
