#pragma once

#include <time.h>

#include <chrono>

namespace picp {

namespace detail {
/// CPU seconds consumed by the calling thread; 0.0 where unsupported.
inline double thread_cpu_now() {
#ifdef CLOCK_THREAD_CPUTIME_ID
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  return 0.0;
#endif
}
}  // namespace detail

/// Monotonic stopwatch for measuring kernel and wall time. Also tracks the
/// calling thread's CPU time over the same window, so callers can tell
/// "slow because of work" from "slow because preempted / blocked on I/O".
/// cpu_seconds() is only meaningful when read from the thread that
/// constructed (or last reset()) the watch.
class Stopwatch {
 public:
  Stopwatch()
      : start_(Clock::now()), cpu_start_(detail::thread_cpu_now()) {}

  void reset() {
    start_ = Clock::now();
    cpu_start_ = detail::thread_cpu_now();
  }

  /// Elapsed wall seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed CPU seconds of the calling thread over the same window.
  double cpu_seconds() const {
    return detail::thread_cpu_now() - cpu_start_;
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  double cpu_start_;
};

/// Accumulates total wall + CPU time and call count for a
/// repeatedly-invoked region.
class TimeAccumulator {
 public:
  void add(double wall_seconds, double cpu_seconds = 0.0) {
    total_ += wall_seconds;
    cpu_total_ += cpu_seconds;
    ++count_;
  }

  double total_seconds() const { return total_; }
  double cpu_total_seconds() const { return cpu_total_; }
  std::size_t count() const { return count_; }
  double mean_seconds() const {
    return count_ == 0 ? 0.0 : total_ / static_cast<double>(count_);
  }
  void reset() {
    total_ = 0.0;
    cpu_total_ = 0.0;
    count_ = 0;
  }

 private:
  double total_ = 0.0;
  double cpu_total_ = 0.0;
  std::size_t count_ = 0;
};

/// RAII region timer: adds the elapsed wall and thread-CPU time to an
/// accumulator on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimeAccumulator& acc) : acc_(acc) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { acc_.add(watch_.seconds(), watch_.cpu_seconds()); }

 private:
  TimeAccumulator& acc_;
  Stopwatch watch_;
};

}  // namespace picp
