#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace picp {

/// INI-style configuration, mirroring the paper's "configuration file" input
/// to the Dynamic Workload Generator (system + application configuration).
///
/// Syntax:
///   [section]
///   key = value          ; trailing comments with ';' or '#'
///
/// Keys are addressed as "section.key"; keys before any section header live
/// in the "" section and are addressed by bare name.
class Config {
 public:
  Config() = default;

  static Config from_string(const std::string& text);
  static Config from_file(const std::string& path);

  bool has(const std::string& key) const;

  /// Typed getters. The non-defaulted forms throw picp::Error when the key is
  /// missing; all forms throw on malformed values.
  std::string get_string(const std::string& key) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  long long get_int(const std::string& key) const;
  long long get_int(const std::string& key, long long fallback) const;
  double get_double(const std::string& key) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Comma-separated list of integers, e.g. "1044, 2088, 4176".
  std::vector<long long> get_int_list(const std::string& key) const;

  void set(const std::string& key, const std::string& value);

  /// All keys in deterministic (sorted) order; useful for echoing configs.
  std::vector<std::string> keys() const;

 private:
  std::optional<std::string> lookup(const std::string& key) const;

  std::map<std::string, std::string> values_;
};

}  // namespace picp
