#include "util/string_util.hpp"

#include <cctype>
#include <charconv>

#include "util/error.hpp"

namespace picp {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return std::string(text.substr(begin, end - begin));
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      break;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

long long parse_int(std::string_view text) {
  const std::string t = trim(text);
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc() || ptr != t.data() + t.size())
    throw Error("not an integer: '" + t + "'");
  return value;
}

double parse_double(std::string_view text) {
  const std::string t = trim(text);
  if (t.empty()) throw Error("not a number: ''");
  // std::from_chars<double> is available in libstdc++ 11+, but strtod keeps
  // us portable and handles exponents uniformly.
  char* end = nullptr;
  const double value = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size()) throw Error("not a number: '" + t + "'");
  return value;
}

bool parse_bool(std::string_view text) {
  const std::string t = to_lower(trim(text));
  if (t == "true" || t == "1" || t == "yes" || t == "on") return true;
  if (t == "false" || t == "0" || t == "no" || t == "off") return false;
  throw Error("not a boolean: '" + t + "'");
}

}  // namespace picp
