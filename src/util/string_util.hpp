#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace picp {

/// Remove leading and trailing whitespace.
std::string trim(std::string_view text);

/// ASCII lower-casing.
std::string to_lower(std::string_view text);

/// Split on a delimiter character; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Strict parse helpers; throw picp::Error on malformed input (with the
/// offending text in the message).
long long parse_int(std::string_view text);
double parse_double(std::string_view text);
bool parse_bool(std::string_view text);

}  // namespace picp
