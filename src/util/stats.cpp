#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace picp {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size()));
}

double min_value(std::span<const double> values) {
  PICP_REQUIRE(!values.empty(), "min of empty range");
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  PICP_REQUIRE(!values.empty(), "max of empty range");
  return *std::max_element(values.begin(), values.end());
}

double percentile(std::span<const double> values, double q) {
  PICP_REQUIRE(!values.empty(), "percentile of empty range");
  PICP_REQUIRE(q >= 0.0 && q <= 100.0, "percentile out of [0,100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mape(std::span<const double> actual, std::span<const double> predicted,
            double floor) {
  PICP_REQUIRE(actual.size() == predicted.size(), "size mismatch in mape");
  double sum = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (std::abs(actual[i]) < floor) continue;
    sum += std::abs(actual[i] - predicted[i]) / std::abs(actual[i]);
    ++used;
  }
  return used == 0 ? 0.0 : 100.0 * sum / static_cast<double>(used);
}

double r_squared(std::span<const double> actual,
                 std::span<const double> predicted) {
  PICP_REQUIRE(actual.size() == predicted.size(), "size mismatch in r_squared");
  if (actual.empty()) return 0.0;
  const double m = mean(actual);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ss_tot += (actual[i] - m) * (actual[i] - m);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

Histogram::Histogram(double lo_, double hi_, std::size_t bins)
    : lo(lo_), hi(hi_), counts(bins, 0) {
  PICP_REQUIRE(bins > 0, "histogram needs at least one bin");
  PICP_REQUIRE(hi_ > lo_, "histogram range must be non-empty");
}

void Histogram::add(double value) {
  const double t = (value - lo) / (hi - lo);
  const auto nbins = static_cast<double>(counts.size());
  auto idx = static_cast<long long>(t * nbins);
  idx = std::clamp<long long>(idx, 0, static_cast<long long>(counts.size()) - 1);
  ++counts[static_cast<std::size_t>(idx)];
}

std::size_t Histogram::total() const {
  std::size_t n = 0;
  for (std::size_t c : counts) n += c;
  return n;
}

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++count_;
}

}  // namespace picp
