#include "util/config.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace picp {

namespace {
// Strip a trailing comment beginning with ';' or '#' (not inside quotes —
// values in this format are never quoted, so a plain scan suffices).
std::string strip_comment(const std::string& line) {
  const std::size_t pos = line.find_first_of(";#");
  return pos == std::string::npos ? line : line.substr(0, pos);
}
}  // namespace

Config Config::from_string(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string line;
  std::string section;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string stripped = trim(strip_comment(line));
    if (stripped.empty()) continue;
    if (stripped.front() == '[') {
      if (stripped.back() != ']')
        throw Error("config line " + std::to_string(line_no) +
                    ": unterminated section header");
      section = trim(stripped.substr(1, stripped.size() - 2));
      continue;
    }
    const std::size_t eq = stripped.find('=');
    if (eq == std::string::npos)
      throw Error("config line " + std::to_string(line_no) +
                  ": expected key = value, got '" + stripped + "'");
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    if (key.empty())
      throw Error("config line " + std::to_string(line_no) + ": empty key");
    const std::string full_key = section.empty() ? key : section + "." + key;
    config.values_[full_key] = value;
  }
  return config;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  PICP_REQUIRE(in.is_open(), "cannot open config file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_string(buffer.str());
}

bool Config::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::optional<std::string> Config::lookup(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key) const {
  const auto value = lookup(key);
  if (!value) throw Error("missing config key: " + key);
  return *value;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return lookup(key).value_or(fallback);
}

long long Config::get_int(const std::string& key) const {
  return parse_int(get_string(key));
}

long long Config::get_int(const std::string& key, long long fallback) const {
  const auto value = lookup(key);
  return value ? parse_int(*value) : fallback;
}

double Config::get_double(const std::string& key) const {
  return parse_double(get_string(key));
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto value = lookup(key);
  return value ? parse_double(*value) : fallback;
}

bool Config::get_bool(const std::string& key) const {
  return parse_bool(get_string(key));
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto value = lookup(key);
  return value ? parse_bool(*value) : fallback;
}

std::vector<long long> Config::get_int_list(const std::string& key) const {
  std::vector<long long> out;
  for (const std::string& field : split(get_string(key), ',')) {
    const std::string t = trim(field);
    if (t.empty()) continue;
    out.push_back(parse_int(t));
  }
  return out;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

}  // namespace picp
