#include "workload/ghost_finder.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace picp {

GhostFinder::GhostFinder(const SpectralMesh& mesh,
                         const MeshPartition& partition, double radius)
    : mesh_(&mesh),
      partition_(&partition),
      radius_(radius),
      radius2_(radius * radius) {
  PICP_REQUIRE(radius >= 0.0, "ghost radius must be non-negative");
}

void GhostFinder::ranks_near(const Vec3& p, Rank exclude,
                             std::vector<Rank>& out) const {
  out.clear();
  if (radius_ == 0.0) return;
  const GridIndexer& grid = mesh_->indexer();
  const auto lo = grid.cell_of(Vec3(p.x - radius_, p.y - radius_, p.z - radius_));
  const auto hi = grid.cell_of(Vec3(p.x + radius_, p.y + radius_, p.z + radius_));
  for (std::int64_t iz = lo[2]; iz <= hi[2]; ++iz)
    for (std::int64_t iy = lo[1]; iy <= hi[1]; ++iy)
      for (std::int64_t ix = lo[0]; ix <= hi[0]; ++ix) {
        const ElementId e = grid.flat_index(ix, iy, iz);
        const Rank r = partition_->owner_of(e);
        if (r == exclude) continue;
        if (std::find(out.begin(), out.end(), r) != out.end()) continue;
        if (grid.cell_bounds(ix, iy, iz).distance2(p) < radius2_)
          out.push_back(r);
      }
}

}  // namespace picp
