#include "workload/workload_stats.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"

namespace picp {

UtilizationStats utilization(const CompMatrix& comp) {
  UtilizationStats stats;
  stats.num_ranks = comp.num_ranks();
  if (comp.num_intervals() == 0 || comp.num_ranks() == 0) return stats;

  std::vector<bool> ever(static_cast<std::size_t>(comp.num_ranks()), false);
  double active_fraction_sum = 0.0;
  for (std::size_t t = 0; t < comp.num_intervals(); ++t) {
    const auto row = comp.interval(t);
    Rank active = 0;
    for (std::size_t r = 0; r < row.size(); ++r) {
      if (row[r] > 0) {
        ever[r] = true;
        ++active;
      }
      stats.peak_load = std::max(stats.peak_load, row[r]);
    }
    active_fraction_sum +=
        static_cast<double>(active) / static_cast<double>(comp.num_ranks());
  }
  stats.ever_active = static_cast<Rank>(
      std::count(ever.begin(), ever.end(), true));
  stats.ever_active_fraction = static_cast<double>(stats.ever_active) /
                               static_cast<double>(comp.num_ranks());
  stats.mean_active_fraction =
      active_fraction_sum / static_cast<double>(comp.num_intervals());
  return stats;
}

std::vector<std::int64_t> peak_per_interval(const CompMatrix& comp) {
  std::vector<std::int64_t> peaks(comp.num_intervals());
  for (std::size_t t = 0; t < comp.num_intervals(); ++t)
    peaks[t] = comp.interval_max(t);
  return peaks;
}

std::vector<double> imbalance_per_interval(const CompMatrix& comp) {
  std::vector<double> out(comp.num_intervals(), 0.0);
  for (std::size_t t = 0; t < comp.num_intervals(); ++t) {
    const std::int64_t total = comp.interval_total(t);
    if (total == 0) continue;
    const double mean_load = static_cast<double>(total) /
                             static_cast<double>(comp.num_ranks());
    out[t] = static_cast<double>(comp.interval_max(t)) / mean_load;
  }
  return out;
}

std::vector<Rank> active_per_interval(const CompMatrix& comp) {
  std::vector<Rank> out(comp.num_intervals());
  for (std::size_t t = 0; t < comp.num_intervals(); ++t)
    out[t] = comp.interval_active(t);
  return out;
}

std::string ascii_heatmap(const CompMatrix& comp, std::size_t width,
                          std::size_t height) {
  PICP_REQUIRE(width > 0 && height > 0, "heatmap dimensions must be positive");
  static const char kRamp[] = " .:-=+*#%@";
  constexpr std::size_t kRampLevels = sizeof(kRamp) - 2;  // max ramp index

  const std::size_t ranks = static_cast<std::size_t>(comp.num_ranks());
  const std::size_t intervals = comp.num_intervals();
  if (ranks == 0 || intervals == 0) return "(empty)\n";
  const std::size_t rows = std::min(height, ranks);
  const std::size_t cols = std::min(width, intervals);

  // Aggregate each (row, col) cell as the max load in its rank×interval block
  // so hot ranks stay visible after downsampling.
  std::vector<std::int64_t> cells(rows * cols, 0);
  std::int64_t global_max = 0;
  for (std::size_t t = 0; t < intervals; ++t) {
    const std::size_t col = t * cols / intervals;
    const auto row_data = comp.interval(t);
    for (std::size_t r = 0; r < ranks; ++r) {
      const std::size_t row = r * rows / ranks;
      auto& cell = cells[row * cols + col];
      cell = std::max(cell, row_data[r]);
      global_max = std::max(global_max, row_data[r]);
    }
  }
  std::string out;
  out.reserve(rows * (cols + 1));
  for (std::size_t row = 0; row < rows; ++row) {
    for (std::size_t col = 0; col < cols; ++col) {
      const std::int64_t v = cells[row * cols + col];
      std::size_t level = 0;
      if (global_max > 0 && v > 0)
        level = 1 + static_cast<std::size_t>(
                        v * static_cast<std::int64_t>(kRampLevels - 1) /
                        global_max);
      level = std::min(level, kRampLevels);
      out += kRamp[level];
    }
    out += '\n';
  }
  return out;
}

}  // namespace picp
