#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include <memory>

#include "mapping/mapper.hpp"
#include "mesh/partition.hpp"
#include "mesh/spectral_mesh.hpp"
#include "trace/trace_reader.hpp"
#include "util/deadline.hpp"
#include "util/thread_pool.hpp"
#include "workload/comm_matrix.hpp"
#include "workload/comp_matrix.hpp"

namespace picp {

/// Options for one workload-generation pass.
struct WorkloadParams {
  /// Projection filter size: influence radius used for ghost particles and
  /// (for bin mapping) the threshold bin size.
  double ghost_radius = 0.0;
  /// Skip ghost accounting (cheaper when only real-particle load matters).
  bool compute_ghosts = true;
  /// Skip communication matrices.
  bool compute_comm = true;
  /// Process at most this many trace samples.
  std::size_t max_intervals = static_cast<std::size_t>(-1);
  /// Process every k-th sample (parameter sweeps trade resolution for speed).
  std::size_t interval_stride = 1;
  /// Worker threads for the ghost search (the generator's dominant cost);
  /// 0 or 1 = serial. Results are bit-identical for any thread count.
  std::size_t threads = 0;
  /// Request budget, checked between intervals so an over-budget
  /// generation unwinds with DeadlineExceeded instead of running to the
  /// end of the trace. Default: unlimited (no behavior change).
  Deadline deadline;
};

/// Everything the Dynamic Workload Generator produces for one
/// (trace, mapper, processor count) combination.
struct WorkloadResult {
  Rank num_ranks = 0;
  /// Solver iteration number of each processed interval.
  std::vector<std::uint64_t> iterations;
  /// P_comp for real and ghost particles (paper outputs them separately).
  CompMatrix comp_real;
  CompMatrix comp_ghost;
  /// P_comm for particle migration (real) and ghost creation (ghost).
  CommMatrix comm_real;
  CommMatrix comm_ghost;
  /// Mapper partitions per interval (#bins for bin mapping — Fig 6).
  std::vector<std::int64_t> partitions_per_interval;
  /// Spectral elements owned by each rank (static over the run for the
  /// grid decomposition; feeds the fluid-phase model).
  std::vector<std::int64_t> elements_per_rank;

  std::size_t num_intervals() const { return iterations.size(); }
};

/// Per-interval load accounting shared by the Dynamic Workload Generator
/// (replaying a trace) and the proxy application (counting in situ): adds
/// real/ghost computation loads plus migration and ghost-creation
/// communication for interval `t` into `result`. `prev_owners` may be empty
/// at the first interval. Using one implementation for both sides is what
/// makes generator-vs-application validation exact.
void accumulate_interval_workload(
    const SpectralMesh& mesh, const MeshPartition& partition,
    std::span<const Vec3> positions, std::span<const Rank> owners,
    std::span<const Rank> prev_owners, const WorkloadParams& params,
    std::size_t t, WorkloadResult& result);

/// The paper's Dynamic Workload Generator (§II-A): replays a particle trace
/// through a particle-mapping algorithm to synthesize the per-processor
/// computation and communication load for any processor count, without
/// running the application.
///
/// Space complexity is O(num_particles + R): the trace is streamed one
/// sample at a time and only the previous interval's ownership is retained.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const SpectralMesh& mesh, const MeshPartition& partition,
                    Mapper& mapper, const WorkloadParams& params);

  /// Stream an on-disk trace (rewinds it first).
  WorkloadResult generate(TraceReader& trace);

  /// In-memory samples (tests, small studies).
  WorkloadResult generate(std::span<const TraceSample> samples);

 private:
  void process_interval(std::size_t t, std::uint64_t iteration,
                        std::span<const Vec3> positions,
                        WorkloadResult& result);

  const SpectralMesh* mesh_;
  const MeshPartition* partition_;
  Mapper* mapper_;
  WorkloadParams params_;
  std::unique_ptr<ThreadPool> pool_;  // ghost-search workers

  std::vector<Rank> owners_;
  std::vector<Rank> prev_owners_;
  std::vector<Rank> ghost_ranks_;  // scratch
};

}  // namespace picp
