#include "workload/comm_matrix.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace picp {

CommMatrix::CommMatrix(Rank num_ranks, std::size_t num_intervals)
    : num_ranks_(num_ranks), num_intervals_(num_intervals),
      slices_(num_intervals) {
  PICP_REQUIRE(num_ranks > 0, "CommMatrix needs at least one rank");
}

void CommMatrix::add(Rank from, Rank to, std::size_t t, std::int64_t count) {
  PICP_REQUIRE(t < num_intervals_, "interval out of range");
  PICP_REQUIRE(from >= 0 && from < num_ranks_ && to >= 0 && to < num_ranks_,
               "rank out of range");
  if (count == 0) return;
  slices_[t][key(from, to)] += count;
}

std::int64_t CommMatrix::at(Rank from, Rank to, std::size_t t) const {
  const auto& slice = slices_[t];
  const auto it = slice.find(key(from, to));
  return it == slice.end() ? 0 : it->second;
}

std::vector<CommMatrix::Transfer> CommMatrix::interval_transfers(
    std::size_t t) const {
  std::vector<Transfer> out;
  out.reserve(slices_[t].size());
  for (const auto& [k, count] : slices_[t]) {
    const Rank from = static_cast<Rank>(k / static_cast<std::uint64_t>(num_ranks_));
    const Rank to = static_cast<Rank>(k % static_cast<std::uint64_t>(num_ranks_));
    out.push_back(Transfer{from, to, count});
  }
  std::sort(out.begin(), out.end(), [](const Transfer& a, const Transfer& b) {
    if (a.from != b.from) return a.from < b.from;
    return a.to < b.to;
  });
  return out;
}

std::int64_t CommMatrix::interval_volume(std::size_t t) const {
  std::int64_t total = 0;
  for (const auto& [k, count] : slices_[t]) total += count;
  return total;
}

std::size_t CommMatrix::interval_pairs(std::size_t t) const {
  return slices_[t].size();
}

std::int64_t CommMatrix::sent_by(Rank r, std::size_t t) const {
  std::int64_t total = 0;
  for (const auto& [k, count] : slices_[t])
    if (static_cast<Rank>(k / static_cast<std::uint64_t>(num_ranks_)) == r)
      total += count;
  return total;
}

std::int64_t CommMatrix::received_by(Rank r, std::size_t t) const {
  std::int64_t total = 0;
  for (const auto& [k, count] : slices_[t])
    if (static_cast<Rank>(k % static_cast<std::uint64_t>(num_ranks_)) == r)
      total += count;
  return total;
}

std::int64_t CommMatrix::total_volume() const {
  std::int64_t total = 0;
  for (std::size_t t = 0; t < num_intervals_; ++t) total += interval_volume(t);
  return total;
}

}  // namespace picp
