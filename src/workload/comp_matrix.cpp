#include "workload/comp_matrix.hpp"

#include <algorithm>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace picp {

CompMatrix::CompMatrix(Rank num_ranks, std::size_t num_intervals)
    : num_ranks_(num_ranks),
      num_intervals_(num_intervals),
      data_(static_cast<std::size_t>(num_ranks) * num_intervals, 0) {
  PICP_REQUIRE(num_ranks > 0, "CompMatrix needs at least one rank");
}

std::int64_t CompMatrix::interval_max(std::size_t t) const {
  const auto row = interval(t);
  return *std::max_element(row.begin(), row.end());
}

std::int64_t CompMatrix::interval_total(std::size_t t) const {
  std::int64_t total = 0;
  for (std::int64_t v : interval(t)) total += v;
  return total;
}

Rank CompMatrix::interval_active(std::size_t t) const {
  Rank active = 0;
  for (std::int64_t v : interval(t))
    if (v > 0) ++active;
  return active;
}

std::int64_t CompMatrix::global_max() const {
  if (data_.empty()) return 0;
  return *std::max_element(data_.begin(), data_.end());
}

void CompMatrix::write_csv(const std::string& path) const {
  CsvWriter csv(path);
  std::vector<std::string> row;
  row.reserve(static_cast<std::size_t>(num_ranks_) + 1);
  row.push_back("interval");
  for (Rank r = 0; r < num_ranks_; ++r)
    row.push_back("rank" + std::to_string(r));
  csv.write_row(row);
  for (std::size_t t = 0; t < num_intervals_; ++t) {
    row.clear();
    row.push_back(std::to_string(t));
    for (std::int64_t v : interval(t)) row.push_back(std::to_string(v));
    csv.write_row(row);
  }
}

}  // namespace picp
