#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mesh/partition.hpp"

namespace picp {

/// The paper's Communication matrix P_comm: conceptually an R × R × T array
/// where entry (i, j, t) is the number of particles moving from processor i
/// to processor j between intervals t-1 and t. An R × R dense slice is
/// infeasible at the paper's scales (8352² × T entries), so each interval is
/// stored sparsely keyed by the (source, destination) pair — particle
/// migration touches few rank pairs per interval.
class CommMatrix {
 public:
  CommMatrix() = default;
  CommMatrix(Rank num_ranks, std::size_t num_intervals);

  Rank num_ranks() const { return num_ranks_; }
  std::size_t num_intervals() const { return num_intervals_; }

  void add(Rank from, Rank to, std::size_t t, std::int64_t count = 1);

  /// Particles moving from `from` to `to` at interval t (0 if none).
  std::int64_t at(Rank from, Rank to, std::size_t t) const;

  /// All transfers in an interval as (from, to, count) triples,
  /// deterministically ordered.
  struct Transfer {
    Rank from;
    Rank to;
    std::int64_t count;
  };
  std::vector<Transfer> interval_transfers(std::size_t t) const;

  /// Total particles moved in an interval.
  std::int64_t interval_volume(std::size_t t) const;
  /// Number of distinct communicating rank pairs in an interval.
  std::size_t interval_pairs(std::size_t t) const;
  /// Particles sent by / received by one rank in an interval.
  std::int64_t sent_by(Rank r, std::size_t t) const;
  std::int64_t received_by(Rank r, std::size_t t) const;

  /// Total particles moved across the whole run.
  std::int64_t total_volume() const;

 private:
  std::uint64_t key(Rank from, Rank to) const {
    return static_cast<std::uint64_t>(from) *
               static_cast<std::uint64_t>(num_ranks_) +
           static_cast<std::uint64_t>(to);
  }

  Rank num_ranks_ = 0;
  std::size_t num_intervals_ = 0;
  std::vector<std::unordered_map<std::uint64_t, std::int64_t>> slices_;
};

}  // namespace picp
