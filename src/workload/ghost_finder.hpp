#pragma once

#include <vector>

#include "geom/vec3.hpp"
#include "mesh/partition.hpp"
#include "mesh/spectral_mesh.hpp"

namespace picp {

/// Finds the processors whose grid region a particle's projection filter
/// touches. A particle is a *ghost* on rank r when its influence radius (the
/// projection filter size) overlaps grid points owned by r while the
/// particle itself resides elsewhere (paper §II-A).
///
/// Ghosts are always defined against the grid (element) decomposition —
/// projection deposits onto grid points — regardless of which mapper owns
/// the particle data, which is what makes the ghost count grow with filter
/// size for both mapping algorithms (Fig 10b).
class GhostFinder {
 public:
  GhostFinder(const SpectralMesh& mesh, const MeshPartition& partition,
              double radius);

  double radius() const { return radius_; }

  /// Rank owning the grid element containing p.
  Rank resident_grid_rank(const Vec3& p) const {
    return partition_->owner_of(mesh_->element_of(p));
  }

  /// Fill `out` with the distinct ranks (excluding `exclude`) whose owned
  /// elements lie within `radius` of p. `out` is cleared first. Typical
  /// result size is 0-3 ranks, so `out` should be reused across calls.
  void ranks_near(const Vec3& p, Rank exclude, std::vector<Rank>& out) const;

 private:
  const SpectralMesh* mesh_;
  const MeshPartition* partition_;
  double radius_;
  double radius2_;
};

}  // namespace picp
