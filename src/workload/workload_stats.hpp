#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/comp_matrix.hpp"

namespace picp {

/// Load-balance and utilization summaries over a computation matrix —
/// the quantities behind Figs 1b, 5, 8, and 9.
struct UtilizationStats {
  Rank num_ranks = 0;
  /// Ranks that hold at least one particle at some interval (Fig 1b counts
  /// these; the paper's "81% idle" is 1 - ever_active_fraction).
  Rank ever_active = 0;
  double ever_active_fraction = 0.0;
  /// Mean over intervals of (active ranks / R) — the paper's Resource
  /// Utilization ("processors having at least one particle on average
  /// during the simulation", §II-A / Fig 9).
  double mean_active_fraction = 0.0;
  /// Peak particles on any rank at any interval (Fig 8's headline number).
  std::int64_t peak_load = 0;
};

UtilizationStats utilization(const CompMatrix& comp);

/// Max load per interval — Fig 5's series ("critical path" rank).
std::vector<std::int64_t> peak_per_interval(const CompMatrix& comp);

/// Load imbalance per interval: max / mean over all ranks (0 when empty).
std::vector<double> imbalance_per_interval(const CompMatrix& comp);

/// Active rank count per interval.
std::vector<Rank> active_per_interval(const CompMatrix& comp);

/// Render a downsampled ASCII heat-map of the matrix (Fig 1a), `width`
/// columns of intervals by `height` rows of rank groups; cells show relative
/// load with the ramp " .:-=+*#%@".
std::string ascii_heatmap(const CompMatrix& comp, std::size_t width = 72,
                          std::size_t height = 24);

}  // namespace picp
