#include "workload/generator.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "workload/ghost_finder.hpp"

namespace picp {

WorkloadGenerator::WorkloadGenerator(const SpectralMesh& mesh,
                                     const MeshPartition& partition,
                                     Mapper& mapper,
                                     const WorkloadParams& params)
    : mesh_(&mesh), partition_(&partition), mapper_(&mapper), params_(params) {
  PICP_REQUIRE(partition.num_ranks() == mapper.num_ranks(),
               "mapper and partition disagree on processor count");
  PICP_REQUIRE(params.interval_stride >= 1, "interval stride must be >= 1");
  if (params_.compute_ghosts)
    PICP_REQUIRE(params_.ghost_radius > 0.0,
                 "ghost accounting needs a positive filter radius");
  if (params_.threads > 1)
    pool_ = std::make_unique<ThreadPool>(params_.threads);
}

namespace {
std::size_t planned_intervals(std::size_t available,
                              const WorkloadParams& params) {
  const std::size_t strided =
      (available + params.interval_stride - 1) / params.interval_stride;
  return std::min(strided, params.max_intervals);
}
}  // namespace

WorkloadResult WorkloadGenerator::generate(TraceReader& trace) {
  trace.rewind();
  const std::size_t total =
      planned_intervals(static_cast<std::size_t>(trace.num_samples()), params_);
  WorkloadResult result;
  result.num_ranks = mapper_->num_ranks();
  result.elements_per_rank = partition_->elements_per_rank();
  result.comp_real = CompMatrix(result.num_ranks, total);
  result.comp_ghost = CompMatrix(result.num_ranks, total);
  result.comm_real = CommMatrix(result.num_ranks, total);
  result.comm_ghost = CommMatrix(result.num_ranks, total);
  result.iterations.reserve(total);
  result.partitions_per_interval.reserve(total);

  TraceSample sample;
  std::size_t seen = 0;
  std::size_t t = 0;
  while (t < total && trace.read_next(sample)) {
    if (seen++ % params_.interval_stride != 0) continue;
    params_.deadline.check("workload.interval");
    process_interval(t, sample.iteration, sample.positions, result);
    ++t;
  }
  PICP_ENSURE(t == total, "trace ended before the planned interval count");
  return result;
}

WorkloadResult WorkloadGenerator::generate(
    std::span<const TraceSample> samples) {
  const std::size_t total = planned_intervals(samples.size(), params_);
  WorkloadResult result;
  result.num_ranks = mapper_->num_ranks();
  result.elements_per_rank = partition_->elements_per_rank();
  result.comp_real = CompMatrix(result.num_ranks, total);
  result.comp_ghost = CompMatrix(result.num_ranks, total);
  result.comm_real = CommMatrix(result.num_ranks, total);
  result.comm_ghost = CommMatrix(result.num_ranks, total);
  result.iterations.reserve(total);
  result.partitions_per_interval.reserve(total);

  std::size_t t = 0;
  for (std::size_t s = 0; s < samples.size() && t < total;
       s += params_.interval_stride) {
    process_interval(t, samples[s].iteration, samples[s].positions, result);
    ++t;
  }
  return result;
}

void accumulate_interval_workload(
    const SpectralMesh& mesh, const MeshPartition& partition,
    std::span<const Vec3> positions, std::span<const Rank> owners,
    std::span<const Rank> prev_owners, const WorkloadParams& params,
    std::size_t t, WorkloadResult& result) {
  PICP_REQUIRE(owners.size() == positions.size(), "owner array size");

  // Computation load: real particles per rank.
  for (const Rank r : owners) result.comp_real.add(r, t, 1);

  // Communication load: migration between consecutive intervals (a particle
  // whose residing processor changed moves its data across ranks).
  if (params.compute_comm && t > 0 && prev_owners.size() == owners.size()) {
    for (std::size_t i = 0; i < owners.size(); ++i)
      if (owners[i] != prev_owners[i])
        result.comm_real.add(prev_owners[i], owners[i], t, 1);
  }

  // Ghost particles: influence radius crossing grid-region boundaries.
  if (params.compute_ghosts) {
    const GhostFinder finder(mesh, partition, params.ghost_radius);
    std::vector<Rank> ghost_ranks;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      finder.ranks_near(positions[i], owners[i], ghost_ranks);
      for (const Rank r : ghost_ranks) {
        result.comp_ghost.add(r, t, 1);
        if (params.compute_comm) result.comm_ghost.add(owners[i], r, t, 1);
      }
    }
  }
}

void WorkloadGenerator::process_interval(std::size_t t,
                                         std::uint64_t iteration,
                                         std::span<const Vec3> positions,
                                         WorkloadResult& result) {
  // Mimic the application's mapping algorithm on this interval's positions.
  mapper_->map(positions, owners_);
  PICP_ENSURE(owners_.size() == positions.size(), "mapper output size");

  result.iterations.push_back(iteration);
  result.partitions_per_interval.push_back(mapper_->num_partitions());

  if (pool_ == nullptr) {
    accumulate_interval_workload(*mesh_, *partition_, positions, owners_,
                                 prev_owners_, params_, t, result);
  } else {
    // Parallel path: the real-particle counting and migration scans are
    // memory-bandwidth bound and cheap; only the ghost search (a spatial
    // query per particle) is farmed out. Per-worker accumulators merge
    // serially, so the result is bit-identical to the serial path.
    WorkloadParams serial = params_;
    serial.compute_ghosts = false;
    accumulate_interval_workload(*mesh_, *partition_, positions, owners_,
                                 prev_owners_, serial, t, result);
    if (params_.compute_ghosts) {
      const GhostFinder finder(*mesh_, *partition_, params_.ghost_radius);
      const std::size_t workers = pool_->size();
      struct Local {
        std::vector<std::int64_t> ghost_counts;
        std::vector<std::pair<Rank, Rank>> sends;  // (owner, target)
      };
      std::vector<Local> locals(workers);
      const std::size_t n = positions.size();
      const std::size_t chunk = (n + workers - 1) / workers;
      for (std::size_t w = 0; w < workers; ++w) {
        const std::size_t begin = w * chunk;
        const std::size_t end = std::min(begin + chunk, n);
        if (begin >= end) break;
        pool_->submit([&, w, begin, end] {
          Local& local = locals[w];
          local.ghost_counts.assign(
              static_cast<std::size_t>(result.num_ranks), 0);
          std::vector<Rank> near;
          for (std::size_t i = begin; i < end; ++i) {
            finder.ranks_near(positions[i], owners_[i], near);
            for (const Rank r : near) {
              ++local.ghost_counts[static_cast<std::size_t>(r)];
              if (params_.compute_comm)
                local.sends.emplace_back(owners_[i], r);
            }
          }
        });
      }
      pool_->wait_idle();
      for (const Local& local : locals) {
        for (std::size_t r = 0; r < local.ghost_counts.size(); ++r)
          if (local.ghost_counts[r] != 0)
            result.comp_ghost.add(static_cast<Rank>(r), t,
                                  local.ghost_counts[r]);
        for (const auto& [owner, target] : local.sends)
          result.comm_ghost.add(owner, target, t, 1);
      }
    }
  }
  prev_owners_ = owners_;
}

}  // namespace picp
