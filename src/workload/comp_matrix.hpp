#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mesh/partition.hpp"

namespace picp {

/// The paper's Computation matrix P_comp: an R × T array where entry (r, t)
/// is the number of particles residing on processor r at sampled interval t
/// (Fig 1a is its heat-map). Stored interval-major so one interval is a
/// contiguous row. Separate instances track real and ghost particles.
class CompMatrix {
 public:
  CompMatrix() = default;
  CompMatrix(Rank num_ranks, std::size_t num_intervals);

  Rank num_ranks() const { return num_ranks_; }
  std::size_t num_intervals() const { return num_intervals_; }

  std::int64_t at(Rank r, std::size_t t) const {
    return data_[t * static_cast<std::size_t>(num_ranks_) +
                 static_cast<std::size_t>(r)];
  }
  void set(Rank r, std::size_t t, std::int64_t value) {
    data_[t * static_cast<std::size_t>(num_ranks_) +
          static_cast<std::size_t>(r)] = value;
  }
  void add(Rank r, std::size_t t, std::int64_t delta) {
    data_[t * static_cast<std::size_t>(num_ranks_) +
          static_cast<std::size_t>(r)] += delta;
  }

  /// One interval's per-rank loads as a contiguous row.
  std::span<const std::int64_t> interval(std::size_t t) const {
    return {data_.data() + t * static_cast<std::size_t>(num_ranks_),
            static_cast<std::size_t>(num_ranks_)};
  }
  std::span<std::int64_t> interval(std::size_t t) {
    return {data_.data() + t * static_cast<std::size_t>(num_ranks_),
            static_cast<std::size_t>(num_ranks_)};
  }

  /// Largest load in an interval (the critical-path rank, Fig 5).
  std::int64_t interval_max(std::size_t t) const;
  /// Total load in an interval (should equal the particle count for the
  /// real-particle matrix — conservation invariant).
  std::int64_t interval_total(std::size_t t) const;
  /// Ranks with non-zero load in an interval.
  Rank interval_active(std::size_t t) const;

  /// Max over all (r, t) entries.
  std::int64_t global_max() const;

  /// Write as CSV: rows = intervals, columns = ranks (Fig 1a's raw data).
  void write_csv(const std::string& path) const;

 private:
  Rank num_ranks_ = 0;
  std::size_t num_intervals_ = 0;
  std::vector<std::int64_t> data_;
};

}  // namespace picp
