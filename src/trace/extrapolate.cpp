#include "trace/extrapolate.hpp"

#include <algorithm>
#include <cmath>

#include "trace/trace_writer.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace picp {

double estimate_mean_spacing(std::span<const Vec3> positions) {
  PICP_REQUIRE(!positions.empty(), "no particles");
  Aabb box;
  for (const Vec3& p : positions) box.expand(p);
  const double volume = std::max(box.volume(), 1e-300);
  return std::cbrt(volume / static_cast<double>(positions.size()));
}

std::uint64_t extrapolate_trace(TraceReader& input,
                                const std::string& output_path,
                                const ExtrapolationParams& params) {
  const std::uint64_t np_in = input.num_particles();
  PICP_REQUIRE(params.target_particles >= np_in,
               "target particle count below the input trace's");
  PICP_REQUIRE(params.offset_scale >= 0.0, "offset scale non-negative");

  input.rewind();
  TraceSample sample;
  PICP_REQUIRE(input.read_next(sample), "input trace has no samples");

  // Offsets are sized by the initial cloud's mean spacing so clones fill
  // the gaps between parents instead of forming visible clusters.
  const double spacing =
      params.offset_scale * estimate_mean_spacing(sample.positions);

  const std::uint64_t np_out = params.target_particles;
  std::vector<Vec3> offsets(np_out);
  Xoshiro256 rng(params.seed);
  for (std::uint64_t j = 0; j < np_out; ++j) {
    if (j < np_in) {
      offsets[j] = Vec3();  // originals pass through untouched
    } else {
      offsets[j] = Vec3(spacing * rng.normal(), spacing * rng.normal(),
                        spacing * rng.normal());
    }
  }

  const Aabb domain = input.header().domain;
  const auto clamp_into = [&domain](Vec3 p) {
    p.x = std::clamp(p.x, domain.lo.x, domain.hi.x);
    p.y = std::clamp(p.y, domain.lo.y, domain.hi.y);
    p.z = std::clamp(p.z, domain.lo.z, domain.hi.z);
    return p;
  };

  TraceWriter writer(output_path, np_out, input.header().sample_stride,
                     domain, input.header().coord_kind);
  std::vector<Vec3> out(np_out);
  std::uint64_t samples = 0;
  do {
    for (std::uint64_t j = 0; j < np_out; ++j) {
      const std::uint64_t parent = j % np_in;
      out[j] = clamp_into(sample.positions[parent] + offsets[j]);
    }
    writer.append(sample.iteration, out);
    ++samples;
  } while (input.read_next(sample));
  writer.close();

  PICP_LOG_INFO << "extrapolated trace " << np_in << " -> " << np_out
                << " particles over " << samples << " samples ("
                << output_path << ")";
  return samples;
}

}  // namespace picp
