#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"
#include "util/error.hpp"

namespace picp {

/// The particle trace is the framework's primary input: particle positions
/// sampled every `sample_stride` solver iterations (the paper samples every
/// 100 iterations). Two on-disk versions exist (both little-endian):
///
/// v1 (legacy, read-only):
///   [ magic "PICPTRC1" | u32 version | u32 coord_kind | u64 num_particles
///     | u64 num_samples | u64 sample_stride | 6 × f64 domain ]
///   then per sample: [ u64 iteration | num_particles × 3 coords ]
///
/// v2 (current, crash-safe — see DESIGN.md "Trace format v2 & crash
/// safety"):
///   header = the v1 layout (magic "PICPTRC2") + u32 CRC32C of the
///   preceding 88 header bytes;
///   per sample, a framed record:
///     [ u32 frame_magic | u64 iteration | num_particles × 3 coords
///       | u32 CRC32C of the frame bytes before this field ]
///   sealed footer, appended at close:
///     [ u64 footer_magic | u64 num_samples
///       | u32 digest = CRC32C over the sequence of frame CRCs
///       | u32 CRC32C of the preceding 20 footer bytes ]
///
/// The writer streams frames into `<path>.part` and atomically renames the
/// sealed file over `<path>`, so the final name only ever holds a complete,
/// verified trace; an interrupted run leaves a salvageable `.part`.
///
/// coord_kind selects f32 (compact; default — matches the paper's concern
/// about hundreds-of-GB traces) or f64 storage.
enum class CoordKind : std::uint32_t { kFloat32 = 0, kFloat64 = 1 };

/// Corrupt or truncated trace bytes. Always carries a salvage hint: the
/// `picpredict trace verify` / `trace repair` subcommands recover the
/// longest valid sample prefix instead of losing the whole run.
class TraceCorruptError : public CorruptInputError {
 public:
  TraceCorruptError(const std::string& path, const std::string& detail)
      : CorruptInputError(
            path, detail,
            "inspect with `picpredict trace verify " + path +
                "`; recover the valid prefix with `picpredict trace repair " +
                path + " --out <fixed.trace>`") {}
};

struct TraceHeader {
  static constexpr char kMagicV1[8] = {'P', 'I', 'C', 'P', 'T', 'R', 'C', '1'};
  static constexpr char kMagicV2[8] = {'P', 'I', 'C', 'P', 'T', 'R', 'C', '2'};
  static constexpr std::uint32_t kVersionLatest = 2;
  /// Per-sample frame sync marker (v2). Arbitrary tag, never a legal
  /// iteration prefix in practice; the frame CRC is the real integrity
  /// check.
  static constexpr std::uint32_t kFrameMagic = 0x32435246u;  // "FRC2"
  static constexpr std::uint64_t kFooterMagic =
      0x444E455450434950ull;  // "PICPTEND"
  static constexpr std::size_t kFooterBytes = 24;

  std::uint32_t version = kVersionLatest;
  CoordKind coord_kind = CoordKind::kFloat32;
  std::uint64_t num_particles = 0;
  std::uint64_t num_samples = 0;
  std::uint64_t sample_stride = 1;
  Aabb domain;

  /// Bytes per particle position record.
  std::size_t coord_bytes() const {
    return coord_kind == CoordKind::kFloat32 ? 3 * sizeof(float)
                                             : 3 * sizeof(double);
  }
  /// Position payload bytes of one sample.
  std::uint64_t payload_bytes() const {
    return num_particles * static_cast<std::uint64_t>(coord_bytes());
  }
  /// On-disk size of one v1 sample (iteration stamp + positions).
  std::size_t sample_bytes() const {
    return sizeof(std::uint64_t) +
           static_cast<std::size_t>(payload_bytes());
  }
  /// On-disk size of one sample record for this header's version
  /// (v2 adds the frame magic and CRC).
  std::uint64_t frame_bytes() const {
    const std::uint64_t payload = payload_bytes();
    return version >= 2 ? sizeof(std::uint32_t) + sizeof(std::uint64_t) +
                              payload + sizeof(std::uint32_t)
                        : sizeof(std::uint64_t) + payload;
  }
  /// On-disk header size for a format version (v1: 88, v2: 92).
  static std::size_t header_bytes_for(std::uint32_t version) {
    const std::size_t v1 = sizeof(kMagicV1) + 2 * sizeof(std::uint32_t) +
                           3 * sizeof(std::uint64_t) + 6 * sizeof(double);
    return version >= 2 ? v1 + sizeof(std::uint32_t) : v1;
  }
  std::size_t header_bytes() const { return header_bytes_for(version); }
};

/// One decoded trace sample: all particle positions at one instant.
struct TraceSample {
  std::uint64_t iteration = 0;
  std::vector<Vec3> positions;
};

/// What a salvage scan found in a (possibly damaged) trace file.
struct SalvageReport {
  std::uint32_t version = 0;
  /// v2: a valid footer terminates the file; v1: the header's sample count
  /// exactly matches the file size (v1 has no footer).
  bool sealed = false;
  /// Sealed traces only: the footer's whole-file digest matches the frames
  /// actually present (always true for sealed v1, which has no digest).
  bool digest_ok = false;
  /// Sample count the header/footer claims (0 for an unsealed `.part`).
  std::uint64_t claimed_samples = 0;
  /// Complete, checksum-clean samples actually recoverable.
  std::uint64_t valid_samples = 0;
  /// Bytes covered by the header + valid frames (the salvageable prefix).
  std::uint64_t valid_bytes = 0;
  std::uint64_t file_bytes = 0;
  /// Human-readable description of the first fault ("ok" when clean).
  std::string detail = "ok";

  /// True iff the trace is complete and every integrity check passed.
  bool intact() const {
    return sealed && digest_ok && valid_samples == claimed_samples;
  }
};

/// Serialize a header (including its stored num_samples) to the exact
/// on-disk byte layout for `header.version`; v2 appends the header CRC.
std::vector<char> encode_trace_header(const TraceHeader& header);

/// Serialize the v2 sealed footer.
std::vector<char> encode_trace_footer(std::uint64_t num_samples,
                                      std::uint32_t digest);

/// Parse and validate a trace header from `in`, leaving the stream at the
/// first sample. `file_bytes` is the file's actual size, used to reject
/// headers whose claimed sample count cannot fit (a malformed header must
/// fail with a typed error, not attempt a multi-TB allocation); pass
/// `check_claimed_fits = false` when scanning unsealed/damaged files whose
/// header fields are allowed to disagree with the byte count.
/// Throws TraceCorruptError (or Error for a non-trace file).
TraceHeader decode_trace_header(std::istream& in, const std::string& path,
                                std::uint64_t file_bytes,
                                bool check_claimed_fits = true);

}  // namespace picp
