#pragma once

#include <cstdint>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"

namespace picp {

/// The particle trace is the framework's primary input: particle positions
/// sampled every `sample_stride` solver iterations (the paper samples every
/// 100 iterations). Binary layout (little-endian):
///
///   [ magic "PICPTRC1" | u32 version | u32 coord_kind | u64 num_particles
///     | u64 num_samples | u64 sample_stride | 6 × f64 domain ]
///   then per sample: [ u64 iteration | num_particles × 3 coords ]
///
/// coord_kind selects f32 (compact; default — matches the paper's concern
/// about hundreds-of-GB traces) or f64 storage.
enum class CoordKind : std::uint32_t { kFloat32 = 0, kFloat64 = 1 };

struct TraceHeader {
  static constexpr char kMagic[8] = {'P', 'I', 'C', 'P', 'T', 'R', 'C', '1'};
  static constexpr std::uint32_t kVersion = 1;

  CoordKind coord_kind = CoordKind::kFloat32;
  std::uint64_t num_particles = 0;
  std::uint64_t num_samples = 0;
  std::uint64_t sample_stride = 1;
  Aabb domain;

  /// Bytes per particle position record.
  std::size_t coord_bytes() const {
    return coord_kind == CoordKind::kFloat32 ? 3 * sizeof(float)
                                             : 3 * sizeof(double);
  }
  /// On-disk size of one sample (iteration stamp + positions).
  std::size_t sample_bytes() const {
    return sizeof(std::uint64_t) + num_particles * coord_bytes();
  }
};

/// One decoded trace sample: all particle positions at one instant.
struct TraceSample {
  std::uint64_t iteration = 0;
  std::vector<Vec3> positions;
};

}  // namespace picp
