#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "trace/trace_format.hpp"
#include "util/atomic_file.hpp"
#include "util/crc32.hpp"

namespace picp {

/// Appends trace samples to a binary trace file, crash-safely: all frames
/// stream into `<path>.part`; `close()` seals the footer, patches the
/// header, fsyncs, and atomically renames the result over `<path>`. A crash
/// at any point therefore leaves either the previous complete trace or a
/// salvageable `.part` — never a half-written file under the final name.
///
/// v2 (default) wraps every sample in a CRC32C-checked frame and seals a
/// footer with the sample count and a whole-file digest; `version = 1`
/// writes the legacy unchecksummed layout for compatibility tests.
class TraceWriter {
 public:
  TraceWriter(const std::string& path, std::uint64_t num_particles,
              std::uint64_t sample_stride, const Aabb& domain,
              CoordKind coord_kind = CoordKind::kFloat32,
              std::uint32_t version = TraceHeader::kVersionLatest);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Continue appending to the `.part` file a crashed run left behind
  /// (v2 only). Verifies the first `expected_samples` frames checksum
  /// clean, truncates any partial tail written after the checkpoint, and
  /// restores the running whole-file digest so the sealed footer is
  /// byte-identical to an uninterrupted run's. When `expected_bytes` is
  /// non-zero the verified prefix must end exactly there.
  static std::unique_ptr<TraceWriter> resume(const std::string& path,
                                             std::uint64_t expected_samples,
                                             std::uint64_t expected_bytes = 0);

  /// Write one sample; `positions.size()` must equal `num_particles`.
  void append(std::uint64_t iteration, std::span<const Vec3> positions);

  std::uint64_t samples_written() const { return samples_; }
  /// Bytes of header + complete frames currently in the `.part` file —
  /// what a checkpoint records as the resume offset.
  std::uint64_t bytes_written() const;

  /// Flush the `.part` file to stable storage (checkpoint support): every
  /// frame appended so far survives a crash after sync() returns.
  void sync();

  /// Seal (v2: footer + digest), patch the header, fsync, and atomically
  /// publish the file under its final name. Idempotent.
  void close();

  /// Testing / crash-simulation: stop writing but keep the unsealed
  /// `.part` on disk and never publish the final file — the on-disk state
  /// a power loss would leave.
  void abandon();

  /// Where frames are being staged until close() publishes them.
  std::string partial_path() const;

 private:
  struct ResumeTag {};
  TraceWriter(ResumeTag, const std::string& path, const TraceHeader& header,
              std::uint64_t samples, std::uint64_t bytes,
              const Crc32c& digest);

  void write_header();

  std::string path_;
  TraceHeader header_;
  std::unique_ptr<AtomicFile> file_;
  std::uint64_t samples_ = 0;
  Crc32c digest_;  // running CRC over the sequence of frame CRCs (v2)
  bool closed_ = false;
  std::vector<float> f32_buffer_;
  std::vector<char> frame_buffer_;
};

}  // namespace picp
