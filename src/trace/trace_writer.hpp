#pragma once

#include <fstream>
#include <span>
#include <string>

#include "trace/trace_format.hpp"

namespace picp {

/// Appends trace samples to a binary trace file. The sample count in the
/// header is patched when the writer is closed (or destroyed), so traces can
/// be produced incrementally by a running simulation.
class TraceWriter {
 public:
  TraceWriter(const std::string& path, std::uint64_t num_particles,
              std::uint64_t sample_stride, const Aabb& domain,
              CoordKind coord_kind = CoordKind::kFloat32);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Write one sample; `positions.size()` must equal `num_particles`.
  void append(std::uint64_t iteration, std::span<const Vec3> positions);

  std::uint64_t samples_written() const { return samples_; }

  /// Flush and patch the header. Idempotent.
  void close();

 private:
  void write_header();

  std::ofstream out_;
  std::string path_;
  TraceHeader header_;
  std::uint64_t samples_ = 0;
  bool closed_ = false;
  std::vector<float> f32_buffer_;
};

}  // namespace picp
