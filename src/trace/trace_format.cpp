#include "trace/trace_format.hpp"

#include <cstring>
#include <istream>
#include <limits>

#include "util/crc32.hpp"

namespace picp {

namespace {

template <typename T>
void append_pod(std::vector<char>& out, const T& value) {
  const auto* bytes = reinterpret_cast<const char*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

template <typename T>
T take_pod(const char*& cursor) {
  T value;
  std::memcpy(&value, cursor, sizeof(T));
  cursor += sizeof(T);
  return value;
}

}  // namespace

std::vector<char> encode_trace_header(const TraceHeader& header) {
  std::vector<char> out;
  out.reserve(header.header_bytes());
  const char* magic =
      header.version >= 2 ? TraceHeader::kMagicV2 : TraceHeader::kMagicV1;
  out.insert(out.end(), magic, magic + 8);
  append_pod(out, header.version);
  append_pod(out, static_cast<std::uint32_t>(header.coord_kind));
  append_pod(out, header.num_particles);
  append_pod(out, header.num_samples);
  append_pod(out, header.sample_stride);
  append_pod(out, header.domain.lo.x);
  append_pod(out, header.domain.lo.y);
  append_pod(out, header.domain.lo.z);
  append_pod(out, header.domain.hi.x);
  append_pod(out, header.domain.hi.y);
  append_pod(out, header.domain.hi.z);
  if (header.version >= 2) append_pod(out, crc32c(out.data(), out.size()));
  return out;
}

std::vector<char> encode_trace_footer(std::uint64_t num_samples,
                                      std::uint32_t digest) {
  std::vector<char> out;
  out.reserve(TraceHeader::kFooterBytes);
  append_pod(out, TraceHeader::kFooterMagic);
  append_pod(out, num_samples);
  append_pod(out, digest);
  append_pod(out, crc32c(out.data(), out.size()));
  return out;
}

TraceHeader decode_trace_header(std::istream& in, const std::string& path,
                                std::uint64_t file_bytes,
                                bool check_claimed_fits) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good()) throw TraceCorruptError(path, "file shorter than the magic");
  std::uint32_t version = 0;
  if (std::memcmp(magic, TraceHeader::kMagicV1, sizeof(magic)) == 0)
    version = 1;
  else if (std::memcmp(magic, TraceHeader::kMagicV2, sizeof(magic)) == 0)
    version = 2;
  else
    throw Error("not a picpredict trace file: " + path);

  const std::size_t header_bytes = TraceHeader::header_bytes_for(version);
  std::vector<char> raw(header_bytes);
  std::memcpy(raw.data(), magic, sizeof(magic));
  in.read(raw.data() + sizeof(magic),
          static_cast<std::streamsize>(header_bytes - sizeof(magic)));
  if (!in.good()) throw TraceCorruptError(path, "truncated trace header");

  const char* cursor = raw.data() + sizeof(magic);
  TraceHeader header;
  header.version = take_pod<std::uint32_t>(cursor);
  if (header.version != version)
    throw TraceCorruptError(path, "header version field (" +
                                      std::to_string(header.version) +
                                      ") disagrees with the magic (v" +
                                      std::to_string(version) + ")");
  const auto kind = take_pod<std::uint32_t>(cursor);
  if (kind > 1)
    throw TraceCorruptError(path,
                            "bad coordinate kind " + std::to_string(kind));
  header.coord_kind = static_cast<CoordKind>(kind);
  header.num_particles = take_pod<std::uint64_t>(cursor);
  header.num_samples = take_pod<std::uint64_t>(cursor);
  header.sample_stride = take_pod<std::uint64_t>(cursor);
  header.domain.lo.x = take_pod<double>(cursor);
  header.domain.lo.y = take_pod<double>(cursor);
  header.domain.lo.z = take_pod<double>(cursor);
  header.domain.hi.x = take_pod<double>(cursor);
  header.domain.hi.y = take_pod<double>(cursor);
  header.domain.hi.z = take_pod<double>(cursor);

  if (version >= 2) {
    const std::uint32_t stored = take_pod<std::uint32_t>(cursor);
    const std::uint32_t computed =
        crc32c(raw.data(), header_bytes - sizeof(std::uint32_t));
    if (stored != computed)
      throw TraceCorruptError(path, "header checksum mismatch");
  }

  // Plausibility: reject field values whose implied byte counts overflow or
  // cannot fit in the actual file, so a malformed header fails here instead
  // of driving a multi-TB allocation or a bogus read loop downstream.
  if (header.num_particles == 0)
    throw TraceCorruptError(path, "trace has no particles");
  if (header.sample_stride == 0)
    throw TraceCorruptError(path, "sample stride is zero");
  const auto coord = static_cast<std::uint64_t>(header.coord_bytes());
  const std::uint64_t max_np =
      (std::numeric_limits<std::uint64_t>::max() - 64) / coord;
  if (header.num_particles > max_np)
    throw TraceCorruptError(
        path, "num_particles " + std::to_string(header.num_particles) +
                  " implies a sample size that overflows");
  if (check_claimed_fits && header.num_samples > 0) {
    const std::uint64_t frame = header.frame_bytes();
    const std::uint64_t fixed =
        header_bytes +
        (version >= 2 ? static_cast<std::uint64_t>(TraceHeader::kFooterBytes)
                      : 0);
    if (file_bytes < fixed || header.num_samples > (file_bytes - fixed) / frame)
      throw TraceCorruptError(
          path, "header claims " + std::to_string(header.num_samples) +
                    " samples x " + std::to_string(frame) +
                    " bytes but the file holds only " +
                    std::to_string(file_bytes) + " bytes");
  }
  return header;
}

}  // namespace picp
