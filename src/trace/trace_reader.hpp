#pragma once

#include <fstream>
#include <string>

#include "trace/trace_format.hpp"
#include "util/crc32.hpp"

namespace picp {

/// How strictly a trace is opened.
enum class TraceReadMode {
  /// Default: the file must be complete (v2: sealed footer present and
  /// consistent); every frame checksum is verified on the fly and a
  /// whole-file digest check runs when the final sample is reached. Any
  /// fault throws TraceCorruptError with a salvage hint.
  kStrict,
  /// Recovery: pre-scan the file and expose the longest checksum-clean
  /// sample prefix of a truncated/corrupted/unsealed trace (including the
  /// `.part` file an interrupted run leaves). `salvage_report()` says
  /// exactly what was recovered and what was lost.
  kSalvage,
};

/// Streaming trace reader: decodes one sample at a time so workload
/// generation over a trace far larger than memory stays O(num_particles)
/// in space — the property the paper relies on for hundreds-of-GB traces.
/// Reads both v2 (checksummed frames, sealed footer) and legacy v1 traces.
class TraceReader {
 public:
  explicit TraceReader(const std::string& path,
                       TraceReadMode mode = TraceReadMode::kStrict);

  const TraceHeader& header() const { return header_; }
  std::uint64_t num_particles() const { return header_.num_particles; }
  /// Samples this reader will yield: the header's count in strict mode,
  /// the recovered prefix length in salvage mode.
  std::uint64_t num_samples() const { return effective_samples_; }

  /// Decode the next sample into `sample` (its buffer is reused). Returns
  /// false at end of trace. Verifies the frame checksum (v2).
  bool read_next(TraceSample& sample);

  /// Rewind to the first sample.
  void rewind();

  /// Index of the next sample to be read (0-based).
  std::uint64_t cursor() const { return cursor_; }

  /// File offset of the next frame — what a checkpoint records so a
  /// resumed writer knows where the verified prefix ends.
  std::uint64_t byte_offset() const {
    return data_offset_ + cursor_ * header_.frame_bytes();
  }

  /// Stored CRC of the most recently read frame (v2; 0 for v1).
  std::uint32_t last_frame_crc() const { return last_frame_crc_; }

  /// Scan results (meaningful detail in salvage mode; strict mode fills
  /// the trivial "intact" report implied by its own checks passing).
  const SalvageReport& salvage_report() const { return report_; }

 private:
  void open_strict(std::uint64_t file_bytes);
  void prescan_salvage(std::uint64_t file_bytes);
  bool read_footer_at(std::uint64_t pos, std::uint64_t& num_samples,
                      std::uint32_t& digest);

  std::ifstream in_;
  std::string path_;
  TraceReadMode mode_;
  TraceHeader header_;
  std::uint64_t data_offset_ = 0;
  std::uint64_t cursor_ = 0;
  std::uint64_t effective_samples_ = 0;
  bool sealed_ = false;
  std::uint32_t footer_digest_ = 0;
  std::uint32_t last_frame_crc_ = 0;
  Crc32c running_digest_;
  bool sequential_ = true;  // read from sample 0 with no seeks since
  SalvageReport report_;
  std::vector<char> frame_buffer_;
};

/// Read an entire trace into memory (tests / small runs only).
std::vector<TraceSample> read_full_trace(const std::string& path);

}  // namespace picp
