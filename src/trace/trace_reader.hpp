#pragma once

#include <fstream>
#include <string>

#include "trace/trace_format.hpp"

namespace picp {

/// Streaming trace reader: decodes one sample at a time so workload
/// generation over a trace far larger than memory stays O(num_particles)
/// in space — the property the paper relies on for hundreds-of-GB traces.
class TraceReader {
 public:
  explicit TraceReader(const std::string& path);

  const TraceHeader& header() const { return header_; }
  std::uint64_t num_particles() const { return header_.num_particles; }
  std::uint64_t num_samples() const { return header_.num_samples; }

  /// Decode the next sample into `sample` (its buffer is reused). Returns
  /// false at end of trace.
  bool read_next(TraceSample& sample);

  /// Rewind to the first sample.
  void rewind();

  /// Index of the next sample to be read (0-based).
  std::uint64_t cursor() const { return cursor_; }

 private:
  std::ifstream in_;
  std::string path_;
  TraceHeader header_;
  std::streamoff data_offset_ = 0;
  std::uint64_t cursor_ = 0;
  std::vector<float> f32_buffer_;
};

/// Read an entire trace into memory (tests / small runs only).
std::vector<TraceSample> read_full_trace(const std::string& path);

}  // namespace picp
