#pragma once

#include <string>

#include "trace/trace_format.hpp"

namespace picp {

/// Full integrity scan of a trace file (v1 or v2, sealed or the `.part` an
/// interrupted run left behind): walks every frame, verifies checksums and
/// the sealed footer/digest, and reports exactly how many samples are
/// recoverable and what was lost. Never throws for damaged sample data —
/// only when the header itself is unreadable (nothing is recoverable then).
SalvageReport scan_trace(const std::string& path);

/// Recover the longest valid sample prefix of `input_path` into a fresh,
/// sealed v2 trace at `output_path` (written atomically — the output only
/// appears complete). Returns the scan report of the input; the number of
/// samples in the repaired file is `report.valid_samples`.
SalvageReport repair_trace(const std::string& input_path,
                           const std::string& output_path);

/// One-line human summary of a scan ("sealed v2 trace, 40/40 samples, ok").
std::string describe(const SalvageReport& report);

}  // namespace picp
