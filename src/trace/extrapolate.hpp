#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "trace/trace_reader.hpp"

namespace picp {

/// Trace extrapolation (the paper's §VI future work): synthesize a
/// representative trace with *more* particles than a cheap low-fidelity run
/// produced, so large-scale workload studies do not require a large-scale
/// trace collection.
///
/// Scheme: every synthetic particle follows a parent particle from the input
/// trace with a fixed spatial offset drawn once, at the scale of the local
/// mean inter-particle spacing. Because the offset is constant in time, the
/// synthetic cloud preserves the parent cloud's density profile, boundary
/// dynamics, and migration behavior while scaling the per-processor counts
/// by the extrapolation factor.
struct ExtrapolationParams {
  /// Particle count of the synthetic trace (>= the input trace's count).
  std::uint64_t target_particles = 0;
  /// Offset magnitude in multiples of the estimated mean spacing of the
  /// input cloud at the first sample.
  double offset_scale = 1.0;
  std::uint64_t seed = 20210517;
};

/// Stream `input` (rewound first) and write the extrapolated trace to
/// `output_path` (same coordinate kind, stride, and domain; positions are
/// clamped to the domain). Returns the number of samples written.
std::uint64_t extrapolate_trace(TraceReader& input,
                                const std::string& output_path,
                                const ExtrapolationParams& params);

/// Mean inter-particle spacing estimate (cube root of bounding volume per
/// particle) for one position set; exposed for tests.
double estimate_mean_spacing(std::span<const Vec3> positions);

}  // namespace picp
