#include "trace/trace_reader.hpp"

#include <cstring>

#include "util/error.hpp"

namespace picp {

namespace {
template <typename T>
void read_pod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
}
}  // namespace

TraceReader::TraceReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  PICP_REQUIRE(in_.is_open(), "cannot open trace file: " + path);
  char magic[8];
  in_.read(magic, sizeof(magic));
  PICP_REQUIRE(in_.good() &&
                   std::memcmp(magic, TraceHeader::kMagic, sizeof(magic)) == 0,
               "not a picpredict trace file: " + path);
  std::uint32_t version = 0;
  std::uint32_t kind = 0;
  read_pod(in_, version);
  PICP_REQUIRE(version == TraceHeader::kVersion,
               "unsupported trace version in " + path);
  read_pod(in_, kind);
  PICP_REQUIRE(kind <= 1, "bad coordinate kind in trace " + path);
  header_.coord_kind = static_cast<CoordKind>(kind);
  read_pod(in_, header_.num_particles);
  read_pod(in_, header_.num_samples);
  read_pod(in_, header_.sample_stride);
  read_pod(in_, header_.domain.lo.x);
  read_pod(in_, header_.domain.lo.y);
  read_pod(in_, header_.domain.lo.z);
  read_pod(in_, header_.domain.hi.x);
  read_pod(in_, header_.domain.hi.y);
  read_pod(in_, header_.domain.hi.z);
  PICP_REQUIRE(in_.good(), "truncated trace header: " + path);
  PICP_REQUIRE(header_.num_particles > 0, "trace has no particles: " + path);
  data_offset_ = in_.tellg();
}

bool TraceReader::read_next(TraceSample& sample) {
  if (cursor_ >= header_.num_samples) return false;
  read_pod(in_, sample.iteration);
  const std::size_t np = header_.num_particles;
  sample.positions.resize(np);
  if (header_.coord_kind == CoordKind::kFloat32) {
    f32_buffer_.resize(np * 3);
    in_.read(reinterpret_cast<char*>(f32_buffer_.data()),
             static_cast<std::streamsize>(np * 3 * sizeof(float)));
    for (std::size_t i = 0; i < np; ++i)
      sample.positions[i] = Vec3(f32_buffer_[3 * i + 0], f32_buffer_[3 * i + 1],
                                 f32_buffer_[3 * i + 2]);
  } else {
    in_.read(reinterpret_cast<char*>(sample.positions.data()),
             static_cast<std::streamsize>(np * sizeof(Vec3)));
  }
  PICP_REQUIRE(in_.good(), "truncated trace sample in " + path_);
  ++cursor_;
  return true;
}

void TraceReader::rewind() {
  in_.clear();
  in_.seekg(data_offset_);
  cursor_ = 0;
}

std::vector<TraceSample> read_full_trace(const std::string& path) {
  TraceReader reader(path);
  std::vector<TraceSample> samples;
  samples.reserve(reader.num_samples());
  TraceSample sample;
  while (reader.read_next(sample)) samples.push_back(sample);
  return samples;
}

}  // namespace picp
