#include "trace/trace_reader.hpp"

#include <cstring>

#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace picp {

namespace {
template <typename T>
T pod_at(const char* bytes) {
  T value;
  std::memcpy(&value, bytes, sizeof(T));
  return value;
}

/// Trace-ingest observability: samples and payload bytes delivered to
/// callers, plus salvage-mode outcomes. Registered once per process.
void count_sample_read(std::uint64_t frame_bytes) {
  static telemetry::Counter& samples =
      telemetry::registry().counter("trace.read_samples");
  static telemetry::Counter& bytes =
      telemetry::registry().counter("trace.read_bytes");
  samples.add();
  bytes.add(frame_bytes);
}
}  // namespace

TraceReader::TraceReader(const std::string& path, TraceReadMode mode)
    : in_(path, std::ios::binary), path_(path), mode_(mode) {
  PICP_REQUIRE(in_.is_open(), "cannot open trace file: " + path);
  in_.seekg(0, std::ios::end);
  const auto file_bytes = static_cast<std::uint64_t>(in_.tellg());
  in_.seekg(0);
  header_ = decode_trace_header(in_, path_, file_bytes,
                                mode_ == TraceReadMode::kStrict);
  data_offset_ = static_cast<std::uint64_t>(in_.tellg());
  report_.version = header_.version;
  report_.file_bytes = file_bytes;
  if (mode_ == TraceReadMode::kStrict)
    open_strict(file_bytes);
  else
    prescan_salvage(file_bytes);
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(data_offset_));
}

bool TraceReader::read_footer_at(std::uint64_t pos, std::uint64_t& num_samples,
                                 std::uint32_t& digest) {
  char raw[TraceHeader::kFooterBytes];
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(pos));
  in_.read(raw, sizeof(raw));
  if (!in_.good()) return false;
  if (pod_at<std::uint64_t>(raw) != TraceHeader::kFooterMagic) return false;
  const auto stored_crc = pod_at<std::uint32_t>(raw + 20);
  if (stored_crc != crc32c(raw, 20)) return false;
  num_samples = pod_at<std::uint64_t>(raw + 8);
  digest = pod_at<std::uint32_t>(raw + 16);
  return true;
}

void TraceReader::open_strict(std::uint64_t file_bytes) {
  const std::uint64_t frame = header_.frame_bytes();
  if (header_.version >= 2) {
    const std::uint64_t expected = data_offset_ +
                                   header_.num_samples * frame +
                                   TraceHeader::kFooterBytes;
    if (file_bytes != expected)
      throw TraceCorruptError(
          path_, "unsealed or truncated trace: header claims " +
                     std::to_string(header_.num_samples) + " samples (" +
                     std::to_string(expected) + " bytes) but the file holds " +
                     std::to_string(file_bytes) + " bytes");
    std::uint64_t footer_samples = 0;
    if (!read_footer_at(file_bytes - TraceHeader::kFooterBytes,
                        footer_samples, footer_digest_))
      throw TraceCorruptError(path_, "missing or corrupt sealed footer");
    if (footer_samples != header_.num_samples)
      throw TraceCorruptError(
          path_, "footer sample count (" + std::to_string(footer_samples) +
                     ") disagrees with the header (" +
                     std::to_string(header_.num_samples) + ")");
    sealed_ = true;
  } else if (file_bytes < data_offset_ + header_.num_samples * frame) {
    throw TraceCorruptError(path_, "trace shorter than its header claims");
  }
  effective_samples_ = header_.num_samples;
  report_.sealed = header_.version < 2 || sealed_;
  report_.digest_ok = report_.sealed;
  report_.claimed_samples = header_.num_samples;
  report_.valid_samples = header_.num_samples;
  report_.valid_bytes = data_offset_ + header_.num_samples * frame;
}

void TraceReader::prescan_salvage(std::uint64_t file_bytes) {
  const std::uint64_t frame = header_.frame_bytes();
  report_.claimed_samples = header_.num_samples;

  if (header_.version < 2) {
    // v1 has no framing: every fully-present sample is recoverable. This
    // also rescues crash files whose header count was never patched.
    const std::uint64_t data = file_bytes - data_offset_;
    report_.valid_samples = data / frame;
    report_.valid_bytes = data_offset_ + report_.valid_samples * frame;
    report_.sealed = data % frame == 0 &&
                     report_.valid_samples == header_.num_samples;
    report_.digest_ok = report_.sealed;
    if (!report_.sealed)
      report_.detail =
          "v1 trace: header claims " + std::to_string(header_.num_samples) +
          " samples, file holds " + std::to_string(report_.valid_samples) +
          " complete samples (" + std::to_string(data % frame) +
          " trailing bytes)";
    effective_samples_ = report_.valid_samples;
    if (telemetry::enabled()) {
      auto& reg = telemetry::registry();
      reg.counter("trace.salvage_scans").add();
      reg.counter("trace.salvage_samples").add(report_.valid_samples);
      if (!report_.intact()) reg.counter("trace.salvage_damaged").add();
    }
    return;
  }

  std::vector<char> raw(static_cast<std::size_t>(frame));
  std::uint64_t pos = data_offset_;
  Crc32c digest;
  std::uint64_t valid = 0;
  std::uint64_t footer_samples = 0;
  std::uint32_t footer_digest = 0;
  bool found_footer = false;
  while (true) {
    const std::uint64_t remaining = file_bytes - pos;
    if (remaining == TraceHeader::kFooterBytes &&
        read_footer_at(pos, footer_samples, footer_digest)) {
      found_footer = true;
      break;
    }
    if (remaining == 0) {
      report_.detail = "unsealed trace (no footer); ends on a frame boundary";
      break;
    }
    if (remaining < frame) {
      report_.detail = "unsealed trace with a partial trailing frame (" +
                       std::to_string(remaining) + " bytes)";
      break;
    }
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(pos));
    in_.read(raw.data(), static_cast<std::streamsize>(frame));
    if (!in_.good()) {
      report_.detail = "read failed at byte " + std::to_string(pos);
      break;
    }
    if (pod_at<std::uint32_t>(raw.data()) != TraceHeader::kFrameMagic) {
      report_.detail = "bad frame magic at byte " + std::to_string(pos) +
                       " (sample " + std::to_string(valid) + ")";
      break;
    }
    const auto stored =
        pod_at<std::uint32_t>(raw.data() + frame - sizeof(std::uint32_t));
    if (stored != crc32c(raw.data(), static_cast<std::size_t>(
                                         frame - sizeof(std::uint32_t)))) {
      report_.detail = "frame checksum mismatch at byte " +
                       std::to_string(pos) + " (sample " +
                       std::to_string(valid) + ")";
      break;
    }
    digest.update_pod(stored);
    ++valid;
    pos += frame;
  }

  report_.valid_samples = valid;
  report_.valid_bytes = data_offset_ + valid * frame;
  report_.sealed = found_footer;
  if (found_footer) {
    report_.claimed_samples = footer_samples;
    sealed_ = true;
    footer_digest_ = footer_digest;
    report_.digest_ok = digest.value() == footer_digest &&
                        footer_samples == valid &&
                        header_.num_samples == footer_samples;
    if (!report_.digest_ok)
      report_.detail = digest.value() != footer_digest
                           ? "whole-file digest mismatch"
                           : "footer/header sample counts disagree with the "
                             "frames present";
  }
  effective_samples_ = valid;
  if (telemetry::enabled()) {
    auto& reg = telemetry::registry();
    reg.counter("trace.salvage_scans").add();
    reg.counter("trace.salvage_samples").add(report_.valid_samples);
    if (!report_.intact()) reg.counter("trace.salvage_damaged").add();
  }
}

bool TraceReader::read_next(TraceSample& sample) {
  if (cursor_ >= effective_samples_) return false;
  failpoint::inject("trace.read");
  const std::size_t np = static_cast<std::size_t>(header_.num_particles);
  sample.positions.resize(np);

  if (header_.version >= 2) {
    const auto frame = static_cast<std::size_t>(header_.frame_bytes());
    frame_buffer_.resize(frame);
    in_.read(frame_buffer_.data(), static_cast<std::streamsize>(frame));
    if (!in_.good())
      throw TraceCorruptError(path_, "truncated trace sample " +
                                         std::to_string(cursor_));
    if (pod_at<std::uint32_t>(frame_buffer_.data()) != TraceHeader::kFrameMagic)
      throw TraceCorruptError(path_, "bad frame magic at sample " +
                                         std::to_string(cursor_));
    const auto stored = pod_at<std::uint32_t>(frame_buffer_.data() + frame -
                                              sizeof(std::uint32_t));
    if (stored !=
        crc32c(frame_buffer_.data(), frame - sizeof(std::uint32_t)))
      throw TraceCorruptError(path_, "frame checksum mismatch at sample " +
                                         std::to_string(cursor_));
    last_frame_crc_ = stored;
    running_digest_.update_pod(stored);
    const char* payload = frame_buffer_.data() + sizeof(std::uint32_t);
    sample.iteration = pod_at<std::uint64_t>(payload);
    payload += sizeof(std::uint64_t);
    if (header_.coord_kind == CoordKind::kFloat32) {
      for (std::size_t i = 0; i < np; ++i) {
        const auto* c = payload + i * 3 * sizeof(float);
        sample.positions[i] = Vec3(pod_at<float>(c),
                                   pod_at<float>(c + sizeof(float)),
                                   pod_at<float>(c + 2 * sizeof(float)));
      }
    } else {
      std::memcpy(sample.positions.data(), payload, np * sizeof(Vec3));
    }
    ++cursor_;
    if (telemetry::enabled()) count_sample_read(frame);
    // End of a sequential strict read: the frame CRCs must reproduce the
    // sealed footer's whole-file digest (catches e.g. reordered frames
    // whose individual checksums are clean).
    if (mode_ == TraceReadMode::kStrict && sealed_ && sequential_ &&
        cursor_ == effective_samples_ &&
        running_digest_.value() != footer_digest_)
      throw TraceCorruptError(path_, "whole-file digest mismatch");
    return true;
  }

  in_.read(reinterpret_cast<char*>(&sample.iteration),
           sizeof(sample.iteration));
  if (header_.coord_kind == CoordKind::kFloat32) {
    frame_buffer_.resize(np * 3 * sizeof(float));
    in_.read(frame_buffer_.data(),
             static_cast<std::streamsize>(np * 3 * sizeof(float)));
    for (std::size_t i = 0; i < np; ++i) {
      const char* c = frame_buffer_.data() + i * 3 * sizeof(float);
      sample.positions[i] =
          Vec3(pod_at<float>(c), pod_at<float>(c + sizeof(float)),
               pod_at<float>(c + 2 * sizeof(float)));
    }
  } else {
    in_.read(reinterpret_cast<char*>(sample.positions.data()),
             static_cast<std::streamsize>(np * sizeof(Vec3)));
  }
  if (!in_.good())
    throw TraceCorruptError(path_,
                            "truncated trace sample " + std::to_string(cursor_));
  ++cursor_;
  if (telemetry::enabled()) {
    const std::size_t coord =
        header_.coord_kind == CoordKind::kFloat32 ? sizeof(float) : sizeof(double);
    count_sample_read(sizeof(sample.iteration) + np * 3 * coord);
  }
  return true;
}

void TraceReader::rewind() {
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(data_offset_));
  cursor_ = 0;
  running_digest_.reset();
  sequential_ = true;
}

std::vector<TraceSample> read_full_trace(const std::string& path) {
  TraceReader reader(path);
  std::vector<TraceSample> samples;
  samples.reserve(reader.num_samples());
  TraceSample sample;
  while (reader.read_next(sample)) samples.push_back(sample);
  return samples;
}

}  // namespace picp
