#include "trace/trace_salvage.hpp"

#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"
#include "util/logging.hpp"

namespace picp {

SalvageReport scan_trace(const std::string& path) {
  TraceReader reader(path, TraceReadMode::kSalvage);
  return reader.salvage_report();
}

SalvageReport repair_trace(const std::string& input_path,
                           const std::string& output_path) {
  TraceReader reader(input_path, TraceReadMode::kSalvage);
  const SalvageReport report = reader.salvage_report();
  const TraceHeader& header = reader.header();
  // Re-encode the recovered prefix as a sealed v2 trace. Decoding and
  // re-encoding positions is lossless for both coordinate kinds (f32
  // round-trips exactly through the f64 TraceSample), so the repaired
  // samples are bit-identical to the originals.
  TraceWriter writer(output_path, header.num_particles, header.sample_stride,
                     header.domain, header.coord_kind);
  TraceSample sample;
  while (reader.read_next(sample)) writer.append(sample.iteration,
                                                 sample.positions);
  writer.close();
  PICP_LOG_INFO << "trace repair: recovered " << report.valid_samples
                << " samples (" << report.valid_bytes << " of "
                << report.file_bytes << " bytes) from " << input_path
                << " -> " << output_path << " [" << report.detail << "]";
  return report;
}

std::string describe(const SalvageReport& report) {
  std::string out = report.sealed ? "sealed" : "unsealed";
  out += " v" + std::to_string(report.version) + " trace, ";
  out += std::to_string(report.valid_samples) + "/" +
         std::to_string(report.claimed_samples) + " samples valid, " +
         std::to_string(report.valid_bytes) + "/" +
         std::to_string(report.file_bytes) + " bytes, ";
  out += report.intact() ? "ok" : report.detail;
  return out;
}

}  // namespace picp
