#include "trace/trace_writer.hpp"

#include <cstring>

#include "util/error.hpp"

namespace picp {

namespace {
template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}
}  // namespace

TraceWriter::TraceWriter(const std::string& path, std::uint64_t num_particles,
                         std::uint64_t sample_stride, const Aabb& domain,
                         CoordKind coord_kind)
    : out_(path, std::ios::binary), path_(path) {
  PICP_REQUIRE(out_.is_open(), "cannot open trace file for writing: " + path);
  PICP_REQUIRE(num_particles > 0, "trace needs at least one particle");
  PICP_REQUIRE(sample_stride > 0, "sample stride must be positive");
  header_.coord_kind = coord_kind;
  header_.num_particles = num_particles;
  header_.num_samples = 0;
  header_.sample_stride = sample_stride;
  header_.domain = domain;
  write_header();
}

TraceWriter::~TraceWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; an unpatched header is detected by the
    // reader as a truncated trace.
  }
}

void TraceWriter::write_header() {
  out_.write(TraceHeader::kMagic, sizeof(TraceHeader::kMagic));
  write_pod(out_, TraceHeader::kVersion);
  write_pod(out_, static_cast<std::uint32_t>(header_.coord_kind));
  write_pod(out_, header_.num_particles);
  write_pod(out_, samples_);
  write_pod(out_, header_.sample_stride);
  write_pod(out_, header_.domain.lo.x);
  write_pod(out_, header_.domain.lo.y);
  write_pod(out_, header_.domain.lo.z);
  write_pod(out_, header_.domain.hi.x);
  write_pod(out_, header_.domain.hi.y);
  write_pod(out_, header_.domain.hi.z);
}

void TraceWriter::append(std::uint64_t iteration,
                         std::span<const Vec3> positions) {
  PICP_REQUIRE(!closed_, "append on closed TraceWriter");
  PICP_REQUIRE(positions.size() == header_.num_particles,
               "position count does not match trace header");
  write_pod(out_, iteration);
  if (header_.coord_kind == CoordKind::kFloat32) {
    f32_buffer_.resize(positions.size() * 3);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      f32_buffer_[3 * i + 0] = static_cast<float>(positions[i].x);
      f32_buffer_[3 * i + 1] = static_cast<float>(positions[i].y);
      f32_buffer_[3 * i + 2] = static_cast<float>(positions[i].z);
    }
    out_.write(reinterpret_cast<const char*>(f32_buffer_.data()),
               static_cast<std::streamsize>(f32_buffer_.size() * sizeof(float)));
  } else {
    out_.write(reinterpret_cast<const char*>(positions.data()),
               static_cast<std::streamsize>(positions.size() * sizeof(Vec3)));
  }
  PICP_ENSURE(out_.good(), "trace write failed (disk full?): " + path_);
  ++samples_;
}

void TraceWriter::close() {
  if (closed_) return;
  closed_ = true;
  // Patch the sample count in the header (offset: magic + version + kind +
  // num_particles).
  const std::streamoff offset =
      sizeof(TraceHeader::kMagic) + 2 * sizeof(std::uint32_t) +
      sizeof(std::uint64_t);
  out_.seekp(offset);
  write_pod(out_, samples_);
  out_.flush();
  PICP_ENSURE(out_.good(), "trace header patch failed: " + path_);
  out_.close();
}

}  // namespace picp
