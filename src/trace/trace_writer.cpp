#include "trace/trace_writer.hpp"

#include <cstring>

#include "trace/trace_reader.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"

namespace picp {

namespace {

AtomicFileOptions part_file_options() {
  AtomicFileOptions options;
  options.suffix = ".part";
  // An interrupted run's partial trace is the whole point of salvage /
  // resume — never delete it on abnormal teardown.
  options.keep_on_abort = true;
  return options;
}

template <typename T>
void append_pod(std::vector<char>& out, const T& value) {
  const auto* bytes = reinterpret_cast<const char*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path, std::uint64_t num_particles,
                         std::uint64_t sample_stride, const Aabb& domain,
                         CoordKind coord_kind, std::uint32_t version)
    : path_(path) {
  PICP_REQUIRE(num_particles > 0, "trace needs at least one particle");
  PICP_REQUIRE(sample_stride > 0, "sample stride must be positive");
  PICP_REQUIRE(version == 1 || version == 2,
               "unsupported trace format version " + std::to_string(version));
  header_.version = version;
  header_.coord_kind = coord_kind;
  header_.num_particles = num_particles;
  header_.num_samples = 0;
  header_.sample_stride = sample_stride;
  header_.domain = domain;
  file_ = std::make_unique<AtomicFile>(path, part_file_options());
  write_header();
}

TraceWriter::TraceWriter(ResumeTag, const std::string& path,
                         const TraceHeader& header, std::uint64_t samples,
                         std::uint64_t bytes, const Crc32c& digest)
    : path_(path),
      header_(header),
      samples_(samples),
      digest_(digest) {
  file_ = AtomicFile::reopen(path, bytes, part_file_options());
}

std::unique_ptr<TraceWriter> TraceWriter::resume(
    const std::string& path, std::uint64_t expected_samples,
    std::uint64_t expected_bytes) {
  const std::string part = path + ".part";
  TraceReader scan(part, TraceReadMode::kSalvage);
  if (scan.header().version < 2)
    throw TraceCorruptError(part, "resume requires a v2 trace");
  const SalvageReport& report = scan.salvage_report();
  if (report.valid_samples < expected_samples)
    throw TraceCorruptError(
        part, "checkpoint expects " + std::to_string(expected_samples) +
                  " trace samples but only " +
                  std::to_string(report.valid_samples) +
                  " verify clean (" + report.detail + ")");
  // Replay the verified prefix to restore the running whole-file digest —
  // the sealed footer must be byte-identical to an uninterrupted run's.
  Crc32c digest;
  TraceSample sample;
  for (std::uint64_t s = 0; s < expected_samples; ++s) {
    PICP_ENSURE(scan.read_next(sample), "salvage scan shorter than reported");
    digest.update_pod(scan.last_frame_crc());
  }
  const std::uint64_t bytes = scan.byte_offset();
  if (expected_bytes != 0 && bytes != expected_bytes)
    throw TraceCorruptError(
        part, "checkpoint records a trace offset of " +
                  std::to_string(expected_bytes) + " bytes but " +
                  std::to_string(expected_samples) + " frames end at " +
                  std::to_string(bytes));
  TraceHeader header = scan.header();
  header.num_samples = 0;  // still unsealed
  return std::unique_ptr<TraceWriter>(new TraceWriter(
      ResumeTag{}, path, header, expected_samples, bytes, digest));
}

TraceWriter::~TraceWriter() {
  try {
    close();
  } catch (const std::exception& e) {
    // Destructors must not throw; the unsealed `.part` is detected by the
    // reader / salvage scan. Losing the error silently cost users entire
    // traces — always say what happened and where.
    PICP_LOG_WARN << "TraceWriter: failed to seal trace " << path_
                  << " during destruction (partial data kept at "
                  << partial_path() << "): " << e.what();
  } catch (...) {
    PICP_LOG_WARN << "TraceWriter: failed to seal trace " << path_
                  << " during destruction (partial data kept at "
                  << partial_path() << "): unknown error";
  }
}

std::string TraceWriter::partial_path() const {
  return file_ ? file_->temp_path() : path_ + ".part";
}

std::uint64_t TraceWriter::bytes_written() const {
  return file_ ? file_->offset() : 0;
}

void TraceWriter::write_header() {
  const std::vector<char> bytes = encode_trace_header(header_);
  file_->write(bytes.data(), bytes.size());
  PICP_ENSURE(file_->offset() == header_.header_bytes(),
              "trace header write failed: " + path_);
}

void TraceWriter::append(std::uint64_t iteration,
                         std::span<const Vec3> positions) {
  PICP_REQUIRE(!closed_, "append on closed TraceWriter");
  PICP_REQUIRE(positions.size() == header_.num_particles,
               "position count does not match trace header");
  failpoint::inject("trace.append");
  frame_buffer_.clear();
  if (header_.version >= 2) append_pod(frame_buffer_, TraceHeader::kFrameMagic);
  append_pod(frame_buffer_, iteration);
  if (header_.coord_kind == CoordKind::kFloat32) {
    f32_buffer_.resize(positions.size() * 3);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      f32_buffer_[3 * i + 0] = static_cast<float>(positions[i].x);
      f32_buffer_[3 * i + 1] = static_cast<float>(positions[i].y);
      f32_buffer_[3 * i + 2] = static_cast<float>(positions[i].z);
    }
    const auto* raw = reinterpret_cast<const char*>(f32_buffer_.data());
    frame_buffer_.insert(frame_buffer_.end(), raw,
                         raw + f32_buffer_.size() * sizeof(float));
  } else {
    const auto* raw = reinterpret_cast<const char*>(positions.data());
    frame_buffer_.insert(frame_buffer_.end(), raw,
                         raw + positions.size() * sizeof(Vec3));
  }
  if (header_.version >= 2) {
    const std::uint32_t crc = crc32c(frame_buffer_.data(),
                                     frame_buffer_.size());
    append_pod(frame_buffer_, crc);
    digest_.update_pod(crc);
  }
  file_->write(frame_buffer_.data(), frame_buffer_.size());
  ++samples_;
}

void TraceWriter::sync() {
  PICP_REQUIRE(!closed_, "sync on closed TraceWriter");
  file_->sync();
}

void TraceWriter::close() {
  if (closed_) return;
  closed_ = true;
  if (header_.version >= 2) {
    const std::vector<char> footer =
        encode_trace_footer(samples_, digest_.value());
    file_->write(footer.data(), footer.size());
  }
  // Patch the whole header in place with the final sample count (v2 headers
  // carry a CRC over their bytes, so the full block is rewritten).
  header_.num_samples = samples_;
  const std::vector<char> header_bytes = encode_trace_header(header_);
  file_->write_at(0, header_bytes.data(), header_bytes.size());
  file_->commit();
}

void TraceWriter::abandon() {
  if (closed_) return;
  closed_ = true;
  file_->abort();
}

}  // namespace picp
