#pragma once

#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "picsim/instrumentation.hpp"
#include "workload/generator.hpp"

namespace picp {

/// Per-kernel prediction accuracy against instrumented measurements —
/// the paper's Fig 7 (MAPE of key kernels per processor configuration).
struct KernelAccuracy {
  std::string kernel;
  std::size_t samples = 0;
  double mape = 0.0;       // percent, per (rank, interval) record
  double peak_error = 0.0; // worst single |err|/actual, percent
  /// MAPE of the per-interval aggregate (kernel time summed over ranks) —
  /// robust to per-record timer noise on microsecond kernels, and the
  /// granularity a system-level prediction ultimately consumes.
  double aggregate_mape = 0.0;
};

struct ValidationReport {
  std::vector<KernelAccuracy> kernels;
  /// Weighted (by sample count) average MAPE over kernels — the paper's
  /// headline 8.42%.
  double average_mape = 0.0;
};

/// Compare measured kernel times against model predictions evaluated on
/// *generated* workload (end-to-end: workload replay error + model error,
/// exactly what the paper validates). Records whose measured time is below
/// `floor_seconds` are skipped (idle ranks / timer noise).
ValidationReport validate_predictions(const KernelTimings& measured,
                                      const Predictor& predictor,
                                      const WorkloadResult& workload,
                                      double floor_seconds = 1e-7);

}  // namespace picp
