#include "core/claims.hpp"

#include <algorithm>

#include "mapping/bin_mapper.hpp"
#include "mapping/mapper.hpp"
#include "trace/trace_reader.hpp"
#include "util/timer.hpp"

namespace picp::claims {

WorkloadResult mapping_workload(const SpectralMesh& mesh,
                                const std::string& trace_path, Rank ranks,
                                const std::string& mapper_kind,
                                double filter_size) {
  const MeshPartition partition = rcb_partition(mesh, ranks);
  const auto mapper = make_mapper(mapper_kind, mesh, partition, filter_size);
  WorkloadParams params;
  params.compute_ghosts = false;
  params.compute_comm = false;
  WorkloadGenerator generator(mesh, partition, *mapper, params);
  TraceReader trace(trace_path);
  return generator.generate(trace);
}

std::map<Rank, std::vector<std::int64_t>> peak_series(
    const SpectralMesh& mesh, const std::string& trace_path,
    const std::vector<Rank>& rank_counts, const std::string& mapper_kind,
    double filter_size) {
  std::map<Rank, std::vector<std::int64_t>> peaks;
  for (const Rank ranks : rank_counts) {
    const WorkloadResult workload =
        mapping_workload(mesh, trace_path, ranks, mapper_kind, filter_size);
    peaks[ranks] = peak_per_interval(workload.comp_real);
  }
  return peaks;
}

ScalingSplit scaling_split(
    const std::map<Rank, std::vector<std::int64_t>>& peaks, Rank base) {
  ScalingSplit split;
  const auto base_it = peaks.find(base);
  if (base_it == peaks.end()) return split;
  const std::vector<std::int64_t>& base_peaks = base_it->second;
  split.num_intervals = base_peaks.size();
  split.split_index = split.num_intervals;

  const auto next_it = std::next(base_it);
  if (next_it == peaks.end()) return split;
  for (std::size_t t = 0; t < split.num_intervals; ++t) {
    if (next_it->second[t] < base_peaks[t]) {
      split.split_index = t;
      break;
    }
  }
  for (std::size_t t = 0; t < split.num_intervals; ++t) {
    bool identical = true;
    for (auto it = std::next(next_it); it != peaks.end(); ++it)
      if (it->second[t] != next_it->second[t]) {
        identical = false;
        break;
      }
    if (identical) ++split.identical_above;
  }
  return split;
}

UtilizationClaim utilization_claim(const CompMatrix& comp) {
  UtilizationClaim claim;
  claim.stats = utilization(comp);
  claim.idle_pct = 100.0 * (1.0 - claim.stats.ever_active_fraction);
  claim.resource_utilization_pct = 100.0 * claim.stats.mean_active_fraction;
  return claim;
}

BinGrowth relaxed_bin_growth(const std::string& trace_path,
                             double filter_size, std::size_t stride) {
  if (stride == 0) stride = 1;
  BinGrowth growth;
  BinMapper relaxed(1, filter_size, BinTree::kUnlimitedBins);
  TraceReader trace(trace_path);
  TraceSample sample;
  std::vector<Rank> owners;
  std::size_t index = 0;
  double prev_volume = 0.0;
  while (trace.read_next(sample)) {
    if (index++ % stride != 0) continue;
    relaxed.map(sample.positions, owners);
    const std::int64_t bins = relaxed.num_partitions();
    const double volume = relaxed.tree().root_bounds().volume();
    if (growth.bins.empty()) growth.first_bins = bins;
    growth.iterations.push_back(sample.iteration);
    growth.bins.push_back(bins);
    growth.volumes.push_back(volume);
    growth.max_bins = std::max(growth.max_bins, bins);
    if (volume + 1e-12 < prev_volume) growth.volume_monotone = false;
    prev_volume = volume;
  }
  return growth;
}

void MapeSummary::add(const ValidationReport& report) {
  for (const KernelAccuracy& k : report.kernels) {
    weighted_mape_ += k.mape * static_cast<double>(k.samples);
    aggregate_sum_ += k.aggregate_mape;
    peak_ = std::max(peak_, k.mape);
    samples_ += k.samples;
    ++kernels_;
  }
}

double MapeSummary::record_mape() const {
  return samples_ == 0 ? 0.0
                       : weighted_mape_ / static_cast<double>(samples_);
}

double MapeSummary::aggregate_mape() const {
  return kernels_ == 0 ? 0.0
                       : aggregate_sum_ / static_cast<double>(kernels_);
}

double peak_ratio(std::int64_t element_peak, std::int64_t bin_peak) {
  return static_cast<double>(element_peak) /
         static_cast<double>(std::max<std::int64_t>(1, bin_peak));
}

double time_workload_generation(const SpectralMesh& mesh,
                                const std::string& trace_path, Rank ranks,
                                const std::string& mapper_kind,
                                double filter_size, bool with_ghosts,
                                WorkloadResult* out) {
  const MeshPartition partition = rcb_partition(mesh, ranks);
  const auto mapper = make_mapper(mapper_kind, mesh, partition, filter_size);
  WorkloadParams params;
  params.ghost_radius = filter_size;
  params.compute_ghosts = with_ghosts;
  params.compute_comm = with_ghosts;
  WorkloadGenerator generator(mesh, partition, *mapper, params);
  TraceReader trace(trace_path);
  const Stopwatch watch;
  WorkloadResult workload = generator.generate(trace);
  const double seconds = watch.seconds();
  if (out != nullptr) *out = std::move(workload);
  return seconds;
}

}  // namespace picp::claims
