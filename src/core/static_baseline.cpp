#include "core/static_baseline.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace picp {

WorkloadResult static_uniform_workload(const StaticBaselineParams& params) {
  PICP_REQUIRE(params.num_ranks > 0, "baseline needs ranks");
  PICP_REQUIRE(params.num_intervals > 0, "baseline needs intervals");
  PICP_REQUIRE(params.num_particles >= 0, "negative particle count");
  PICP_REQUIRE(params.ghost_fraction >= 0.0, "negative ghost fraction");

  WorkloadResult result;
  result.num_ranks = params.num_ranks;
  result.comp_real = CompMatrix(params.num_ranks, params.num_intervals);
  result.comp_ghost = CompMatrix(params.num_ranks, params.num_intervals);
  result.comm_real = CommMatrix(params.num_ranks, params.num_intervals);
  result.comm_ghost = CommMatrix(params.num_ranks, params.num_intervals);
  result.iterations.resize(params.num_intervals);
  result.partitions_per_interval.assign(params.num_intervals,
                                        params.num_ranks);

  // Uniform distribution with the remainder spread over the first ranks —
  // the most charitable version of the static assumption.
  const std::int64_t base = params.num_particles / params.num_ranks;
  const std::int64_t extra = params.num_particles % params.num_ranks;
  for (std::size_t t = 0; t < params.num_intervals; ++t) {
    result.iterations[t] = t;
    for (Rank r = 0; r < params.num_ranks; ++r) {
      const std::int64_t np = base + (r < extra ? 1 : 0);
      result.comp_real.set(r, t, np);
      result.comp_ghost.set(
          r, t,
          static_cast<std::int64_t>(std::llround(
              params.ghost_fraction * static_cast<double>(np))));
    }
  }
  return result;
}

WorkloadComparison compare_workloads(const WorkloadResult& reference,
                                     const WorkloadResult& baseline) {
  PICP_REQUIRE(reference.num_ranks == baseline.num_ranks,
               "rank count mismatch");
  const std::size_t intervals =
      std::min(reference.num_intervals(), baseline.num_intervals());
  PICP_REQUIRE(intervals > 0, "no overlapping intervals");

  WorkloadComparison cmp;
  double err_sum = 0.0;
  std::size_t used = 0;
  for (std::size_t t = 0; t < intervals; ++t) {
    const auto ref_peak =
        static_cast<double>(reference.comp_real.interval_max(t));
    const auto base_peak =
        static_cast<double>(baseline.comp_real.interval_max(t));
    if (ref_peak <= 0.0) continue;
    err_sum += std::abs(ref_peak - base_peak) / ref_peak * 100.0;
    ++used;
    if (base_peak > 0.0)
      cmp.worst_peak_ratio =
          std::max(cmp.worst_peak_ratio, ref_peak / base_peak);
  }
  cmp.peak_load_mape = used > 0 ? err_sum / static_cast<double>(used) : 0.0;
  for (std::size_t t = 0; t < intervals; ++t)
    cmp.missed_migration += reference.comm_real.interval_volume(t) -
                            baseline.comm_real.interval_volume(t);
  return cmp;
}

}  // namespace picp
