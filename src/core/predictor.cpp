#include "core/predictor.hpp"

#include "core/features.hpp"
#include "util/error.hpp"

namespace picp {

Predictor::Predictor(const ModelSet& models, double filter_size)
    : models_(&models), filter_size_(filter_size) {
  PICP_REQUIRE(filter_size > 0.0, "filter size must be positive");
  has_kernel_.resize(kNumKernels);
  for (int k = 0; k < kNumKernels; ++k)
    has_kernel_[static_cast<std::size_t>(k)] =
        models.has(kernel_name(static_cast<Kernel>(k)));
}

double Predictor::predict_kernel(Kernel k, const WorkloadResult& workload,
                                 Rank rank, std::size_t interval) const {
  const auto features =
      features_from_workload(k, workload, rank, interval, filter_size_);
  return models_->predict(kernel_name(k), features);
}

std::vector<double> Predictor::compute_table(
    const WorkloadResult& workload) const {
  const auto r_count = static_cast<std::size_t>(workload.num_ranks);
  const std::size_t t_count = workload.num_intervals();
  std::vector<double> table(r_count * t_count, 0.0);
  for (std::size_t t = 0; t < t_count; ++t) {
    for (Rank r = 0; r < workload.num_ranks; ++r) {
      double total = 0.0;
      for (int k = 0; k < kNumKernels; ++k) {
        if (!has_kernel_[static_cast<std::size_t>(k)]) continue;
        total += predict_kernel(static_cast<Kernel>(k), workload, r, t);
      }
      table[t * r_count + static_cast<std::size_t>(r)] = total;
    }
  }
  return table;
}

TraceSimInput Predictor::sim_input(const WorkloadResult& workload,
                                   const NetworkParams& network) const {
  TraceSimInput input;
  input.num_ranks = workload.num_ranks;
  input.num_intervals = workload.num_intervals();
  input.compute_seconds = compute_table(workload);
  input.comm_real = &workload.comm_real;
  input.comm_ghost = &workload.comm_ghost;
  input.network = network;
  return input;
}

}  // namespace picp
