#pragma once

#include <vector>

#include "bsst/trace_sim.hpp"
#include "model/model_set.hpp"
#include "picsim/kernels.hpp"
#include "workload/generator.hpp"

namespace picp {

/// Applies the trained performance models to generated workload — the
/// framework's prediction step (the role of the paper's "python script" in
/// §IV-B, and the input producer for the Simulation Platform).
class Predictor {
 public:
  Predictor(const ModelSet& models, double filter_size);

  /// Predicted seconds of one kernel on one (rank, interval).
  double predict_kernel(Kernel k, const WorkloadResult& workload, Rank rank,
                        std::size_t interval) const;

  /// Per-(rank, interval) total particle-phase compute time (sum over all
  /// modeled kernels), laid out interval-major for the trace simulator.
  std::vector<double> compute_table(const WorkloadResult& workload) const;

  /// Assemble the full trace-simulation input (compute table + comm
  /// matrices + network) from generated workload.
  TraceSimInput sim_input(const WorkloadResult& workload,
                          const NetworkParams& network) const;

  const ModelSet& models() const { return *models_; }
  double filter_size() const { return filter_size_; }

 private:
  const ModelSet* models_;
  double filter_size_;
  std::vector<bool> has_kernel_;
};

}  // namespace picp
