#pragma once

// Claim-evaluation library for the paper's per-experiment index (DESIGN.md):
// the metric computations behind Figs 1, 5-10, the §II gen-cost table, and
// the §IV-B optimal-processor-count rule, extracted from the bench/ binaries
// so that `bench/fig*` and the `claims` ctest tier compute identical numbers
// from identical runs. Everything is parameterized by trace path, rank
// ladder, and filter size: the benches drive it at paper scale, the claims
// tests at fixture scale.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/validation.hpp"
#include "mesh/partition.hpp"
#include "mesh/spectral_mesh.hpp"
#include "workload/generator.hpp"
#include "workload/workload_stats.hpp"

namespace picp::claims {

/// Generate the computation workload (no ghosts/comm) for one
/// (rank count, mapper kind) combination from a trace file — the shared
/// boilerplate of Figs 1, 5, 8 and 9.
WorkloadResult mapping_workload(const SpectralMesh& mesh,
                                const std::string& trace_path, Rank ranks,
                                const std::string& mapper_kind,
                                double filter_size);

/// Peak particles-per-processor series for each rank count (Fig 5's curves,
/// Fig 8's per-interval peaks), all under one mapper kind.
std::map<Rank, std::vector<std::int64_t>> peak_series(
    const SpectralMesh& mesh, const std::string& trace_path,
    const std::vector<Rank>& rank_counts, const std::string& mapper_kind,
    double filter_size);

/// Fig 5 shape summary over a peak_series result.
struct ScalingSplit {
  /// First interval where the next-larger configuration's peak drops below
  /// the base configuration's (== num_intervals when they never separate).
  std::size_t split_index = 0;
  /// Intervals on which every configuration above the base is identical.
  std::size_t identical_above = 0;
  std::size_t num_intervals = 0;
};
ScalingSplit scaling_split(
    const std::map<Rank, std::vector<std::int64_t>>& peaks, Rank base);

/// Fig 1b / Fig 9 utilization metrics of a computation matrix.
struct UtilizationClaim {
  UtilizationStats stats;
  double idle_pct = 0.0;                 // 100 * (1 - ever_active_fraction)
  double resource_utilization_pct = 0.0; // 100 * mean_active_fraction
};
UtilizationClaim utilization_claim(const CompMatrix& comp);

/// Fig 6 / Fig 10a: bins generated over a run with the processor-count cap
/// relaxed. `stride` subsamples the trace (Fig 10a uses 4 for speed).
struct BinGrowth {
  std::vector<std::uint64_t> iterations;
  std::vector<std::int64_t> bins;
  std::vector<double> volumes;   // particle boundary volume per interval
  std::int64_t first_bins = 0;
  std::int64_t max_bins = 0;     // == §IV-B optimal processor count
  bool volume_monotone = true;
};
BinGrowth relaxed_bin_growth(const std::string& trace_path,
                             double filter_size, std::size_t stride = 1);

/// Fig 7: grand MAPE accumulation across per-configuration validation
/// reports (sample-weighted per-record MAPE, mean per-kernel aggregate
/// MAPE, worst per-kernel MAPE).
struct MapeSummary {
  void add(const ValidationReport& report);
  double record_mape() const;     // paper's per-sample average
  double aggregate_mape() const;  // paper's 8.42% figure
  double peak_kernel_mape() const { return peak_; }
  std::size_t samples() const { return samples_; }
  std::size_t kernels() const { return kernels_; }

 private:
  double weighted_mape_ = 0.0;
  double aggregate_sum_ = 0.0;
  double peak_ = 0.0;
  std::size_t samples_ = 0;
  std::size_t kernels_ = 0;
};

/// Fig 8: element-to-bin peak-workload ratio (guards the zero-peak case).
double peak_ratio(std::int64_t element_peak, std::int64_t bin_peak);

/// §II gen-cost: wall time of one workload generation pass over the trace,
/// with or without ghost/communication computation. The generated workload
/// is returned through `out` when non-null (so callers can assert on it
/// without paying for a second pass).
double time_workload_generation(const SpectralMesh& mesh,
                                const std::string& trace_path, Rank ranks,
                                const std::string& mapper_kind,
                                double filter_size, bool with_ghosts,
                                WorkloadResult* out = nullptr);

}  // namespace picp::claims
