#pragma once

#include <string>

#include "bsst/trace_sim.hpp"
#include "core/predictor.hpp"
#include "mesh/spectral_mesh.hpp"
#include "model/model_set.hpp"
#include "trace/trace_reader.hpp"
#include "util/deadline.hpp"
#include "workload/generator.hpp"

namespace picp {

/// One target-system prediction request: the paper's configuration-file
/// inputs (system configuration = processor count; application
/// configuration = mapping algorithm and problem parameters).
struct PredictionConfig {
  std::string mapper_kind = "bin";
  Rank num_ranks = 1044;
  /// Projection filter size (ghost radius + bin threshold).
  double filter_size = 0.023;
  NetworkParams network;
  /// Workload-generation tuning (strides / interval caps for sweeps).
  std::size_t max_intervals = static_cast<std::size_t>(-1);
  std::size_t interval_stride = 1;
  bool compute_ghosts = true;
  bool compute_comm = true;
  /// Per-request budget, checked at stage boundaries (partition, mapper,
  /// per-interval generation, simulation). NOT part of any cache
  /// fingerprint — two requests for the same artifact with different
  /// budgets are the same artifact.
  Deadline deadline;
};

/// Everything a full prediction produces.
struct PredictionOutcome {
  WorkloadResult workload;
  SimReport sim;
  double workload_gen_seconds = 0.0;
  double sim_seconds = 0.0;
};

/// The end-to-end prediction framework (paper Fig 2): particle trace +
/// configuration → Dynamic Workload Generator → performance models →
/// system-level simulation → predicted application performance. One
/// pipeline instance serves any number of target processor counts from the
/// same trace — the paper's central "single trace, any R" property.
class PredictionPipeline {
 public:
  PredictionPipeline(const SpectralMesh& mesh, ModelSet models);

  /// Workload generation only (no performance models needed) — enough for
  /// the scalability / algorithm-evaluation studies (Figs 1, 5, 6, 8, 9).
  WorkloadResult generate_workload(TraceReader& trace,
                                   const PredictionConfig& config) const;

  /// Models + trace-driven DES over an already-generated workload. Touches
  /// no trace and shares nothing mutable, so any number of threads may
  /// simulate concurrently against cached WorkloadResults — the serving
  /// hot path (`src/serve`), and the second stage of predict().
  SimReport simulate_workload(const WorkloadResult& workload,
                              const PredictionConfig& config) const;

  /// Full prediction: workload + models + trace-driven DES. Exactly
  /// generate_workload() followed by simulate_workload() — the one-shot CLI
  /// and the caching daemon run the same code, just with different
  /// workload reuse.
  PredictionOutcome predict(TraceReader& trace,
                            const PredictionConfig& config) const;

  const SpectralMesh& mesh() const { return *mesh_; }
  const ModelSet& models() const { return models_; }

 private:
  const SpectralMesh* mesh_;
  ModelSet models_;
};

}  // namespace picp
