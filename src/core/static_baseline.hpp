#pragma once

#include <cstdint>

#include "workload/generator.hpp"

namespace picp {

/// The static-workload assumption the paper's introduction argues against:
/// existing prediction methods "assume a workload that is statically
/// distributed across the processors". This baseline materializes that
/// assumption — every processor holds N_p / R particles at every interval,
/// no migration, ghosts estimated from a uniform-density surface heuristic —
/// so benches can quantify exactly how much accuracy the Dynamic Workload
/// Generator buys on irregular PIC workloads.
struct StaticBaselineParams {
  Rank num_ranks = 0;
  std::size_t num_intervals = 0;
  std::int64_t num_particles = 0;
  /// Per-rank ghost estimate as a fraction of the per-rank particle count
  /// (0 disables ghost modeling in the baseline).
  double ghost_fraction = 0.0;
};

/// Build the uniform static workload. Iterations are numbered 0..T-1 with a
/// unit stride (the baseline has no notion of real solver iterations).
WorkloadResult static_uniform_workload(const StaticBaselineParams& params);

/// Error metrics of a baseline against reference (dynamically generated or
/// measured) workload: how far the static assumption is from reality.
struct WorkloadComparison {
  /// Mean over intervals of |peak_ref - peak_base| / peak_ref (percent).
  double peak_load_mape = 0.0;
  /// Reference peak / baseline peak at the worst interval.
  double worst_peak_ratio = 0.0;
  /// Migration volume the baseline misses entirely (particles).
  std::int64_t missed_migration = 0;
};

WorkloadComparison compare_workloads(const WorkloadResult& reference,
                                     const WorkloadResult& baseline);

}  // namespace picp
