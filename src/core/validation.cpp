#include "core/validation.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"

namespace picp {

ValidationReport validate_predictions(const KernelTimings& measured,
                                      const Predictor& predictor,
                                      const WorkloadResult& workload,
                                      double floor_seconds) {
  struct Acc {
    double err_sum = 0.0;
    double peak = 0.0;
    std::size_t n = 0;
    // per-interval sums of measured / predicted seconds
    std::map<std::uint32_t, std::pair<double, double>> interval_sums;
  };
  std::vector<Acc> acc(kNumKernels);

  for (const TimingRecord& rec : measured.records()) {
    if (rec.seconds < floor_seconds) continue;
    if (rec.interval >= workload.num_intervals()) continue;
    const double predicted = predictor.predict_kernel(
        rec.kernel, workload, rec.rank, rec.interval);
    const double rel =
        std::abs(rec.seconds - predicted) / rec.seconds * 100.0;
    auto& a = acc[static_cast<std::size_t>(rec.kernel)];
    a.err_sum += rel;
    a.peak = std::max(a.peak, rel);
    ++a.n;
    auto& sums = a.interval_sums[rec.interval];
    sums.first += rec.seconds;
    sums.second += predicted;
  }

  ValidationReport report;
  double weighted = 0.0;
  std::size_t total = 0;
  for (int k = 0; k < kNumKernels; ++k) {
    const Acc& a = acc[static_cast<std::size_t>(k)];
    if (a.n == 0) continue;
    KernelAccuracy ka;
    ka.kernel = kernel_name(static_cast<Kernel>(k));
    ka.samples = a.n;
    ka.mape = a.err_sum / static_cast<double>(a.n);
    ka.peak_error = a.peak;
    double agg_err = 0.0;
    std::size_t agg_n = 0;
    for (const auto& [interval, sums] : a.interval_sums) {
      if (sums.first <= 0.0) continue;
      agg_err += std::abs(sums.first - sums.second) / sums.first * 100.0;
      ++agg_n;
    }
    ka.aggregate_mape = agg_n > 0 ? agg_err / static_cast<double>(agg_n) : 0.0;
    weighted += a.err_sum;
    total += a.n;
    report.kernels.push_back(std::move(ka));
  }
  report.average_mape =
      total == 0 ? 0.0 : weighted / static_cast<double>(total);
  return report;
}

}  // namespace picp
