#pragma once

#include <string>
#include <vector>

#include "picsim/instrumentation.hpp"
#include "picsim/kernels.hpp"
#include "workload/generator.hpp"

namespace picp {

/// Canonical workload features each kernel's performance model consumes
/// (paper §II-B: models are expressed in workload parameters such as N_p,
/// N_gp per processor).
///
///   interpolate, eq_solve, push : {np}
///   project, create_ghost       : {np, ngp, filter}
///   migrate                     : {np, nmove}  (scan owned + pack movers)
///   fluid                       : {nel}
std::vector<std::string> kernel_features(Kernel k);

/// Feature vector for one (rank, interval) from an instrumented record
/// (training side — the features were recorded during measurement).
std::vector<double> features_from_record(Kernel k, const TimingRecord& rec);

/// Feature vector for one (rank, interval) from generated workload
/// (prediction side — the features come from the Dynamic Workload
/// Generator, never from the application).
std::vector<double> features_from_workload(Kernel k,
                                           const WorkloadResult& workload,
                                           Rank rank, std::size_t interval,
                                           double filter);

}  // namespace picp
