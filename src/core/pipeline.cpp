#include "core/pipeline.hpp"

#include "mapping/mapper.hpp"
#include "mesh/partition.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/trace_format.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace picp {

PredictionPipeline::PredictionPipeline(const SpectralMesh& mesh,
                                       ModelSet models)
    : mesh_(&mesh), models_(std::move(models)) {}

WorkloadResult PredictionPipeline::generate_workload(
    TraceReader& trace, const PredictionConfig& config) const {
  config.deadline.check("generate.partition");
  const MeshPartition partition = rcb_partition(*mesh_, config.num_ranks);
  config.deadline.check("generate.mapper");
  const auto mapper = make_mapper(config.mapper_kind, *mesh_, partition,
                                  config.filter_size);
  WorkloadParams params;
  params.ghost_radius = config.filter_size;
  params.compute_ghosts = config.compute_ghosts;
  params.compute_comm = config.compute_comm;
  params.max_intervals = config.max_intervals;
  params.interval_stride = config.interval_stride;
  params.deadline = config.deadline;
  WorkloadGenerator generator(*mesh_, partition, *mapper, params);
  try {
    return generator.generate(trace);
  } catch (const TraceCorruptError& e) {
    // Keep the type (callers dispatch on it) but say which stage died — a
    // multi-hour prediction failing deep in workload generation should name
    // the corrupt trace, not just a byte offset. The first what() line is
    // the detail; the ctor re-attaches the salvage hint.
    const std::string what = e.what();
    throw TraceCorruptError(e.input_path(),
                            "workload generation aborted: " +
                                what.substr(0, what.find('\n')));
  }
}

SimReport PredictionPipeline::simulate_workload(
    const WorkloadResult& workload, const PredictionConfig& config) const {
  config.deadline.check("simulate.des");
  const Predictor predictor(models_, config.filter_size);
  const telemetry::ScopedSpan span("predict.des", "predict");
  return run_trace_simulation(predictor.sim_input(workload, config.network));
}

PredictionOutcome PredictionPipeline::predict(
    TraceReader& trace, const PredictionConfig& config) const {
  PredictionOutcome outcome;

  Stopwatch watch;
  {
    const telemetry::ScopedSpan span("predict.workload_gen", "predict");
    outcome.workload = generate_workload(trace, config);
  }
  outcome.workload_gen_seconds = watch.seconds();

  watch.reset();
  outcome.sim = simulate_workload(outcome.workload, config);
  outcome.sim_seconds = watch.seconds();

  if (telemetry::enabled()) {
    auto& reg = telemetry::registry();
    reg.counter("predict.runs").add();
    reg.counter("predict.intervals").add(outcome.workload.num_intervals());
    reg.gauge("predict.app_seconds").set(outcome.sim.total_seconds);
  }

  PICP_LOG_INFO << "prediction " << config.mapper_kind << " R="
                << config.num_ranks << ": app time "
                << outcome.sim.total_seconds << " s (workload gen "
                << outcome.workload_gen_seconds << " s, DES "
                << outcome.sim_seconds << " s, "
                << outcome.sim.events << " events)";
  return outcome;
}

}  // namespace picp
