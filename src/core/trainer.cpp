#include "core/trainer.hpp"

#include "core/features.hpp"
#include "model/dataset.hpp"
#include "model/linear.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace picp {

FitMethod fit_method_from_name(const std::string& name) {
  const std::string n = to_lower(trim(name));
  if (n == "linear") return FitMethod::kLinear;
  if (n == "poly" || n == "polynomial") return FitMethod::kPolynomial;
  if (n == "symbolic" || n == "symreg") return FitMethod::kSymbolic;
  if (n == "auto") return FitMethod::kAuto;
  throw Error("unknown fit method: " + name);
}

namespace {
std::unique_ptr<PerfModel> fit_one(const Dataset& data,
                                   const ModelGenConfig& config,
                                   std::uint64_t seed_salt) {
  FitMethod method = config.method;
  // Auto: low-order polynomial for single-parameter kernels (captures the
  // mild cache-effect curvature a pure linear fit misses), GP symbolic
  // regression for multi-parameter kernels — the paper's split between
  // "simple regression sufficed" and "symbolic regression for
  // multi-parameter models".
  if (method == FitMethod::kAuto)
    method = data.num_features() <= 1 ? FitMethod::kPolynomial
                                      : FitMethod::kSymbolic;
  switch (method) {
    case FitMethod::kLinear:
      return std::make_unique<LinearModel>(fit_linear(data));
    case FitMethod::kPolynomial:
      return std::make_unique<PolynomialModel>(fit_polynomial(
          data, config.method == FitMethod::kAuto
                    ? std::min(config.poly_degree, 2)
                    : config.poly_degree));
    case FitMethod::kSymbolic: {
      SymRegParams params = config.symreg;
      params.seed += seed_salt;  // distinct streams per kernel
      return std::make_unique<SymbolicModel>(fit_symbolic(data, params));
    }
    default:
      throw Error("unresolved fit method");
  }
}
}  // namespace

ModelSet train_models(const KernelTimings& timings,
                      const ModelGenConfig& config, TrainReport* report) {
  PICP_REQUIRE(!timings.empty(), "no training data");
  ModelSet set;
  for (int k = 0; k < kNumKernels; ++k) {
    const auto kernel = static_cast<Kernel>(k);
    const auto features = kernel_features(kernel);
    Dataset data(features);
    std::size_t eligible = 0;
    for (const TimingRecord& rec : timings.records())
      if (rec.kernel == kernel && rec.seconds >= config.min_seconds)
        ++eligible;
    // Deterministic subsampling keeps every interval represented without
    // holding 100k+ rows through the GP search.
    Xoshiro256 rng(config.subsample_seed + static_cast<std::uint64_t>(k));
    const double keep =
        eligible <= config.max_rows
            ? 1.0
            : static_cast<double>(config.max_rows) /
                  static_cast<double>(eligible);
    for (const TimingRecord& rec : timings.records()) {
      if (rec.kernel != kernel) continue;
      if (rec.seconds < config.min_seconds) continue;
      if (keep < 1.0 && rng.uniform() > keep) continue;
      data.add(features_from_record(kernel, rec), rec.seconds);
    }
    if (data.empty()) continue;

    auto model = fit_one(data, config, static_cast<std::uint64_t>(k));

    if (report != nullptr) {
      std::vector<double> predicted(data.size());
      std::vector<double> actual(data.size());
      for (std::size_t i = 0; i < data.size(); ++i) {
        predicted[i] = std::max(0.0, model->evaluate(data.row(i)));
        actual[i] = data.target(i);
      }
      TrainReport::KernelFit fit;
      fit.kernel = kernel_name(kernel);
      fit.rows = data.size();
      fit.train_mape = mape(actual, predicted);
      fit.formula = model->describe();
      report->kernels.push_back(std::move(fit));
    }
    PICP_LOG_DEBUG << "trained " << kernel_name(kernel) << " on "
                   << data.size() << " rows: " << model->describe();
    set.set(kernel_name(kernel), std::move(model), features);
  }
  return set;
}

}  // namespace picp
