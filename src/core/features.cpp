#include "core/features.hpp"

#include "util/error.hpp"

namespace picp {

std::vector<std::string> kernel_features(Kernel k) {
  switch (k) {
    case Kernel::kInterpolate:
    case Kernel::kEqSolve:
    case Kernel::kPush:
      return {"np"};
    case Kernel::kProject:
    case Kernel::kCreateGhost:
      return {"np", "ngp", "filter"};
    case Kernel::kMigrate:
      return {"np", "nmove"};
    case Kernel::kFluid:
      return {"nel"};
  }
  throw Error("unknown kernel");
}

std::vector<double> features_from_record(Kernel k, const TimingRecord& rec) {
  switch (k) {
    case Kernel::kInterpolate:
    case Kernel::kEqSolve:
    case Kernel::kPush:
      return {rec.np};
    case Kernel::kProject:
    case Kernel::kCreateGhost:
      return {rec.np, rec.ngp, rec.filter};
    case Kernel::kMigrate:
      return {rec.np, rec.nmove};
    case Kernel::kFluid:
      return {rec.nel};
  }
  throw Error("unknown kernel");
}

std::vector<double> features_from_workload(Kernel k,
                                           const WorkloadResult& workload,
                                           Rank rank, std::size_t interval,
                                           double filter) {
  const auto np =
      static_cast<double>(workload.comp_real.at(rank, interval));
  switch (k) {
    case Kernel::kInterpolate:
    case Kernel::kEqSolve:
    case Kernel::kPush:
      return {np};
    case Kernel::kProject:
    case Kernel::kCreateGhost:
      return {np,
              static_cast<double>(workload.comp_ghost.at(rank, interval)),
              filter};
    case Kernel::kMigrate:
      // The kernel scans every owned particle and packs the movers;
      // movers are receive-side arrivals, matching the instrumentation.
      return {np, static_cast<double>(
                      workload.comm_real.received_by(rank, interval))};
    case Kernel::kFluid: {
      PICP_REQUIRE(static_cast<std::size_t>(rank) <
                       workload.elements_per_rank.size(),
                   "workload lacks element counts for the fluid model");
      return {static_cast<double>(
          workload.elements_per_rank[static_cast<std::size_t>(rank)])};
    }
  }
  throw Error("unknown kernel");
}

}  // namespace picp
