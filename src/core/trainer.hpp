#pragma once

#include <string>

#include "model/model_set.hpp"
#include "model/symreg.hpp"
#include "picsim/instrumentation.hpp"

namespace picp {

/// How the Model Generator fits each kernel's model.
enum class FitMethod {
  kLinear,      // OLS linear (single-parameter kernels, §II-B)
  kPolynomial,  // OLS over monomials (degree from ModelGenConfig)
  kSymbolic,    // GP symbolic regression (multi-parameter kernels)
  kAuto,        // linear for 1 feature, symbolic otherwise
};

FitMethod fit_method_from_name(const std::string& name);

struct ModelGenConfig {
  FitMethod method = FitMethod::kAuto;
  int poly_degree = 3;
  SymRegParams symreg;
  /// Drop training rows whose measured time is below this (timer noise).
  double min_seconds = 0.0;
  /// Deterministically subsample each kernel's training data to at most
  /// this many rows (instrumented runs produce one row per active rank per
  /// interval — far more than regression needs).
  std::size_t max_rows = 5000;
  std::uint64_t subsample_seed = 1234;
};

/// Per-kernel training diagnostics.
struct TrainReport {
  struct KernelFit {
    std::string kernel;
    std::size_t rows = 0;
    double train_mape = 0.0;  // percent, on the training data
    std::string formula;
  };
  std::vector<KernelFit> kernels;
};

/// The Model Generator (paper §II-B): turn instrumented kernel benchmarks
/// into analytical performance models, one per kernel present in
/// `timings`.
ModelSet train_models(const KernelTimings& timings,
                      const ModelGenConfig& config, TrainReport* report = nullptr);

}  // namespace picp
