#pragma once

// Per-request observability record. The reactor creates one RequestTrace
// per parsed request (including each member of a coalesced batch), stamps
// the wait phases it alone can see (arrival → batch dispatch → handler
// start), and the service annotates pipeline stages through a thread-local
// "current trace" that the reactor scopes around the handler call. After
// the response is filled the reactor finalizes the trace: RED metrics,
// optional Chrome-trace span emission (sampling knob + slow-request
// override), and the structured access log via the observer hook.
//
// Stage names and roles are string literals — the span tracer stores the
// pointers, so storage must outlive it (same contract as ScopedSpan).
// Stage timings are *exclusive*: a nested Stage subtracts its elapsed time
// from its parent, so queue + batch-wait + recorded stages sum to the
// request total without double counting (the property the deterministic
// span-sum test asserts).
//
// All times come from the same injectable clock the reactor runs on, so
// protocol tests replay stage timings deterministically.

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "telemetry/span_tracer.hpp"

namespace picp::serve {

/// Injectable time source; defaults to steady_clock. Protocol tests
/// substitute a manually-advanced clock so timeout behavior replays
/// deterministically. (Shared by EpollReactor and RequestTrace.)
using ReactorClock =
    std::function<std::chrono::steady_clock::time_point()>;

/// One exclusive-time pipeline stage ("cache", "generate", ...).
struct StageTiming {
  const char* name = "";
  double start_us = 0.0;
  double dur_us = 0.0;
};

class RequestTrace {
 public:
  explicit RequestTrace(ReactorClock clock);

  /// Microseconds on the injected clock (steady epoch, comparisons only).
  double now_us() const;

  // --- identity --------------------------------------------------------
  std::string id;      // inbound X-Picp-Trace-Id or generated
  std::string method;  // "" for responses with no parsed request (408 ...)
  std::string path;    // target with the query string stripped
  std::string peer;    // "ip:port", "local" for adopted test sockets
  int status = 0;
  const char* role = "solo";  // solo | leader | member | none
  std::size_t batch_size = 1;
  const char* cache_tier = "";  // "" | hit | miss | stale
  std::string deadline_stage;   // stage a 504 died in ("" otherwise)

  // --- timeline (all microseconds on the injected clock) ---------------
  double arrived_us = 0.0;        // request fully parsed
  double dispatch_us = 0.0;       // batch dispatched to execution
  double handler_start_us = 0.0;  // handler entered (worker or inline)
  double batch_wait_us = 0.0;     // arrival → dispatch
  double queue_wait_us = 0.0;     // dispatch → handler start
  double handler_us = 0.0;        // handler wall time
  double total_us = 0.0;          // arrival → response filled

  /// Stage recording enabled (an observer or the sampling knobs are
  /// live). When false every Stage constructed on this trace is a no-op,
  /// so a daemon with observability disarmed never touches the clock or
  /// the stage vector.
  bool armed = false;

  void add_stage(const char* name, double start_us, double dur_us);
  const std::vector<StageTiming>& stages() const { return stages_; }

  /// Adopt the shared handler execution of a batch leader: stages, handler
  /// timings, cache tier, and deadline stage (a member's response IS the
  /// leader's execution). The member keeps its own arrival/wait timeline.
  void copy_execution_from(const RequestTrace& leader);

  /// Emit the request as Chrome-trace spans: one "request" span plus
  /// "queue" / "batch-wait" and every recorded stage, re-anchored so the
  /// request ends at the tracer's current time (the injected clock and
  /// the tracer epoch are unrelated; only offsets within the request are
  /// meaningful).
  void emit_spans(telemetry::SpanTracer& tracer) const;

  // --- thread-local current trace (service-side annotation) ------------

  /// The trace scoped around the running handler; nullptr outside one (or
  /// when the trace is not armed).
  static RequestTrace* current();

  /// RAII: make `trace` current for the calling thread. Pass nullptr for
  /// a no-op scope.
  class Scope {
   public:
    explicit Scope(RequestTrace* trace);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    RequestTrace* previous_;
  };

  /// RAII exclusive-time stage on the current trace; a no-op when no
  /// armed trace is current. `name` must be a string literal.
  class Stage {
   public:
    explicit Stage(const char* name);
    ~Stage();
    Stage(const Stage&) = delete;
    Stage& operator=(const Stage&) = delete;

   private:
    friend class RequestTrace;
    RequestTrace* trace_;
    const char* name_ = "";
    double start_us_ = 0.0;
    Stage* parent_ = nullptr;
    double child_us_ = 0.0;  // time claimed by nested stages
  };

  /// Annotate the current trace (no-ops without one).
  static void note_cache(const char* tier);
  static void note_deadline_stage(const std::string& stage);

 private:
  ReactorClock clock_;
  std::vector<StageTiming> stages_;
  Stage* active_ = nullptr;
};

/// Process-unique trace id ("p-" + 16 hex digits): a per-process random
/// seed XOR a monotonic counter, so concurrent daemons never collide and
/// ids stay greppable across restarts.
std::string generate_trace_id();

/// An inbound X-Picp-Trace-Id is honored only if it is 1–64 characters of
/// [A-Za-z0-9._-]; anything else (empty, oversized, control bytes) is
/// replaced by a generated id so log lines stay parseable.
std::string sanitize_trace_id(const std::string& inbound);

}  // namespace picp::serve
