#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "serve/http_parser.hpp"
#include "util/failpoint.hpp"
#include "util/string_util.hpp"

namespace picp::serve {

namespace {

std::string lower(std::string text) {
  for (char& c : text)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return text;
}

const std::string* find_header(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& lower_name) {
  for (const auto& [name, value] : headers)
    if (lower(name) == lower_name) return &value;
  return nullptr;
}

/// Milliseconds left of a deadline; clamped at >= 1 so poll never spins.
int remaining_ms(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - std::chrono::steady_clock::now())
                        .count();
  if (left <= 0) throw HttpError(408, "receive timeout");
  return static_cast<int>(left > 1 ? left : 1);
}

}  // namespace

const std::string* HttpRequest::header(const std::string& lower_name) const {
  return find_header(headers, lower_name);
}

bool HttpRequest::keep_alive() const {
  const std::string* connection = header("connection");
  if (connection == nullptr) return version != "HTTP/1.0";
  return lower(*connection) != "close";
}

const std::string* HttpResponse::header(
    const std::string& lower_name) const {
  return find_header(headers, lower_name);
}

void HttpResponse::set_header(const std::string& name,
                              const std::string& value) {
  for (auto& [existing, existing_value] : headers) {
    if (lower(existing) == lower(name)) {
      existing_value = value;
      return;
    }
  }
  headers.emplace_back(name, value);
}

std::string target_path(const std::string& target) {
  const std::size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::string query_param(const std::string& target, const std::string& key) {
  const std::size_t q = target.find('?');
  if (q == std::string::npos) return "";
  std::size_t pos = q + 1;
  while (pos < target.size()) {
    std::size_t end = target.find('&', pos);
    if (end == std::string::npos) end = target.size();
    const std::size_t eq = target.find('=', pos);
    if (eq != std::string::npos && eq < end) {
      if (target.compare(pos, eq - pos, key) == 0)
        return target.substr(eq + 1, end - eq - 1);
    } else if (target.compare(pos, end - pos, key) == 0) {
      return "1";  // bare flag: ?ready counts as ready=1
    }
    pos = end + 1;
  }
  return "";
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

HttpConnection::HttpConnection(int fd) : fd_(fd) {}

HttpConnection::~HttpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

bool HttpConnection::wait_readable(int timeout_ms) {
  if (pos_ < buffer_.size()) return true;
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms <= 0 ? -1 : timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    return rc > 0;
  }
}

bool HttpConnection::fill(int timeout_ms) {
  failpoint::inject("http.read");
  // Poll the socket itself, not wait_readable(): that helper reports
  // buffered-but-unconsumed bytes as readable, and fill()'s whole job is
  // to pull NEW bytes — treating the buffer as readiness would send the
  // recv below into an unbounded block against a stalled peer.
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms <= 0 ? -1 : timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    if (rc == 0) throw HttpError(408, "receive timeout");
    if (rc < 0)
      throw HttpError(400, std::string("poll: ") + std::strerror(errno));
    break;
  }
  char chunk[8192];
  for (;;) {
    const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
    if (got < 0 && errno == EINTR) continue;
    if (got < 0)
      throw HttpError(400, std::string("recv: ") + std::strerror(errno));
    if (got == 0) return false;
    if (pos_ > 0) {
      buffer_.erase(0, pos_);
      pos_ = 0;
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
    return true;
  }
}

bool HttpConnection::read_head(std::string& head, const HttpLimits& limits) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(limits.io_timeout_ms);
  for (;;) {
    const std::size_t end = wire::find_head_end(buffer_, pos_);
    // Enforce the cap on complete heads too, not just unterminated ones —
    // a peer that delivers a huge header block in one burst still finds a
    // terminator, and must still be refused.
    if (end != std::string::npos) {
      if (end - pos_ > limits.max_header_bytes)
        throw HttpError(431, "header block exceeds " +
                                 std::to_string(limits.max_header_bytes) +
                                 " bytes");
      head.assign(buffer_, pos_, end - pos_);
      pos_ = end;
      return true;
    }
    if (buffer_.size() - pos_ > limits.max_header_bytes)
      throw HttpError(431, "header block exceeds " +
                               std::to_string(limits.max_header_bytes) +
                               " bytes");
    const int wait = limits.io_timeout_ms <= 0 ? -1 : remaining_ms(deadline);
    if (!fill(wait)) {
      if (buffer_.size() == pos_) return false;  // clean EOF between messages
      throw HttpError(400, "connection closed mid-message");
    }
  }
}

void HttpConnection::read_body(std::size_t length, std::string& body,
                               const HttpLimits& limits) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(limits.io_timeout_ms);
  while (buffer_.size() - pos_ < length) {
    const int wait = limits.io_timeout_ms <= 0 ? -1 : remaining_ms(deadline);
    if (!fill(wait)) throw HttpError(400, "connection closed mid-body");
  }
  body.assign(buffer_, pos_, length);
  pos_ += length;
}

bool HttpConnection::read_request(HttpRequest& request,
                                  const HttpLimits& limits) {
  std::string head;
  if (!read_head(head, limits)) return false;
  std::string start_line;
  wire::parse_head_block(head, start_line, request.headers);
  wire::parse_request_line(start_line, request);
  read_body(wire::content_length_of(request.headers, limits), request.body,
            limits);
  return true;
}

bool HttpConnection::read_response(HttpResponse& response,
                                   const HttpLimits& limits) {
  std::string head;
  if (!read_head(head, limits)) return false;
  std::string start_line;
  wire::parse_head_block(head, start_line, response.headers);

  // Status line: HTTP/x.y SP code SP reason
  const std::size_t sp1 = start_line.find(' ');
  if (start_line.rfind("HTTP/", 0) != 0 || sp1 == std::string::npos)
    throw HttpError(400, "malformed status line: " + start_line);
  try {
    response.status =
        static_cast<int>(parse_int(start_line.substr(sp1 + 1, 3)));
  } catch (const Error&) {
    throw HttpError(400, "malformed status code in: " + start_line);
  }

  read_body(wire::content_length_of(response.headers, limits), response.body,
            limits);
  return true;
}

void HttpConnection::write_all(const char* data, std::size_t size) {
  failpoint::inject("http.write");
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0)
      throw Error(std::string("send: ") + std::strerror(errno));
    sent += static_cast<std::size_t>(n);
  }
}

std::string serialize_response(const HttpResponse& response) {
  std::string wire = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     status_reason(response.status) + "\r\n";
  for (const auto& [name, value] : response.headers)
    wire += name + ": " + value + "\r\n";
  wire += "Content-Length: " + std::to_string(response.body.size()) +
          "\r\n\r\n";
  wire += response.body;
  return wire;
}

void HttpConnection::write_response(const HttpResponse& response) {
  const std::string wire = serialize_response(response);
  write_all(wire.data(), wire.size());
}

void HttpConnection::write_request(const HttpRequest& request,
                                   const std::string& host_header) {
  std::string wire =
      request.method + " " + request.target + " HTTP/1.1\r\n";
  wire += "Host: " + host_header + "\r\n";
  for (const auto& [name, value] : request.headers)
    wire += name + ": " + value + "\r\n";
  wire += "Content-Length: " + std::to_string(request.body.size()) +
          "\r\n\r\n";
  wire += request.body;
  write_all(wire.data(), wire.size());
}

int connect_tcp(const std::string& host, std::uint16_t port,
                int timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* list = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &list);
  PICP_REQUIRE(rc == 0 && list != nullptr,
               "cannot resolve " + host + ": " + gai_strerror(rc));
  int fd = -1;
  std::string last_error = "no addresses";
  for (addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last_error = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(list);
  PICP_REQUIRE(fd >= 0, "cannot connect to " + host + ":" +
                            std::to_string(port) + " — " + last_error);
  // The client blocks on small request/response pairs; disable Nagle so a
  // closed-loop bench measures the service, not delayed ACK coalescing.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  (void)timeout_ms;
  return fd;
}

}  // namespace picp::serve
