#include "serve/reactor.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"

namespace picp::serve {

namespace {

// epoll user-data tags for the two fds that are not connections.
constexpr std::uint64_t kListenTag = ~std::uint64_t{0};
constexpr std::uint64_t kWakeTag = ~std::uint64_t{0} - 1;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

/// True iff the peer address is 127.0.0.0/8 (the listener is IPv4-only).
bool peer_is_loopback(const sockaddr_storage& peer, socklen_t len) {
  if (peer.ss_family != AF_INET || len < sizeof(sockaddr_in)) return false;
  const auto* in4 = reinterpret_cast<const sockaddr_in*>(&peer);
  return (ntohl(in4->sin_addr.s_addr) >> 24) == 127;
}

void bump(const char* name, std::uint64_t n = 1) {
  if (telemetry::enabled()) telemetry::registry().counter(name).add(n);
}

/// "ip:port" for the access log; "unknown" for exotic address families.
std::string peer_string(const sockaddr_storage& peer, socklen_t len) {
  if (peer.ss_family == AF_INET && len >= sizeof(sockaddr_in)) {
    const auto* in4 = reinterpret_cast<const sockaddr_in*>(&peer);
    char ip[INET_ADDRSTRLEN];
    if (::inet_ntop(AF_INET, &in4->sin_addr, ip, sizeof ip) != nullptr)
      return std::string(ip) + ":" + std::to_string(ntohs(in4->sin_port));
  }
  return "unknown";
}

/// RED histogram bounds (µs), same log-spaced ladder as the service-side
/// latency histograms: 100 µs … 3 s.
constexpr std::array<double, 10> kRedBoundsUs = {
    1e2, 3e2, 1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6};

/// Bounded route family for RED metric names — a scanner probing random
/// paths must not be able to mint unbounded metric series.
const char* route_of(const std::string& path) {
  if (path == "/v1/predict") return "predict";
  if (path == "/v1/workload") return "workload";
  if (path == "/healthz") return "healthz";
  if (path == "/metricsz") return "metricsz";
  if (path == "/v1/models") return "models";
  if (path == "/v1/failpoints") return "failpoints";
  return "other";
}

const char* status_class_of(int status) {
  if (status >= 500) return "5xx";
  if (status >= 400) return "4xx";
  if (status >= 300) return "3xx";
  return "2xx";
}

/// Two requests may share one handler execution only when a cache-keyed
/// replay would be indistinguishable: same method, target, body, and same
/// declared deadline budget (a member with a tighter X-Picp-Deadline-Ms
/// must not inherit the leader's looser one, or vice versa).
bool same_identity(const HttpRequest& a, const HttpRequest& b) {
  if (a.method != b.method || a.target != b.target || a.body != b.body)
    return false;
  const std::string* da = a.header("x-picp-deadline-ms");
  const std::string* db = b.header("x-picp-deadline-ms");
  if ((da == nullptr) != (db == nullptr)) return false;
  return da == nullptr || *da == *db;
}

}  // namespace

EpollReactor::EpollReactor(const ReactorOptions& options, Handler handler,
                           ThreadPool* pool, ReactorClock clock)
    : options_(options), handler_(std::move(handler)), pool_(pool),
      clock_(std::move(clock)) {
  PICP_REQUIRE(handler_ != nullptr, "EpollReactor needs a handler");
  if (!clock_) clock_ = [] { return std::chrono::steady_clock::now(); };

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  PICP_REQUIRE(epoll_fd_ >= 0,
               std::string("epoll_create1: ") + std::strerror(errno));

  int pipe_fds[2];
  PICP_REQUIRE(::pipe(pipe_fds) == 0,
               std::string("pipe: ") + std::strerror(errno));
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);
  set_cloexec(wake_read_fd_);
  set_cloexec(wake_write_fd_);

  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered; the loop fully drains the pipe
  ev.data.u64 = kWakeTag;
  PICP_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_fd_, &ev) == 0,
               std::string("epoll_ctl(wake): ") + std::strerror(errno));
}

EpollReactor::~EpollReactor() {
  for (auto& [id, conn] : conns_)
    if (conn->fd >= 0) ::close(conn->fd);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EpollReactor::listen_on(int listen_fd) {
  PICP_REQUIRE(listen_fd_ < 0, "listen_on called twice");
  listen_fd_ = listen_fd;
  set_nonblocking(listen_fd_);
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = kListenTag;
  PICP_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0,
               std::string("epoll_ctl(listen): ") + std::strerror(errno));
}

void EpollReactor::adopt(int fd, bool from_loopback) {
  set_nonblocking(fd);
  set_cloexec(fd);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.accepted;
  }
  bump("serve.accepted");
  setup_conn(fd, from_loopback, /*counted=*/true, "local");
}

void EpollReactor::setup_conn(int fd, bool from_loopback, bool counted,
                              std::string peer) {
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->id = next_conn_id_++;
  conn->from_loopback = from_loopback;
  conn->peer = std::move(peer);
  conn->parser = std::make_unique<RequestParser>(options_.limits);
  conn->counted = counted;
  if (options_.request_timeout_ms > 0) {
    conn->deadline =
        now() + std::chrono::milliseconds(options_.request_timeout_ms);
    next_expiry_ = std::min(next_expiry_, conn->deadline);
  } else {
    conn->deadline = TimePoint::max();
  }

  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    PICP_LOG_WARN << "epoll_ctl(add conn): " << std::strerror(errno);
    ::close(fd);
    return;
  }
  if (counted) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.active_connections;
    stats_.peak_connections =
        std::max(stats_.peak_connections, stats_.active_connections);
  }
  conns_.emplace(conn->id, std::move(conn));
}

void EpollReactor::handle_accept() {
  for (;;) {
    if (failpoint::any_armed()) {
      if (const auto action = failpoint::fire("http.accept")) {
        // EMFILE/ENFILE is the one accept(2) failure with its own recovery
        // path (pause + backoff); the errno action simulates it without
        // actually exhausting the fd table. Everything else keeps the old
        // accept-loop semantics: delay/crash apply inline, error drops the
        // connection on the floor.
        if (action->kind == failpoint::ActionKind::kErrno &&
            (action->errno_value == EMFILE ||
             action->errno_value == ENFILE)) {
          pause_accept(action->errno_value);
          return;
        }
        if (action->kind == failpoint::ActionKind::kDelay ||
            action->kind == failpoint::ActionKind::kCrash) {
          failpoint::apply(*action, "http.accept");
        } else {
          sockaddr_storage peer{};
          socklen_t peer_len = sizeof peer;
          const int fd =
              ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                        &peer_len, SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (fd >= 0) ::close(fd);
          continue;
        }
      }
    }

    sockaddr_storage peer{};
    socklen_t peer_len = sizeof peer;
    const int fd = ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                             &peer_len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        pause_accept(errno);
        return;
      }
      PICP_LOG_WARN << "accept: " << std::strerror(errno);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const bool from_loopback = peer_is_loopback(peer, peer_len);

    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      if (stats_.active_connections >= options_.max_connections) {
        ++stats_.rejected_busy;
        shed = true;
      } else {
        ++stats_.accepted;
      }
    }
    if (shed) {
      bump("serve.rejected_busy");
      // The 503 goes through a normal (uncounted) connection so a slow
      // reader cannot block the reactor on the write.
      setup_conn(fd, from_loopback, /*counted=*/false,
                 peer_string(peer, peer_len));
      Conn* conn = conn_by_id(next_conn_id_ - 1);
      if (conn != nullptr) {
        conn->read_closed = true;
        const std::uint64_t seq = conn->next_seq++;
        conn->slots.emplace_back();
        fill_error(*conn, seq, busy_response(),
                   make_synthetic_trace(*conn));
        flush(*conn);
      }
      continue;
    }
    bump("serve.accepted");
    setup_conn(fd, from_loopback, /*counted=*/true,
               peer_string(peer, peer_len));
  }
}

void EpollReactor::pause_accept(int err) {
  if (accept_paused_ || listen_fd_ < 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  accept_paused_ = true;
  accept_resume_ =
      now() + std::chrono::milliseconds(options_.accept_backoff_ms);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.accept_backoffs;
  }
  bump("serve.accept_backoffs");
  PICP_LOG_WARN << "accept: " << std::strerror(err) << " — pausing accepts "
                << options_.accept_backoff_ms << " ms";
}

void EpollReactor::resume_accept_if_due() {
  if (!accept_paused_ || now() < accept_resume_) return;
  accept_paused_ = false;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = kListenTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0)
    PICP_LOG_WARN << "epoll_ctl(resume listen): " << std::strerror(errno);
  // Connections that queued in the backlog during the pause predate the
  // re-registration edge; drain them now rather than waiting for the next
  // SYN to produce one.
  handle_accept();
}

int EpollReactor::run_once(int max_wait_ms) {
  resume_accept_if_due();

  epoll_event events[128];
  const int wait = next_wait_ms(max_wait_ms);
  int n = ::epoll_wait(epoll_fd_, events,
                       static_cast<int>(std::size(events)), wait);
  if (n < 0) {
    if (errno != EINTR)
      PICP_LOG_WARN << "epoll_wait: " << std::strerror(errno);
    n = 0;
  }
  // Cycle time starts when the wait returns: it measures the work of this
  // pass (events + batches + completions + timers), not the idle wait.
  const TimePoint cycle_start = now();

  for (int i = 0; i < n; ++i) {
    const std::uint64_t tag = events[i].data.u64;
    if (tag == kWakeTag) {
      char sink[256];
      while (::read(wake_read_fd_, sink, sizeof sink) > 0) {
      }
      continue;
    }
    if (tag == kListenTag) {
      handle_accept();
      continue;
    }
    Conn* conn = conn_by_id(tag);
    if (conn == nullptr) continue;  // closed earlier in this batch
    if ((events[i].events & EPOLLOUT) != 0) handle_writable(*conn);
    conn = conn_by_id(tag);
    if (conn == nullptr) continue;
    if ((events[i].events &
         (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) != 0)
      handle_readable(*conn);
  }

  // Window-0 batches dispatch here — after every read of this cycle has
  // had the chance to join, before anything waits again.
  dispatch_due_batches(/*force=*/false);
  drain_completions();
  expire_deadlines();
  resume_accept_if_due();
  reap_dead();
  publish_gauges();
  if (telemetry::enabled())
    telemetry::registry().gauge("serve.reactor.cycle_us")
        .set(std::chrono::duration<double, std::micro>(now() - cycle_start)
                 .count());
  return n;
}

void EpollReactor::run() {
  while (!stop_.load(std::memory_order_relaxed)) run_once(500);

  // Drain: stop accepting, let in-flight handler executions finish and
  // their responses flush (stopping() forces Connection: close on each),
  // then close whatever is left — idle keep-alive peers included.
  if (listen_fd_ >= 0 && !accept_paused_)
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  accept_paused_ = true;
  accept_resume_ = TimePoint::max();

  const TimePoint drain_deadline =
      now() + std::chrono::milliseconds(options_.drain_timeout_ms);
  for (;;) {
    dispatch_due_batches(/*force=*/true);
    bool busy = !open_batches_.empty();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      busy = busy || stats_.pending_requests > 0;
    }
    if (!busy) {
      for (const auto& [id, conn] : conns_) {
        if (conn->fd < 0) continue;
        if (!conn->slots.empty() || conn->out.size() > conn->out_pos) {
          busy = true;
          break;
        }
      }
    }
    if (!busy) break;
    if (now() >= drain_deadline) {
      PICP_LOG_WARN << "drain timeout: abandoning "
                    << connection_count() << " connection(s)";
      break;
    }
    run_once(50);
  }

  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    Conn* conn = conn_by_id(id);
    if (conn != nullptr) close_conn(*conn);
  }
  reap_dead();
  publish_gauges();
}

void EpollReactor::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (wake_write_fd_ >= 0) {
    const char byte = 'x';
    // Async-signal-safe; a full pipe still wakes the poller, so the result
    // is intentionally ignored.
    [[maybe_unused]] ssize_t rc = ::write(wake_write_fd_, &byte, 1);
  }
}

void EpollReactor::wake() {
  const char byte = 'c';
  [[maybe_unused]] ssize_t rc = ::write(wake_write_fd_, &byte, 1);
}

std::size_t EpollReactor::connection_count() const {
  std::size_t alive = 0;
  for (const auto& [id, conn] : conns_)
    if (conn->fd >= 0) ++alive;
  return alive;
}

ReactorStats EpollReactor::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void EpollReactor::handle_readable(Conn& conn) {
  if (failpoint::any_armed()) {
    try {
      failpoint::inject("http.read");
    } catch (const Error&) {
      close_conn(conn);
      return;
    }
  }
  char buf[16384];
  for (;;) {
    const ssize_t got = ::recv(conn.fd, buf, sizeof buf, 0);
    if (got < 0 && errno == EINTR) continue;
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(conn);
      return;
    }
    if (got == 0) {
      conn.read_closed = true;
      if (!conn.slots.empty() || conn.out.size() > conn.out_pos) {
        // Responses are still owed / buffered; the peer only half-closed.
        conn.close_after_flush = true;
      } else if (conn.parser->mid_message()) {
        // Dirty EOF: the peer walked away mid-message. Nothing useful to
        // answer — a 400 would race the RST — so just drop it.
        close_conn(conn);
      } else {
        close_conn(conn);  // clean close between messages
      }
      return;
    }
    if (conn.read_closed) continue;  // shed/errored conn: discard bytes
    try {
      conn.parser->feed(buf, static_cast<std::size_t>(got));
    } catch (const HttpError& e) {
      // Framing is suspect from here on: answer the error, stop parsing,
      // close once the pipeline ahead of it has flushed.
      const std::uint64_t seq = conn.next_seq++;
      conn.slots.emplace_back();
      fill_error(conn, seq, error_response(e.status(), e.what()),
                 make_synthetic_trace(conn));
      conn.read_closed = true;
      break;
    }
    HttpRequest request;
    while (conn.parser->next(request)) {
      on_request(conn, std::move(request));
      if (conn.fd < 0) return;  // inline dispatch closed it
      if (conn.read_closed) break;
    }
  }
  if (conn.fd >= 0) flush(conn);
}

void EpollReactor::handle_writable(Conn& conn) { flush(conn); }

void EpollReactor::on_request(Conn& conn, HttpRequest&& request) {
  request.from_loopback = conn.from_loopback;
  const bool close_after = !request.keep_alive() ||
                           stop_.load(std::memory_order_relaxed);
  const std::uint64_t seq = conn.next_seq++;
  conn.slots.emplace_back();
  touch(conn);  // a complete message resets the receive/idle budget

  std::size_t pending = 0;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
    pending = stats_.pending_requests;
  }

  Member member{conn.id, seq, close_after, make_trace(conn, request)};

  if (options_.batchable && options_.batchable(request)) {
    for (auto& batch : open_batches_) {
      if (!same_identity(batch.request, request)) continue;
      batch.members.push_back(member);
      if (batch.members.size() >= options_.max_batch) {
        Batch full = std::move(batch);
        batch = std::move(open_batches_.back());
        open_batches_.pop_back();
        dispatch(std::move(full));
      }
      return;
    }
    // Queue SLO: an over-limit request that cannot ride an open batch is
    // shed rather than queued (joining a batch is free — it adds no
    // handler execution — so members above never shed).
    if (pending >= options_.max_pending_requests) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.shed_queue;
      }
      bump("serve.shed_queue");
      fill_error(conn, seq, busy_response(), member.trace);
      conn.read_closed = true;
      return;
    }
    Batch batch;
    batch.request = std::move(request);
    batch.members.push_back(member);
    batch.dispatch_at =
        now() + std::chrono::milliseconds(options_.batch_window_ms);
    open_batches_.push_back(std::move(batch));
    return;
  }

  if (pending >= options_.max_pending_requests) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.shed_queue;
    }
    bump("serve.shed_queue");
    fill_error(conn, seq, busy_response(), member.trace);
    conn.read_closed = true;
    return;
  }
  execute(request, {member});
}

void EpollReactor::dispatch(Batch&& batch) {
  if (batch.members.size() > 1) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.batch_leaders;
      stats_.batch_members += batch.members.size() - 1;
    }
    bump("serve.batch.leaders");
    bump("serve.batch.members", batch.members.size() - 1);
  }
  execute(batch.request, std::move(batch.members));
}

void EpollReactor::dispatch_due_batches(bool force) {
  if (open_batches_.empty()) return;
  const TimePoint t = now();
  std::vector<Batch> due;
  for (std::size_t i = 0; i < open_batches_.size();) {
    if (force || open_batches_[i].dispatch_at <= t) {
      due.push_back(std::move(open_batches_[i]));
      open_batches_[i] = std::move(open_batches_.back());
      open_batches_.pop_back();
    } else {
      ++i;
    }
  }
  for (auto& batch : due) dispatch(std::move(batch));
}

std::shared_ptr<RequestTrace> EpollReactor::make_trace(
    const Conn& conn, const HttpRequest& request) {
  auto trace = std::make_shared<RequestTrace>(clock_);
  const std::string* inbound = request.header("x-picp-trace-id");
  trace->id = inbound != nullptr ? sanitize_trace_id(*inbound)
                                 : generate_trace_id();
  trace->method = request.method;
  trace->path = target_path(request.target);
  trace->peer = conn.peer;
  trace->arrived_us = trace->now_us();
  trace->dispatch_us = trace->arrived_us;
  trace->handler_start_us = trace->arrived_us;
  trace->armed = options_.observer != nullptr ||
                 (telemetry::enabled() && (options_.trace_sample_n > 0 ||
                                           options_.slow_request_ms > 0));
  return trace;
}

std::shared_ptr<RequestTrace> EpollReactor::make_synthetic_trace(
    const Conn& conn) {
  auto trace = std::make_shared<RequestTrace>(clock_);
  trace->id = generate_trace_id();
  trace->peer = conn.peer;
  trace->role = "none";  // no parsed request behind this response
  trace->arrived_us = trace->now_us();
  trace->dispatch_us = trace->arrived_us;
  trace->handler_start_us = trace->arrived_us;
  return trace;
}

void EpollReactor::fill_error(Conn& conn, std::uint64_t seq,
                              HttpResponse response,
                              const std::shared_ptr<RequestTrace>& trace) {
  if (trace != nullptr) {
    response.set_header("X-Picp-Trace-Id", trace->id);
    finalize_trace(*trace, response.status);
  }
  fill_slot(conn, seq, response, /*close_after=*/true);
}

void EpollReactor::finalize_trace(RequestTrace& trace, int status) {
  trace.status = status;
  trace.total_us = trace.now_us() - trace.arrived_us;
  ++finished_requests_;
  if (telemetry::enabled()) {
    auto& reg = telemetry::registry();
    const std::string route = route_of(trace.path);
    reg.histogram(
           "serve.red.total_us." + route + "." + status_class_of(status),
           kRedBoundsUs)
        .observe(trace.total_us);
    reg.histogram("serve.red.queue_us." + route, kRedBoundsUs)
        .observe(trace.batch_wait_us + trace.queue_wait_us);
    reg.histogram("serve.red.handler_us." + route, kRedBoundsUs)
        .observe(trace.handler_us);
    const bool sampled =
        options_.trace_sample_n > 0 &&
        finished_requests_ % options_.trace_sample_n == 0;
    const bool slow =
        options_.slow_request_ms > 0 &&
        trace.total_us >= static_cast<double>(options_.slow_request_ms) * 1e3;
    if (sampled || slow) trace.emit_spans(telemetry::tracer());
  }
  if (options_.observer) options_.observer(trace);
}

HttpResponse EpollReactor::run_handler(const HttpRequest& request) {
  try {
    return handler_(request);
  } catch (const std::exception& e) {
    // A handler must never take the reactor (or a worker) down.
    PICP_LOG_WARN << "handler error: " << e.what();
    return error_response(500, e.what());
  }
}

HttpResponse EpollReactor::run_traced(const HttpRequest& request,
                                      RequestTrace* trace) {
  if (trace == nullptr) return run_handler(request);
  trace->handler_start_us = trace->now_us();
  trace->queue_wait_us = trace->handler_start_us - trace->dispatch_us;
  const RequestTrace::Scope scope(trace);
  HttpResponse response = run_handler(request);
  trace->handler_us = trace->now_us() - trace->handler_start_us;
  return response;
}

void EpollReactor::execute(const HttpRequest& request,
                           std::vector<Member> members) {
  // Dispatch closes the batch-wait phase for every member; only the
  // leader's trace (members[0]) rides into the handler — members adopt
  // its execution at deliver().
  if (!members.empty() && members[0].trace != nullptr) {
    const double dispatched = members[0].trace->now_us();
    for (Member& member : members) {
      if (member.trace == nullptr) continue;
      member.trace->dispatch_us = dispatched;
      member.trace->batch_wait_us = dispatched - member.trace->arrived_us;
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.pending_requests;
  }
  if (pool_ == nullptr) {
    const HttpResponse response =
        run_traced(request, members[0].trace.get());
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      --stats_.pending_requests;
    }
    deliver(response, members);
    return;
  }
  auto shared_request = std::make_shared<HttpRequest>(request);
  pool_->submit([this, shared_request,
                 members = std::move(members)]() mutable {
    // The worker owns the members (and their traces) until the completion
    // is drained back on the reactor thread, so stamping the leader's
    // handler timings here is race-free.
    HttpResponse response =
        run_traced(*shared_request, members[0].trace.get());
    {
      std::lock_guard<std::mutex> lock(completion_mutex_);
      completions_.push_back({std::move(response), std::move(members)});
    }
    wake();
  });
}

void EpollReactor::drain_completions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    done.swap(completions_);
  }
  if (done.empty()) return;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.pending_requests -= std::min(stats_.pending_requests, done.size());
  }
  for (const Completion& completion : done)
    deliver(completion.response, completion.members);
}

void EpollReactor::deliver(const HttpResponse& response,
                           const std::vector<Member>& members) {
  const bool stopping = stop_.load(std::memory_order_relaxed);
  const bool batched = members.size() > 1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const Member& member = members[i];
    RequestTrace* trace = member.trace.get();
    if (trace != nullptr) {
      // A member's response IS the leader's execution: adopt its stages
      // and handler timings; keep the member's own arrival timeline.
      if (i > 0 && members[0].trace != nullptr)
        trace->copy_execution_from(*members[0].trace);
      trace->role = batched ? (i == 0 ? "leader" : "member") : "solo";
      trace->batch_size = members.size();
    }
    Conn* conn = conn_by_id(member.conn_id);
    if (conn == nullptr) {
      // The member hung up before the answer — its record still closes.
      if (trace != nullptr) finalize_trace(*trace, response.status);
      continue;
    }
    // Every member gets byte-identical status/headers/body; only the
    // Connection and trace-id headers are per-member.
    HttpResponse copy = response;
    const bool close_after = member.close_after || stopping;
    copy.set_header("Connection", close_after ? "close" : "keep-alive");
    if (trace != nullptr) copy.set_header("X-Picp-Trace-Id", trace->id);
    fill_slot(*conn, member.seq, copy, close_after);
    if (trace != nullptr) finalize_trace(*trace, copy.status);
    flush(*conn);
  }
}

void EpollReactor::fill_slot(Conn& conn, std::uint64_t seq,
                             const HttpResponse& response, bool close_after) {
  if (seq < conn.base_seq) return;  // slot dropped by an earlier close
  const std::size_t index = static_cast<std::size_t>(seq - conn.base_seq);
  if (index >= conn.slots.size()) return;
  Slot& slot = conn.slots[index];
  slot.bytes = serialize_response(response);
  slot.ready = true;
  slot.close_after = close_after;
}

void EpollReactor::flush(Conn& conn) {
  if (conn.fd < 0) return;
  // Promote ready slots to the output buffer strictly in request order.
  while (!conn.slots.empty() && conn.slots.front().ready) {
    conn.out += conn.slots.front().bytes;
    const bool close_after = conn.slots.front().close_after;
    conn.slots.pop_front();
    ++conn.base_seq;
    if (close_after) {
      // Anything pipelined behind a Connection: close response is void;
      // jump base_seq so late completions for those slots are ignored.
      conn.close_after_flush = true;
      conn.read_closed = true;
      conn.slots.clear();
      conn.base_seq = conn.next_seq;
      break;
    }
  }

  if (conn.out.size() > conn.out_pos) {
    if (failpoint::any_armed()) {
      try {
        failpoint::inject("http.write");
      } catch (const Error&) {
        close_conn(conn);
        return;
      }
    }
    while (conn.out_pos < conn.out.size()) {
      const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_pos,
                               conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!conn.want_write) update_epoll(conn, /*want_write=*/true);
        return;
      }
      if (n <= 0) {
        close_conn(conn);
        return;
      }
      conn.out_pos += static_cast<std::size_t>(n);
    }
    conn.out.clear();
    conn.out_pos = 0;
  }

  if (conn.want_write) update_epoll(conn, /*want_write=*/false);
  if (conn.close_after_flush ||
      (conn.read_closed && conn.slots.empty()))
    close_conn(conn);
}

void EpollReactor::expire_deadlines() {
  if (options_.request_timeout_ms <= 0) return;
  const TimePoint t = now();
  if (t < next_expiry_) return;
  next_expiry_ = TimePoint::max();
  std::vector<std::uint64_t> expired;
  for (const auto& [id, conn] : conns_) {
    if (conn->fd < 0) continue;
    if (conn->deadline <= t)
      expired.push_back(id);
    else
      next_expiry_ = std::min(next_expiry_, conn->deadline);
  }
  for (const std::uint64_t id : expired) {
    Conn* conn = conn_by_id(id);
    if (conn == nullptr) continue;
    if (!conn->slots.empty() || conn->out.size() > conn->out_pos) {
      // The conn is waiting on OUR handler or a slow flush, not on the
      // peer; the receive budget does not apply. Push it forward.
      touch(*conn);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.timeouts;
    }
    bump("serve.timeouts");
    if (conn->parser->mid_message()) {
      // Slow-loris: a partial message that ran out its budget gets an
      // explicit 408 before the close.
      const std::uint64_t seq = conn->next_seq++;
      conn->slots.emplace_back();
      fill_error(*conn, seq, error_response(408, "receive timeout"),
                 make_synthetic_trace(*conn));
      conn->read_closed = true;
      flush(*conn);
    } else {
      close_conn(*conn);  // idle keep-alive expired; close silently
    }
  }
}

void EpollReactor::close_conn(Conn& conn) {
  if (conn.fd < 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  conn.fd = -1;
  conn.slots.clear();
  conn.base_seq = conn.next_seq;
  if (conn.counted) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (stats_.active_connections > 0) --stats_.active_connections;
  }
  dead_.push_back(conn.id);
}

void EpollReactor::reap_dead() {
  for (const std::uint64_t id : dead_) conns_.erase(id);
  dead_.clear();
}

void EpollReactor::update_epoll(Conn& conn, bool want_write) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP |
              (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn.id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0)
    conn.want_write = want_write;
}

void EpollReactor::touch(Conn& conn) {
  if (options_.request_timeout_ms <= 0) return;
  conn.deadline =
      now() + std::chrono::milliseconds(options_.request_timeout_ms);
  next_expiry_ = std::min(next_expiry_, conn.deadline);
}

int EpollReactor::next_wait_ms(int max_wait_ms) const {
  if (max_wait_ms <= 0) return max_wait_ms;
  TimePoint earliest = TimePoint::max();
  if (options_.request_timeout_ms > 0) earliest = next_expiry_;
  for (const auto& batch : open_batches_)
    earliest = std::min(earliest, batch.dispatch_at);
  if (accept_paused_) earliest = std::min(earliest, accept_resume_);
  if (earliest == TimePoint::max()) return max_wait_ms;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        earliest - now())
                        .count();
  if (left <= 0) return 0;
  return static_cast<int>(
      std::min<long long>(left, static_cast<long long>(max_wait_ms)));
}

EpollReactor::Conn* EpollReactor::conn_by_id(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end() || it->second->fd < 0) return nullptr;
  return it->second.get();
}

HttpResponse EpollReactor::error_response(int status,
                                          const std::string& message) const {
  HttpResponse response;
  response.status = status;
  // Error slots are filled directly (no deliver() pass); default to close,
  // which deliver() overrides per member when the conn is reusable.
  response.set_header("Connection", "close");
  response.set_header("Content-Type", "application/json");
  response.body = "{\"error\": {\"status\": " + std::to_string(status) +
                  ", \"message\": \"" + json_escape(message) + "\"}}";
  return response;
}

HttpResponse EpollReactor::busy_response() const {
  HttpResponse response;
  response.status = 503;
  response.set_header("Connection", "close");
  response.set_header("Retry-After",
                      std::to_string(options_.retry_after_seconds));
  response.set_header("Content-Type", "application/json");
  response.body =
      "{\"error\": {\"status\": 503, \"message\": \"server at capacity; "
      "retry after " +
      std::to_string(options_.retry_after_seconds) + " s\"}}";
  return response;
}

void EpollReactor::publish_gauges() {
  if (!telemetry::enabled()) return;
  auto& reg = telemetry::registry();
  std::size_t open_members = 0;
  for (const Batch& batch : open_batches_)
    open_members += batch.members.size();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  reg.gauge("serve.active_connections")
      .set(static_cast<double>(stats_.active_connections));
  reg.gauge("serve.queue_depth")
      .set(static_cast<double>(stats_.pending_requests));
  // In-flight = handler executions running + requests parked in open
  // coalescing windows: everything accepted but not yet answered.
  reg.gauge("serve.inflight")
      .set(static_cast<double>(stats_.pending_requests + open_members));
}

}  // namespace picp::serve
