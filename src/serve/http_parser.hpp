#pragma once

// Incremental HTTP/1.1 request parsing for the epoll reactor: a
// RequestParser is fed whatever bytes the socket produced — one byte at a
// time, a half header, three pipelined requests in one burst — and yields
// complete HttpRequests as they frame. It is pure state (no fds, no
// clocks, no syscalls), which is what makes the reactor's protocol tests
// deterministic: tests drive it through a socketpair and a manual clock
// and replay exact byte schedules.
//
// The free functions underneath (head-block splitting, request-line and
// Content-Length validation) are shared with the blocking HttpConnection
// in http.cpp, so the daemon's reactor and the CLI client cannot drift on
// what counts as a well-formed message.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "serve/http.hpp"

namespace picp::serve {

namespace wire {

/// Split one header block (start line through blank line) into the start
/// line and lower-cased name/value pairs. Tolerates bare-LF endings.
/// Throws HttpError(400) on malformed lines.
void parse_head_block(
    const std::string& head, std::string& start_line,
    std::vector<std::pair<std::string, std::string>>& headers);

/// Parse "METHOD SP target SP HTTP/x.y" into `request`; throws
/// HttpError(400) when the shape is wrong.
void parse_request_line(const std::string& start_line, HttpRequest& request);

/// Declared body length from the headers, validated against `limits`
/// (413 over max_body_bytes, 400 malformed, 501 chunked).
std::size_t content_length_of(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const HttpLimits& limits);

/// Find the end of a header block (index one past the CRLFCRLF / LFLF
/// terminator) in `buffer` starting at `pos`; npos when incomplete.
std::size_t find_head_end(const std::string& buffer, std::size_t pos);

}  // namespace wire

/// Push parser for a stream of HTTP/1.1 requests on one connection.
///
///   parser.feed(bytes, n);            // as many times as the socket reads
///   while (parser.next(request)) ...  // zero or more complete requests
///
/// feed() buffers and frames; next() pops the oldest complete request.
/// Malformed or oversized input throws HttpError from feed() — the
/// connection is then unrecoverable (framing is suspect) and the caller
/// responds with the error status and closes. A parser that has seen part
/// of a message reports mid_message(), which is how the reactor
/// distinguishes a slow-loris timeout / dirty EOF (408 / 400) from a
/// clean close between messages.
class RequestParser {
 public:
  explicit RequestParser(const HttpLimits& limits) : limits_(limits) {}

  /// Consume `n` bytes off the wire. Frames as many complete requests as
  /// the bytes finish; throws HttpError on protocol violations (the
  /// parser is then poisoned — no further feed/next calls).
  void feed(const char* data, std::size_t n);

  /// Pop the oldest complete request; false when none is ready.
  bool next(HttpRequest& request);

  /// True when at least one complete request is queued.
  bool has_request() const { return !ready_.empty(); }

  /// Bytes of an unfinished message are buffered (head without its blank
  /// line, or a body shorter than its Content-Length).
  bool mid_message() const { return state_ != State::kIdle; }

  /// Complete requests framed over the parser's lifetime.
  std::uint64_t requests_parsed() const { return parsed_; }

 private:
  enum class State { kIdle, kHead, kBody };

  /// Frame as much of buffer_ as possible into ready_.
  void drain_buffer();

  HttpLimits limits_;
  State state_ = State::kIdle;
  std::string buffer_;
  std::size_t pos_ = 0;            // consume cursor into buffer_
  HttpRequest pending_;            // head parsed, body incomplete
  std::size_t body_needed_ = 0;    // remaining Content-Length bytes
  std::vector<HttpRequest> ready_; // FIFO of complete requests
  std::size_t ready_head_ = 0;
  std::uint64_t parsed_ = 0;
};

}  // namespace picp::serve
