#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "serve/artifact_cache.hpp"
#include "serve/http.hpp"
#include "telemetry/json.hpp"
#include "trace/trace_reader.hpp"
#include "util/config.hpp"
#include "util/deadline.hpp"

namespace picp::serve {

/// Everything `picpredict serve` loads once per process: the trace, the
/// trained models, the mesh, and the cache/backpressure knobs. Parsed from
/// the `[serve]` / `[mesh]` sections of an INI config (see
/// ServiceConfig::from_config for the key list).
struct ServiceConfig {
  std::string trace_path;
  std::string models_path;  // empty: /v1/predict disabled (workload-only)
  std::int64_t nelx = 32, nely = 32, nelz = 64;
  int points_per_dim = 5;

  /// Request defaults (overridable per query).
  std::string default_mapper = "bin";
  double default_filter = 0.024;
  NetworkParams network;

  /// Completed WorkloadResults kept in memory (the heavy artifacts).
  std::size_t workload_cache_capacity = 16;
  /// Rendered response bodies kept in memory (small, byte-stable).
  std::size_t response_cache_capacity = 256;
  /// Disk spill tier for evicted response bodies; empty = off.
  std::string cache_dir;

  /// Serve the last good cached artifact (flagged `X-Picp-Degraded:
  /// stale`) when regeneration fails transiently, instead of a 500.
  bool allow_stale = false;
  /// Expose the /v1/failpoints admin endpoint (loopback peers only).
  /// Off by default: fault injection is an operator tool, not an API.
  bool enable_failpoints = false;
  /// Failpoint specs armed at service startup (PICP_FAILPOINTS grammar).
  std::string failpoints;

  static ServiceConfig from_config(const Config& config);
};

/// The prediction service behind the daemon's HTTP endpoints:
///
///   GET  /healthz      — liveness + uptime
///   GET  /metricsz     — full telemetry metric snapshot as JSON
///   GET  /v1/models    — kernels, features, and formulas of the ModelSet
///   POST /v1/workload  — workload statistics for one (R, mapper, filter)
///   POST /v1/predict   — full prediction for one or more processor counts
///
/// The hot path is content-addressed: each query config is fingerprinted
/// (CRC of trace identity + mesh + request parameters) and resolved
/// through two single-flight LRU caches — WorkloadResults (expensive to
/// generate, shared across /v1/predict and /v1/workload) and rendered
/// response bodies (guarantees byte-identical replies for identical
/// queries). The trace is opened once per process; generation streams it
/// under a mutex, so concurrent distinct configs serialize on the reader
/// while cached configs never touch it.
class PredictionService {
 public:
  explicit PredictionService(const ServiceConfig& config);

  /// The HttpServer handler: routes, parses, caches, replies. Never
  /// throws — internal errors become structured 500s.
  HttpResponse handle(const HttpRequest& request);

  /// Fingerprint of one normalized prediction request — exposed so tests
  /// can assert cache keying (same config → same key, any field change →
  /// new key).
  std::uint64_t request_fingerprint(const PredictionConfig& config) const;

  const ServiceConfig& config() const { return config_; }
  bool models_loaded() const { return models_loaded_; }

  /// Answers "can this daemon take traffic right now?" for
  /// `GET /healthz?ready=1`; on false, fills `reason` and the endpoint
  /// returns 503. The server wires this to its drain flag and queue-depth
  /// SLO. Unset = always ready (plain liveness still works).
  using ReadinessProbe = std::function<bool(std::string* reason)>;
  void set_readiness_probe(ReadinessProbe probe) {
    readiness_probe_ = std::move(probe);
  }

 private:
  HttpResponse handle_routed(const HttpRequest& request,
                             const Deadline& deadline);
  Json handle_healthz();
  Json handle_metricsz();
  Json handle_models();
  HttpResponse handle_failpoints(const HttpRequest& request);
  std::string handle_predict(const std::string& body, bool* from_cache,
                             const Deadline& deadline, bool* degraded);
  std::string handle_workload(const std::string& body, bool* from_cache,
                              const Deadline& deadline, bool* degraded);

  /// Parse + validate the request body into per-rank-count configs.
  std::vector<PredictionConfig> parse_request(const std::string& body) const;
  std::shared_ptr<const WorkloadResult> workload_for(
      const PredictionConfig& config);
  std::uint64_t workload_fingerprint(const PredictionConfig& config) const;
  void publish_cache_counters();

  ServiceConfig config_;
  SpectralMesh mesh_;
  ModelSet models_;
  bool models_loaded_ = false;
  std::unique_ptr<PredictionPipeline> pipeline_;

  /// One streaming reader for the process; generation holds the lock.
  std::unique_ptr<TraceReader> trace_;
  std::mutex trace_mutex_;
  std::uint64_t trace_identity_ = 0;  // folded into every fingerprint

  ReadinessProbe readiness_probe_;
  ArtifactCache<WorkloadResult> workload_cache_;
  ArtifactCache<std::string> response_cache_;
  std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
};

/// JSON body for a structured error reply.
std::string error_body(int status, const std::string& message);

}  // namespace picp::serve
