#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "serve/access_log.hpp"
#include "serve/http.hpp"
#include "serve/reactor.hpp"
#include "util/thread_pool.hpp"

namespace picp::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = let the kernel pick an ephemeral port; read it back via port().
  std::uint16_t port = 0;
  /// Handler worker threads (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Open connections the reactor will service. Above this, accept sheds
  /// load: 503 + Retry-After, then close (backpressure).
  std::size_t max_connections = 1024;
  /// In-flight handler executions — the queue-depth SLO. Complete requests
  /// above this shed with 503 instead of queueing unboundedly.
  std::size_t max_pending_requests = 256;
  /// listen(2) backlog — connections the kernel may hold before accept.
  int listen_backlog = 128;
  /// Per-message receive budget and keep-alive idle budget.
  int request_timeout_ms = 30000;
  /// How long shutdown waits for in-flight requests before giving up.
  int drain_timeout_ms = 10000;
  /// Advisory client back-off stamped on 503 responses.
  int retry_after_seconds = 1;
  /// Coalescing window for batchable requests (0 = same-event-loop-cycle
  /// only, which adds zero latency and is the default).
  int batch_window_ms = 0;
  /// Largest batch one handler execution may serve.
  std::size_t max_batch = 64;
  /// Accept pause after EMFILE/ENFILE before retrying.
  int accept_backoff_ms = 100;
  /// Which requests may coalesce into one handler execution. Unset picks
  /// the picpredict default: POST /v1/predict and /v1/workload.
  std::function<bool(const HttpRequest&)> batchable;
  /// Emit Chrome-trace spans for every Nth finished request (0 = never).
  std::uint64_t trace_sample_n = 0;
  /// Always emit spans for requests slower than this (0 = never).
  int slow_request_ms = 0;
  /// NDJSON access log path; empty = no access log.
  std::string access_log_path;
  /// Rotate the access log when it exceeds this many bytes.
  std::size_t access_log_max_bytes = 64 * 1024 * 1024;
  /// Extra per-request observer (tests); runs after the access log write.
  std::function<void(const RequestTrace&)> observer;
  HttpLimits limits;
};

/// Point-in-time server counters (also published as telemetry metrics).
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_busy = 0;  // shed with 503 at accept
  std::uint64_t shed_queue = 0;     // shed with 503 at the queue-depth SLO
  std::uint64_t requests = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t batch_leaders = 0;
  std::uint64_t batch_members = 0;
  std::size_t active_connections = 0;
  std::size_t peak_connections = 0;
  std::size_t pending_requests = 0;  // handler executions in flight
};

/// HTTP/1.1 server: one epoll reactor thread (accept + parse + flush)
/// feeding a picp::ThreadPool with complete requests. Identical batchable
/// requests arriving within the batching window coalesce into one handler
/// execution (see EpollReactor). No TLS, no chunked encoding — this fronts
/// picpredict's own query clients on a trusted network, not the open
/// internet.
///
/// Lifecycle: construct (binds + listens, so port() is valid immediately),
/// then run() blocks until request_shutdown() — which is async-signal-safe
/// and therefore callable straight from a SIGINT/SIGTERM handler. Shutdown
/// stops accepting, lets in-flight requests drain (bounded by
/// drain_timeout_ms), then returns from run().
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Binds and listens; throws picp::Error (with errno detail) on failure.
  HttpServer(const ServerOptions& options, Handler handler);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Actual bound port (resolves port 0 to the kernel's pick).
  std::uint16_t port() const { return port_; }

  /// Handler worker count (resolves threads 0 to the pool's pick).
  std::size_t workers() const { return pool_->size(); }

  /// Run the reactor until shutdown; returns after the drain.
  void run();

  /// Async-signal-safe: one write(2) to the reactor's wake pipe.
  void request_shutdown();

  bool shutting_down() const { return reactor_->stopping(); }

  ServerStats stats() const;

  /// True when the daemon should be taken out of rotation: draining, or
  /// the queue-depth SLO is saturated. `reason` (optional) says which.
  bool not_ready(std::string* reason) const;

  /// Access log lines written so far (0 when no log is configured).
  std::uint64_t access_log_lines() const;

 private:
  ServerOptions options_;
  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  // The log must outlive the reactor, whose observer writes into it.
  std::unique_ptr<AccessLog> access_log_;
  // Declaration order is a lifetime contract: the pool joins its workers
  // (which may still reference the reactor through in-flight tasks) before
  // the reactor is destroyed.
  std::unique_ptr<EpollReactor> reactor_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace picp::serve
