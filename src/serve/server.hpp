#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/http.hpp"
#include "util/thread_pool.hpp"

namespace picp::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = let the kernel pick an ephemeral port; read it back via port().
  std::uint16_t port = 0;
  /// Handler worker threads (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Connections being processed or awaiting a worker. The accept loop
  /// sheds load above this: 503 + Retry-After, then close (backpressure).
  std::size_t max_connections = 64;
  /// listen(2) backlog — connections the kernel may hold before accept.
  int listen_backlog = 128;
  /// Per-message receive budget and keep-alive idle budget.
  int request_timeout_ms = 30000;
  /// How long shutdown waits for in-flight connections before giving up.
  int drain_timeout_ms = 10000;
  /// Advisory client back-off stamped on 503 responses.
  int retry_after_seconds = 1;
  HttpLimits limits;
};

/// Point-in-time server counters (also published as telemetry metrics).
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_busy = 0;  // shed with 503 at the accept loop
  std::uint64_t requests = 0;
  std::size_t active_connections = 0;
};

/// Minimal threaded HTTP/1.1 server: one blocking accept loop feeding a
/// picp::ThreadPool, one task per connection (keep-alive requests are
/// served back-to-back on the same worker). No TLS, no chunked encoding —
/// this fronts picpredict's own query clients on a trusted network, not
/// the open internet.
///
/// Lifecycle: construct (binds + listens, so port() is valid immediately),
/// then run() blocks until request_shutdown() — which is async-signal-safe
/// and therefore callable straight from a SIGINT/SIGTERM handler. Shutdown
/// stops accepting, lets in-flight requests drain (bounded by
/// drain_timeout_ms), then returns from run().
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Binds and listens; throws picp::Error (with errno detail) on failure.
  HttpServer(const ServerOptions& options, Handler handler);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Actual bound port (resolves port 0 to the kernel's pick).
  std::uint16_t port() const { return port_; }

  /// Handler worker count (resolves threads 0 to the pool's pick).
  std::size_t workers() const { return pool_->size(); }

  /// Accept-and-dispatch until shutdown; returns after the drain.
  void run();

  /// Async-signal-safe: one write(2) to a self-pipe. The accept loop polls
  /// the pipe alongside the listen socket, so the wake-up is immediate.
  void request_shutdown();

  bool shutting_down() const {
    return shutdown_.load(std::memory_order_relaxed);
  }

  ServerStats stats() const;

 private:
  void accept_loop();
  void serve_connection(int fd, bool from_loopback);
  /// 503 + Retry-After on a connection we will not service.
  void reject_busy(int fd);
  void publish_gauges();

  ServerOptions options_;
  Handler handler_;
  std::unique_ptr<ThreadPool> pool_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> shutdown_{false};

  mutable std::mutex mutex_;
  std::condition_variable drained_;
  std::size_t active_connections_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_busy_ = 0;
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace picp::serve
