#include "serve/service.hpp"

#include <array>

#include "serve/request_trace.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/telemetry.hpp"
#include "util/crc32.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"
#include "workload/workload_stats.hpp"

namespace picp::serve {

namespace {

/// Latency histogram bounds (microseconds): 100 µs … 30 s, roughly
/// log-spaced — cache hits land in the first buckets, cold workload
/// generations in the last.
constexpr std::array<double, 10> kLatencyBoundsUs = {
    1e2, 3e2, 1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6};

/// Wrong-type / missing-field JSON problems become 400s, not 500s.
class BadRequest : public Error {
 public:
  using Error::Error;
};

double number_field(const Json& body, const std::string& key,
                    double fallback) {
  const Json* field = body.find(key);
  if (field == nullptr) return fallback;
  if (!field->is_number())
    throw BadRequest("field \"" + key + "\" must be a number");
  return field->as_double();
}

std::string json_line(const Json& json) { return json.dump() + "\n"; }

}  // namespace

std::string error_body(int status, const std::string& message) {
  Json error = Json::object();
  error.set("status", Json(status));
  error.set("message", Json(message));
  Json body = Json::object();
  body.set("error", std::move(error));
  return json_line(body);
}

ServiceConfig ServiceConfig::from_config(const Config& config) {
  ServiceConfig service;
  service.trace_path = config.get_string("serve.trace");
  service.models_path = config.get_string("serve.models", "");
  service.nelx = config.get_int("mesh.nelx", service.nelx);
  service.nely = config.get_int("mesh.nely", service.nely);
  service.nelz = config.get_int("mesh.nelz", service.nelz);
  service.points_per_dim = static_cast<int>(
      config.get_int("mesh.points_per_dim", service.points_per_dim));
  service.default_mapper =
      config.get_string("serve.mapper", service.default_mapper);
  service.default_filter =
      config.get_double("serve.filter", service.default_filter);
  service.network.alpha = config.get_double("network.alpha",
                                            service.network.alpha);
  service.network.beta = config.get_double("network.beta",
                                           service.network.beta);
  service.workload_cache_capacity = static_cast<std::size_t>(config.get_int(
      "serve.workload_cache", static_cast<long long>(
                                  service.workload_cache_capacity)));
  service.response_cache_capacity = static_cast<std::size_t>(config.get_int(
      "serve.response_cache", static_cast<long long>(
                                  service.response_cache_capacity)));
  service.cache_dir = config.get_string("serve.cache_dir", "");
  service.allow_stale = config.get_bool("serve.allow_stale", false);
  service.enable_failpoints =
      config.get_bool("serve.enable_failpoints", false);
  service.failpoints = config.get_string("serve.failpoints", "");
  return service;
}

PredictionService::PredictionService(const ServiceConfig& config)
    : config_(config),
      mesh_([&config] {
        TraceReader probe(config.trace_path);
        return SpectralMesh(probe.header().domain, config.nelx, config.nely,
                            config.nelz, config.points_per_dim);
      }()),
      workload_cache_(config.workload_cache_capacity),
      response_cache_(
          config.response_cache_capacity, config.cache_dir,
          {[](const std::string& body) { return body; },
           [](const std::string& bytes) {
             // A spilled response must still be the JSON we produced; a
             // truncated file would otherwise be replayed verbatim.
             Json::parse(bytes);
             return bytes;
           }}) {
  if (!config_.failpoints.empty()) failpoint::arm_many(config_.failpoints);
  trace_ = std::make_unique<TraceReader>(config_.trace_path);
  const TraceHeader& header = trace_->header();
  Crc32c identity;
  identity.update_pod(header.num_particles);
  identity.update_pod(header.num_samples);
  identity.update_pod(header.sample_stride);
  identity.update_pod(header.domain.lo);
  identity.update_pod(header.domain.hi);
  trace_identity_ = identity.value();

  if (!config_.models_path.empty()) {
    models_ = ModelSet::load(config_.models_path);
    models_loaded_ = true;
  }
  pipeline_ = std::make_unique<PredictionPipeline>(mesh_, models_);
  PICP_LOG_INFO << "service ready: trace " << config_.trace_path << " ("
                << header.num_particles << " particles, "
                << header.num_samples << " samples), models "
                << (models_loaded_ ? config_.models_path : "<none>");
}

std::uint64_t PredictionService::workload_fingerprint(
    const PredictionConfig& config) const {
  Crc32c crc;
  crc.update_pod(trace_identity_);
  crc.update_pod(config_.nelx);
  crc.update_pod(config_.nely);
  crc.update_pod(config_.nelz);
  crc.update_pod(config_.points_per_dim);
  crc.update(config.mapper_kind.data(), config.mapper_kind.size());
  crc.update_pod(config.num_ranks);
  crc.update_pod(config.filter_size);
  crc.update_pod(config.max_intervals);
  crc.update_pod(config.interval_stride);
  crc.update_pod(config.compute_ghosts ? 1 : 0);
  crc.update_pod(config.compute_comm ? 1 : 0);
  return crc.value();
}

std::uint64_t PredictionService::request_fingerprint(
    const PredictionConfig& config) const {
  Crc32c crc;
  crc.update_pod(workload_fingerprint(config));
  crc.update(config_.models_path.data(), config_.models_path.size());
  crc.update_pod(config.network.alpha);
  crc.update_pod(config.network.beta);
  crc.update_pod(config.network.bytes_per_particle);
  crc.update_pod(config.network.bytes_per_ghost);
  return crc.value();
}

std::vector<PredictionConfig> PredictionService::parse_request(
    const std::string& body) const {
  Json request;
  try {
    request = body.empty() ? Json::object() : Json::parse(body);
  } catch (const Error& e) {
    throw BadRequest(std::string("malformed JSON body: ") + e.what());
  }
  if (!request.is_object())
    throw BadRequest("request body must be a JSON object");

  PredictionConfig base;
  base.mapper_kind = config_.default_mapper;
  base.filter_size = config_.default_filter;
  base.network = config_.network;
  if (const Json* mapper = request.find("mapper"); mapper != nullptr) {
    if (!mapper->is_string())
      throw BadRequest("field \"mapper\" must be a string");
    base.mapper_kind = mapper->as_string();
  }
  base.filter_size = number_field(request, "filter", base.filter_size);
  if (base.filter_size <= 0.0)
    throw BadRequest("field \"filter\" must be positive");
  const double stride = number_field(request, "interval_stride", 1.0);
  if (stride < 1.0) throw BadRequest("\"interval_stride\" must be >= 1");
  base.interval_stride = static_cast<std::size_t>(stride);
  const double max_intervals = number_field(request, "max_intervals", 0.0);
  if (max_intervals < 0.0) throw BadRequest("\"max_intervals\" must be >= 0");
  if (max_intervals > 0.0)
    base.max_intervals = static_cast<std::size_t>(max_intervals);

  const Json* ranks = request.find("ranks");
  if (ranks == nullptr) throw BadRequest("missing required field \"ranks\"");
  std::vector<PredictionConfig> configs;
  const auto add = [&base, &configs](const Json& value) {
    if (!value.is_number())
      throw BadRequest("\"ranks\" entries must be numbers");
    const double r = value.as_double();
    if (r < 1.0 || r > 1e7)
      throw BadRequest("\"ranks\" must be in [1, 1e7], got " +
                       std::to_string(r));
    PredictionConfig config = base;
    config.num_ranks = static_cast<Rank>(r);
    configs.push_back(std::move(config));
  };
  if (ranks->is_array()) {
    if (ranks->size() == 0) throw BadRequest("\"ranks\" array is empty");
    if (ranks->size() > 64)
      throw BadRequest("at most 64 rank counts per request");
    for (std::size_t i = 0; i < ranks->size(); ++i) add(ranks->at(i));
  } else {
    add(*ranks);
  }
  return configs;
}

std::shared_ptr<const WorkloadResult> PredictionService::workload_for(
    const PredictionConfig& config) {
  bool from_cache = false;
  auto workload = workload_cache_.get_or_compute(
      workload_fingerprint(config),
      [this, &config] {
        failpoint::inject("serve.generate");
        // The span exists only on actual generation — its absence on a
        // repeat query is the observable proof of a cache hit.
        const telemetry::ScopedSpan span("serve.workload_gen", "serve");
        const RequestTrace::Stage stage("generate");
        if (telemetry::enabled())
          telemetry::registry().counter("serve.workload.generations").add();
        std::lock_guard<std::mutex> lock(trace_mutex_);
        return pipeline_->generate_workload(*trace_, config);
      },
      &from_cache, config.deadline);
  if (telemetry::enabled())
    telemetry::registry()
        .counter(from_cache ? "serve.cache.workload.hits"
                            : "serve.cache.workload.misses")
        .add();
  return workload;
}

Json PredictionService::handle_healthz() {
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  Json body = Json::object();
  body.set("status", Json("ok"));
  body.set("uptime_seconds", Json(uptime));
  body.set("trace", Json(config_.trace_path));
  body.set("models_loaded", Json(models_loaded_));
  return body;
}

Json PredictionService::handle_metricsz() {
  publish_cache_counters();
  Json body = Json::object();
  body.set("metrics",
           telemetry::metrics_to_json(telemetry::registry().snapshot()));
  return body;
}

Json PredictionService::handle_models() {
  Json kernels = Json::array();
  for (const std::string& kernel : models_.kernels()) {
    Json entry = Json::object();
    entry.set("kernel", Json(kernel));
    Json features = Json::array();
    for (const std::string& feature : models_.features_of(kernel))
      features.push_back(Json(feature));
    entry.set("features", std::move(features));
    entry.set("formula", Json(models_.model_of(kernel).describe()));
    kernels.push_back(std::move(entry));
  }
  Json body = Json::object();
  body.set("models_path", Json(config_.models_path));
  body.set("kernels", std::move(kernels));
  return body;
}

HttpResponse PredictionService::handle_failpoints(
    const HttpRequest& request) {
  HttpResponse response;
  if (!config_.enable_failpoints) {
    // Indistinguishable from a route that does not exist: a daemon
    // without --enable-failpoints has no fault-injection surface at all.
    response.status = 404;
    response.body = error_body(404, "no such endpoint: /v1/failpoints");
    return response;
  }
  if (!request.from_loopback) {
    response.status = 403;
    response.body = error_body(403, "/v1/failpoints is loopback-only");
    return response;
  }
  if (request.method != "GET" && request.method != "POST") {
    response.status = 405;
    response.set_header("Allow", "GET, POST");
    response.body = error_body(405, "use GET or POST for /v1/failpoints");
    return response;
  }

  if (request.method == "POST") {
    Json body;
    try {
      body = request.body.empty() ? Json::object()
                                  : Json::parse(request.body);
    } catch (const Error& e) {
      throw BadRequest(std::string("malformed JSON body: ") + e.what());
    }
    if (!body.is_object())
      throw BadRequest("request body must be a JSON object");
    if (const Json* seed = body.find("seed"); seed != nullptr) {
      if (!seed->is_number()) throw BadRequest("\"seed\" must be a number");
      failpoint::set_seed(seed->as_uint());
    }
    try {
      if (const Json* arm = body.find("arm"); arm != nullptr) {
        if (!arm->is_string())
          throw BadRequest("\"arm\" must be a spec string");
        failpoint::arm_many(arm->as_string());
      }
    } catch (const BadRequest&) {
      throw;
    } catch (const Error& e) {
      throw BadRequest(e.what());  // malformed spec is the client's fault
    }
    if (const Json* disarm = body.find("disarm"); disarm != nullptr) {
      if (!disarm->is_string())
        throw BadRequest("\"disarm\" must be a site name");
      failpoint::disarm(disarm->as_string());
    }
    if (const Json* all = body.find("disarm_all"); all != nullptr) {
      if (all->kind() != Json::Kind::kBool)
        throw BadRequest("\"disarm_all\" must be a boolean");
      if (all->as_bool()) failpoint::disarm_all();
    }
  }

  Json armed = Json::array();
  for (const failpoint::Info& info : failpoint::list()) {
    Json row = Json::object();
    row.set("site", Json(info.site));
    row.set("spec", Json(info.spec));
    row.set("hits", Json(info.hits));
    row.set("fires", Json(info.fires));
    armed.push_back(std::move(row));
  }
  Json body = Json::object();
  body.set("failpoints", std::move(armed));
  response.body = json_line(body);
  return response;
}

std::string PredictionService::handle_predict(const std::string& body,
                                              bool* from_cache,
                                              const Deadline& deadline,
                                              bool* degraded) {
  if (!models_loaded_)
    throw BadRequest(
        "no models loaded (start the daemon with serve.models set) — "
        "/v1/workload is still available");
  std::vector<PredictionConfig> configs = parse_request(body);
  for (PredictionConfig& config : configs) config.deadline = deadline;

  // The response key covers every config in the batch, so a reordered
  // ranks list is a different artifact (its JSON differs too).
  Crc32c key;
  for (const PredictionConfig& config : configs)
    key.update_pod(request_fingerprint(config));
  // "cache" covers the lookup and any single-flight wait; the nested
  // generate/simulate/render stages subtract themselves out, so a hit
  // shows pure cache time and a miss shows only the cache machinery.
  const RequestTrace::Stage cache_stage("cache");
  auto rendered = response_cache_.get_or_compute(
      key.value(),
      [this, &configs] {
        Json results = Json::array();
        for (const PredictionConfig& config : configs) {
          const auto workload = workload_for(config);
          SimReport sim;
          {
            const RequestTrace::Stage stage("simulate");
            sim = pipeline_->simulate_workload(*workload, config);
          }
          const RequestTrace::Stage stage("render");
          Json row = Json::object();
          row.set("ranks", Json(static_cast<std::int64_t>(config.num_ranks)));
          row.set("mapper", Json(config.mapper_kind));
          row.set("filter", Json(config.filter_size));
          row.set("predicted_seconds", Json(sim.total_seconds));
          row.set("critical_path_seconds", Json(sim.critical_path_seconds));
          row.set("des_events", Json(sim.events));
          row.set("intervals",
                  Json(static_cast<std::uint64_t>(workload->num_intervals())));
          results.push_back(std::move(row));
        }
        const RequestTrace::Stage stage("render");
        Json reply = Json::object();
        reply.set("results", std::move(results));
        return json_line(reply);
      },
      from_cache, deadline, config_.allow_stale, degraded);
  if (telemetry::enabled())
    telemetry::registry()
        .counter(*from_cache ? "serve.cache.response.hits"
                             : "serve.cache.response.misses")
        .add();
  return *rendered;
}

std::string PredictionService::handle_workload(const std::string& body,
                                               bool* from_cache,
                                               const Deadline& deadline,
                                               bool* degraded) {
  std::vector<PredictionConfig> configs = parse_request(body);
  for (PredictionConfig& config : configs) config.deadline = deadline;

  Crc32c key;
  key.update_pod(std::uint64_t{0x574b4c44});  // namespace: "WKLD" responses
  for (const PredictionConfig& config : configs)
    key.update_pod(workload_fingerprint(config));
  const RequestTrace::Stage cache_stage("cache");
  auto rendered = response_cache_.get_or_compute(
      key.value(),
      [this, &configs] {
        Json results = Json::array();
        for (const PredictionConfig& config : configs) {
          const auto workload = workload_for(config);
          const RequestTrace::Stage stage("render");
          const UtilizationStats stats = utilization(workload->comp_real);
          Json row = Json::object();
          row.set("ranks", Json(static_cast<std::int64_t>(config.num_ranks)));
          row.set("mapper", Json(config.mapper_kind));
          row.set("filter", Json(config.filter_size));
          row.set("intervals",
                  Json(static_cast<std::uint64_t>(workload->num_intervals())));
          row.set("peak_particles_per_rank", Json(stats.peak_load));
          row.set("mean_active_fraction", Json(stats.mean_active_fraction));
          row.set("ever_active_ranks",
                  Json(static_cast<std::int64_t>(stats.ever_active)));
          row.set("migrated_particles",
                  Json(workload->comm_real.total_volume()));
          row.set("ghost_transfers",
                  Json(workload->comm_ghost.total_volume()));
          results.push_back(std::move(row));
        }
        Json reply = Json::object();
        reply.set("results", std::move(results));
        return json_line(reply);
      },
      from_cache, deadline, config_.allow_stale, degraded);
  if (telemetry::enabled())
    telemetry::registry()
        .counter(*from_cache ? "serve.cache.response.hits"
                             : "serve.cache.response.misses")
        .add();
  return *rendered;
}

void PredictionService::publish_cache_counters() {
  if (!telemetry::enabled()) return;
  auto& reg = telemetry::registry();
  const ArtifactCacheStats workload = workload_cache_.stats();
  const ArtifactCacheStats response = response_cache_.stats();
  reg.gauge("serve.cache.workload.resident")
      .set(static_cast<double>(workload_cache_.size()));
  reg.gauge("serve.cache.workload.inflight_waits")
      .set(static_cast<double>(workload.inflight_waits));
  reg.gauge("serve.cache.workload.evictions")
      .set(static_cast<double>(workload.evictions));
  reg.gauge("serve.cache.response.resident")
      .set(static_cast<double>(response_cache_.size()));
  reg.gauge("serve.cache.response.inflight_waits")
      .set(static_cast<double>(response.inflight_waits));
  reg.gauge("serve.cache.response.evictions")
      .set(static_cast<double>(response.evictions));
  reg.gauge("serve.cache.response.disk_hits")
      .set(static_cast<double>(response.disk_hits));
  // Robustness counters: all must read zero when no failpoint is armed
  // and no spill file was corrupted — check_chaos.sh asserts exactly that.
  reg.gauge("serve.cache.response.quarantined")
      .set(static_cast<double>(response.quarantined));
  reg.gauge("serve.cache.response.stale_served")
      .set(static_cast<double>(response.stale_served));
  reg.gauge("serve.cache.response.spill_failures")
      .set(static_cast<double>(response.spill_failures));
  reg.gauge("serve.cache.workload.stale_served")
      .set(static_cast<double>(workload.stale_served));
  reg.gauge("failpoint.armed")
      .set(static_cast<double>(failpoint::list().size()));
}

HttpResponse PredictionService::handle(const HttpRequest& request) {
  Stopwatch watch;
  HttpResponse response;
  try {
    Deadline deadline;
    if (const std::string* budget = request.header("x-picp-deadline-ms")) {
      long long ms = 0;
      try {
        ms = parse_int(*budget);
      } catch (const Error&) {
        throw BadRequest("malformed X-Picp-Deadline-Ms: " + *budget);
      }
      if (ms <= 0)
        throw BadRequest("X-Picp-Deadline-Ms must be a positive integer");
      deadline = Deadline::after_ms(ms);
    }
    response = handle_routed(request, deadline);
  } catch (const BadRequest& e) {
    response.status = 400;
    response.body = error_body(400, e.what());
  } catch (const DeadlineExceeded& e) {
    // The request ran out of budget mid-pipeline: tell the client which
    // stage the work died in (partial-progress telemetry), free the
    // worker, and count it — a 504 is load information, not an error.
    response.status = 504;
    response.set_header("X-Picp-Deadline-Stage", e.stage());
    response.body = error_body(504, e.what());
    RequestTrace::note_deadline_stage(e.stage());
    if (telemetry::enabled()) {
      auto& reg = telemetry::registry();
      reg.counter("serve.deadline_exceeded").add();
      reg.counter("serve.deadline.stage." + e.stage()).add();
    }
  } catch (const std::exception& e) {
    PICP_LOG_WARN << "request " << request.method << " " << request.target
                  << " failed: " << e.what();
    response.status = 500;
    response.body = error_body(500, e.what());
  }
  // Set-if-absent: the Prometheus exposition branch picks its own type.
  if (response.header("content-type") == nullptr)
    response.set_header("Content-Type", "application/json");

  if (telemetry::enabled()) {
    auto& reg = telemetry::registry();
    reg.counter("serve.requests").add();
    const char* klass = response.status >= 500   ? "serve.responses.5xx"
                        : response.status >= 400 ? "serve.responses.4xx"
                                                 : "serve.responses.2xx";
    reg.counter(klass).add();
    // One histogram per endpoint family (bounded name set: the route map);
    // keyed on the path alone so a query string cannot mint a new series.
    std::string endpoint = target_path(request.target);
    for (char& c : endpoint)
      if (c == '/') c = '_';
    reg.histogram("serve.latency_us" + endpoint, kLatencyBoundsUs)
        .observe(watch.seconds() * 1e6);
  }
  return response;
}

HttpResponse PredictionService::handle_routed(const HttpRequest& request,
                                              const Deadline& deadline) {
  HttpResponse response;
  // Route on the path alone; the query string selects representations
  // (?format=prometheus) and probes (?ready=1), never endpoints.
  const std::string path = target_path(request.target);
  const bool is_get = request.method == "GET";
  const bool is_post = request.method == "POST";

  if (path == "/v1/failpoints") return handle_failpoints(request);

  if (path == "/healthz" || path == "/metricsz" || path == "/v1/models") {
    if (!is_get) {
      response.status = 405;
      response.set_header("Allow", "GET");
      response.body = error_body(405, "use GET for " + path);
      return response;
    }
    const telemetry::ScopedSpan span("serve.introspect", "serve");
    if (path == "/healthz") {
      if (query_param(request.target, "ready") == "1") {
        std::string reason;
        if (readiness_probe_ && !readiness_probe_(&reason)) {
          // Load balancers read this: alive, but take me out of rotation.
          response.status = 503;
          response.set_header("Retry-After", "1");
          response.body = error_body(503, "not ready: " + reason);
          return response;
        }
      }
      response.body = json_line(handle_healthz());
    } else if (path == "/metricsz") {
      if (query_param(request.target, "format") == "prometheus") {
        publish_cache_counters();
        response.body = telemetry::to_prometheus_text(
            telemetry::registry().snapshot());
        response.set_header("Content-Type",
                            telemetry::prometheus_content_type());
      } else {
        response.body = json_line(handle_metricsz());
      }
    } else {
      response.body = json_line(handle_models());
    }
    return response;
  }

  if (path == "/v1/predict" || path == "/v1/workload") {
    if (!is_post) {
      response.status = 405;
      response.set_header("Allow", "POST");
      response.body = error_body(405, "use POST for " + path);
      return response;
    }
    bool from_cache = false;
    bool degraded = false;
    if (path == "/v1/predict") {
      const telemetry::ScopedSpan span("serve.predict", "serve");
      response.body =
          handle_predict(request.body, &from_cache, deadline, &degraded);
    } else {
      const telemetry::ScopedSpan span("serve.workload", "serve");
      response.body =
          handle_workload(request.body, &from_cache, deadline, &degraded);
    }
    response.set_header("X-Picp-Cache", from_cache ? "hit" : "miss");
    RequestTrace::note_cache(degraded ? "stale"
                                      : (from_cache ? "hit" : "miss"));
    if (degraded) {
      response.set_header("X-Picp-Degraded", "stale");
      if (telemetry::enabled())
        telemetry::registry().counter("serve.degraded").add();
    }
    return response;
  }

  response.status = 404;
  response.body = error_body(
      404, "no such endpoint: " + path +
               " (have /healthz /metricsz /v1/models /v1/workload "
               "/v1/predict)");
  return response;
}

}  // namespace picp::serve
