#pragma once

// Content-addressed artifact cache for the prediction service: expensive
// derived artifacts (per-(R, mapper, filter) workload results, serialized
// response bodies) are keyed by a config fingerprint and held in a
// capacity-bounded LRU. Concurrent requests for the same key are
// single-flighted — the first caller computes while the rest wait on its
// future — so N identical queries cost one workload-generation run. An
// optional disk tier (encode/decode hooks + util::AtomicFile) lets evicted
// entries survive as crash-safe spill files and repopulate the LRU on the
// next miss. The sibling of tests/support/fixture_cache (same
// content-addressing idea), but in-memory-first and concurrency-aware.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_map>

#include "util/atomic_file.hpp"
#include "util/error.hpp"

namespace picp::serve {

/// Monotonic cache statistics (all mutations under the cache mutex; the
/// service layer republishes them as telemetry counters).
struct ArtifactCacheStats {
  std::uint64_t hits = 0;            // served from the in-memory LRU
  std::uint64_t misses = 0;          // triggered a compute
  std::uint64_t disk_hits = 0;       // repopulated from the spill tier
  std::uint64_t evictions = 0;       // LRU entries dropped (capacity)
  std::uint64_t inflight_waits = 0;  // callers that joined a compute in flight
};

template <typename V>
class ArtifactCache {
 public:
  /// Spill hooks: encode to/decode from the on-disk byte form. Decode may
  /// throw (corrupt or truncated spill file) — the cache treats that as a
  /// plain miss and recomputes.
  struct SpillHooks {
    std::function<std::string(const V&)> encode;
    std::function<V(const std::string&)> decode;
  };

  /// `capacity` bounds completed in-memory entries (>= 1). `spill_dir`
  /// empty disables the disk tier.
  explicit ArtifactCache(std::size_t capacity, std::string spill_dir = "",
                         SpillHooks hooks = {})
      : capacity_(capacity == 0 ? 1 : capacity),
        spill_dir_(std::move(spill_dir)),
        hooks_(std::move(hooks)) {
    if (!spill_dir_.empty())
      std::filesystem::create_directories(spill_dir_);
  }

  /// The artifact for `key`, computing it via `compute` on a miss. Blocks
  /// while another thread is computing the same key (single-flight); a
  /// throwing compute propagates to every waiter and leaves the key
  /// absent, so the next request retries. `from_cache` (optional) reports
  /// whether the value was served without running `compute`.
  std::shared_ptr<const V> get_or_compute(
      std::uint64_t key, const std::function<V()>& compute,
      bool* from_cache = nullptr) {
    std::shared_future<std::shared_ptr<const V>> future;
    std::shared_ptr<std::promise<std::shared_ptr<const V>>> promise;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (auto it = entries_.find(key); it != entries_.end()) {
        if (it->second.value != nullptr) {
          ++stats_.hits;
          touch(it->second);
          if (from_cache != nullptr) *from_cache = true;
          return it->second.value;
        }
        ++stats_.inflight_waits;
        future = it->second.future;
      } else {
        promise =
            std::make_shared<std::promise<std::shared_ptr<const V>>>();
        Entry entry;
        entry.future = promise->get_future().share();
        entries_.emplace(key, std::move(entry));
        ++stats_.misses;
      }
    }

    if (promise == nullptr) {
      // Someone else is computing; their result (or exception) is ours.
      auto value = future.get();
      if (from_cache != nullptr) *from_cache = true;
      return value;
    }

    bool from_disk = false;
    std::shared_ptr<const V> value;
    try {
      value = load_spill(key, &from_disk);
      if (value == nullptr)
        value = std::make_shared<const V>(compute());
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      entries_.erase(key);
      promise->set_exception(std::current_exception());
      throw;
    }
    promise->set_value(value);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      PICP_ENSURE(it != entries_.end(),
                  "cache entry vanished while computing");
      it->second.value = value;
      lru_.push_front(key);
      it->second.lru = lru_.begin();
      if (from_disk) ++stats_.disk_hits;
      evict_over_capacity();
    }
    if (from_cache != nullptr) *from_cache = from_disk;
    return value;
  }

  /// Completed entries currently resident in memory.
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
  }

  ArtifactCacheStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  /// Spill-file path for a key (empty when the disk tier is off) — exposed
  /// so tests and the service can report where artifacts land.
  std::string spill_path(std::uint64_t key) const {
    if (spill_dir_.empty()) return "";
    char name[32];
    std::snprintf(name, sizeof name, "%016llx.art",
                  static_cast<unsigned long long>(key));
    return spill_dir_ + "/" + name;
  }

 private:
  struct Entry {
    std::shared_ptr<const V> value;  // nullptr while computing
    std::shared_future<std::shared_ptr<const V>> future;
    std::list<std::uint64_t>::iterator lru;
  };

  void touch(Entry& entry) {
    lru_.splice(lru_.begin(), lru_, entry.lru);
    entry.lru = lru_.begin();
  }

  void evict_over_capacity() {
    while (lru_.size() > capacity_) {
      const std::uint64_t victim = lru_.back();
      auto it = entries_.find(victim);
      PICP_ENSURE(it != entries_.end(), "LRU key missing from entry map");
      spill(victim, *it->second.value);
      entries_.erase(it);
      lru_.pop_back();
      ++stats_.evictions;
    }
  }

  void spill(std::uint64_t key, const V& value) {
    if (spill_dir_.empty() || !hooks_.encode) return;
    const std::string encoded = hooks_.encode(value);
    // AtomicFile publication: a crash mid-spill leaves no torn artifact
    // under the final name, so decode never sees a half-written file that
    // was committed.
    atomic_write_file(spill_path(key), encoded.data(), encoded.size());
  }

  /// nullptr when absent/disabled; throws only on decode rejecting bytes.
  std::shared_ptr<const V> load_spill(std::uint64_t key, bool* from_disk) {
    if (spill_dir_.empty() || !hooks_.decode) return nullptr;
    std::ifstream in(spill_path(key), std::ios::binary);
    if (!in.is_open()) return nullptr;
    std::ostringstream bytes;
    bytes << in.rdbuf();
    try {
      auto value = std::make_shared<const V>(hooks_.decode(bytes.str()));
      *from_disk = true;
      return value;
    } catch (const Error&) {
      return nullptr;  // corrupt spill file: fall through to compute
    }
  }

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::string spill_dir_;
  SpillHooks hooks_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  // front = most recently used
  ArtifactCacheStats stats_;
};

}  // namespace picp::serve
