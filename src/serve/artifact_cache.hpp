#pragma once

// Content-addressed artifact cache for the prediction service: expensive
// derived artifacts (per-(R, mapper, filter) workload results, serialized
// response bodies) are keyed by a config fingerprint and held in a
// capacity-bounded LRU. Concurrent requests for the same key are
// single-flighted — the first caller computes while the rest wait on its
// future — so N identical queries cost one workload-generation run. An
// optional disk tier (encode/decode hooks + util::AtomicFile) lets evicted
// entries survive as crash-safe spill files and repopulate the LRU on the
// next miss. The sibling of tests/support/fixture_cache (same
// content-addressing idea), but in-memory-first and concurrency-aware.
//
// Robustness contract (PR 7):
//   - Spill files are framed [magic | key | crc32c | payload]; a file
//     whose digest or key does not match is *quarantined* (moved to
//     spill_dir/quarantine, never deleted, never replayed) and counted.
//     The constructor scans the whole spill dir, so a crash that corrupts
//     or orphans files is reconciled before the first request.
//   - A failed spill (disk full, injected short write) drops the entry
//     from the disk tier but never publishes a torn file — AtomicFile
//     unlinks its temp on abort — and never aborts the eviction.
//   - get_or_compute() takes a Deadline: waiters joined to an in-flight
//     computation stop waiting when their request's budget expires, so a
//     wedged generation cannot strand every later request for the key.
//   - A bounded *stale tier* remembers the last good value per key in
//     memory. When compute fails and the caller allows it, the stale
//     value is served (flagged degraded) instead of propagating a 500.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_map>

#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace picp::serve {

/// Monotonic cache statistics (all mutations under the cache mutex; the
/// service layer republishes them as telemetry counters).
struct ArtifactCacheStats {
  std::uint64_t hits = 0;            // served from the in-memory LRU
  std::uint64_t misses = 0;          // triggered a compute
  std::uint64_t disk_hits = 0;       // repopulated from the spill tier
  std::uint64_t evictions = 0;       // LRU entries dropped (capacity)
  std::uint64_t inflight_waits = 0;  // callers that joined a compute in flight
  std::uint64_t quarantined = 0;     // spill files failing their digest
  std::uint64_t stale_served = 0;    // degraded responses from the stale tier
  std::uint64_t spill_failures = 0;  // evictions whose disk spill failed
};

template <typename V>
class ArtifactCache {
 public:
  /// Spill hooks: encode to/decode from the on-disk byte form. Decode may
  /// throw (corrupt or truncated spill file) — the cache treats that as a
  /// plain miss and recomputes.
  struct SpillHooks {
    std::function<std::string(const V&)> encode;
    std::function<V(const std::string&)> decode;
  };

  /// `capacity` bounds completed in-memory entries (>= 1). `spill_dir`
  /// empty disables the disk tier. When enabled, the constructor
  /// reconciles the spill dir: entries failing their frame digest and
  /// orphaned temp files are quarantined before any request is served.
  explicit ArtifactCache(std::size_t capacity, std::string spill_dir = "",
                         SpillHooks hooks = {})
      : capacity_(capacity == 0 ? 1 : capacity),
        spill_dir_(std::move(spill_dir)),
        hooks_(std::move(hooks)) {
    if (!spill_dir_.empty()) {
      std::filesystem::create_directories(spill_dir_);
      scan_spill_dir();
    }
  }

  /// The artifact for `key`, computing it via `compute` on a miss. Blocks
  /// while another thread is computing the same key (single-flight); a
  /// throwing compute propagates to every waiter and leaves the key
  /// absent, so the next request retries. `from_cache` (optional) reports
  /// whether the value was served without running `compute`.
  ///
  /// `deadline` bounds how long this caller waits on someone else's
  /// in-flight computation (DeadlineExceeded past it). With `allow_stale`,
  /// a failed compute falls back to the last good value for the key when
  /// one is remembered — `*degraded` reports that the value is stale.
  /// Deadline overruns never serve stale: the client stopped waiting, and
  /// stale-on-timeout would disguise a 504 as a 200.
  std::shared_ptr<const V> get_or_compute(
      std::uint64_t key, const std::function<V()>& compute,
      bool* from_cache = nullptr, const Deadline& deadline = Deadline(),
      bool allow_stale = false, bool* degraded = nullptr) {
    std::shared_future<std::shared_ptr<const V>> future;
    std::shared_ptr<std::promise<std::shared_ptr<const V>>> promise;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (auto it = entries_.find(key); it != entries_.end()) {
        if (it->second.value != nullptr) {
          ++stats_.hits;
          touch(it->second);
          if (from_cache != nullptr) *from_cache = true;
          return it->second.value;
        }
        ++stats_.inflight_waits;
        future = it->second.future;
      } else {
        promise =
            std::make_shared<std::promise<std::shared_ptr<const V>>>();
        Entry entry;
        entry.future = promise->get_future().share();
        entries_.emplace(key, std::move(entry));
        ++stats_.misses;
      }
    }

    if (promise == nullptr) {
      // Someone else is computing; their result (or exception) is ours —
      // but only for as long as our own request's budget allows.
      if (deadline.limited() &&
          future.wait_until(deadline.time_point()) !=
              std::future_status::ready)
        throw DeadlineExceeded("cache.wait");
      auto value = future.get();
      if (from_cache != nullptr) *from_cache = true;
      return value;
    }

    bool from_disk = false;
    std::shared_ptr<const V> value;
    try {
      value = load_spill(key, &from_disk);
      if (value == nullptr) {
        deadline.check("cache.compute");
        value = std::make_shared<const V>(compute());
      }
    } catch (...) {
      std::shared_ptr<const V> stale = allow_stale && !unwinding_deadline()
                                           ? take_stale(key)
                                           : nullptr;
      if (stale == nullptr) {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.erase(key);
        promise->set_exception(std::current_exception());
        throw;
      }
      // Degraded mode: hand the last good value to ourselves and every
      // waiter, then free the slot so the next request retries a fresh
      // compute instead of re-serving stale forever.
      promise->set_value(stale);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.erase(key);
        ++stats_.stale_served;
      }
      if (from_cache != nullptr) *from_cache = true;
      if (degraded != nullptr) *degraded = true;
      return stale;
    }
    promise->set_value(value);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      PICP_ENSURE(it != entries_.end(),
                  "cache entry vanished while computing");
      it->second.value = value;
      lru_.push_front(key);
      it->second.lru = lru_.begin();
      if (from_disk) ++stats_.disk_hits;
      remember_stale(key, value);
      evict_over_capacity();
    }
    if (from_cache != nullptr) *from_cache = from_disk;
    return value;
  }

  /// Completed entries currently resident in memory.
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
  }

  ArtifactCacheStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  /// Spill-file path for a key (empty when the disk tier is off) — exposed
  /// so tests and the service can report where artifacts land.
  std::string spill_path(std::uint64_t key) const {
    if (spill_dir_.empty()) return "";
    char name[32];
    std::snprintf(name, sizeof name, "%016llx.art",
                  static_cast<unsigned long long>(key));
    return spill_dir_ + "/" + name;
  }

  /// Where quarantined spill files land (for tests and operators).
  std::string quarantine_dir() const {
    return spill_dir_.empty() ? "" : spill_dir_ + "/quarantine";
  }

 private:
  struct Entry {
    std::shared_ptr<const V> value;  // nullptr while computing
    std::shared_future<std::shared_ptr<const V>> future;
    std::list<std::uint64_t>::iterator lru;
  };

  // --- spill frame -------------------------------------------------------
  // [8B magic "PICPART1"][8B key LE][4B crc32c(payload)][payload]. The key
  // is embedded so a file renamed over another key's slot cannot replay.

  static constexpr char kMagic[8] = {'P', 'I', 'C', 'P', 'A', 'R', 'T', '1'};
  static constexpr std::size_t kFrameHeader = 8 + 8 + 4;

  static std::string encode_frame(std::uint64_t key,
                                  const std::string& payload) {
    std::string out;
    out.reserve(kFrameHeader + payload.size());
    out.append(kMagic, sizeof kMagic);
    char scratch[8];
    for (int i = 0; i < 8; ++i)
      scratch[i] = static_cast<char>((key >> (8 * i)) & 0xFF);
    out.append(scratch, 8);
    const std::uint32_t crc = crc32c(payload.data(), payload.size());
    for (int i = 0; i < 4; ++i)
      out.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
    out += payload;
    return out;
  }

  /// Payload of a verified frame; throws CorruptInputError on any
  /// mismatch (magic, embedded key, digest, truncation).
  static std::string decode_frame(std::uint64_t key, const std::string& raw,
                                  const std::string& path) {
    if (raw.size() < kFrameHeader || std::memcmp(raw.data(), kMagic, 8) != 0)
      throw CorruptInputError(path, "missing spill frame header");
    std::uint64_t embedded = 0;
    for (std::size_t i = 0; i < 8; ++i)
      embedded |= static_cast<std::uint64_t>(
                      static_cast<unsigned char>(raw[8 + i]))
                  << (8 * i);
    if (embedded != key)
      throw CorruptInputError(path, "spill frame key mismatch");
    std::uint32_t crc = 0;
    for (std::size_t i = 0; i < 4; ++i)
      crc |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(raw[16 + i]))
             << (8 * i);
    const std::string payload = raw.substr(kFrameHeader);
    if (crc32c(payload.data(), payload.size()) != crc)
      throw CorruptInputError(path, "spill frame digest mismatch");
    return payload;
  }

  // --- boot reconciliation ----------------------------------------------

  /// Move a file into spill_dir/quarantine (never delete: the bytes are
  /// evidence). Falls back to removal only if even the move fails, because
  /// the one unacceptable outcome is a corrupt file left where it replays.
  void quarantine_file(const std::filesystem::path& path) {
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path qdir(quarantine_dir());
    fs::create_directories(qdir, ec);
    fs::rename(path, qdir / path.filename(), ec);
    if (ec) fs::remove(path, ec);
  }

  /// Constructor-time scan: verify every committed spill frame, quarantine
  /// failures and crash-orphaned temp files. Runs before any request, so
  /// no locking; counts land in stats_ and surface via /metricsz.
  void scan_spill_dir() {
    namespace fs = std::filesystem;
    std::error_code ec;
    for (const auto& item : fs::directory_iterator(spill_dir_, ec)) {
      if (!item.is_regular_file()) continue;
      const std::string name = item.path().filename().string();
      if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
        // Crash mid-spill: AtomicFile never committed this. Quarantine it
        // so a later spill of the same key starts from a clean slate.
        quarantine_file(item.path());
        ++stats_.quarantined;
        continue;
      }
      if (name.size() != 20 || name.compare(16, 4, ".art") != 0) continue;
      char* end = nullptr;
      const std::uint64_t key = std::strtoull(name.c_str(), &end, 16);
      if (end != name.c_str() + 16) continue;
      std::ifstream in(item.path(), std::ios::binary);
      if (!in.is_open()) continue;
      std::ostringstream bytes;
      bytes << in.rdbuf();
      try {
        (void)decode_frame(key, bytes.str(), item.path().string());
      } catch (const Error&) {
        quarantine_file(item.path());
        ++stats_.quarantined;
      }
    }
  }

  // --- stale tier --------------------------------------------------------

  /// Remember the last good value for a key (bounded FIFO of capacity_
  /// keys) so degraded mode can serve it after compute + disk both fail.
  /// Caller holds mutex_.
  void remember_stale(std::uint64_t key, std::shared_ptr<const V> value) {
    if (auto it = stale_.find(key); it != stale_.end()) {
      it->second = std::move(value);
      return;
    }
    stale_.emplace(key, std::move(value));
    stale_order_.push_back(key);
    while (stale_order_.size() > capacity_) {
      stale_.erase(stale_order_.front());
      stale_order_.pop_front();
    }
  }

  std::shared_ptr<const V> take_stale(std::uint64_t key) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = stale_.find(key);
    return it == stale_.end() ? nullptr : it->second;
  }

  /// True while the in-flight exception is a DeadlineExceeded (degraded
  /// mode must not mask timeouts as successes).
  static bool unwinding_deadline() {
    try {
      throw;
    } catch (const DeadlineExceeded&) {
      return true;
    } catch (...) {
      return false;
    }
  }

  // --- LRU + disk tier ---------------------------------------------------

  void touch(Entry& entry) {
    lru_.splice(lru_.begin(), lru_, entry.lru);
    entry.lru = lru_.begin();
  }

  void evict_over_capacity() {
    while (lru_.size() > capacity_) {
      const std::uint64_t victim = lru_.back();
      auto it = entries_.find(victim);
      PICP_ENSURE(it != entries_.end(), "LRU key missing from entry map");
      remember_stale(victim, it->second.value);
      try {
        spill(victim, *it->second.value);
      } catch (const std::exception&) {
        // Disk full / injected short write: the entry just falls out of
        // the disk tier. AtomicFile aborted its temp, so nothing torn was
        // published — and eviction itself must never fail.
        ++stats_.spill_failures;
      }
      entries_.erase(it);
      lru_.pop_back();
      ++stats_.evictions;
    }
  }

  void spill(std::uint64_t key, const V& value) {
    if (spill_dir_.empty() || !hooks_.encode) return;
    failpoint::inject("cache.spill");
    const std::string framed = encode_frame(key, hooks_.encode(value));
    // AtomicFile publication: a crash mid-spill leaves no torn artifact
    // under the final name, so decode never sees a half-written file that
    // was committed.
    atomic_write_file(spill_path(key), framed.data(), framed.size());
  }

  /// nullptr when absent/disabled or when the file fails its frame check
  /// (which quarantines it); throws only on decode rejecting a payload
  /// whose digest was valid — a logic error worth surfacing.
  std::shared_ptr<const V> load_spill(std::uint64_t key, bool* from_disk) {
    if (spill_dir_.empty() || !hooks_.decode) return nullptr;
    failpoint::inject("cache.load");
    const std::string path = spill_path(key);
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) return nullptr;
    std::ostringstream bytes;
    bytes << in.rdbuf();
    std::string payload;
    try {
      payload = decode_frame(key, bytes.str(), path);
    } catch (const Error&) {
      in.close();
      quarantine_file(path);
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.quarantined;
      return nullptr;
    }
    try {
      auto value = std::make_shared<const V>(hooks_.decode(payload));
      *from_disk = true;
      return value;
    } catch (const Error&) {
      return nullptr;  // decode rejected a digest-valid payload: recompute
    }
  }

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::string spill_dir_;
  SpillHooks hooks_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::shared_ptr<const V>> stale_;
  std::list<std::uint64_t> stale_order_;  // FIFO bound for stale_
  ArtifactCacheStats stats_;
};

}  // namespace picp::serve
