#include "serve/http_parser.hpp"

#include <cctype>

#include "util/string_util.hpp"

namespace picp::serve {

namespace wire {

namespace {

std::string lower(std::string text) {
  for (char& c : text)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return text;
}

const std::string* find_header(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& lower_name) {
  for (const auto& [name, value] : headers)
    if (name == lower_name) return &value;
  return nullptr;
}

}  // namespace

void parse_head_block(
    const std::string& head, std::string& start_line,
    std::vector<std::pair<std::string, std::string>>& headers) {
  headers.clear();
  std::size_t pos = 0;
  bool first = true;
  while (pos < head.size()) {
    std::size_t eol = head.find('\n', pos);
    if (eol == std::string::npos) eol = head.size();
    std::size_t end = eol;
    if (end > pos && head[end - 1] == '\r') --end;
    const std::string line = head.substr(pos, end - pos);
    pos = eol + 1;
    if (line.empty()) break;  // blank line terminates the block
    if (first) {
      start_line = line;
      first = false;
      continue;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0)
      throw HttpError(400, "malformed header line: " + line);
    std::string name = lower(trim(line.substr(0, colon)));
    std::string value = trim(line.substr(colon + 1));
    if (name.empty()) throw HttpError(400, "empty header name");
    headers.emplace_back(std::move(name), std::move(value));
  }
  if (first) throw HttpError(400, "empty message head");
}

void parse_request_line(const std::string& start_line,
                        HttpRequest& request) {
  // Request line: METHOD SP target SP HTTP/x.y
  const std::size_t sp1 = start_line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : start_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos)
    throw HttpError(400, "malformed request line: " + start_line);
  request.method = start_line.substr(0, sp1);
  request.target = start_line.substr(sp1 + 1, sp2 - sp1 - 1);
  request.version = start_line.substr(sp2 + 1);
  if (request.version.rfind("HTTP/", 0) != 0)
    throw HttpError(400, "malformed HTTP version: " + request.version);
  if (request.method.empty() || request.target.empty() ||
      request.target[0] != '/')
    throw HttpError(400, "malformed request target");
}

std::size_t content_length_of(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const HttpLimits& limits) {
  if (find_header(headers, "transfer-encoding") != nullptr)
    throw HttpError(501, "chunked transfer encoding not supported");
  const std::string* value = find_header(headers, "content-length");
  if (value == nullptr) return 0;
  long long length = 0;
  try {
    length = parse_int(*value);
  } catch (const Error&) {
    throw HttpError(400, "malformed Content-Length: " + *value);
  }
  if (length < 0) throw HttpError(400, "negative Content-Length");
  if (static_cast<std::size_t>(length) > limits.max_body_bytes)
    throw HttpError(413, "body exceeds " +
                             std::to_string(limits.max_body_bytes) +
                             " bytes");
  return static_cast<std::size_t>(length);
}

std::size_t find_head_end(const std::string& buffer, std::size_t pos) {
  const std::size_t crlf = buffer.find("\n\r\n", pos);
  const std::size_t bare = buffer.find("\n\n", pos);
  if (crlf != std::string::npos &&
      (bare == std::string::npos || crlf < bare))
    return crlf + 3;
  if (bare != std::string::npos) return bare + 2;
  return std::string::npos;
}

}  // namespace wire

void RequestParser::feed(const char* data, std::size_t n) {
  if (n == 0) return;
  // Reclaim consumed prefix before growing, so a long-lived keep-alive
  // connection's buffer stays proportional to one in-flight message.
  if (pos_ > 0) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(data, n);
  drain_buffer();
}

void RequestParser::drain_buffer() {
  for (;;) {
    if (state_ != State::kBody) {
      // Looking for (or mid-way through) a header block.
      const std::size_t end = wire::find_head_end(buffer_, pos_);
      if (end == std::string::npos) {
        if (buffer_.size() - pos_ > limits_.max_header_bytes)
          throw HttpError(431, "header block exceeds " +
                                   std::to_string(limits_.max_header_bytes) +
                                   " bytes");
        state_ = buffer_.size() > pos_ ? State::kHead : State::kIdle;
        return;
      }
      if (end - pos_ > limits_.max_header_bytes)
        throw HttpError(431, "header block exceeds " +
                                 std::to_string(limits_.max_header_bytes) +
                                 " bytes");
      const std::string head(buffer_, pos_, end - pos_);
      pos_ = end;
      std::string start_line;
      pending_ = HttpRequest();
      wire::parse_head_block(head, start_line, pending_.headers);
      wire::parse_request_line(start_line, pending_);
      body_needed_ = wire::content_length_of(pending_.headers, limits_);
      state_ = State::kBody;
    }
    // Body: wait until Content-Length bytes are buffered.
    if (buffer_.size() - pos_ < body_needed_) return;
    pending_.body.assign(buffer_, pos_, body_needed_);
    pos_ += body_needed_;
    body_needed_ = 0;
    state_ = State::kIdle;
    ++parsed_;
    ready_.push_back(std::move(pending_));
    pending_ = HttpRequest();
  }
}

bool RequestParser::next(HttpRequest& request) {
  if (ready_head_ >= ready_.size()) return false;
  request = std::move(ready_[ready_head_]);
  ++ready_head_;
  if (ready_head_ == ready_.size()) {
    ready_.clear();
    ready_head_ = 0;
  }
  return true;
}

}  // namespace picp::serve
