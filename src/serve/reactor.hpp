#pragma once

// Epoll reactor serving core. One non-blocking, edge-triggered event loop
// owns every connection: it accepts, reads, and incrementally parses
// (RequestParser) on the reactor thread, hands complete requests to a
// picp::ThreadPool, and flushes responses back through per-connection
// output buffers — no thread ever blocks on a socket, so 10k+ concurrent
// connections cost one thread plus a worker pool sized to the compute.
//
// Testability is a design input, not an afterthought: the clock is
// injectable (a ClockFn), sockets can be adopted from a socketpair, the
// loop can be single-stepped with run_once(0), and dispatch runs inline
// when no pool is supplied — so the protocol tests in tests/test_reactor.cpp
// replay partial reads, pipelined bursts, slow-loris stalls, mid-parse
// deadline expiry, and EMFILE backoff deterministically, without one real
// timer.
//
// Request batching generalizes the artifact cache's single-flight from
// "identical key already computing" to "batchable requests arriving within
// a window": requests with identical method+target+body (+deadline header)
// that arrive inside `batch_window_ms` of the first one are coalesced into
// ONE handler execution; every member receives a byte-identical copy of
// the rendered body (headers may differ only in Connection). A window of 0
// still coalesces requests parsed in the same event-loop cycle — zero
// added latency, which is why it is the default.
//
// Backpressure has two layers, both 503 + Retry-After:
//   - connection cap (`max_connections`): shed at accept, as before;
//   - queue-depth SLO (`max_pending_requests`): shed complete requests
//     when the number of in-flight handler executions — published as the
//     `serve.queue_depth` telemetry gauge — is already at the limit.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/http.hpp"
#include "serve/http_parser.hpp"
#include "serve/request_trace.hpp"
#include "util/thread_pool.hpp"

namespace picp::serve {

struct ReactorOptions {
  /// Connections being serviced; above this, accept sheds with 503.
  std::size_t max_connections = 1024;
  /// In-flight handler executions; above this, complete requests shed
  /// with 503 instead of queueing unboundedly (the queue-depth SLO).
  std::size_t max_pending_requests = 256;
  /// Receive budget for one message and keep-alive idle budget (ms);
  /// <= 0 disables. Mid-message expiry is a 408; idle expiry a close.
  int request_timeout_ms = 30000;
  /// How long run() keeps the loop alive after stop to finish in-flight
  /// requests and flush buffered responses.
  int drain_timeout_ms = 10000;
  /// Advisory client back-off stamped on every 503.
  int retry_after_seconds = 1;
  /// Coalescing window for batchable requests (0 = same-cycle only).
  int batch_window_ms = 0;
  /// Largest batch one handler execution may serve.
  std::size_t max_batch = 64;
  /// How long to stop accepting after EMFILE/ENFILE before retrying.
  int accept_backoff_ms = 100;
  /// Which requests may share one handler execution. Unset = none.
  std::function<bool(const HttpRequest&)> batchable;
  /// Emit Chrome-trace spans for every Nth finished request (0 = never).
  std::uint64_t trace_sample_n = 0;
  /// Always emit spans for requests slower than this (0 = never).
  int slow_request_ms = 0;
  /// Called on the reactor thread for every finished request — the access
  /// log hook (and the deterministic observability tests). Setting it
  /// arms per-stage recording on every request.
  std::function<void(const RequestTrace&)> observer;
  HttpLimits limits;
};

/// Point-in-time reactor counters (all monotonic except the gauges).
struct ReactorStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_busy = 0;    // shed at accept (connection cap)
  std::uint64_t shed_queue = 0;       // shed at dispatch (queue-depth SLO)
  std::uint64_t requests = 0;         // complete requests parsed
  std::uint64_t timeouts = 0;         // 408s + idle keep-alive closes
  std::uint64_t accept_backoffs = 0;  // EMFILE/ENFILE pauses entered
  std::uint64_t batch_leaders = 0;    // handler executions serving a batch
  std::uint64_t batch_members = 0;    // requests coalesced onto a leader
  std::size_t active_connections = 0;
  std::size_t peak_connections = 0;
  std::size_t pending_requests = 0;   // handler executions in flight
};

class EpollReactor {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// `pool == nullptr` runs handlers inline on the reactor thread —
  /// deterministic single-threaded mode for the protocol tests.
  EpollReactor(const ReactorOptions& options, Handler handler,
               ThreadPool* pool, ReactorClock clock = {});
  ~EpollReactor();
  EpollReactor(const EpollReactor&) = delete;
  EpollReactor& operator=(const EpollReactor&) = delete;

  /// Register a bound+listening fd (not owned; the caller closes it after
  /// run() returns). Accepted connections are owned by the reactor.
  void listen_on(int listen_fd);

  /// Take ownership of an already-connected fd (tests: one socketpair
  /// end). The fd is made non-blocking and enters the event loop like an
  /// accepted connection.
  void adopt(int fd, bool from_loopback = true);

  /// One event-loop cycle: wait at most `max_wait_ms` (0 = poll), handle
  /// readiness, drain worker completions, dispatch due batches, expire
  /// timers. Returns the number of epoll events handled.
  int run_once(int max_wait_ms);

  /// Loop until request_stop(), then drain: stop accepting, finish
  /// in-flight requests and flush responses (bounded by drain_timeout_ms),
  /// close everything.
  void run();

  /// Async-signal-safe: one atomic store + one write(2) to the wake pipe.
  void request_stop();

  bool stopping() const { return stop_.load(std::memory_order_relaxed); }

  /// Open connections currently registered (tests poll this).
  std::size_t connection_count() const;

  ReactorStats stats() const;

 private:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// One response slot in a connection's pipeline: filled in request
  /// order, flushed FIFO so pipelined responses never reorder.
  struct Slot {
    bool ready = false;
    std::string bytes;
    bool close_after = false;
  };

  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    bool from_loopback = false;
    std::string peer;  // "ip:port"; "local" for adopted test sockets
    std::unique_ptr<RequestParser> parser;
    std::deque<Slot> slots;
    std::uint64_t base_seq = 0;  // absolute seq of slots.front()
    std::uint64_t next_seq = 0;  // seq the next parsed request gets
    std::string out;             // serialized bytes being flushed
    std::size_t out_pos = 0;
    bool want_write = false;     // EPOLLOUT armed
    bool read_closed = false;    // no further requests will be parsed
    bool close_after_flush = false;
    bool counted = false;        // contributes to active_connections
    TimePoint deadline{};        // receive/idle budget expiry
  };

  /// A request waiting for (or riding on) one handler execution. Every
  /// member carries its own RequestTrace (own id, own arrival timeline);
  /// members[0]'s trace additionally records the shared execution.
  struct Member {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    bool close_after = false;
    std::shared_ptr<RequestTrace> trace;
  };

  /// An open coalescing window: identical requests join until the window
  /// expires or the batch is full, then one handler execution serves all.
  struct Batch {
    HttpRequest request;  // the leader's request (identity of the batch)
    std::vector<Member> members;
    TimePoint dispatch_at{};
  };

  /// A finished handler execution on its way back to the reactor thread.
  struct Completion {
    HttpResponse response;
    std::vector<Member> members;
  };

  TimePoint now() const { return clock_(); }

  void handle_accept();
  void pause_accept(int err);
  void resume_accept_if_due();
  void setup_conn(int fd, bool from_loopback, bool counted,
                  std::string peer);
  HttpResponse run_handler(const HttpRequest& request);
  /// Wrap run_handler with the trace timeline (queue wait, handler wall
  /// time, status) and the thread-local annotation scope.
  HttpResponse run_traced(const HttpRequest& request, RequestTrace* trace);
  /// One RequestTrace for a freshly parsed request (id from the inbound
  /// header or generated, arrival stamped on the reactor clock).
  std::shared_ptr<RequestTrace> make_trace(const Conn& conn,
                                           const HttpRequest& request);
  /// Trace for a response with no parsed request behind it (accept-shed
  /// 503, parse-error 400, receive-timeout 408).
  std::shared_ptr<RequestTrace> make_synthetic_trace(const Conn& conn);
  /// Fill a slot for an error produced outside deliver(): stamps the
  /// trace id header, finalizes the trace, fills the slot.
  void fill_error(Conn& conn, std::uint64_t seq, HttpResponse response,
                  const std::shared_ptr<RequestTrace>& trace);
  /// Close the request's observability record: totals, RED metrics, span
  /// sampling, observer. Reactor thread only.
  void finalize_trace(RequestTrace& trace, int status);
  void wake();
  void reap_dead();
  void handle_readable(Conn& conn);
  void handle_writable(Conn& conn);
  void on_request(Conn& conn, HttpRequest&& request);
  void dispatch(Batch&& batch);
  void execute(const HttpRequest& request, std::vector<Member> members);
  void deliver(const HttpResponse& response,
               const std::vector<Member>& members);
  void fill_slot(Conn& conn, std::uint64_t seq, const HttpResponse& response,
                 bool close_after);
  void flush(Conn& conn);
  void drain_completions();
  void dispatch_due_batches(bool force);
  void expire_deadlines();
  void close_conn(Conn& conn);
  void update_epoll(Conn& conn, bool want_write);
  void touch(Conn& conn);
  int next_wait_ms(int max_wait_ms) const;
  Conn* conn_by_id(std::uint64_t id);
  HttpResponse error_response(int status, const std::string& message) const;
  HttpResponse busy_response() const;
  void publish_gauges();

  ReactorOptions options_;
  Handler handler_;
  ThreadPool* pool_;  // nullptr = inline dispatch
  ReactorClock clock_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  bool accept_paused_ = false;
  TimePoint accept_resume_{};

  std::uint64_t next_conn_id_ = 1;
  // Keyed by id, not fd: the kernel reuses fd numbers immediately, and
  // closes are deferred to end-of-cycle (an event batch may still carry
  // readiness for a connection an earlier event killed).
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::vector<std::uint64_t> dead_;   // defunct conns to reap after events
  std::vector<Batch> open_batches_;
  TimePoint next_expiry_ = TimePoint::max();  // earliest conn deadline

  std::atomic<bool> stop_{false};

  /// Finished requests (reactor thread only) — drives the every-Nth span
  /// sampling knob.
  std::uint64_t finished_requests_ = 0;

  std::mutex completion_mutex_;
  std::vector<Completion> completions_;

  mutable std::mutex stats_mutex_;
  ReactorStats stats_;
};

}  // namespace picp::serve
