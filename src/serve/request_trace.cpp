#include "serve/request_trace.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>

namespace picp::serve {

namespace {

thread_local RequestTrace* t_current = nullptr;

std::uint64_t process_seed() {
  // Mix the pid with the process start time so two daemons started in the
  // same second still diverge. This is an id namespace, not cryptography.
  static const std::uint64_t seed = [] {
    const auto t = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    std::uint64_t x = t ^ (static_cast<std::uint64_t>(::getpid()) << 32);
    // splitmix64 finalizer: spread the low-entropy inputs over 64 bits.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }();
  return seed;
}

bool id_char(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
}

}  // namespace

std::string generate_trace_id() {
  static std::atomic<std::uint64_t> next{1};
  const std::uint64_t value =
      process_seed() ^ next.fetch_add(1, std::memory_order_relaxed);
  char buf[24];
  std::snprintf(buf, sizeof buf, "p-%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::string sanitize_trace_id(const std::string& inbound) {
  if (inbound.empty() || inbound.size() > 64) return generate_trace_id();
  for (const char c : inbound)
    if (!id_char(c)) return generate_trace_id();
  return inbound;
}

RequestTrace::RequestTrace(ReactorClock clock) : clock_(std::move(clock)) {
  if (!clock_) clock_ = [] { return std::chrono::steady_clock::now(); };
}

double RequestTrace::now_us() const {
  return std::chrono::duration<double, std::micro>(
             clock_().time_since_epoch())
      .count();
}

void RequestTrace::add_stage(const char* name, double start_us,
                             double dur_us) {
  stages_.push_back({name, start_us, dur_us});
}

void RequestTrace::copy_execution_from(const RequestTrace& leader) {
  stages_ = leader.stages_;
  handler_start_us = leader.handler_start_us;
  queue_wait_us = leader.queue_wait_us;
  handler_us = leader.handler_us;
  cache_tier = leader.cache_tier;
  deadline_stage = leader.deadline_stage;
}

void RequestTrace::emit_spans(telemetry::SpanTracer& tracer) const {
  // The injected clock and the tracer epoch are unrelated; re-anchor the
  // request so it *ends* at the tracer's now — offsets within the request
  // (and therefore stage durations) are preserved exactly.
  const double anchor = tracer.now_us();
  const double end = arrived_us + total_us;
  const auto ts = [&](double t) { return anchor - (end - t); };
  tracer.record("request", "request", ts(arrived_us), total_us);
  tracer.record("batch-wait", "request", ts(arrived_us), batch_wait_us);
  tracer.record("queue", "request", ts(dispatch_us), queue_wait_us);
  for (const StageTiming& stage : stages_)
    tracer.record(stage.name, "request", ts(stage.start_us), stage.dur_us);
}

RequestTrace* RequestTrace::current() { return t_current; }

RequestTrace::Scope::Scope(RequestTrace* trace) : previous_(t_current) {
  t_current = (trace != nullptr && trace->armed) ? trace : nullptr;
}

RequestTrace::Scope::~Scope() { t_current = previous_; }

RequestTrace::Stage::Stage(const char* name) : trace_(t_current) {
  if (trace_ == nullptr) return;
  name_ = name;
  start_us_ = trace_->now_us();
  parent_ = trace_->active_;
  trace_->active_ = this;
}

RequestTrace::Stage::~Stage() {
  if (trace_ == nullptr) return;
  const double elapsed = trace_->now_us() - start_us_;
  trace_->active_ = parent_;
  if (parent_ != nullptr) parent_->child_us_ += elapsed;
  trace_->add_stage(name_, start_us_, elapsed - child_us_);
}

void RequestTrace::note_cache(const char* tier) {
  if (t_current != nullptr) t_current->cache_tier = tier;
}

void RequestTrace::note_deadline_stage(const std::string& stage) {
  if (t_current != nullptr) t_current->deadline_stage = stage;
}

}  // namespace picp::serve
