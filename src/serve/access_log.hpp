#pragma once

// Structured NDJSON access log: one JSON object per line per finished
// request, written by the reactor thread through the observer hook (and by
// nothing else in the daemon — the mutex is for embedders and tests that
// drive a reactor from several threads). Size-based rotation: when the
// live file exceeds `max_bytes` it is renamed to `<path>.1` (replacing any
// previous rotation) and a fresh file is started, so a long-lived daemon
// holds at most ~2x max_bytes of log.

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "serve/request_trace.hpp"

namespace picp::serve {

struct AccessLogOptions {
  std::string path;
  std::size_t max_bytes = 64 * 1024 * 1024;
};

/// Render one finished request as its NDJSON access-log line (no trailing
/// newline). Exposed for tests and for the observer-based embedders.
std::string access_log_line(const RequestTrace& trace);

class AccessLog {
 public:
  /// Opens (appends to) the log file; throws picp::Error when the path
  /// cannot be opened — a daemon asked to log must not silently not log.
  explicit AccessLog(AccessLogOptions options);
  ~AccessLog();
  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Append one line (flushed immediately; a crashed daemon must not owe
  /// its operators the tail of the log) and rotate if over budget.
  void write(const RequestTrace& trace);

  std::uint64_t lines_written() const;

 private:
  void rotate_locked();

  AccessLogOptions options_;
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::size_t bytes_ = 0;
  std::uint64_t lines_ = 0;
};

}  // namespace picp::serve
