#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace picp::serve {

/// Thrown on malformed or oversized wire input. Carries the HTTP status the
/// peer should see (400 bad request, 408 timeout, 413/431 too large, 501
/// unimplemented); the server maps it into a structured JSON error body.
class HttpError : public Error {
 public:
  HttpError(int status, const std::string& detail)
      : Error(detail), status_(status) {}
  int status() const { return status_; }

 private:
  int status_;
};

/// One parsed HTTP/1.1 request. Header names are lower-cased during
/// parsing, so lookups are case-insensitive by construction.
struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string target;   // origin-form, e.g. "/v1/predict"
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// True when the peer connected from 127.0.0.0/8 or ::1 — set by the
  /// server at accept time, never from wire bytes. Gates admin endpoints.
  bool from_loopback = false;

  /// Header value by lower-case name; nullptr when absent.
  const std::string* header(const std::string& lower_name) const;
  /// HTTP/1.1 defaults to keep-alive unless `Connection: close`.
  bool keep_alive() const;
};

/// One HTTP response about to be serialized (server side) or just parsed
/// (client side). Content-Length is emitted automatically from `body`.
struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  const std::string* header(const std::string& lower_name) const;
  void set_header(const std::string& name, const std::string& value);
};

/// The path component of an origin-form target ("/metricsz?format=x" →
/// "/metricsz"). Routing and per-endpoint metrics key on this, so a query
/// string can never mint a new metric name.
std::string target_path(const std::string& target);

/// Value of one query parameter ("" when absent). A bare flag with no `=`
/// reads as "1", so `?ready` and `?ready=1` are equivalent. No %-decoding:
/// picpredict's own query strings are plain tokens.
std::string query_param(const std::string& target, const std::string& key);

/// Canonical reason phrase for a status code ("OK", "Not Found", ...).
const char* status_reason(int status);

/// Wire bytes for one response (status line, headers, Content-Length
/// framing, body) — shared by the blocking writer and the reactor's
/// per-connection output buffers.
std::string serialize_response(const HttpResponse& response);

/// Wire limits and timeouts for one connection.
struct HttpLimits {
  std::size_t max_header_bytes = 64 * 1024;
  std::size_t max_body_bytes = 4 * 1024 * 1024;
  /// Budget for receiving one complete message. <= 0 means no timeout.
  int io_timeout_ms = 30000;
};

/// Buffered, blocking HTTP/1.1 framing over one socket (or pipe) fd. Owns
/// the fd. Used by both the server (read_request/write_response) and the
/// client (write_request/read_response); neither side speaks chunked
/// transfer encoding — all bodies are Content-Length framed, which is all
/// picpredict's own peers ever produce.
class HttpConnection {
 public:
  /// Takes ownership of `fd` (closed on destruction).
  explicit HttpConnection(int fd);
  ~HttpConnection();
  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  int fd() const { return fd_; }

  /// Read one full request. Returns false on clean EOF before the first
  /// byte (peer closed an idle keep-alive connection); throws HttpError on
  /// malformed input, oversize messages, or timeout.
  bool read_request(HttpRequest& request, const HttpLimits& limits);

  /// Read one full response; same contract as read_request.
  bool read_response(HttpResponse& response, const HttpLimits& limits);

  void write_response(const HttpResponse& response);
  void write_request(const HttpRequest& request,
                     const std::string& host_header);

  /// Block until the fd is readable (or buffered bytes remain). Returns
  /// false on timeout. `timeout_ms <= 0` waits forever.
  bool wait_readable(int timeout_ms);

 private:
  /// Read the header block up to and including CRLFCRLF. Returns false on
  /// clean EOF at a message boundary.
  bool read_head(std::string& head, const HttpLimits& limits);
  void read_body(std::size_t length, std::string& body,
                 const HttpLimits& limits);
  /// One recv into the buffer; returns false on EOF. Throws on timeout.
  bool fill(int timeout_ms);
  void write_all(const char* data, std::size_t size);

  int fd_;
  std::string buffer_;   // bytes received but not yet consumed
  std::size_t pos_ = 0;  // consume cursor into buffer_
};

/// Connect to host:port (numeric IPv4 or a resolvable name). Throws
/// picp::Error with the connect errno on failure.
int connect_tcp(const std::string& host, std::uint16_t port,
                int timeout_ms = 10000);

}  // namespace picp::serve
