#include "serve/access_log.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>

#include "telemetry/json.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace picp::serve {

std::string access_log_line(const RequestTrace& trace) {
  Json line = Json::object();
  line.set("ts", Json(std::chrono::duration<double>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count()));
  line.set("trace_id", Json(trace.id));
  line.set("peer", Json(trace.peer));
  line.set("method", Json(trace.method));
  line.set("path", Json(trace.path));
  line.set("status", Json(trace.status));
  line.set("batch_role", Json(std::string(trace.role)));
  line.set("batch_size",
           Json(static_cast<std::uint64_t>(trace.batch_size)));
  line.set("cache", Json(std::string(trace.cache_tier)));
  line.set("deadline_stage", Json(trace.deadline_stage));
  line.set("batch_wait_us", Json(trace.batch_wait_us));
  line.set("queue_us", Json(trace.queue_wait_us));
  line.set("handler_us", Json(trace.handler_us));
  line.set("total_us", Json(trace.total_us));
  Json stages = Json::object();
  for (const StageTiming& stage : trace.stages()) {
    // A stage that runs twice in one request (e.g. "generate" for a
    // multi-rank body) accumulates rather than overwrites.
    const Json* previous = stages.find(stage.name);
    const double base = previous != nullptr ? previous->as_double() : 0.0;
    stages.set(stage.name, Json(base + stage.dur_us));
  }
  line.set("stages", std::move(stages));
  return line.dump();
}

AccessLog::AccessLog(AccessLogOptions options)
    : options_(std::move(options)) {
  PICP_REQUIRE(!options_.path.empty(), "access log needs a path");
  file_ = std::fopen(options_.path.c_str(), "ae");
  if (file_ == nullptr)
    throw Error("cannot open access log " + options_.path + ": " +
                std::strerror(errno));
  const long at = std::ftell(file_);
  bytes_ = at > 0 ? static_cast<std::size_t>(at) : 0;
}

AccessLog::~AccessLog() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
}

void AccessLog::write(const RequestTrace& trace) {
  const std::string line = access_log_line(trace);
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return;  // a failed rotation disabled the log
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
  bytes_ += line.size() + 1;
  ++lines_;
  if (bytes_ > options_.max_bytes) rotate_locked();
}

std::uint64_t AccessLog::lines_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

void AccessLog::rotate_locked() {
  std::fclose(file_);
  file_ = nullptr;
  const std::string rotated = options_.path + ".1";
  if (std::rename(options_.path.c_str(), rotated.c_str()) != 0)
    PICP_LOG_WARN << "access log rotation failed: " << std::strerror(errno);
  file_ = std::fopen(options_.path.c_str(), "ae");
  if (file_ == nullptr) {
    PICP_LOG_WARN << "cannot reopen access log " << options_.path << ": "
                  << std::strerror(errno) << " — logging disabled";
    return;
  }
  bytes_ = 0;
}

}  // namespace picp::serve
