#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace picp::serve {

namespace {

/// Default batchable predicate: the two generation-backed endpoints whose
/// responses are pure functions of the request body — exactly the requests
/// a coalesced execution can answer for many peers at once.
bool default_batchable(const HttpRequest& request) {
  return request.method == "POST" &&
         (request.target == "/v1/predict" ||
          request.target == "/v1/workload");
}

}  // namespace

HttpServer::HttpServer(const ServerOptions& options, Handler handler)
    : options_(options), handler_(std::move(handler)) {
  PICP_REQUIRE(handler_ != nullptr, "HttpServer needs a handler");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  PICP_REQUIRE(listen_fd_ >= 0,
               std::string("socket: ") + std::strerror(errno));
  ::fcntl(listen_fd_, F_SETFD, FD_CLOEXEC);
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  PICP_REQUIRE(::inet_pton(AF_INET, options_.host.c_str(),
                           &addr.sin_addr) == 1,
               "serve host must be a numeric IPv4 address, got " +
                   options_.host);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("cannot bind " + options_.host + ":" +
                std::to_string(options_.port) + " — " + detail);
  }
  PICP_REQUIRE(::listen(listen_fd_, options_.listen_backlog) == 0,
               std::string("listen: ") + std::strerror(errno));

  socklen_t len = sizeof addr;
  PICP_REQUIRE(::getsockname(listen_fd_,
                             reinterpret_cast<sockaddr*>(&addr), &len) == 0,
               std::string("getsockname: ") + std::strerror(errno));
  port_ = ntohs(addr.sin_port);

  pool_ = std::make_unique<ThreadPool>(options_.threads);

  ReactorOptions reactor_options;
  reactor_options.max_connections = options_.max_connections;
  reactor_options.max_pending_requests = options_.max_pending_requests;
  reactor_options.request_timeout_ms = options_.request_timeout_ms;
  reactor_options.drain_timeout_ms = options_.drain_timeout_ms;
  reactor_options.retry_after_seconds = options_.retry_after_seconds;
  reactor_options.batch_window_ms = options_.batch_window_ms;
  reactor_options.max_batch = options_.max_batch;
  reactor_options.accept_backoff_ms = options_.accept_backoff_ms;
  reactor_options.batchable =
      options_.batchable ? options_.batchable : default_batchable;
  reactor_options.trace_sample_n = options_.trace_sample_n;
  reactor_options.slow_request_ms = options_.slow_request_ms;
  if (!options_.access_log_path.empty())
    access_log_ = std::make_unique<AccessLog>(AccessLogOptions{
        options_.access_log_path, options_.access_log_max_bytes});
  if (access_log_ != nullptr || options_.observer) {
    reactor_options.observer = [this](const RequestTrace& trace) {
      if (access_log_ != nullptr) access_log_->write(trace);
      if (options_.observer) options_.observer(trace);
    };
  }
  reactor_options.limits = options_.limits;
  reactor_ = std::make_unique<EpollReactor>(
      reactor_options, [this](const HttpRequest& r) { return handler_(r); },
      pool_.get());
}

HttpServer::~HttpServer() {
  request_shutdown();
  pool_.reset();  // joins workers; after this no task references reactor_
  reactor_.reset();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void HttpServer::request_shutdown() {
  if (reactor_) reactor_->request_stop();
}

ServerStats HttpServer::stats() const {
  const ReactorStats r = reactor_->stats();
  ServerStats s;
  s.accepted = r.accepted;
  s.rejected_busy = r.rejected_busy;
  s.shed_queue = r.shed_queue;
  s.requests = r.requests;
  s.timeouts = r.timeouts;
  s.batch_leaders = r.batch_leaders;
  s.batch_members = r.batch_members;
  s.active_connections = r.active_connections;
  s.peak_connections = r.peak_connections;
  s.pending_requests = r.pending_requests;
  return s;
}

bool HttpServer::not_ready(std::string* reason) const {
  if (reactor_->stopping()) {
    if (reason != nullptr) *reason = "draining";
    return true;
  }
  if (reactor_->stats().pending_requests >= options_.max_pending_requests) {
    if (reason != nullptr) *reason = "queue saturated";
    return true;
  }
  return false;
}

std::uint64_t HttpServer::access_log_lines() const {
  return access_log_ != nullptr ? access_log_->lines_written() : 0;
}

void HttpServer::run() {
  PICP_LOG_INFO << "serving on " << options_.host << ":" << port_ << " ("
                << pool_->size() << " workers, max "
                << options_.max_connections << " connections, batch window "
                << options_.batch_window_ms << " ms)";
  reactor_->listen_on(listen_fd_);
  reactor_->run();
  pool_->wait_idle();
  PICP_LOG_INFO << "server stopped after " << stats().requests
                << " request(s)";
}

}  // namespace picp::serve
