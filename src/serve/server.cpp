#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"

namespace picp::serve {

namespace {

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

/// True iff the peer address is 127.0.0.0/8 (the listener is IPv4-only).
bool peer_is_loopback(const sockaddr_storage& peer, socklen_t len) {
  if (peer.ss_family != AF_INET || len < sizeof(sockaddr_in)) return false;
  const auto* in4 = reinterpret_cast<const sockaddr_in*>(&peer);
  return (ntohl(in4->sin_addr.s_addr) >> 24) == 127;
}

}  // namespace

HttpServer::HttpServer(const ServerOptions& options, Handler handler)
    : options_(options), handler_(std::move(handler)) {
  PICP_REQUIRE(handler_ != nullptr, "HttpServer needs a handler");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  PICP_REQUIRE(listen_fd_ >= 0,
               std::string("socket: ") + std::strerror(errno));
  set_cloexec(listen_fd_);
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  PICP_REQUIRE(::inet_pton(AF_INET, options_.host.c_str(),
                           &addr.sin_addr) == 1,
               "serve host must be a numeric IPv4 address, got " +
                   options_.host);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("cannot bind " + options_.host + ":" +
                std::to_string(options_.port) + " — " + detail);
  }
  PICP_REQUIRE(::listen(listen_fd_, options_.listen_backlog) == 0,
               std::string("listen: ") + std::strerror(errno));

  socklen_t len = sizeof addr;
  PICP_REQUIRE(::getsockname(listen_fd_,
                             reinterpret_cast<sockaddr*>(&addr), &len) == 0,
               std::string("getsockname: ") + std::strerror(errno));
  port_ = ntohs(addr.sin_port);

  int pipe_fds[2];
  PICP_REQUIRE(::pipe(pipe_fds) == 0,
               std::string("pipe: ") + std::strerror(errno));
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_cloexec(wake_read_fd_);
  set_cloexec(wake_write_fd_);

  pool_ = std::make_unique<ThreadPool>(options_.threads);
}

HttpServer::~HttpServer() {
  request_shutdown();
  // Unblock any worker parked in a keep-alive poll, then let the pool join.
  pool_.reset();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

void HttpServer::request_shutdown() {
  shutdown_.store(true, std::memory_order_relaxed);
  if (wake_write_fd_ >= 0) {
    const char byte = 'x';
    // Async-signal-safe; a full pipe still wakes the poller, so the result
    // is intentionally ignored.
    [[maybe_unused]] ssize_t rc = ::write(wake_write_fd_, &byte, 1);
  }
}

ServerStats HttpServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServerStats s;
  s.accepted = accepted_;
  s.rejected_busy = rejected_busy_;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.active_connections = active_connections_;
  return s;
}

void HttpServer::publish_gauges() {
  if (!telemetry::enabled()) return;
  auto& reg = telemetry::registry();
  std::lock_guard<std::mutex> lock(mutex_);
  reg.gauge("serve.active_connections")
      .set(static_cast<double>(active_connections_));
}

void HttpServer::reject_busy(int fd) {
  HttpResponse response;
  response.status = 503;
  response.set_header("Retry-After",
                      std::to_string(options_.retry_after_seconds));
  response.set_header("Content-Type", "application/json");
  response.set_header("Connection", "close");
  response.body =
      "{\"error\": {\"status\": 503, \"message\": \"server at connection "
      "capacity; retry after " +
      std::to_string(options_.retry_after_seconds) + " s\"}}";
  try {
    HttpConnection connection(fd);  // owns + closes fd
    connection.write_response(response);
  } catch (const Error&) {
    // Peer vanished before reading the 503 — nothing left to shed.
  }
  if (telemetry::enabled())
    telemetry::registry().counter("serve.rejected_busy").add();
}

void HttpServer::run() {
  PICP_LOG_INFO << "serving on " << options_.host << ":" << port_ << " ("
                << pool_->size() << " workers, max "
                << options_.max_connections << " connections)";
  accept_loop();

  // Drain: workers notice shutting_down() at their next poll tick; wait
  // for every active connection to close, bounded by drain_timeout_ms.
  std::unique_lock<std::mutex> lock(mutex_);
  const bool drained = drained_.wait_for(
      lock, std::chrono::milliseconds(options_.drain_timeout_ms),
      [this] { return active_connections_ == 0; });
  const std::size_t leftover = active_connections_;
  lock.unlock();
  if (!drained)
    PICP_LOG_WARN << "drain timeout: abandoning " << leftover
                  << " connection(s)";
  PICP_LOG_INFO << "server stopped after " << requests_ << " request(s)";
}

void HttpServer::accept_loop() {
  while (!shutting_down()) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_read_fd_, POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      PICP_LOG_WARN << "accept poll: " << std::strerror(errno);
      break;
    }
    if (shutting_down()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;

    sockaddr_storage peer{};
    socklen_t peer_len = sizeof peer;
    const int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                            &peer_len);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      PICP_LOG_WARN << "accept: " << std::strerror(errno);
      break;
    }
    const bool from_loopback = peer_is_loopback(peer, peer_len);
    if (failpoint::any_armed()) {
      if (const auto action = failpoint::fire("http.accept")) {
        // The accept loop must survive its own failpoint: delay inline,
        // anything else drops the connection on the floor (a crashy
        // accept(2), from the peer's point of view).
        if (action->kind == failpoint::ActionKind::kDelay ||
            action->kind == failpoint::ActionKind::kCrash) {
          failpoint::apply(*action, "http.accept");
        } else {
          ::close(fd);
          continue;
        }
      }
    }
    set_cloexec(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (active_connections_ >= options_.max_connections) {
        ++rejected_busy_;
        shed = true;
      } else {
        ++accepted_;
        ++active_connections_;
      }
    }
    if (shed) {
      reject_busy(fd);
      continue;
    }
    publish_gauges();
    if (telemetry::enabled())
      telemetry::registry().counter("serve.accepted").add();
    pool_->submit([this, fd, from_loopback] {
      try {
        serve_connection(fd, from_loopback);
      } catch (const std::exception& e) {
        // A connection must never take the pool down; log and move on.
        PICP_LOG_WARN << "connection error: " << e.what();
      }
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_connections_ == 0) drained_.notify_all();
    });
  }
}

void HttpServer::serve_connection(int fd, bool from_loopback) {
  HttpConnection connection(fd);
  // Keep-alive loop: short poll ticks so a drain request interrupts an
  // idle connection within ~100 ms instead of a full request timeout.
  const int tick_ms = 100;
  for (;;) {
    int waited = 0;
    while (!connection.wait_readable(tick_ms)) {
      if (shutting_down()) return;
      waited += tick_ms;
      if (options_.request_timeout_ms > 0 &&
          waited >= options_.request_timeout_ms)
        return;  // idle keep-alive expired
    }
    if (shutting_down()) return;

    HttpRequest request;
    HttpResponse response;
    bool close_after = false;
    try {
      if (!connection.read_request(request, options_.limits)) return;
      request.from_loopback = from_loopback;
      requests_.fetch_add(1, std::memory_order_relaxed);
      response = handler_(request);
      close_after = !request.keep_alive();
    } catch (const HttpError& e) {
      response.status = e.status();
      response.set_header("Content-Type", "application/json");
      response.body = "{\"error\": {\"status\": " +
                      std::to_string(e.status()) + ", \"message\": \"" +
                      json_escape(e.what()) + "\"}}";
      close_after = true;  // framing is suspect; do not reuse the socket
    }
    if (shutting_down()) close_after = true;
    response.set_header("Connection", close_after ? "close" : "keep-alive");
    connection.write_response(response);
    if (close_after) return;
  }
}

}  // namespace picp::serve
