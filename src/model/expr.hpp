#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace picp {

/// Operators available to the symbolic-regression search. Kept small and
/// smooth: performance models are sums/products of workload terms with
/// occasional powers, and a compact primitive set keeps the GP search space
/// tractable (Chenna et al.'s symbolic-regression modeling paper [13] uses
/// a similar arithmetic basis).
enum class Op : std::uint8_t {
  kConst = 0,
  kVar = 1,
  kAdd = 2,
  kSub = 3,
  kMul = 4,
  kDiv = 5,   // protected: x / max(|y|, eps) with sign
  kSqrt = 6,  // protected: sqrt(|x|)
  kSquare = 7,
};

constexpr int arity(Op op) {
  switch (op) {
    case Op::kConst:
    case Op::kVar: return 0;
    case Op::kSqrt:
    case Op::kSquare: return 1;
    default: return 2;
  }
}

struct ExprNode {
  Op op = Op::kConst;
  double value = 0.0;  // kConst payload
  int var = 0;         // kVar payload
};

/// Expression tree in prefix (pre-order) layout. The flat layout makes
/// subtree extraction and crossover splicing O(subtree) with no pointer
/// chasing, which dominates GP throughput.
class Expr {
 public:
  std::vector<ExprNode> nodes;

  bool empty() const { return nodes.empty(); }
  std::size_t size() const { return nodes.size(); }

  /// One-past-the-end index of the subtree rooted at `pos`.
  std::size_t subtree_end(std::size_t pos) const;

  /// Depth of the whole tree (single node = 1).
  int depth() const;

  /// Evaluate against a feature vector. Out-of-range variable indices and
  /// division blow-ups are guarded; the result may still be non-finite for
  /// pathological constants (callers treat non-finite as unfit).
  double evaluate(std::span<const double> features) const;

  std::string to_string(std::span<const std::string> feature_names) const;

  /// Token form used in serialized models, e.g. "add mul c1.5 v0 v1".
  std::string to_tokens() const;
  static Expr from_tokens(const std::string& tokens);

  /// Convenience builders (mostly for tests).
  static Expr constant(double v);
  static Expr variable(int index);
};

}  // namespace picp
