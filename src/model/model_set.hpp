#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "model/model.hpp"

namespace picp {

/// A named collection of performance models — one per instrumented kernel —
/// with the feature names each model consumes. This is what the Model
/// Generator hands to the Simulation Platform, and what gets persisted
/// between the (expensive) training step and prediction runs.
class ModelSet {
 public:
  ModelSet() = default;
  ModelSet(const ModelSet& other);
  ModelSet& operator=(const ModelSet& other);
  ModelSet(ModelSet&&) = default;
  ModelSet& operator=(ModelSet&&) = default;

  struct Entry {
    std::unique_ptr<PerfModel> model;
    std::vector<std::string> features;
  };

  bool has(const std::string& kernel) const;
  void set(const std::string& kernel, std::unique_ptr<PerfModel> model,
           std::vector<std::string> features);

  /// Predicted time for one kernel; throws picp::Error for unknown kernels
  /// or mismatched feature counts. Negative predictions clamp to zero
  /// (regression models can dip below zero near the origin; time cannot).
  double predict(const std::string& kernel,
                 std::span<const double> features) const;

  const std::vector<std::string>& features_of(const std::string& kernel) const;
  const PerfModel& model_of(const std::string& kernel) const;
  std::vector<std::string> kernels() const;

  /// Text persistence: one line per kernel:
  ///   <kernel> | <feat1,feat2,...> | <serialized model>
  void save(const std::string& path) const;
  static ModelSet load(const std::string& path);

  /// Parse one serialized model line (exposed for tests).
  static std::unique_ptr<PerfModel> parse_model(
      const std::string& serialized, const std::vector<std::string>& features);

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace picp
