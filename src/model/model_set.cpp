#include "model/model_set.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "model/expr.hpp"
#include "model/linear.hpp"
#include "model/symreg.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace picp {

ModelSet::ModelSet(const ModelSet& other) { *this = other; }

ModelSet& ModelSet::operator=(const ModelSet& other) {
  if (this == &other) return *this;
  entries_.clear();
  for (const auto& [kernel, entry] : other.entries_)
    entries_[kernel] = Entry{entry.model->clone(), entry.features};
  return *this;
}

bool ModelSet::has(const std::string& kernel) const {
  return entries_.count(kernel) > 0;
}

void ModelSet::set(const std::string& kernel,
                   std::unique_ptr<PerfModel> model,
                   std::vector<std::string> features) {
  PICP_REQUIRE(model != nullptr, "null model");
  entries_[kernel] = Entry{std::move(model), std::move(features)};
}

double ModelSet::predict(const std::string& kernel,
                         std::span<const double> features) const {
  const auto it = entries_.find(kernel);
  PICP_REQUIRE(it != entries_.end(), "no model for kernel: " + kernel);
  PICP_REQUIRE(features.size() == it->second.features.size(),
               "feature count mismatch for kernel: " + kernel);
  return std::max(0.0, it->second.model->evaluate(features));
}

const std::vector<std::string>& ModelSet::features_of(
    const std::string& kernel) const {
  const auto it = entries_.find(kernel);
  PICP_REQUIRE(it != entries_.end(), "no model for kernel: " + kernel);
  return it->second.features;
}

const PerfModel& ModelSet::model_of(const std::string& kernel) const {
  const auto it = entries_.find(kernel);
  PICP_REQUIRE(it != entries_.end(), "no model for kernel: " + kernel);
  return *it->second.model;
}

std::vector<std::string> ModelSet::kernels() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [kernel, entry] : entries_) out.push_back(kernel);
  return out;
}

void ModelSet::save(const std::string& path) const {
  std::ofstream out(path);
  PICP_REQUIRE(out.is_open(), "cannot open model file for writing: " + path);
  for (const auto& [kernel, entry] : entries_) {
    out << kernel << " | ";
    for (std::size_t i = 0; i < entry.features.size(); ++i) {
      if (i > 0) out << ',';
      out << entry.features[i];
    }
    out << " | " << entry.model->serialize() << '\n';
  }
  PICP_ENSURE(out.good(), "model file write failed: " + path);
}

std::unique_ptr<PerfModel> ModelSet::parse_model(
    const std::string& serialized, const std::vector<std::string>& features) {
  std::istringstream in(serialized);
  std::string kind;
  in >> kind;
  if (kind == "linear") {
    double intercept = 0.0;
    in >> intercept;
    std::vector<double> coef;
    double c = 0.0;
    while (in >> c) coef.push_back(c);
    PICP_REQUIRE(coef.size() == features.size(),
                 "linear model arity mismatch");
    return std::make_unique<LinearModel>(std::move(coef), intercept, features);
  }
  if (kind == "poly") {
    std::size_t terms = 0, nf = 0;
    in >> terms >> nf;
    PICP_REQUIRE(nf == features.size(), "poly model arity mismatch");
    std::vector<std::vector<int>> exps(terms, std::vector<int>(nf, 0));
    std::vector<double> coef(terms, 0.0);
    for (std::size_t k = 0; k < terms; ++k) {
      for (std::size_t f = 0; f < nf; ++f) in >> exps[k][f];
      in >> coef[k];
    }
    PICP_REQUIRE(static_cast<bool>(in), "truncated poly model");
    return std::make_unique<PolynomialModel>(std::move(exps), std::move(coef),
                                             features);
  }
  if (kind == "sym") {
    double scale = 0.0, offset = 0.0;
    in >> scale >> offset;
    std::string tokens;
    std::getline(in, tokens);
    return std::make_unique<SymbolicModel>(Expr::from_tokens(trim(tokens)),
                                           scale, offset, features);
  }
  throw Error("unknown model kind: " + kind);
}

ModelSet ModelSet::load(const std::string& path) {
  std::ifstream in(path);
  PICP_REQUIRE(in.is_open(), "cannot open model file: " + path);
  ModelSet set;
  std::string line;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    const auto parts = split(line, '|');
    PICP_REQUIRE(parts.size() == 3, "malformed model line: " + line);
    const std::string kernel = trim(parts[0]);
    std::vector<std::string> features;
    for (const auto& f : split(parts[1], ','))
      if (!trim(f).empty()) features.push_back(trim(f));
    set.set(kernel, parse_model(trim(parts[2]), features), features);
  }
  return set;
}

}  // namespace picp
