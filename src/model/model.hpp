#pragma once

#include <memory>
#include <span>
#include <string>

namespace picp {

/// An analytical performance model t = f(workload parameters), the unit the
/// paper's Model Generator produces (§II-B). Implementations: ordinary
/// least-squares linear and polynomial models, and GP-discovered symbolic
/// models. Features are positional; their names live in the owning ModelSet.
class PerfModel {
 public:
  virtual ~PerfModel() = default;

  /// Predicted kernel time (seconds) for a feature vector.
  virtual double evaluate(std::span<const double> features) const = 0;

  /// Human-readable formula, e.g. "3.1e-08*np + 5.2e-06".
  virtual std::string describe() const = 0;

  /// Serialized form parseable by ModelSet::load (one line, no newlines).
  virtual std::string serialize() const = 0;

  virtual std::unique_ptr<PerfModel> clone() const = 0;
};

}  // namespace picp
