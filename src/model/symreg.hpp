#pragma once

#include <cstdint>

#include "model/dataset.hpp"
#include "model/expr.hpp"
#include "model/model.hpp"

namespace picp {

/// Genetic-programming hyperparameters for symbolic regression (the paper's
/// multi-parameter Model Generator path, after Chenna et al. [13] / Koza).
struct SymRegParams {
  std::size_t population = 256;
  std::size_t generations = 50;
  int max_depth = 6;
  std::size_t max_nodes = 48;
  std::size_t tournament = 4;
  double crossover_rate = 0.9;
  double mutation_rate = 0.25;
  /// Fitness penalty per node (parsimony pressure).
  double parsimony = 1e-3;
  std::uint64_t seed = 1;
  /// Worker threads for fitness evaluation; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Stop early when the best training MAPE drops below this (percent).
  double target_mape = 0.5;
};

/// A GP-discovered model with Keijzer-style linear scaling:
///   t = scale * expr(x) + offset
/// The (scale, offset) pair is refit by least squares for every candidate,
/// so the GP only has to discover the *shape* of the response.
class SymbolicModel final : public PerfModel {
 public:
  SymbolicModel(Expr expr, double scale, double offset,
                std::vector<std::string> feature_names);

  double evaluate(std::span<const double> features) const override;
  std::string describe() const override;
  std::string serialize() const override;
  std::unique_ptr<PerfModel> clone() const override;

  const Expr& expr() const { return expr_; }
  double scale() const { return scale_; }
  double offset() const { return offset_; }

 private:
  Expr expr_;
  double scale_;
  double offset_;
  std::vector<std::string> feature_names_;
};

/// Run the GP search. Deterministic for a fixed seed and thread count 1;
/// with multiple threads only fitness evaluation is parallel, so results
/// remain deterministic for a fixed seed regardless of thread count.
SymbolicModel fit_symbolic(const Dataset& data, const SymRegParams& params);

}  // namespace picp
