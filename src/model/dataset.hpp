#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace picp {

/// Training data for the Model Generator: one row per benchmarked kernel
/// execution, features = workload parameters (N_p, N_gp, ...), target =
/// measured seconds.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names)
      : feature_names_(std::move(feature_names)) {}

  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  std::size_t num_features() const { return feature_names_.size(); }
  std::size_t size() const { return targets_.size(); }
  bool empty() const { return targets_.empty(); }

  void add(std::span<const double> features, double target);

  std::span<const double> row(std::size_t i) const {
    return {features_.data() + i * num_features(), num_features()};
  }
  double target(std::size_t i) const { return targets_[i]; }
  std::span<const double> targets() const { return targets_; }

  /// Column statistics used for feature scaling in the GP.
  double feature_max(std::size_t f) const;
  double target_mean() const;

  /// Deterministic shuffled split into (train, test).
  std::pair<Dataset, Dataset> split(double train_fraction,
                                    std::uint64_t seed) const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<double> features_;  // row-major
  std::vector<double> targets_;
};

}  // namespace picp
