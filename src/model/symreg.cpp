#include "model/symreg.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace picp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Individual {
  Expr expr;
  double fitness = kInf;  // MAPE + parsimony; lower is better
  double scale = 0.0;
  double offset = 0.0;
};

class GpEngine {
 public:
  GpEngine(const Dataset& data, const SymRegParams& params)
      : data_(data), params_(params), rng_(params.seed),
        pool_(params.threads) {
    num_vars_ = static_cast<int>(data.num_features());
  }

  Individual run() {
    std::vector<Individual> population(params_.population);
    for (auto& ind : population) ind.expr = random_tree(rng_, 3);
    evaluate_all(population);
    Individual best = best_of(population);

    for (std::size_t gen = 0; gen < params_.generations; ++gen) {
      std::vector<Individual> next;
      next.reserve(population.size());
      next.push_back(best);  // elitism
      while (next.size() < population.size()) {
        Individual child;
        if (rng_.uniform() < params_.crossover_rate) {
          child.expr = crossover(tournament(population).expr,
                                 tournament(population).expr);
        } else {
          child.expr = tournament(population).expr;
        }
        if (rng_.uniform() < params_.mutation_rate) mutate(child.expr);
        if (child.expr.size() > params_.max_nodes ||
            child.expr.depth() > params_.max_depth)
          child.expr = tournament(population).expr;  // reject oversized
        next.push_back(std::move(child));
      }
      population = std::move(next);
      evaluate_all(population);
      const Individual gen_best = best_of(population);
      if (gen_best.fitness < best.fitness) best = gen_best;
      if (best_mape_ < params_.target_mape) break;
    }
    return best;
  }

 private:
  // --- random trees --------------------------------------------------------

  ExprNode random_terminal(Xoshiro256& rng) const {
    ExprNode node;
    if (num_vars_ > 0 && rng.uniform() < 0.7) {
      node.op = Op::kVar;
      node.var = static_cast<int>(
          rng.uniform_below(static_cast<std::uint64_t>(num_vars_)));
    } else {
      node.op = Op::kConst;
      // Log-uniform around 1; linear scaling absorbs the global magnitude.
      node.value = std::pow(10.0, rng.uniform(-1.5, 1.5));
    }
    return node;
  }

  ExprNode random_function(Xoshiro256& rng) const {
    static constexpr Op kFunctions[] = {Op::kAdd, Op::kSub, Op::kMul,
                                        Op::kMul, Op::kDiv, Op::kSqrt,
                                        Op::kSquare};
    ExprNode node;
    node.op = kFunctions[rng.uniform_below(std::size(kFunctions))];
    return node;
  }

  void grow(Xoshiro256& rng, Expr& expr, int depth_left) {
    if (depth_left <= 1 || rng.uniform() < 0.3) {
      expr.nodes.push_back(random_terminal(rng));
      return;
    }
    const ExprNode fn = random_function(rng);
    expr.nodes.push_back(fn);
    for (int c = 0; c < arity(fn.op); ++c) grow(rng, expr, depth_left - 1);
  }

  Expr random_tree(Xoshiro256& rng, int max_depth) {
    Expr expr;
    grow(rng, expr, max_depth);
    return expr;
  }

  // --- variation -----------------------------------------------------------

  const Individual& tournament(const std::vector<Individual>& population) {
    const Individual* best = nullptr;
    for (std::size_t k = 0; k < params_.tournament; ++k) {
      const Individual& cand =
          population[rng_.uniform_below(population.size())];
      if (best == nullptr || cand.fitness < best->fitness) best = &cand;
    }
    return *best;
  }

  Expr crossover(const Expr& a, const Expr& b) {
    const std::size_t pa = rng_.uniform_below(a.size());
    const std::size_t pb = rng_.uniform_below(b.size());
    const std::size_t ea = a.subtree_end(pa);
    const std::size_t eb = b.subtree_end(pb);
    Expr child;
    child.nodes.reserve(a.size() - (ea - pa) + (eb - pb));
    child.nodes.insert(child.nodes.end(), a.nodes.begin(),
                       a.nodes.begin() + static_cast<std::ptrdiff_t>(pa));
    child.nodes.insert(child.nodes.end(),
                       b.nodes.begin() + static_cast<std::ptrdiff_t>(pb),
                       b.nodes.begin() + static_cast<std::ptrdiff_t>(eb));
    child.nodes.insert(child.nodes.end(),
                       a.nodes.begin() + static_cast<std::ptrdiff_t>(ea),
                       a.nodes.end());
    return child;
  }

  void mutate(Expr& expr) {
    const double kind = rng_.uniform();
    if (kind < 0.4) {
      // Subtree replacement.
      const std::size_t p = rng_.uniform_below(expr.size());
      const std::size_t e = expr.subtree_end(p);
      Expr sub = random_tree(rng_, 2);
      Expr out;
      out.nodes.insert(out.nodes.end(), expr.nodes.begin(),
                       expr.nodes.begin() + static_cast<std::ptrdiff_t>(p));
      out.nodes.insert(out.nodes.end(), sub.nodes.begin(), sub.nodes.end());
      out.nodes.insert(out.nodes.end(),
                       expr.nodes.begin() + static_cast<std::ptrdiff_t>(e),
                       expr.nodes.end());
      expr = std::move(out);
    } else if (kind < 0.8) {
      // Constant jitter (or terminal retype when no constant exists).
      for (ExprNode& node : expr.nodes)
        if (node.op == Op::kConst && rng_.uniform() < 0.5)
          node.value *= std::pow(2.0, rng_.uniform(-1.0, 1.0));
    } else {
      // Point mutation of one node, arity-preserving.
      ExprNode& node = expr.nodes[rng_.uniform_below(expr.size())];
      if (arity(node.op) == 0) {
        node = random_terminal(rng_);
      } else if (arity(node.op) == 2) {
        static constexpr Op kBinary[] = {Op::kAdd, Op::kSub, Op::kMul,
                                         Op::kDiv};
        node.op = kBinary[rng_.uniform_below(std::size(kBinary))];
      } else {
        node.op = node.op == Op::kSqrt ? Op::kSquare : Op::kSqrt;
      }
    }
  }

  // --- fitness --------------------------------------------------------------

  void evaluate_all(std::vector<Individual>& population) {
    pool_.parallel_for(population.size(),
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i)
                           evaluate_one(population[i]);
                       });
    best_mape_ = kInf;
    for (const Individual& ind : population) {
      if (!std::isfinite(ind.fitness)) continue;
      const double m = ind.fitness - params_.parsimony *
                                         static_cast<double>(ind.expr.size());
      best_mape_ = std::min(best_mape_, m);
    }
  }

  void evaluate_one(Individual& ind) const {
    const std::size_t n = data_.size();
    std::vector<double> e(n);
    for (std::size_t i = 0; i < n; ++i) {
      e[i] = ind.expr.evaluate(data_.row(i));
      if (!std::isfinite(e[i])) {
        ind.fitness = kInf;
        return;
      }
    }
    // Linear scaling: t ≈ a·e + b by least squares.
    double mean_e = 0.0, mean_y = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      mean_e += e[i];
      mean_y += data_.target(i);
    }
    mean_e /= static_cast<double>(n);
    mean_y /= static_cast<double>(n);
    double cov = 0.0, var = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      cov += (e[i] - mean_e) * (data_.target(i) - mean_y);
      var += (e[i] - mean_e) * (e[i] - mean_e);
    }
    const double a = var > 1e-300 ? cov / var : 0.0;
    const double b = mean_y - a * mean_e;
    for (double& v : e) v = a * v + b;
    const double err = mape(data_.targets(), e);
    if (!std::isfinite(err)) {
      ind.fitness = kInf;
      return;
    }
    ind.scale = a;
    ind.offset = b;
    ind.fitness =
        err + params_.parsimony * static_cast<double>(ind.expr.size());
  }

  static Individual best_of(const std::vector<Individual>& population) {
    const auto it = std::min_element(
        population.begin(), population.end(),
        [](const Individual& a, const Individual& b) {
          return a.fitness < b.fitness;
        });
    return *it;
  }

  const Dataset& data_;
  SymRegParams params_;
  Xoshiro256 rng_;
  ThreadPool pool_;
  int num_vars_ = 0;
  double best_mape_ = kInf;
};

}  // namespace

SymbolicModel::SymbolicModel(Expr expr, double scale, double offset,
                             std::vector<std::string> feature_names)
    : expr_(std::move(expr)),
      scale_(scale),
      offset_(offset),
      feature_names_(std::move(feature_names)) {}

double SymbolicModel::evaluate(std::span<const double> features) const {
  return scale_ * expr_.evaluate(features) + offset_;
}

std::string SymbolicModel::describe() const {
  std::ostringstream os;
  os.precision(6);
  os << scale_ << " * [" << expr_.to_string(feature_names_) << "] + "
     << offset_;
  return os.str();
}

std::string SymbolicModel::serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "sym " << scale_ << ' ' << offset_ << ' ' << expr_.to_tokens();
  return os.str();
}

std::unique_ptr<PerfModel> SymbolicModel::clone() const {
  return std::make_unique<SymbolicModel>(*this);
}

SymbolicModel fit_symbolic(const Dataset& data, const SymRegParams& params) {
  PICP_REQUIRE(!data.empty(), "cannot fit on empty dataset");
  PICP_REQUIRE(params.population >= 2, "population must be >= 2");
  GpEngine engine(data, params);
  const auto best = engine.run();
  PICP_LOG_DEBUG << "symreg best fitness " << best.fitness << ": "
                 << best.expr.to_tokens();
  return SymbolicModel(best.expr, best.scale, best.offset,
                       data.feature_names());
}

}  // namespace picp
