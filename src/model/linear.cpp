#include "model/linear.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace picp {

namespace {

/// Solve the symmetric positive-semidefinite system A x = b in place by
/// Gaussian elimination with partial pivoting and light ridge damping.
std::vector<double> solve_normal_equations(std::vector<std::vector<double>> a,
                                           std::vector<double> b) {
  const std::size_t n = b.size();
  // Ridge damping keeps rank-deficient designs (e.g. a constant feature)
  // solvable; the damping scale is negligible against real signal.
  double diag_scale = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    diag_scale = std::max(diag_scale, std::abs(a[i][i]));
  const double ridge = diag_scale > 0.0 ? 1e-12 * diag_scale : 1e-12;
  for (std::size_t i = 0; i < n; ++i) a[i][i] += ridge;

  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    PICP_ENSURE(std::abs(a[col][col]) > 0.0, "singular normal equations");
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a[i][c] * x[c];
    x[i] = s / a[i][i];
  }
  return x;
}

/// OLS over an explicit design matrix (rows of basis values).
std::vector<double> ols(const std::vector<std::vector<double>>& design,
                        std::span<const double> y) {
  const std::size_t n = design.front().size();
  std::vector<std::vector<double>> ata(n, std::vector<double>(n, 0.0));
  std::vector<double> atb(n, 0.0);
  for (std::size_t r = 0; r < design.size(); ++r) {
    const auto& row = design[r];
    for (std::size_t i = 0; i < n; ++i) {
      atb[i] += row[i] * y[r];
      for (std::size_t j = i; j < n; ++j) ata[i][j] += row[i] * row[j];
    }
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) ata[i][j] = ata[j][i];
  return solve_normal_equations(std::move(ata), std::move(atb));
}

std::string format_coef(double c) {
  std::ostringstream os;
  os.precision(6);
  os << c;
  return os.str();
}

}  // namespace

LinearModel::LinearModel(std::vector<double> coefficients, double intercept,
                         std::vector<std::string> feature_names)
    : coefficients_(std::move(coefficients)),
      intercept_(intercept),
      feature_names_(std::move(feature_names)) {
  PICP_REQUIRE(coefficients_.size() == feature_names_.size(),
               "coefficient / feature-name size mismatch");
}

double LinearModel::evaluate(std::span<const double> features) const {
  PICP_REQUIRE(features.size() == coefficients_.size(),
               "feature count mismatch");
  double y = intercept_;
  for (std::size_t i = 0; i < features.size(); ++i)
    y += coefficients_[i] * features[i];
  return y;
}

std::string LinearModel::describe() const {
  std::string out = format_coef(intercept_);
  for (std::size_t i = 0; i < coefficients_.size(); ++i)
    out += " + " + format_coef(coefficients_[i]) + "*" + feature_names_[i];
  return out;
}

std::string LinearModel::serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "linear " << intercept_;
  for (double c : coefficients_) os << ' ' << c;
  return os.str();
}

std::unique_ptr<PerfModel> LinearModel::clone() const {
  return std::make_unique<LinearModel>(*this);
}

PolynomialModel::PolynomialModel(std::vector<std::vector<int>> exponents,
                                 std::vector<double> coefficients,
                                 std::vector<std::string> feature_names)
    : exponents_(std::move(exponents)),
      coefficients_(std::move(coefficients)),
      feature_names_(std::move(feature_names)) {
  PICP_REQUIRE(exponents_.size() == coefficients_.size(),
               "exponent / coefficient size mismatch");
}

double PolynomialModel::evaluate(std::span<const double> features) const {
  double y = 0.0;
  for (std::size_t k = 0; k < exponents_.size(); ++k) {
    double term = coefficients_[k];
    for (std::size_t f = 0; f < features.size(); ++f)
      for (int e = 0; e < exponents_[k][f]; ++e) term *= features[f];
    y += term;
  }
  return y;
}

std::string PolynomialModel::describe() const {
  std::string out;
  for (std::size_t k = 0; k < exponents_.size(); ++k) {
    if (k > 0) out += " + ";
    out += format_coef(coefficients_[k]);
    for (std::size_t f = 0; f < feature_names_.size(); ++f)
      for (int e = 0; e < exponents_[k][f]; ++e)
        out += "*" + feature_names_[f];
  }
  return out;
}

std::string PolynomialModel::serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "poly " << exponents_.size() << ' ' << feature_names_.size();
  for (std::size_t k = 0; k < exponents_.size(); ++k) {
    for (int e : exponents_[k]) os << ' ' << e;
    os << ' ' << coefficients_[k];
  }
  return os.str();
}

std::unique_ptr<PerfModel> PolynomialModel::clone() const {
  return std::make_unique<PolynomialModel>(*this);
}

std::vector<std::vector<int>> monomial_exponents(std::size_t features,
                                                 int degree) {
  PICP_REQUIRE(degree >= 0, "degree must be non-negative");
  std::vector<std::vector<int>> out;
  std::vector<int> current(features, 0);
  // Depth-first enumeration in lexicographic order; constant term first.
  const auto recurse = [&](auto&& self, std::size_t f, int remaining) -> void {
    if (f == features) {
      out.push_back(current);
      return;
    }
    for (int e = 0; e <= remaining; ++e) {
      current[f] = e;
      self(self, f + 1, remaining - e);
    }
    current[f] = 0;
  };
  recurse(recurse, 0, degree);
  return out;
}

LinearModel fit_linear(const Dataset& data) {
  PICP_REQUIRE(!data.empty(), "cannot fit on empty dataset");
  const std::size_t nf = data.num_features();
  std::vector<std::vector<double>> design(data.size());
  for (std::size_t r = 0; r < data.size(); ++r) {
    design[r].reserve(nf + 1);
    design[r].push_back(1.0);
    const auto row = data.row(r);
    design[r].insert(design[r].end(), row.begin(), row.end());
  }
  const std::vector<double> x = ols(design, data.targets());
  return LinearModel(std::vector<double>(x.begin() + 1, x.end()), x[0],
                     data.feature_names());
}

PolynomialModel fit_polynomial(const Dataset& data, int degree) {
  PICP_REQUIRE(!data.empty(), "cannot fit on empty dataset");
  const auto exps = monomial_exponents(data.num_features(), degree);
  std::vector<std::vector<double>> design(data.size());
  for (std::size_t r = 0; r < data.size(); ++r) {
    const auto row = data.row(r);
    design[r].reserve(exps.size());
    for (const auto& exp : exps) {
      double term = 1.0;
      for (std::size_t f = 0; f < row.size(); ++f)
        for (int e = 0; e < exp[f]; ++e) term *= row[f];
      design[r].push_back(term);
    }
  }
  return PolynomialModel(exps, ols(design, data.targets()),
                         data.feature_names());
}

}  // namespace picp
