#include "model/dataset.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace picp {

void Dataset::add(std::span<const double> features, double target) {
  PICP_REQUIRE(features.size() == num_features(),
               "feature count mismatch in Dataset::add");
  features_.insert(features_.end(), features.begin(), features.end());
  targets_.push_back(target);
}

double Dataset::feature_max(std::size_t f) const {
  PICP_REQUIRE(f < num_features(), "feature index out of range");
  double m = 0.0;
  for (std::size_t i = 0; i < size(); ++i)
    m = std::max(m, std::abs(row(i)[f]));
  return m;
}

double Dataset::target_mean() const {
  if (targets_.empty()) return 0.0;
  double s = 0.0;
  for (double t : targets_) s += t;
  return s / static_cast<double>(targets_.size());
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction,
                                           std::uint64_t seed) const {
  PICP_REQUIRE(train_fraction > 0.0 && train_fraction < 1.0,
               "train fraction must be in (0, 1)");
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  Xoshiro256 rng(seed);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.uniform_below(i)]);

  const auto train_count = static_cast<std::size_t>(
      train_fraction * static_cast<double>(size()));
  Dataset train(feature_names_);
  Dataset test(feature_names_);
  for (std::size_t k = 0; k < order.size(); ++k) {
    Dataset& dst = k < train_count ? train : test;
    dst.add(row(order[k]), target(order[k]));
  }
  return {std::move(train), std::move(test)};
}

}  // namespace picp
