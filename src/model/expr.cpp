#include "model/expr.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace picp {

std::size_t Expr::subtree_end(std::size_t pos) const {
  PICP_REQUIRE(pos < nodes.size(), "subtree position out of range");
  std::size_t end = pos;
  int pending = 1;
  while (pending > 0) {
    PICP_ENSURE(end < nodes.size(), "malformed expression tree");
    pending += arity(nodes[end].op) - 1;
    ++end;
  }
  return end;
}

int Expr::depth() const {
  // Iterative prefix walk tracking remaining-children counts per level.
  int max_depth = 0;
  std::vector<int> pending;
  for (const ExprNode& node : nodes) {
    pending.push_back(arity(node.op));
    max_depth = std::max(max_depth, static_cast<int>(pending.size()));
    while (!pending.empty() && pending.back() == 0) {
      pending.pop_back();
      if (!pending.empty()) --pending.back();
    }
  }
  return max_depth;
}

namespace {
double eval_recursive(const std::vector<ExprNode>& nodes, std::size_t& pos,
                      std::span<const double> x) {
  const ExprNode& node = nodes[pos++];
  switch (node.op) {
    case Op::kConst: return node.value;
    case Op::kVar:
      return node.var >= 0 && static_cast<std::size_t>(node.var) < x.size()
                 ? x[static_cast<std::size_t>(node.var)]
                 : 0.0;
    case Op::kSqrt: {
      const double a = eval_recursive(nodes, pos, x);
      return std::sqrt(std::abs(a));
    }
    case Op::kSquare: {
      const double a = eval_recursive(nodes, pos, x);
      return a * a;
    }
    default: {
      const double a = eval_recursive(nodes, pos, x);
      const double b = eval_recursive(nodes, pos, x);
      switch (node.op) {
        case Op::kAdd: return a + b;
        case Op::kSub: return a - b;
        case Op::kMul: return a * b;
        case Op::kDiv: {
          const double mag = std::abs(b);
          if (mag < 1e-9) return a;  // protected division
          return a / b;
        }
        default: return 0.0;
      }
    }
  }
}

std::string str_recursive(const std::vector<ExprNode>& nodes,
                          std::size_t& pos,
                          std::span<const std::string> names) {
  const ExprNode& node = nodes[pos++];
  std::ostringstream os;
  os.precision(4);
  switch (node.op) {
    case Op::kConst:
      os << node.value;
      return os.str();
    case Op::kVar:
      if (node.var >= 0 && static_cast<std::size_t>(node.var) < names.size())
        return names[static_cast<std::size_t>(node.var)];
      return "x" + std::to_string(node.var);
    case Op::kSqrt:
      return "sqrt(" + str_recursive(nodes, pos, names) + ")";
    case Op::kSquare:
      return "(" + str_recursive(nodes, pos, names) + ")^2";
    default: {
      const std::string a = str_recursive(nodes, pos, names);
      const std::string b = str_recursive(nodes, pos, names);
      const char* sym = node.op == Op::kAdd   ? " + "
                        : node.op == Op::kSub ? " - "
                        : node.op == Op::kMul ? "*"
                                              : "/";
      return "(" + a + sym + b + ")";
    }
  }
}
}  // namespace

double Expr::evaluate(std::span<const double> features) const {
  PICP_REQUIRE(!nodes.empty(), "evaluating empty expression");
  std::size_t pos = 0;
  return eval_recursive(nodes, pos, features);
}

std::string Expr::to_string(
    std::span<const std::string> feature_names) const {
  if (nodes.empty()) return "<empty>";
  std::size_t pos = 0;
  return str_recursive(nodes, pos, feature_names);
}

std::string Expr::to_tokens() const {
  std::ostringstream os;
  os.precision(17);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) os << ' ';
    switch (nodes[i].op) {
      case Op::kConst: os << 'c' << nodes[i].value; break;
      case Op::kVar: os << 'v' << nodes[i].var; break;
      case Op::kAdd: os << "add"; break;
      case Op::kSub: os << "sub"; break;
      case Op::kMul: os << "mul"; break;
      case Op::kDiv: os << "div"; break;
      case Op::kSqrt: os << "sqrt"; break;
      case Op::kSquare: os << "sq"; break;
    }
  }
  return os.str();
}

Expr Expr::from_tokens(const std::string& tokens) {
  Expr expr;
  std::istringstream in(tokens);
  std::string tok;
  while (in >> tok) {
    ExprNode node;
    if (tok == "add") node.op = Op::kAdd;
    else if (tok == "sub") node.op = Op::kSub;
    else if (tok == "mul") node.op = Op::kMul;
    else if (tok == "div") node.op = Op::kDiv;
    else if (tok == "sqrt") node.op = Op::kSqrt;
    else if (tok == "sq") node.op = Op::kSquare;
    else if (tok.front() == 'c') {
      node.op = Op::kConst;
      node.value = parse_double(tok.substr(1));
    } else if (tok.front() == 'v') {
      node.op = Op::kVar;
      node.var = static_cast<int>(parse_int(tok.substr(1)));
    } else {
      throw Error("bad expression token: " + tok);
    }
    expr.nodes.push_back(node);
  }
  PICP_REQUIRE(!expr.nodes.empty(), "empty expression token string");
  // Validate shape: subtree_end of root must equal size.
  PICP_REQUIRE(expr.subtree_end(0) == expr.nodes.size(),
               "malformed expression token string");
  return expr;
}

Expr Expr::constant(double v) {
  Expr e;
  e.nodes.push_back(ExprNode{Op::kConst, v, 0});
  return e;
}

Expr Expr::variable(int index) {
  Expr e;
  e.nodes.push_back(ExprNode{Op::kVar, 0.0, index});
  return e;
}

}  // namespace picp
