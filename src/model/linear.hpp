#pragma once

#include <vector>

#include "model/dataset.hpp"
#include "model/model.hpp"

namespace picp {

/// Ordinary-least-squares linear model t = b0 + Σ bi·xi. The paper's
/// single-parameter kernel models (§II-B: "simple linear regression methods
/// were sufficient to generate single parameter performance models").
class LinearModel final : public PerfModel {
 public:
  LinearModel(std::vector<double> coefficients, double intercept,
              std::vector<std::string> feature_names);

  double evaluate(std::span<const double> features) const override;
  std::string describe() const override;
  std::string serialize() const override;
  std::unique_ptr<PerfModel> clone() const override;

  const std::vector<double>& coefficients() const { return coefficients_; }
  double intercept() const { return intercept_; }

 private:
  std::vector<double> coefficients_;
  double intercept_;
  std::vector<std::string> feature_names_;
};

/// Polynomial model over all monomials of total degree <= `degree` in the
/// input features (including cross terms).
class PolynomialModel final : public PerfModel {
 public:
  /// `exponents[k]` is the per-feature exponent tuple of monomial k.
  PolynomialModel(std::vector<std::vector<int>> exponents,
                  std::vector<double> coefficients,
                  std::vector<std::string> feature_names);

  double evaluate(std::span<const double> features) const override;
  std::string describe() const override;
  std::string serialize() const override;
  std::unique_ptr<PerfModel> clone() const override;

 private:
  std::vector<std::vector<int>> exponents_;
  std::vector<double> coefficients_;
  std::vector<std::string> feature_names_;
};

/// Fit by OLS via normal equations (feature counts here are tiny). Throws
/// picp::Error on an empty dataset; rank-deficient systems are solved with
/// ridge damping (lambda ~ 1e-12 of the diagonal scale).
LinearModel fit_linear(const Dataset& data);
PolynomialModel fit_polynomial(const Dataset& data, int degree);

/// Enumerate exponent tuples of total degree <= degree over `features`
/// variables, constant term first (exposed for tests).
std::vector<std::vector<int>> monomial_exponents(std::size_t features,
                                                 int degree);

}  // namespace picp
