#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "geom/vec3.hpp"
#include "mesh/partition.hpp"
#include "mesh/spectral_mesh.hpp"

namespace picp {

/// A particle-mapping algorithm: decides, each sampled interval, which
/// processor owns each particle. This is the interface the Dynamic Workload
/// Generator "mimics" (paper §II-A): implementations must depend only on
/// particle positions and static configuration, so the generator can replay
/// them from a trace on any processor count.
class Mapper {
 public:
  virtual ~Mapper() = default;

  virtual std::string name() const = 0;

  /// Number of processors this mapper distributes particles across.
  virtual Rank num_ranks() const = 0;

  /// Recompute the mapping for the current particle positions and fill
  /// `owners[i]` with the rank owning particle i. Called once per interval.
  virtual void map(std::span<const Vec3> positions,
                   std::vector<Rank>& owners) = 0;

  /// Owner of an arbitrary point under the mapping computed by the last
  /// map() call. Valid only after map() has run at least once.
  virtual Rank owner_of_point(const Vec3& p) const = 0;

  /// Number of distinct spatial partitions created by the last map() call
  /// (#bins for bin-based mapping; #ranks otherwise). Drives Fig 6 / 10a.
  virtual std::int64_t num_partitions() const = 0;
};

/// Factory: construct a mapper by configuration name ("element", "bin",
/// "hilbert"). `bin_threshold` is the projection-filter-derived threshold
/// bin size; `max_bins` caps bin creation (pass a huge value to reproduce
/// the paper's "relaxed processor count" study in Fig 6).
std::unique_ptr<Mapper> make_mapper(const std::string& kind,
                                    const SpectralMesh& mesh,
                                    const MeshPartition& partition,
                                    double bin_threshold,
                                    std::int64_t max_bins = -1);

}  // namespace picp
