#pragma once

#include <cstdint>
#include <vector>

#include "mapping/mapper.hpp"

namespace picp {

/// Hilbert-ordering mapper (extension; Liao et al. [10] style, listed in the
/// paper's future work): particles receive a global order from the Hilbert
/// index of their containing element; the ordered sequence is split into R
/// equal-count chunks. Preserves locality (nearby particles share ranks)
/// while balancing counts exactly, at the cost of chunk boundaries moving
/// every interval.
class HilbertMapper final : public Mapper {
 public:
  HilbertMapper(const SpectralMesh& mesh, Rank num_ranks);

  std::string name() const override { return "hilbert"; }
  Rank num_ranks() const override { return num_ranks_; }

  void map(std::span<const Vec3> positions,
           std::vector<Rank>& owners) override;

  Rank owner_of_point(const Vec3& p) const override;

  std::int64_t num_partitions() const override { return num_ranks_; }

 private:
  std::uint64_t key_of(const Vec3& p) const;

  const SpectralMesh* mesh_;
  Rank num_ranks_;
  int bits_ = 1;
  /// Sorted Hilbert keys of the last mapped particle set; chunk c covers
  /// keys in [boundaries_[c], boundaries_[c+1]).
  std::vector<std::uint64_t> chunk_upper_;  // exclusive upper key per rank
  bool mapped_ = false;
};

}  // namespace picp
