#include "mapping/hilbert_mapper.hpp"

#include <algorithm>
#include <limits>

#include "geom/hilbert.hpp"
#include "util/error.hpp"

namespace picp {

HilbertMapper::HilbertMapper(const SpectralMesh& mesh, Rank num_ranks)
    : mesh_(&mesh), num_ranks_(num_ranks) {
  PICP_REQUIRE(num_ranks > 0, "HilbertMapper needs at least one rank");
  const std::int64_t max_dim =
      std::max({mesh.nelx(), mesh.nely(), mesh.nelz()});
  bits_ = 1;
  while ((std::int64_t{1} << bits_) < max_dim) ++bits_;
}

std::uint64_t HilbertMapper::key_of(const Vec3& p) const {
  const auto coords = mesh_->element_coords(mesh_->element_of(p));
  return hilbert_index_3d(static_cast<std::uint32_t>(coords[0]),
                          static_cast<std::uint32_t>(coords[1]),
                          static_cast<std::uint32_t>(coords[2]), bits_);
}

void HilbertMapper::map(std::span<const Vec3> positions,
                        std::vector<Rank>& owners) {
  const std::size_t n = positions.size();
  owners.resize(n);
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = key_of(positions[i]);

  std::vector<std::uint64_t> sorted = keys;
  std::sort(sorted.begin(), sorted.end());

  // Equal-count chunks; each rank's chunk ends at the key of its last
  // particle in the sorted order. Ranks owning a key range that ties with
  // the next chunk's first key absorb all equal keys (particles in the same
  // element must share a rank to preserve locality).
  chunk_upper_.assign(static_cast<std::size_t>(num_ranks_),
                      std::numeric_limits<std::uint64_t>::max());
  for (Rank r = 0; r + 1 < num_ranks_; ++r) {
    const std::size_t split =
        (static_cast<std::size_t>(r) + 1) * n / static_cast<std::size_t>(num_ranks_);
    chunk_upper_[static_cast<std::size_t>(r)] =
        split == 0 ? 0 : sorted[split - 1] + 1;
  }
  // Enforce monotonicity (equal keys straddling a split collapse chunks).
  for (std::size_t r = 1; r + 1 <= chunk_upper_.size() - 1; ++r)
    chunk_upper_[r] = std::max(chunk_upper_[r], chunk_upper_[r - 1]);
  mapped_ = true;

  for (std::size_t i = 0; i < n; ++i) {
    const auto it =
        std::upper_bound(chunk_upper_.begin(), chunk_upper_.end() - 1, keys[i]);
    owners[i] = static_cast<Rank>(it - chunk_upper_.begin());
  }
}

Rank HilbertMapper::owner_of_point(const Vec3& p) const {
  PICP_REQUIRE(mapped_, "HilbertMapper::map must run before owner queries");
  const std::uint64_t key = key_of(p);
  const auto it =
      std::upper_bound(chunk_upper_.begin(), chunk_upper_.end() - 1, key);
  return static_cast<Rank>(it - chunk_upper_.begin());
}

}  // namespace picp
