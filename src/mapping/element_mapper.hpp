#pragma once

#include "mapping/mapper.hpp"

namespace picp {

/// Element-based mapping (paper §III-B): a particle is owned by the rank
/// that owns the spectral element it resides in. Preserves particle-grid
/// locality (all interpolation/projection is rank-local) but inherits the
/// grid decomposition's insensitivity to particle density, producing severe
/// load imbalance for concentrated particle beds.
class ElementMapper final : public Mapper {
 public:
  ElementMapper(const SpectralMesh& mesh, const MeshPartition& partition);

  std::string name() const override { return "element"; }
  Rank num_ranks() const override { return partition_->num_ranks(); }

  void map(std::span<const Vec3> positions,
           std::vector<Rank>& owners) override;

  Rank owner_of_point(const Vec3& p) const override {
    return partition_->owner_of(mesh_->element_of(p));
  }

  std::int64_t num_partitions() const override {
    return partition_->num_ranks();
  }

 private:
  const SpectralMesh* mesh_;
  const MeshPartition* partition_;
};

}  // namespace picp
