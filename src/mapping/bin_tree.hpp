#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"

namespace picp {

/// Recursive-planar-cut bin tree over a particle cloud (Zwick & Balachandar's
/// bin-based decomposition as described in the paper §III-C):
///
///   1. Compute the particle domain boundary (tight AABB).
///   2. Repeatedly cut the bin with the largest extent on its longest axis
///      at the median particle, until every bin's extent has reached the
///      threshold bin size (the projection filter size) or the bin budget
///      (#processors) is exhausted.
///
/// The tree is rebuilt from scratch every interval, because the particle
/// domain expands and shrinks as particles move.
class BinTree {
 public:
  struct BuildParams {
    /// Threshold bin size: a bin whose longest extent is <= threshold is not
    /// subdivided further. The paper uses the projection filter size here.
    double threshold = 0.0;
    /// Maximum number of bins (normally the processor count R). Use
    /// kUnlimitedBins to relax the cap (paper Fig 6).
    std::int64_t max_bins = 0;
    /// Bins holding this many particles or fewer are not subdivided.
    std::int64_t min_particles = 1;
  };

  static constexpr std::int64_t kUnlimitedBins =
      std::int64_t{1} << 40;

  BinTree() = default;

  /// Build from particle positions. Deterministic for identical input.
  void build(std::span<const Vec3> positions, const BuildParams& params);

  bool built() const { return !nodes_.empty(); }
  std::int64_t num_bins() const { return static_cast<std::int64_t>(bins_.size()); }

  /// Bin of the i-th construction particle (O(1), recorded during build).
  std::int32_t bin_of_built(std::size_t particle_index) const {
    return built_bins_[particle_index];
  }

  /// Bin containing an arbitrary point (tree walk over cut planes). Points
  /// outside the particle boundary land in the nearest bin along the walk.
  std::int32_t bin_of(const Vec3& p) const;

  /// Tight particle bounds of a bin at build time.
  const Aabb& bin_bounds(std::int32_t bin) const {
    return bins_[static_cast<std::size_t>(bin)].bounds;
  }
  /// Number of particles placed in a bin at build time.
  std::int64_t bin_count(std::int32_t bin) const {
    return bins_[static_cast<std::size_t>(bin)].count;
  }

  /// Particle domain boundary (tight AABB of all particles).
  const Aabb& root_bounds() const { return root_bounds_; }

 private:
  struct Node {
    // Internal node: axis >= 0, cut plane position, children indices.
    // Leaf: axis == -1, `bin` is the bin id.
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int32_t bin = -1;
    std::int32_t axis = -1;
    double cut = 0.0;
  };
  struct BinInfo {
    Aabb bounds;
    std::int64_t count = 0;
  };

  std::vector<Node> nodes_;
  std::vector<BinInfo> bins_;
  std::vector<std::int32_t> built_bins_;
  Aabb root_bounds_;
};

}  // namespace picp
