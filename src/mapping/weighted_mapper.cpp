#include "mapping/weighted_mapper.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace picp {

WeightedElementMapper::WeightedElementMapper(const SpectralMesh& mesh,
                                             Rank num_ranks,
                                             double grid_weight,
                                             double imbalance_trigger)
    : mesh_(&mesh),
      num_ranks_(num_ranks),
      grid_weight_(grid_weight),
      imbalance_trigger_(imbalance_trigger),
      partition_(rcb_partition(mesh, num_ranks)) {
  PICP_REQUIRE(num_ranks > 0, "WeightedElementMapper needs ranks");
  PICP_REQUIRE(grid_weight >= 0.0, "grid weight non-negative");
  PICP_REQUIRE(imbalance_trigger >= 1.0, "imbalance trigger >= 1");
}

double WeightedElementMapper::particle_imbalance(
    std::span<const Rank> owners) const {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_ranks_), 0);
  for (const Rank r : owners) ++counts[static_cast<std::size_t>(r)];
  const std::int64_t peak =
      *std::max_element(counts.begin(), counts.end());
  const double mean = static_cast<double>(owners.size()) /
                      static_cast<double>(num_ranks_);
  return mean > 0.0 ? static_cast<double>(peak) / mean : 1.0;
}

void WeightedElementMapper::map(std::span<const Vec3> positions,
                                std::vector<Rank>& owners) {
  owners.resize(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i)
    owners[i] = partition_.owner_of(mesh_->element_of(positions[i]));

  if (particle_imbalance(owners) <= imbalance_trigger_) return;

  // Repartition: weight = grid work + particles residing in the element.
  weights_.assign(static_cast<std::size_t>(mesh_->num_elements()),
                  grid_weight_);
  for (const Vec3& p : positions)
    weights_[static_cast<std::size_t>(mesh_->element_of(p))] += 1.0;
  partition_ = weighted_rcb_partition(*mesh_, num_ranks_, weights_);
  ++repartitions_;

  for (std::size_t i = 0; i < positions.size(); ++i)
    owners[i] = partition_.owner_of(mesh_->element_of(positions[i]));
}

Rank WeightedElementMapper::owner_of_point(const Vec3& p) const {
  return partition_.owner_of(mesh_->element_of(p));
}

}  // namespace picp
