#pragma once

#include <vector>

#include "mapping/mapper.hpp"

namespace picp {

/// Load-balanced element mapping after Zhai et al. [11] (the paper's
/// related work, added here per its §VI plan to grow the mapper library):
/// particle-grid locality is preserved — a particle lives with its element —
/// but the *element* partition itself is recomputed from per-element weights
/// (grid points + particles) whenever the particle load imbalance exceeds a
/// trigger. Between repartitions the existing assignment is reused, exactly
/// like the original's threshold-triggered repartitioning.
class WeightedElementMapper final : public Mapper {
 public:
  /// `grid_weight` is the constant per-element grid work added to the
  /// particle count (Zhai et al. weight both); `imbalance_trigger` is the
  /// max/mean particle-load ratio that forces a repartition.
  WeightedElementMapper(const SpectralMesh& mesh, Rank num_ranks,
                        double grid_weight = 1.0,
                        double imbalance_trigger = 1.5);

  std::string name() const override { return "weighted"; }
  Rank num_ranks() const override { return num_ranks_; }

  void map(std::span<const Vec3> positions,
           std::vector<Rank>& owners) override;

  Rank owner_of_point(const Vec3& p) const override;

  std::int64_t num_partitions() const override { return num_ranks_; }

  /// Repartitions performed so far (diagnostics).
  std::size_t repartition_count() const { return repartitions_; }
  const MeshPartition& partition() const { return partition_; }

 private:
  double particle_imbalance(std::span<const Rank> owners) const;

  const SpectralMesh* mesh_;
  Rank num_ranks_;
  double grid_weight_;
  double imbalance_trigger_;
  MeshPartition partition_;
  std::vector<double> weights_;  // scratch, one per element
  std::size_t repartitions_ = 0;
};

}  // namespace picp
