#pragma once

#include "mapping/bin_tree.hpp"
#include "mapping/mapper.hpp"

namespace picp {

/// Bin-based mapping (paper §III-C, after Zwick & Balachandar): the particle
/// domain is partitioned into bins by recursive planar cuts, rebuilt every
/// interval as the particle cloud expands/shrinks; bins are distributed
/// uniformly (block-cyclically) across ranks. Decouples particle load from
/// the grid decomposition at the cost of extra particle-grid communication.
class BinMapper final : public Mapper {
 public:
  /// `threshold` is the threshold bin size (the projection filter size in
  /// CMT-nek). `max_bins` defaults to the rank count; pass
  /// BinTree::kUnlimitedBins to study the bin limit itself (Fig 6).
  BinMapper(Rank num_ranks, double threshold, std::int64_t max_bins = -1);

  std::string name() const override { return "bin"; }
  Rank num_ranks() const override { return num_ranks_; }

  void map(std::span<const Vec3> positions,
           std::vector<Rank>& owners) override;

  Rank owner_of_point(const Vec3& p) const override;

  /// Bins created by the last map() — the paper's Fig 6 series.
  std::int64_t num_partitions() const override { return tree_.num_bins(); }

  const BinTree& tree() const { return tree_; }
  double threshold() const { return params_.threshold; }

  Rank rank_of_bin(std::int32_t bin) const {
    return static_cast<Rank>(bin % num_ranks_);
  }

 private:
  Rank num_ranks_;
  BinTree::BuildParams params_;
  BinTree tree_;
};

}  // namespace picp
