#include "mapping/element_mapper.hpp"

#include "util/error.hpp"

namespace picp {

ElementMapper::ElementMapper(const SpectralMesh& mesh,
                             const MeshPartition& partition)
    : mesh_(&mesh), partition_(&partition) {
  PICP_REQUIRE(static_cast<std::int64_t>(partition.element_owners().size()) ==
                   mesh.num_elements(),
               "partition does not match mesh");
}

void ElementMapper::map(std::span<const Vec3> positions,
                        std::vector<Rank>& owners) {
  owners.resize(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i)
    owners[i] = partition_->owner_of(mesh_->element_of(positions[i]));
}

}  // namespace picp
