#include "mapping/mapper.hpp"

#include "mapping/bin_mapper.hpp"
#include "mapping/element_mapper.hpp"
#include "mapping/hilbert_mapper.hpp"
#include "mapping/weighted_mapper.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace picp {

std::unique_ptr<Mapper> make_mapper(const std::string& kind,
                                    const SpectralMesh& mesh,
                                    const MeshPartition& partition,
                                    double bin_threshold,
                                    std::int64_t max_bins) {
  const std::string k = to_lower(trim(kind));
  if (k == "element" || k == "element-based")
    return std::make_unique<ElementMapper>(mesh, partition);
  if (k == "bin" || k == "bin-based")
    return std::make_unique<BinMapper>(partition.num_ranks(), bin_threshold,
                                       max_bins);
  if (k == "hilbert")
    return std::make_unique<HilbertMapper>(mesh, partition.num_ranks());
  if (k == "weighted" || k == "weighted-element")
    return std::make_unique<WeightedElementMapper>(mesh,
                                                   partition.num_ranks());
  throw Error("unknown mapper kind: '" + kind +
              "' (expected element | bin | hilbert | weighted)");
}

}  // namespace picp
