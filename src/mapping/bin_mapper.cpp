#include "mapping/bin_mapper.hpp"

#include "util/error.hpp"

namespace picp {

BinMapper::BinMapper(Rank num_ranks, double threshold, std::int64_t max_bins)
    : num_ranks_(num_ranks) {
  PICP_REQUIRE(num_ranks > 0, "BinMapper needs at least one rank");
  PICP_REQUIRE(threshold > 0.0, "threshold bin size must be positive");
  params_.threshold = threshold;
  params_.max_bins = max_bins > 0 ? max_bins : num_ranks;
  params_.min_particles = 1;
}

void BinMapper::map(std::span<const Vec3> positions,
                    std::vector<Rank>& owners) {
  tree_.build(positions, params_);
  owners.resize(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i)
    owners[i] = rank_of_bin(tree_.bin_of_built(i));
}

Rank BinMapper::owner_of_point(const Vec3& p) const {
  PICP_REQUIRE(tree_.built(), "BinMapper::map must run before owner queries");
  return rank_of_bin(tree_.bin_of(p));
}

}  // namespace picp
