#include "mapping/bin_tree.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/error.hpp"

namespace picp {

namespace {

struct WorkItem {
  std::int32_t node = -1;
  std::size_t begin = 0;
  std::size_t end = 0;
  Aabb bounds;  // tight bounds of the particles in [begin, end)

  double longest_extent() const {
    const Vec3 e = bounds.extent();
    return std::max({e.x, e.y, e.z});
  }
};

Aabb tight_bounds(std::span<const Vec3> positions,
                  std::span<const std::uint32_t> ids, std::size_t begin,
                  std::size_t end) {
  Aabb box;
  for (std::size_t i = begin; i < end; ++i) box.expand(positions[ids[i]]);
  return box;
}

}  // namespace

void BinTree::build(std::span<const Vec3> positions,
                    const BuildParams& params) {
  PICP_REQUIRE(!positions.empty(), "BinTree::build needs particles");
  PICP_REQUIRE(params.max_bins >= 1, "max_bins must be >= 1");
  PICP_REQUIRE(params.threshold >= 0.0, "threshold must be non-negative");

  nodes_.clear();
  bins_.clear();
  built_bins_.assign(positions.size(), -1);

  std::vector<std::uint32_t> ids(positions.size());
  std::iota(ids.begin(), ids.end(), 0u);

  root_bounds_ = tight_bounds(positions, ids, 0, ids.size());

  nodes_.push_back(Node{});

  // Round-synchronized recursive planar cutting (Zwick-style): every round,
  // each bin that still exceeds the threshold size is cut at its median
  // particle, until no bin is splittable or the bin budget (the processor
  // count) is exhausted. When the budget runs out mid-round, the remaining
  // bins of that round — dense ones included — stay unsplit; this is exactly
  // why the paper's Fig 5 peak workload drops once the processor count
  // exceeds the bin count the threshold alone would produce.
  std::vector<WorkItem> round = {WorkItem{0, 0, ids.size(), root_bounds_}};
  std::vector<WorkItem> next_round;

  // Each split converts one pending bin into two, so the eventual bin count
  // is 1 (root) + number of splits performed.
  std::int64_t bin_count = 1;

  const auto finalize_leaf = [&](const WorkItem& item) {
    const auto bin_id = static_cast<std::int32_t>(bins_.size());
    Node& node = nodes_[static_cast<std::size_t>(item.node)];
    node.axis = -1;
    node.bin = bin_id;
    bins_.push_back(
        BinInfo{item.bounds, static_cast<std::int64_t>(item.end - item.begin)});
    for (std::size_t i = item.begin; i < item.end; ++i)
      built_bins_[ids[i]] = bin_id;
  };

  while (!round.empty()) {
    next_round.clear();
    for (const WorkItem& item : round) {
      const std::size_t count = item.end - item.begin;

      const bool size_reached = item.longest_extent() <= params.threshold;
      const bool too_few =
          static_cast<std::int64_t>(count) <= params.min_particles;
      const bool budget_spent = bin_count >= params.max_bins;
      // Degenerate cloud (all particles coincident along the cut axis):
      // cutting cannot separate anything.
      const bool degenerate = item.bounds.extent()[item.bounds.longest_axis()] <= 0.0;
      if (size_reached || too_few || budget_spent || degenerate) {
        finalize_leaf(item);
        continue;
      }

      // Planar cut: bisect the bin's tight bounds at the middle of its
      // longest axis. Geometric (not median) cuts keep bin *sizes* uniform
      // so per-bin particle counts track the local density — the behavior
      // behind the paper's Fig 5: when the processor count caps the
      // recursion, the surviving double-size bins carry ~2x load until more
      // processors allow the remaining cuts.
      const int axis = item.bounds.longest_axis();
      const double cut =
          0.5 * (item.bounds.lo[axis] + item.bounds.hi[axis]);
      const auto mid_it = std::partition(
          ids.begin() + static_cast<std::ptrdiff_t>(item.begin),
          ids.begin() + static_cast<std::ptrdiff_t>(item.end),
          [&positions, axis, cut](std::uint32_t a) {
            return positions[a][axis] < cut;
          });
      const auto mid = static_cast<std::size_t>(mid_it - ids.begin());
      PICP_ENSURE(mid > item.begin && mid < item.end,
                  "degenerate planar cut");

      const auto left_index = static_cast<std::int32_t>(nodes_.size());
      nodes_.push_back(Node{});
      nodes_.push_back(Node{});
      Node& parent = nodes_[static_cast<std::size_t>(item.node)];
      parent.axis = axis;
      parent.cut = cut;
      parent.left = left_index;
      parent.right = left_index + 1;

      ++bin_count;
      next_round.push_back(WorkItem{left_index, item.begin, mid,
                                    tight_bounds(positions, ids, item.begin,
                                                 mid)});
      next_round.push_back(WorkItem{left_index + 1, mid, item.end,
                                    tight_bounds(positions, ids, mid,
                                                 item.end)});
    }
    round.swap(next_round);
  }

  PICP_ENSURE(static_cast<std::int64_t>(bins_.size()) == bin_count,
              "bin accounting mismatch");
  PICP_ENSURE(bin_count <= params.max_bins, "bin budget exceeded");
}

std::int32_t BinTree::bin_of(const Vec3& p) const {
  PICP_REQUIRE(built(), "BinTree not built");
  std::int32_t node_index = 0;
  while (true) {
    const Node& node = nodes_[static_cast<std::size_t>(node_index)];
    if (node.axis < 0) return node.bin;
    node_index = p[node.axis] < node.cut ? node.left : node.right;
  }
}

}  // namespace picp
