#include "geom/hilbert.hpp"

#include <array>

#include "util/error.hpp"

namespace picp {

namespace {
constexpr int kDims = 3;

// Skilling's "transpose" representation: X[i] holds the i-th coordinate;
// after TransposeToAxes / AxesToTranspose the bits of the Hilbert index are
// distributed across the words, MSB-first, one bit per word per level.
void axes_to_transpose(std::array<std::uint32_t, kDims>& x, int bits) {
  std::uint32_t m = 1u << (bits - 1);
  // Inverse undo.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < kDims; ++i) {
      if (x[static_cast<std::size_t>(i)] & q) {
        x[0] ^= p;  // invert
      } else {  // exchange
        const std::uint32_t t = (x[0] ^ x[static_cast<std::size_t>(i)]) & p;
        x[0] ^= t;
        x[static_cast<std::size_t>(i)] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < kDims; ++i)
    x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i - 1)];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1)
    if (x[kDims - 1] & q) t ^= q - 1;
  for (int i = 0; i < kDims; ++i) x[static_cast<std::size_t>(i)] ^= t;
}

void transpose_to_axes(std::array<std::uint32_t, kDims>& x, int bits) {
  const std::uint32_t n = 2u << (bits - 1);
  // Gray decode by H ^ (H/2).
  std::uint32_t t = x[kDims - 1] >> 1;
  for (int i = kDims - 1; i > 0; --i)
    x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i - 1)];
  x[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != n; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = kDims - 1; i >= 0; --i) {
      if (x[static_cast<std::size_t>(i)] & q) {
        x[0] ^= p;
      } else {
        const std::uint32_t w = (x[0] ^ x[static_cast<std::size_t>(i)]) & p;
        x[0] ^= w;
        x[static_cast<std::size_t>(i)] ^= w;
      }
    }
  }
}
}  // namespace

std::uint64_t hilbert_index_3d(std::uint32_t x, std::uint32_t y,
                               std::uint32_t z, int bits) {
  PICP_REQUIRE(bits >= 1 && bits <= 21, "hilbert bits out of range [1,21]");
  PICP_REQUIRE((x >> bits) == 0 && (y >> bits) == 0 && (z >> bits) == 0,
               "hilbert coordinate exceeds bit width");
  std::array<std::uint32_t, kDims> coords = {x, y, z};
  axes_to_transpose(coords, bits);
  // Interleave transpose words MSB-first into a single index.
  std::uint64_t index = 0;
  for (int b = bits - 1; b >= 0; --b)
    for (int i = 0; i < kDims; ++i)
      index = (index << 1) |
              ((coords[static_cast<std::size_t>(i)] >> b) & 1u);
  return index;
}

void hilbert_coords_3d(std::uint64_t index, int bits, std::uint32_t& x,
                       std::uint32_t& y, std::uint32_t& z) {
  PICP_REQUIRE(bits >= 1 && bits <= 21, "hilbert bits out of range [1,21]");
  std::array<std::uint32_t, kDims> coords = {0, 0, 0};
  for (int b = bits - 1; b >= 0; --b)
    for (int i = 0; i < kDims; ++i) {
      const int shift = b * kDims + (kDims - 1 - i);
      coords[static_cast<std::size_t>(i)] |=
          static_cast<std::uint32_t>((index >> shift) & 1u) << b;
    }
  transpose_to_axes(coords, bits);
  x = coords[0];
  y = coords[1];
  z = coords[2];
}

}  // namespace picp
