#pragma once

#include <cmath>
#include <ostream>

namespace picp {

/// Plain 3-component vector used for particle positions, velocities, and
/// forces. Value type; all operations are constexpr-friendly.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr double operator[](int axis) const {
    return axis == 0 ? x : (axis == 1 ? y : z);
  }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s; y *= s; z *= s;
    return *this;
  }

  constexpr friend Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  constexpr friend Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  constexpr friend Vec3 operator*(Vec3 a, double s) { return a *= s; }
  constexpr friend Vec3 operator*(double s, Vec3 a) { return a *= s; }
  constexpr friend bool operator==(const Vec3& a, const Vec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }

  constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  double norm() const { return std::sqrt(dot(*this)); }
  constexpr double norm2() const { return dot(*this); }

  /// Component-wise setter by axis index (0=x, 1=y, 2=z).
  constexpr void set(int axis, double value) {
    if (axis == 0) x = value;
    else if (axis == 1) y = value;
    else z = value;
  }

  friend std::ostream& operator<<(std::ostream& os, const Vec3& v) {
    return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
  }
};

}  // namespace picp
