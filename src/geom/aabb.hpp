#pragma once

#include <algorithm>
#include <limits>

#include "geom/vec3.hpp"

namespace picp {

/// Axis-aligned bounding box. Used for the simulation domain, element
/// extents, particle-domain boundaries, and bins from recursive planar cuts.
struct Aabb {
  Vec3 lo{std::numeric_limits<double>::max(),
          std::numeric_limits<double>::max(),
          std::numeric_limits<double>::max()};
  Vec3 hi{std::numeric_limits<double>::lowest(),
          std::numeric_limits<double>::lowest(),
          std::numeric_limits<double>::lowest()};

  constexpr Aabb() = default;
  constexpr Aabb(const Vec3& lo_, const Vec3& hi_) : lo(lo_), hi(hi_) {}

  constexpr bool valid() const {
    return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z;
  }

  constexpr bool empty() const { return !valid(); }

  /// Half-open membership test: [lo, hi) on each axis, matching the cell and
  /// element ownership convention (a point on a shared face belongs to the
  /// upper neighbor exactly once).
  constexpr bool contains(const Vec3& p) const {
    return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y &&
           p.z >= lo.z && p.z < hi.z;
  }

  /// Closed membership test (includes the upper faces).
  constexpr bool contains_closed(const Vec3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }

  void expand(const Vec3& p) {
    lo.x = std::min(lo.x, p.x); lo.y = std::min(lo.y, p.y); lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x); hi.y = std::max(hi.y, p.y); hi.z = std::max(hi.z, p.z);
  }

  void expand(const Aabb& other) {
    if (other.empty()) return;
    expand(other.lo);
    expand(other.hi);
  }

  /// Grow by `margin` on every side.
  Aabb inflated(double margin) const {
    return Aabb(Vec3(lo.x - margin, lo.y - margin, lo.z - margin),
                Vec3(hi.x + margin, hi.y + margin, hi.z + margin));
  }

  constexpr Vec3 extent() const {
    return Vec3(hi.x - lo.x, hi.y - lo.y, hi.z - lo.z);
  }

  constexpr Vec3 center() const {
    return Vec3(0.5 * (lo.x + hi.x), 0.5 * (lo.y + hi.y), 0.5 * (lo.z + hi.z));
  }

  constexpr double volume() const {
    const Vec3 e = extent();
    return e.x * e.y * e.z;
  }

  /// Index of the longest axis (ties broken toward x).
  int longest_axis() const {
    const Vec3 e = extent();
    if (e.x >= e.y && e.x >= e.z) return 0;
    if (e.y >= e.z) return 1;
    return 2;
  }

  constexpr bool overlaps(const Aabb& o) const {
    return lo.x < o.hi.x && o.lo.x < hi.x && lo.y < o.hi.y && o.lo.y < hi.y &&
           lo.z < o.hi.z && o.lo.z < hi.z;
  }

  /// Squared distance from a point to the box (0 when inside).
  double distance2(const Vec3& p) const {
    const double dx = std::max({lo.x - p.x, 0.0, p.x - hi.x});
    const double dy = std::max({lo.y - p.y, 0.0, p.y - hi.y});
    const double dz = std::max({lo.z - p.z, 0.0, p.z - hi.z});
    return dx * dx + dy * dy + dz * dz;
  }
};

}  // namespace picp
