#pragma once

#include <cstdint>

namespace picp {

/// 3-D Hilbert space-filling curve index (Skilling's transpose algorithm).
/// Coordinates are `bits`-bit integers; the returned index interleaves to a
/// 3*bits-bit key preserving spatial locality. Used by the Hilbert particle
/// mapper (Liao et al. style ordering of spectral elements).
std::uint64_t hilbert_index_3d(std::uint32_t x, std::uint32_t y,
                               std::uint32_t z, int bits);

/// Inverse mapping: recover the coordinate from a Hilbert index.
void hilbert_coords_3d(std::uint64_t index, int bits, std::uint32_t& x,
                       std::uint32_t& y, std::uint32_t& z);

}  // namespace picp
