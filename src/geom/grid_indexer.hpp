#pragma once

#include <array>
#include <cstdint>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"
#include "util/error.hpp"

namespace picp {

/// Maps points in a rectangular domain to cells of a uniform nx × ny × nz
/// grid and back. Shared by the spectral-element mesh (elements are the
/// cells) and the ghost-particle spatial hash.
class GridIndexer {
 public:
  GridIndexer() = default;

  GridIndexer(const Aabb& domain, std::int64_t nx, std::int64_t ny,
              std::int64_t nz)
      : domain_(domain), nx_(nx), ny_(ny), nz_(nz) {
    PICP_REQUIRE(nx > 0 && ny > 0 && nz > 0, "grid dims must be positive");
    PICP_REQUIRE(domain.valid() && domain.volume() > 0.0,
                 "grid domain must be non-degenerate");
    const Vec3 e = domain.extent();
    cell_ = Vec3(e.x / static_cast<double>(nx), e.y / static_cast<double>(ny),
                 e.z / static_cast<double>(nz));
  }

  const Aabb& domain() const { return domain_; }
  std::int64_t nx() const { return nx_; }
  std::int64_t ny() const { return ny_; }
  std::int64_t nz() const { return nz_; }
  std::int64_t cell_count() const { return nx_ * ny_ * nz_; }
  const Vec3& cell_size() const { return cell_; }

  /// Cell coordinate of a point, clamped to the grid (points on/past the
  /// upper boundary map to the last cell, matching half-open ownership).
  std::array<std::int64_t, 3> cell_of(const Vec3& p) const {
    return {clamp_axis((p.x - domain_.lo.x) / cell_.x, nx_),
            clamp_axis((p.y - domain_.lo.y) / cell_.y, ny_),
            clamp_axis((p.z - domain_.lo.z) / cell_.z, nz_)};
  }

  std::int64_t flat_index(std::int64_t ix, std::int64_t iy,
                          std::int64_t iz) const {
    return (iz * ny_ + iy) * nx_ + ix;
  }

  std::int64_t flat_cell_of(const Vec3& p) const {
    const auto c = cell_of(p);
    return flat_index(c[0], c[1], c[2]);
  }

  std::array<std::int64_t, 3> unflatten(std::int64_t flat) const {
    const std::int64_t ix = flat % nx_;
    const std::int64_t iy = (flat / nx_) % ny_;
    const std::int64_t iz = flat / (nx_ * ny_);
    return {ix, iy, iz};
  }

  /// Axis-aligned bounds of one cell.
  Aabb cell_bounds(std::int64_t ix, std::int64_t iy, std::int64_t iz) const {
    const Vec3 lo(domain_.lo.x + static_cast<double>(ix) * cell_.x,
                  domain_.lo.y + static_cast<double>(iy) * cell_.y,
                  domain_.lo.z + static_cast<double>(iz) * cell_.z);
    return Aabb(lo, Vec3(lo.x + cell_.x, lo.y + cell_.y, lo.z + cell_.z));
  }

  Aabb cell_bounds(std::int64_t flat) const {
    const auto c = unflatten(flat);
    return cell_bounds(c[0], c[1], c[2]);
  }

 private:
  static std::int64_t clamp_axis(double t, std::int64_t n) {
    auto idx = static_cast<std::int64_t>(t);
    if (t < 0.0) idx = 0;
    if (idx >= n) idx = n - 1;
    return idx;
  }

  Aabb domain_{Vec3(0, 0, 0), Vec3(1, 1, 1)};
  std::int64_t nx_ = 1;
  std::int64_t ny_ = 1;
  std::int64_t nz_ = 1;
  Vec3 cell_{1, 1, 1};
};

}  // namespace picp
