#pragma once

#include <cstdint>
#include <vector>

#include "bsst/network_model.hpp"
#include "workload/comm_matrix.hpp"

namespace picp {

/// Inputs to the trace-driven system-level simulation: per-(rank, interval)
/// compute times (from the performance models applied to the generated
/// workload) plus the communication matrices (from the Dynamic Workload
/// Generator). This is the trace-based capability the paper describes as
/// being added to BE-SST (§II-C / §VI).
struct TraceSimInput {
  Rank num_ranks = 0;
  std::size_t num_intervals = 0;
  /// compute_seconds[t * num_ranks + r]: modeled kernel time of rank r in
  /// interval t.
  std::vector<double> compute_seconds;
  /// Particle-migration transfers (bytes_per_particle each); optional.
  const CommMatrix* comm_real = nullptr;
  /// Ghost-creation transfers (bytes_per_ghost each); optional.
  const CommMatrix* comm_ghost = nullptr;
  NetworkParams network;
};

/// Results of one system-level simulation.
struct SimReport {
  /// Predicted end-to-end time of the simulated phase.
  double total_seconds = 0.0;
  /// Barrier completion time of each interval.
  std::vector<double> interval_end;
  /// Per-rank total modeled compute time.
  std::vector<double> rank_busy_seconds;
  /// Sum over intervals of the slowest rank's compute (pure critical path,
  /// no communication) — a lower bound useful for diagnosing comm overhead.
  double critical_path_seconds = 0.0;
  /// DES events dispatched.
  std::uint64_t events = 0;
};

/// Run the coarse-grained simulation: per interval, every processor
/// computes, exchanges the interval's migration/ghost messages over the
/// α-β interconnect, and synchronizes on a log-tree barrier before the next
/// interval begins (the BSP structure of the CMT-nek particle phase).
SimReport run_trace_simulation(const TraceSimInput& input);

}  // namespace picp
