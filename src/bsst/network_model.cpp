#include "bsst/network_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace picp {

NetworkModel::NetworkModel(const NetworkParams& params) : params_(params) {
  PICP_REQUIRE(params.alpha >= 0.0, "alpha must be non-negative");
  PICP_REQUIRE(params.beta > 0.0, "beta must be positive");
}

double NetworkModel::collective_time(std::int64_t ranks, double bytes) const {
  if (ranks <= 1) return 0.0;
  const double stages = std::ceil(std::log2(static_cast<double>(ranks)));
  return stages * message_time(bytes);
}

}  // namespace picp
