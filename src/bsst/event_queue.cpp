#include "bsst/event_queue.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace picp {

void EventQueue::push(Event event) {
  event.seq = next_seq_++;
  heap_.push_back(event);
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
}

Event EventQueue::pop() {
  PICP_REQUIRE(!heap_.empty(), "pop from empty event queue");
  std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
  const Event event = heap_.back();
  heap_.pop_back();
  return event;
}

}  // namespace picp
