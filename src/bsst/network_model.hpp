#pragma once

#include <cstdint>

namespace picp {

/// Latency-bandwidth (α-β) interconnect model with log-tree collectives —
/// the coarse-grained network abstraction BE-SST-style emulation uses.
/// Defaults approximate a modern HPC fabric (Omni-Path-class: ~1 µs MPI
/// latency, ~10 GB/s effective per-rank bandwidth).
struct NetworkParams {
  /// Point-to-point message latency (seconds).
  double alpha = 1.5e-6;
  /// Effective bandwidth (bytes per second).
  double beta = 1.0e10;
  /// Payload bytes carried per migrated particle (CMT-nek particles carry
  /// position, velocity, and material state).
  double bytes_per_particle = 96.0;
  /// Payload bytes per ghost particle (position + projected properties).
  double bytes_per_ghost = 48.0;
};

class NetworkModel {
 public:
  explicit NetworkModel(const NetworkParams& params);

  const NetworkParams& params() const { return params_; }

  /// Time for one point-to-point message of `bytes`.
  double message_time(double bytes) const {
    return params_.alpha + bytes / params_.beta;
  }

  double particle_message_time(std::int64_t particles) const {
    return message_time(static_cast<double>(particles) *
                        params_.bytes_per_particle);
  }

  double ghost_message_time(std::int64_t ghosts) const {
    return message_time(static_cast<double>(ghosts) * params_.bytes_per_ghost);
  }

  /// Log-tree collective (barrier/allreduce) over `ranks` with a small
  /// payload.
  double collective_time(std::int64_t ranks, double bytes = 8.0) const;

 private:
  NetworkParams params_;
};

}  // namespace picp
