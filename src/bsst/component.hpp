#pragma once

#include <string>

#include "bsst/event.hpp"

namespace picp {

class Engine;

/// Base class for simulated system elements (processors, the interconnect's
/// collective engine, ...). Components receive events via handle() and
/// schedule future events through the engine — the classic conservative
/// sequential DES component model (after SST's component/link structure,
/// collapsed to a single event namespace since coarse-grained emulation
/// needs no port fan-out).
class Component {
 public:
  Component(ComponentId id, std::string name)
      : id_(id), name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  ComponentId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// React to an event; called by the engine with the simulation clock
  /// already advanced to event.time.
  virtual void handle(Engine& engine, const Event& event) = 0;

 private:
  ComponentId id_;
  std::string name_;
};

}  // namespace picp
