#pragma once

#include <vector>

#include "bsst/event.hpp"

namespace picp {

/// Binary min-heap of events with deterministic (time, seq) ordering.
class EventQueue {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Push; the event's `seq` is assigned here (schedule order).
  void push(Event event);

  /// Pop the earliest event; precondition: !empty().
  Event pop();

  const Event& peek() const { return heap_.front(); }

 private:
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace picp
