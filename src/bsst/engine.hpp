#pragma once

#include <memory>
#include <vector>

#include "bsst/component.hpp"
#include "bsst/event_queue.hpp"

namespace picp {

/// Sequential discrete-event engine: components + one event queue. The
/// engine is deterministic (stable (time, seq) ordering) and coarse-grained;
/// it is the picpredict stand-in for SST's core, sufficient for behavioral
/// emulation at the (rank × interval × phase) granularity the paper's
/// Simulation Platform operates at.
class Engine {
 public:
  /// Register a component; its id must equal its registration order.
  ComponentId add_component(std::unique_ptr<Component> component);

  Component& component(ComponentId id) {
    return *components_[static_cast<std::size_t>(id)];
  }
  std::size_t num_components() const { return components_.size(); }

  /// Current simulation time.
  SimTime now() const { return now_; }

  /// Schedule an event `delay` seconds from now (delay >= 0).
  void schedule(ComponentId src, ComponentId dst, SimTime delay,
                std::int32_t kind, std::int64_t a = 0, std::int64_t b = 0);

  /// Dispatch events until the queue drains or `max_events` is hit.
  /// Returns the number of events processed.
  std::uint64_t run(std::uint64_t max_events = ~std::uint64_t{0});

  std::uint64_t events_processed() const { return events_processed_; }

 private:
  std::vector<std::unique_ptr<Component>> components_;
  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t events_processed_ = 0;
};

}  // namespace picp
