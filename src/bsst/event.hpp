#pragma once

#include <cstdint>

namespace picp {

using ComponentId = std::int32_t;
using SimTime = double;

/// Discrete event delivered to a component. The payload is deliberately a
/// small POD — coarse-grained behavioral emulation (BE-SST style) models
/// *when* things complete, not message contents.
struct Event {
  SimTime time = 0.0;
  /// Monotone sequence number: ties in `time` dispatch in schedule order,
  /// making simulations bit-reproducible.
  std::uint64_t seq = 0;
  ComponentId dst = -1;
  ComponentId src = -1;
  /// Event kind, interpreted by the destination component.
  std::int32_t kind = 0;
  /// Kind-specific small payload (interval index, message count, ...).
  std::int64_t a = 0;
  std::int64_t b = 0;
};

/// Ordering for the event queue: earliest time first, then sequence.
struct EventAfter {
  bool operator()(const Event& x, const Event& y) const {
    if (x.time != y.time) return x.time > y.time;
    return x.seq > y.seq;
  }
};

}  // namespace picp
