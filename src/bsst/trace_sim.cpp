#include "bsst/trace_sim.hpp"

#include <algorithm>
#include <span>

#include "bsst/engine.hpp"
#include "util/error.hpp"

namespace picp {

namespace {

enum EventKind : std::int32_t {
  kStart = 1,        // a: interval
  kComputeDone = 2,  // a: interval
  kMessage = 3,      // a: interval
  kRankDone = 4,     // a: interval
};

struct OutMessage {
  Rank dst;
  double bytes;
};

/// Precomputed per-interval messaging schedule.
struct MessagePlan {
  // out[t * R + r] = messages rank r sends in interval t.
  std::vector<std::vector<OutMessage>> out;
  // expected[t * R + r] = messages rank r must receive in interval t.
  std::vector<std::int32_t> expected;
};

MessagePlan build_plan(const TraceSimInput& input) {
  const auto r_count = static_cast<std::size_t>(input.num_ranks);
  MessagePlan plan;
  plan.out.resize(input.num_intervals * r_count);
  plan.expected.assign(input.num_intervals * r_count, 0);

  const auto add_matrix = [&](const CommMatrix* matrix, double bytes_each) {
    if (matrix == nullptr) return;
    PICP_REQUIRE(matrix->num_ranks() == input.num_ranks,
                 "comm matrix rank count mismatch");
    const std::size_t intervals =
        std::min(input.num_intervals, matrix->num_intervals());
    for (std::size_t t = 0; t < intervals; ++t) {
      for (const auto& transfer : matrix->interval_transfers(t)) {
        auto& msgs = plan.out[t * r_count + static_cast<std::size_t>(
                                                transfer.from)];
        const double bytes = static_cast<double>(transfer.count) * bytes_each;
        // Merge with an existing message to the same destination (one
        // packed send per neighbor per interval, as real codes do).
        const auto it = std::find_if(
            msgs.begin(), msgs.end(),
            [&](const OutMessage& m) { return m.dst == transfer.to; });
        if (it != msgs.end()) {
          it->bytes += bytes;
        } else {
          msgs.push_back(OutMessage{transfer.to, bytes});
          ++plan.expected[t * r_count +
                          static_cast<std::size_t>(transfer.to)];
        }
      }
    }
  };
  add_matrix(input.comm_real, input.network.bytes_per_particle);
  add_matrix(input.comm_ghost, input.network.bytes_per_ghost);
  return plan;
}

class BarrierComponent;

/// One simulated processor: computes for the modeled kernel time, then
/// exchanges the interval's messages; reports to the barrier when both its
/// compute and its expected receives are complete.
class ProcessorComponent final : public Component {
 public:
  ProcessorComponent(ComponentId id, Rank rank, const TraceSimInput& input,
                     const MessagePlan& plan, const NetworkModel& net,
                     ComponentId barrier)
      : Component(id, "rank" + std::to_string(rank)),
        rank_(rank),
        input_(&input),
        plan_(&plan),
        net_(&net),
        barrier_(barrier) {}

  void handle(Engine& engine, const Event& event) override {
    const auto t = static_cast<std::size_t>(event.a);
    switch (event.kind) {
      case kStart: {
        compute_done_ = false;
        received_ = 0;
        const double compute =
            input_->compute_seconds[t * static_cast<std::size_t>(
                                            input_->num_ranks) +
                                    static_cast<std::size_t>(rank_)];
        engine.schedule(id(), id(), compute, kComputeDone,
                        static_cast<std::int64_t>(t));
        break;
      }
      case kComputeDone: {
        compute_done_ = true;
        for (const OutMessage& msg : outgoing(t))
          engine.schedule(id(), static_cast<ComponentId>(msg.dst),
                          net_->message_time(msg.bytes), kMessage,
                          static_cast<std::int64_t>(t));
        maybe_report(engine, t);
        break;
      }
      case kMessage: {
        ++received_;
        maybe_report(engine, t);
        break;
      }
      default:
        throw Error("processor received unknown event kind");
    }
  }

 private:
  std::span<const OutMessage> outgoing(std::size_t t) const {
    return plan_->out[t * static_cast<std::size_t>(input_->num_ranks) +
                      static_cast<std::size_t>(rank_)];
  }
  std::int32_t expected(std::size_t t) const {
    return plan_->expected[t * static_cast<std::size_t>(input_->num_ranks) +
                           static_cast<std::size_t>(rank_)];
  }

  void maybe_report(Engine& engine, std::size_t t) {
    if (compute_done_ && received_ >= expected(t) && !reported_[t]) {
      reported_[t] = true;
      engine.schedule(id(), barrier_, 0.0, kRankDone,
                      static_cast<std::int64_t>(t));
    }
  }

  Rank rank_;
  const TraceSimInput* input_;
  const MessagePlan* plan_;
  const NetworkModel* net_;
  ComponentId barrier_;
  bool compute_done_ = false;
  std::int32_t received_ = 0;

 public:
  std::vector<bool> reported_;
};

/// Interval barrier: collects rank-done reports, then releases the next
/// interval after a log-tree collective.
class BarrierComponent final : public Component {
 public:
  BarrierComponent(ComponentId id, const TraceSimInput& input,
                   const NetworkModel& net, SimReport& report)
      : Component(id, "barrier"),
        input_(&input),
        net_(&net),
        report_(&report) {}

  void handle(Engine& engine, const Event& event) override {
    PICP_REQUIRE(event.kind == kRankDone, "barrier expects rank-done events");
    const auto t = static_cast<std::size_t>(event.a);
    if (++done_count_ < input_->num_ranks) return;
    done_count_ = 0;
    const double sync = net_->collective_time(input_->num_ranks);
    report_->interval_end[t] = engine.now() + sync;
    if (t + 1 < input_->num_intervals) {
      for (Rank r = 0; r < input_->num_ranks; ++r)
        engine.schedule(id(), static_cast<ComponentId>(r), sync, kStart,
                        static_cast<std::int64_t>(t + 1));
    }
  }

 private:
  const TraceSimInput* input_;
  const NetworkModel* net_;
  SimReport* report_;
  Rank done_count_ = 0;
};

}  // namespace

SimReport run_trace_simulation(const TraceSimInput& input) {
  PICP_REQUIRE(input.num_ranks > 0, "need at least one rank");
  PICP_REQUIRE(input.num_intervals > 0, "need at least one interval");
  PICP_REQUIRE(input.compute_seconds.size() ==
                   input.num_intervals * static_cast<std::size_t>(
                                             input.num_ranks),
               "compute table size mismatch");

  const NetworkModel net(input.network);
  const MessagePlan plan = build_plan(input);

  SimReport report;
  report.interval_end.assign(input.num_intervals, 0.0);
  report.rank_busy_seconds.assign(static_cast<std::size_t>(input.num_ranks),
                                  0.0);

  Engine engine;
  const auto barrier_id = static_cast<ComponentId>(input.num_ranks);
  for (Rank r = 0; r < input.num_ranks; ++r) {
    auto proc = std::make_unique<ProcessorComponent>(
        static_cast<ComponentId>(r), r, input, plan, net, barrier_id);
    proc->reported_.assign(input.num_intervals, false);
    engine.add_component(std::move(proc));
  }
  engine.add_component(std::make_unique<BarrierComponent>(
      barrier_id, input, net, report));

  for (Rank r = 0; r < input.num_ranks; ++r)
    engine.schedule(barrier_id, static_cast<ComponentId>(r), 0.0, kStart, 0);

  report.events = engine.run();
  report.total_seconds = report.interval_end.back();

  for (std::size_t t = 0; t < input.num_intervals; ++t) {
    double interval_max = 0.0;
    for (Rank r = 0; r < input.num_ranks; ++r) {
      const double c =
          input.compute_seconds[t * static_cast<std::size_t>(input.num_ranks) +
                                static_cast<std::size_t>(r)];
      report.rank_busy_seconds[static_cast<std::size_t>(r)] += c;
      interval_max = std::max(interval_max, c);
    }
    report.critical_path_seconds += interval_max;
  }
  return report;
}

}  // namespace picp
