#include "bsst/engine.hpp"

#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace picp {

ComponentId Engine::add_component(std::unique_ptr<Component> component) {
  PICP_REQUIRE(component != nullptr, "null component");
  const auto id = static_cast<ComponentId>(components_.size());
  PICP_REQUIRE(component->id() == id,
               "component id must match registration order");
  components_.push_back(std::move(component));
  return id;
}

void Engine::schedule(ComponentId src, ComponentId dst, SimTime delay,
                      std::int32_t kind, std::int64_t a, std::int64_t b) {
  PICP_REQUIRE(delay >= 0.0, "cannot schedule into the past");
  PICP_REQUIRE(dst >= 0 && static_cast<std::size_t>(dst) < components_.size(),
               "unknown destination component");
  Event event;
  event.time = now_ + delay;
  event.src = src;
  event.dst = dst;
  event.kind = kind;
  event.a = a;
  event.b = b;
  queue_.push(event);
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  const telemetry::ScopedSpan span("des.run", "bsst");
  std::uint64_t processed = 0;
  while (!queue_.empty() && processed < max_events) {
    const Event event = queue_.pop();
    PICP_ENSURE(event.time >= now_, "time went backwards");
    now_ = event.time;
    components_[static_cast<std::size_t>(event.dst)]->handle(*this, event);
    ++processed;
  }
  events_processed_ += processed;
  if (telemetry::enabled()) {
    auto& reg = telemetry::registry();
    reg.counter("des.events").add(processed);
    // Virtual (simulated) clock vs the wall clock the engine burns to
    // advance it — the DES speedup knob the paper's §VI leans on.
    reg.gauge("des.virtual_seconds").set(now_);
  }
  return processed;
}

}  // namespace picp
