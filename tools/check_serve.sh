#!/usr/bin/env bash
# End-to-end smoke test of the prediction daemon: boot `picpredict serve`
# on an ephemeral port, then drive the whole serving contract through the
# `picpredict query` client — health, prediction, byte-identical cache
# replay, single-flight dedup under 100 concurrent identical queries,
# malformed-input 400s, method routing, backpressure shedding, and the
# SIGTERM drain (exit 0 + valid telemetry manifest).
#
# Usage: check_serve.sh <picpredict-binary> [workdir]
# Wired into ctest (fast tier) from tools/CMakeLists.txt.
set -euo pipefail

PICPREDICT=${1:?usage: check_serve.sh <picpredict-binary> [workdir]}
WORK=${2:-$(mktemp -d)}
PYTHON=${PYTHON:-python3}

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

SERVE_PID=""
BUSY_PID=""
cleanup() {
    # Kill the daemons we know about AND every background job this shell
    # still owns — an early `set -e` exit between fork and PID capture must
    # not leave an orphaned daemon holding the workdir.
    [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null || true
    [[ -n "$BUSY_PID" ]] && kill -9 "$BUSY_PID" 2>/dev/null || true
    local job_pids
    job_pids=$(jobs -p)
    [[ -n "$job_pids" ]] && kill -9 $job_pids 2>/dev/null || true
    return 0
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

fail() { echo "FAIL: $*" >&2; exit 1; }

# Counter lookup from a /metricsz JSON body (last line of query output).
metric() { # metric <file> <counter-name>
    "$PYTHON" - "$1" "$2" <<'EOF'
import json, sys
doc = json.loads(open(sys.argv[1]).read().splitlines()[-1])
counters = doc.get("metrics", doc).get("counters", {})
print(int(counters.get(sys.argv[2], 0)))
EOF
}

# --- fixture: miniature trace + models --------------------------------------
cat > mini.ini <<'EOF'
[mesh]
nelx = 8
nely = 8
nelz = 16

[bed]
num_particles = 2000

[run]
num_iterations = 200
sample_every = 50
threads = 2

[mapping]
num_ranks = 8

[measure]
enabled = true
min_seconds = 2e-6
max_reps = 4
EOF

echo "== build fixture (simulate + train) =="
"$PICPREDICT" simulate mini.ini --trace mini.trace --timings mini.csv
"$PICPREDICT" train mini.csv --out mini.models --method linear

echo "== CLI determinism: two predict runs agree on every modeled column =="
# Column 4 is wall-clock workload-generation seconds — the only
# non-deterministic field on the line; everything modeled must replay
# bit-identically (same contract the daemon's cache depends on).
"$PICPREDICT" predict mini.trace --models mini.models --ranks 4,8 \
    --nelx 8 --nely 8 --nelz 16 | awk '{print $1, $2, $3, $5}' > predict_a.txt
"$PICPREDICT" predict mini.trace --models mini.models --ranks 4,8 \
    --nelx 8 --nely 8 --nelz 16 | awk '{print $1, $2, $3, $5}' > predict_b.txt
diff predict_a.txt predict_b.txt || fail "CLI predict runs diverged"

# --- boot the daemon ---------------------------------------------------------
# Observability is fully armed: every request is span-sampled and access
# logged, so the drain-time manifest/trace checks below also prove the
# instrumented hot path survives a whole smoke run.
cat > serve.ini <<'EOF'
[serve]
trace = mini.trace
models = mini.models
threads = 4
max_connections = 32
request_timeout_ms = 30000
drain_timeout_ms = 10000
trace_sample_n = 1
access_log = access.ndjson

[mesh]
nelx = 8
nely = 8
nelz = 16
EOF

echo "== boot daemon on an ephemeral port =="
"$PICPREDICT" serve --config serve.ini --ready-file ready.port \
    --telemetry-dir tele_serve > serve.log 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do
    [[ -s ready.port ]] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat serve.log >&2; fail "daemon died during startup"; }
    sleep 0.1
done
[[ -s ready.port ]] || fail "daemon never wrote the ready file"
PORT=$(cat ready.port)

echo "== health + models =="
"$PICPREDICT" query /healthz --port "$PORT" > healthz.txt
grep -q '^200 OK' healthz.txt || fail "/healthz not 200: $(cat healthz.txt)"
grep -q '"status"' healthz.txt || fail "/healthz body has no status field"
"$PICPREDICT" query /v1/models --port "$PORT" > models.txt
grep -q '^200 OK' models.txt || fail "/v1/models not 200"

echo "== predict: miss, then byte-identical cached replay =="
"$PICPREDICT" query /v1/predict --port "$PORT" \
    --body '{"ranks": [8], "mapper": "bin"}' > predict_miss.txt
grep -q '^200 OK cache=miss' predict_miss.txt \
    || fail "first predict was not a cache miss: $(head -1 predict_miss.txt)"
"$PICPREDICT" query /v1/predict --port "$PORT" \
    --body '{"ranks": [8], "mapper": "bin"}' > predict_hit.txt
grep -q '^200 OK cache=hit' predict_hit.txt \
    || fail "second identical predict was not a cache hit"
tail -n +2 predict_miss.txt > body_miss.json
tail -n +2 predict_hit.txt > body_hit.json
cmp body_miss.json body_hit.json \
    || fail "cached replay is not byte-identical to the original response"

echo "== workload endpoint shares the artifact cache =="
"$PICPREDICT" query /v1/workload --port "$PORT" \
    --body '{"ranks": [8]}' > workload.txt
grep -q '^200 OK' workload.txt || fail "/v1/workload not 200"

echo "== single-flight: 100 concurrent identical queries, 1 generation =="
"$PICPREDICT" query /metricsz --port "$PORT" > metrics_before.txt
GEN_BEFORE=$(metric metrics_before.txt "serve.workload.generations")
# ranks=20 has never been requested: every one of the 100 concurrent
# queries below needs the same brand-new workload artifact.
"$PICPREDICT" query /v1/predict --port "$PORT" \
    --body '{"ranks": [20]}' --repeat 100 --parallel 16 --quiet \
    || fail "concurrent identical queries failed"
"$PICPREDICT" query /metricsz --port "$PORT" > metrics_after.txt
GEN_AFTER=$(metric metrics_after.txt "serve.workload.generations")
HITS=$(metric metrics_after.txt "serve.cache.response.hits")
BATCHED=$(metric metrics_after.txt "serve.batch.members")
[[ $((GEN_AFTER - GEN_BEFORE)) -eq 1 ]] \
    || fail "expected exactly 1 workload generation for 100 concurrent identical queries, got $((GEN_AFTER - GEN_BEFORE))"
# Every query but the first leader must be served without recomputing:
# either a response-cache hit or a coalesced batch member (identical
# requests in one reactor batching window share one execution and never
# reach the cache counters).
[[ $((HITS + BATCHED)) -ge 99 ]] \
    || fail "expected >= 99 deduplicated responses (cache hits + batch members) after the concurrent burst, got hits=$HITS batched=$BATCHED"

echo "== observability: trace ids on every response =="
"$PYTHON" - "$PORT" <<'EOF'
import socket, sys
port = int(sys.argv[1])

def exchange(request_bytes):
    s = socket.create_connection(("127.0.0.1", port), timeout=10)
    s.sendall(request_bytes.encode())
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = s.recv(65536)
        if not chunk:
            break
        data += chunk
    s.close()
    head = data.split(b"\r\n\r\n", 1)[0].decode()
    lines = head.split("\r\n")
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return lines[0], headers

# Generated id on a plain request.
status, headers = exchange(
    "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
assert "200" in status, status
assert headers.get("x-picp-trace-id", "").startswith("p-"), \
    "no generated trace id: %r" % headers.get("x-picp-trace-id")

# A well-formed inbound id comes back verbatim.
status, headers = exchange(
    "GET /healthz HTTP/1.1\r\nHost: x\r\n"
    "X-Picp-Trace-Id: smoke-test-42\r\nConnection: close\r\n\r\n")
assert headers.get("x-picp-trace-id") == "smoke-test-42", headers

# Even a 404 is traceable.
status, headers = exchange(
    "GET /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
assert "404" in status, status
assert "x-picp-trace-id" in headers, headers
print("trace ids OK")
EOF

echo "== observability: readiness probe on a healthy daemon =="
"$PICPREDICT" query '/healthz?ready=1' --port "$PORT" > ready_ok.txt
grep -q '^200 OK' ready_ok.txt \
    || fail "/healthz?ready=1 not 200 on a healthy daemon: $(head -1 ready_ok.txt)"

echo "== observability: prometheus exposition passes the format checker =="
"$PICPREDICT" query '/metricsz?format=prometheus' --port "$PORT" > prom_a.txt
grep -q '^200 OK' prom_a.txt || fail "prometheus scrape not 200"
tail -n +2 prom_a.txt > prom_a.prom
# Traffic between the two scrapes: counters must move monotonically.
"$PICPREDICT" query /v1/predict --port "$PORT" \
    --body '{"ranks": [8], "mapper": "bin"}' --quiet \
    || fail "inter-scrape traffic failed"
"$PICPREDICT" query '/metricsz?format=prometheus' --port "$PORT" > prom_b.txt
tail -n +2 prom_b.txt > prom_b.prom
"$PYTHON" - prom_a.prom prom_b.prom <<'EOF'
import sys

def parse(path):
    helps, types, series, samples = set(), {}, set(), {}
    for raw in open(path):
        line = raw.rstrip("\n")
        if not line:
            continue
        if line.startswith("# HELP "):
            family = line.split()[2]
            assert family not in helps, "duplicate HELP for " + family
            helps.add(family)
            continue
        if line.startswith("# TYPE "):
            family = line.split()[2]
            assert family not in types, "duplicate TYPE for " + family
            types[family] = line.split()[3]
            continue
        assert not line.startswith("#"), "unknown comment: " + line
        name_and_labels, _, value = line.rpartition(" ")
        assert name_and_labels not in series, "duplicate series: " + line
        series.add(name_and_labels)
        samples[name_and_labels] = float(value)
        family = name_and_labels.split("{")[0]
        for suffix in ("_bucket", "_sum", "_count"):
            if family.endswith(suffix) and family[: -len(suffix)] in types:
                family = family[: -len(suffix)]
                break
        assert family in helps, "sample without HELP: " + line
        assert family in types, "sample without TYPE: " + line
        assert family.startswith("picp_"), "unprefixed family: " + line
    # Histogram integrity: buckets cumulative, +Inf equals _count.
    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = [(k, v) for k, v in samples.items()
                   if k.startswith(family + "_bucket{")]
        assert buckets, "histogram %s has no buckets" % family
        values = [v for _, v in sorted(
            buckets, key=lambda kv: float("inf")
            if "+Inf" in kv[0] else float(kv[0].split('"')[1]))]
        assert values == sorted(values), "non-cumulative buckets: " + family
        inf = [v for k, v in buckets if "+Inf" in k]
        assert len(inf) == 1, family + " needs exactly one +Inf bucket"
        assert inf[0] == samples[family + "_count"], \
            family + " +Inf bucket != _count"
    return types, samples

types_a, samples_a = parse(sys.argv[1])
types_b, samples_b = parse(sys.argv[2])
moved = 0
for name, value in samples_a.items():
    kind = types_a.get(name.split("{")[0])
    if kind == "counter" and name in samples_b:
        assert samples_b[name] >= value, "counter went backward: " + name
        moved += samples_b[name] > value
assert moved > 0, "no counter moved across two scrapes with traffic between"
print("prometheus format OK (%d series, %d counters moved)"
      % (len(samples_b), moved))
EOF

echo "== observability: NDJSON access log =="
[[ -s access.ndjson ]] || fail "access log missing or empty"
"$PYTHON" - access.ndjson <<'EOF'
import json, sys
required = {"ts", "trace_id", "peer", "method", "path", "status",
            "batch_role", "batch_size", "cache", "deadline_stage",
            "batch_wait_us", "queue_us", "handler_us", "total_us", "stages"}
count = 0
roles = set()
for line in open(sys.argv[1]):
    doc = json.loads(line)
    missing = required - set(doc)
    assert not missing, "access log line missing %s: %s" % (missing, line)
    assert doc["trace_id"], "empty trace id: " + line
    roles.add(doc["batch_role"])
    count += 1
assert count > 0, "no access log lines"
assert roles <= {"solo", "leader", "member", "none"}, roles
print("access log OK (%d lines, roles %s)" % (count, sorted(roles)))
EOF

echo "== observability: picpredict top renders live stats =="
"$PICPREDICT" top --port "$PORT" --iterations 2 --interval-ms 100 > top.txt
grep -q 'p99_us' top.txt || fail "top header missing: $(cat top.txt)"
# 1 banner + 1 header + 2 data rows.
[[ $(wc -l < top.txt) -eq 4 ]] \
    || fail "top --iterations 2 produced $(wc -l < top.txt) lines, wanted 4"

echo "== malformed and misrouted requests get structured errors =="
set +e
"$PICPREDICT" query /v1/predict --port "$PORT" --body '{"ranks": ' > bad_json.txt
BAD_JSON_EXIT=$?
"$PICPREDICT" query /v1/predict --port "$PORT" --body '{"ranks": [0]}' > bad_ranks.txt
BAD_RANKS_EXIT=$?
"$PICPREDICT" query /v1/predict --port "$PORT" > wrong_method.txt
WRONG_METHOD_EXIT=$?
"$PICPREDICT" query /v1/nonexistent --port "$PORT" > not_found.txt
NOT_FOUND_EXIT=$?
set -e
[[ $BAD_JSON_EXIT -ne 0 ]] || fail "query exited 0 on a 400 response"
grep -q '^400 Bad Request' bad_json.txt || fail "truncated JSON was not a 400"
grep -q '"error"' bad_json.txt || fail "400 body is not a structured error"
grep -q '^400 Bad Request' bad_ranks.txt || fail "ranks=0 was not a 400"
[[ $BAD_RANKS_EXIT -ne 0 ]] || fail "query exited 0 on invalid ranks"
grep -q '^405 Method Not Allowed' wrong_method.txt \
    || fail "GET /v1/predict was not a 405"
[[ $WRONG_METHOD_EXIT -ne 0 ]] || fail "query exited 0 on a 405"
grep -q '^404 Not Found' not_found.txt || fail "unknown endpoint was not a 404"
[[ $NOT_FOUND_EXIT -ne 0 ]] || fail "query exited 0 on a 404"

echo "== backpressure: a 1-connection daemon sheds concurrent clients =="
cat > busy.ini <<'EOF'
[serve]
trace = mini.trace
models = mini.models
threads = 1
max_connections = 1

[mesh]
nelx = 8
nely = 8
nelz = 16
EOF
"$PICPREDICT" serve --config busy.ini --ready-file busy.port > busy.log 2>&1 &
BUSY_PID=$!
for _ in $(seq 1 100); do
    [[ -s busy.port ]] && break
    sleep 0.1
done
[[ -s busy.port ]] || fail "busy daemon never wrote the ready file"
BUSY_PORT=$(cat busy.port)
# Warm the cache so rejected connections are the only failure mode.
"$PICPREDICT" query /v1/predict --port "$BUSY_PORT" \
    --body '{"ranks": [8]}' --quiet || fail "busy daemon warmup failed"
# --retries 0: this assertion is about the *server* shedding load, so the
# client's 503 retry loop (which would eventually squeeze everything
# through one connection) must stay out of the way.
set +e
"$PICPREDICT" query /v1/predict --port "$BUSY_PORT" \
    --body '{"ranks": [8]}' --repeat 64 --parallel 8 --retries 0 \
    --quiet > shed.txt 2>&1
SHED_EXIT=$?
set -e
[[ $SHED_EXIT -ne 0 ]] \
    || fail "8 persistent connections against max_connections=1 all succeeded"
"$PICPREDICT" query /metricsz --port "$BUSY_PORT" > busy_metrics.txt
REJECTED=$(metric busy_metrics.txt "serve.rejected_busy")
[[ "$REJECTED" -ge 1 ]] || fail "rejected_busy counter never moved"
kill -TERM "$BUSY_PID"
wait "$BUSY_PID" || fail "busy daemon did not exit 0 on SIGTERM"
BUSY_PID=""

echo "== drain shutdown: SIGTERM -> exit 0 + valid telemetry manifest =="
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || fail "daemon did not exit 0 on SIGTERM"
SERVE_PID=""
grep -q 'drained after' serve.log || fail "no drain summary in serve.log"
for f in tele_serve/manifest.json tele_serve/trace.json; do
    [[ -s "$f" ]] || fail "$f missing or empty after drain"
done
leftover=$(find tele_serve -name '*.tmp*' | wc -l)
[[ "$leftover" -eq 0 ]] || fail "atomic-write temp files left in tele_serve"
"$PICPREDICT" report tele_serve --check
grep -q '"command": "serve"' tele_serve/manifest.json \
    || fail "manifest command != serve"
grep -q 'serve.workload_gen' tele_serve/trace.json \
    || fail "no serve.workload_gen spans in trace.json"

echo "check_serve: OK"
