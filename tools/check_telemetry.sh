#!/usr/bin/env bash
# End-to-end telemetry check: run a miniature simulate + train + predict with
# --telemetry-dir and validate the emitted manifest.json / trace.json against
# the required-key schemas with `picpredict report --check`.
#
# Usage: check_telemetry.sh <picpredict-binary> [workdir]
# Wired into ctest (fast tier) from tools/CMakeLists.txt.
set -euo pipefail

PICPREDICT=${1:?usage: check_telemetry.sh <picpredict-binary> [workdir]}
WORK=${2:-$(mktemp -d)}

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

cat > mini.ini <<'EOF'
[mesh]
nelx = 8
nely = 8
nelz = 16

[bed]
num_particles = 2000

[run]
num_iterations = 200
sample_every = 50
threads = 2

[mapping]
num_ranks = 8

[measure]
enabled = true
min_seconds = 2e-6
max_reps = 4
EOF

echo "== simulate with telemetry =="
"$PICPREDICT" simulate mini.ini --trace mini.trace --timings mini.csv \
    --telemetry-dir tele_sim

for f in tele_sim/manifest.json tele_sim/trace.json; do
    [[ -s "$f" ]] || { echo "FAIL: $f missing or empty" >&2; exit 1; }
done
# finalize() must not leave atomic-write temp files behind.
leftover=$(find tele_sim -name '*.tmp*' | wc -l)
[[ "$leftover" -eq 0 ]] || { echo "FAIL: temp files left in tele_sim" >&2; exit 1; }

echo "== report --check (simulate) =="
"$PICPREDICT" report tele_sim --check

grep -q '"schema": "picpredict.telemetry.manifest/v1"' tele_sim/manifest.json \
    || { echo "FAIL: manifest schema tag missing" >&2; exit 1; }
grep -q '"command": "simulate"' tele_sim/manifest.json \
    || { echo "FAIL: manifest command != simulate" >&2; exit 1; }
grep -q 'traceEvents' tele_sim/trace.json \
    || { echo "FAIL: trace.json has no traceEvents" >&2; exit 1; }
grep -q 'picsim.interpolate' tele_sim/trace.json \
    || { echo "FAIL: no picsim.interpolate spans in trace.json" >&2; exit 1; }

echo "== kill-switch: run.telemetry = false =="
cat > off.ini <<'EOF'
[mesh]
nelx = 8
nely = 8
nelz = 16

[bed]
num_particles = 2000

[run]
num_iterations = 100
sample_every = 50
telemetry = false

[mapping]
num_ranks = 8
EOF
"$PICPREDICT" simulate off.ini --trace off.trace --telemetry-dir tele_off \
    2> off.stderr || { cat off.stderr >&2; exit 1; }
grep -q 'telemetry-dir ignored' off.stderr \
    || { echo "FAIL: expected a kill-switch warning" >&2; exit 1; }
[[ ! -e tele_off/manifest.json ]] \
    || { echo "FAIL: kill-switch still wrote a manifest" >&2; exit 1; }

echo "== train + predict with telemetry =="
"$PICPREDICT" train mini.csv --out mini.models --method linear
"$PICPREDICT" predict mini.trace --models mini.models --ranks 4,8 \
    --nelx 8 --nely 8 --nelz 16 --telemetry-dir tele_pred

echo "== report --check (predict) =="
"$PICPREDICT" report tele_pred --check
grep -q '"command": "predict"' tele_pred/manifest.json \
    || { echo "FAIL: manifest command != predict" >&2; exit 1; }
grep -q 'predict.workload_gen' tele_pred/trace.json \
    || { echo "FAIL: no predict.workload_gen spans" >&2; exit 1; }
grep -q 'des.run' tele_pred/trace.json \
    || { echo "FAIL: no des.run spans" >&2; exit 1; }

echo "check_telemetry: OK"
