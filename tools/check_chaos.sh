#!/usr/bin/env bash
# Chaos harness for the prediction daemon: drive failpoint storms through
# the /v1/failpoints admin endpoint and assert the robustness contract of
# PR 7 end to end —
#
#   * with nothing armed, /metricsz shows zero degraded / quarantine /
#     spill-failure events and no 5xx responses;
#   * a disk-full spill storm (errno(28) at cache.spill) is invisible to
#     clients: every response stays 200 and no torn spill file appears;
#   * slow per-response writes (delay at http.write) never wedge workers;
#   * a slow-loris peer occupies its connection slot only until the request
#     timeout, the shed 503 carries Retry-After, `picpredict query` exits 3
#     when the retry budget dies on 503s and 0 once the slot frees;
#   * an expired X-Picp-Deadline-Ms budget is a 504 with stage telemetry;
#   * a crash injected mid-spill (atomicfile.commit=crash) leaves only an
#     uncommitted temp file, which the restarted daemon quarantines — and
#     the recomputed response replays byte-identical to the pre-crash one.
#
# Usage: check_chaos.sh <picpredict-binary> [workdir]
# Wired into ctest (fast tier) from tools/CMakeLists.txt and run as the
# chaos smoke inside tools/check_sanitize.sh.
set -euo pipefail

PICPREDICT=${1:?usage: check_chaos.sh <picpredict-binary> [workdir]}
WORK=${2:-$(mktemp -d)}
PYTHON=${PYTHON:-python3}

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

SERVE_PID=""
cleanup() {
    # Kill the daemon we know about AND every background job this shell
    # still owns — an early `set -e` exit between fork and PID capture must
    # not leave an orphaned daemon running.
    [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null || true
    local job_pids
    job_pids=$(jobs -p)
    [[ -n "$job_pids" ]] && kill -9 $job_pids 2>/dev/null || true
    return 0
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

fail() { echo "FAIL: $*" >&2; exit 1; }

# Metric lookup from a /metricsz JSON body (last line of query output).
# Searches counters first, then gauges; absent metrics read as 0.
metric() { # metric <file> <name>
    "$PYTHON" - "$1" "$2" <<'EOF'
import json, sys
doc = json.loads(open(sys.argv[1]).read().splitlines()[-1])
m = doc.get("metrics", doc)
name = sys.argv[2]
value = m.get("counters", {}).get(name, m.get("gauges", {}).get(name, 0))
print(int(value))
EOF
}

boot() { # boot <config> <ready-file> <log> -> sets SERVE_PID and PORT
    "$PICPREDICT" serve --config "$1" --ready-file "$2" \
        --enable-failpoints > "$3" 2>&1 &
    SERVE_PID=$!
    for _ in $(seq 1 150); do
        [[ -s "$2" ]] && break
        kill -0 "$SERVE_PID" 2>/dev/null \
            || { cat "$3" >&2; fail "daemon died during startup"; }
        sleep 0.1
    done
    [[ -s "$2" ]] || fail "daemon never wrote the ready file $2"
    PORT=$(cat "$2")
}

arm() { # arm <port> <spec...>
    "$PICPREDICT" query /v1/failpoints --port "$1" \
        --body "{\"seed\": 42, \"arm\": \"$2\"}" --quiet \
        || fail "arming '$2' failed"
}

disarm_all() { # disarm_all <port>
    "$PICPREDICT" query /v1/failpoints --port "$1" \
        --body '{"disarm_all": true}' --quiet || fail "disarm_all failed"
}

# --- fixture: miniature trace (workload-only daemon, no models needed) ------
cat > mini.ini <<'EOF'
[mesh]
nelx = 8
nely = 8
nelz = 16

[bed]
num_particles = 2000

[run]
num_iterations = 200
sample_every = 50
threads = 2

[mapping]
num_ranks = 8
EOF

echo "== build fixture trace =="
"$PICPREDICT" simulate mini.ini --trace mini.trace

cat > serve.ini <<'EOF'
[serve]
trace = mini.trace
threads = 4
max_connections = 32
request_timeout_ms = 30000
workload_cache = 2
response_cache = 2
cache_dir = spill
allow_stale = true

[mesh]
nelx = 8
nely = 8
nelz = 16
EOF

echo "== boot chaos daemon =="
boot serve.ini ready.port serve.log

echo "== disarmed baseline: healthy, zero robustness events =="
"$PICPREDICT" query /healthz --port "$PORT" > healthz.txt
grep -q '^200 OK' healthz.txt || fail "/healthz not 200"
"$PICPREDICT" query /v1/workload --port "$PORT" \
    --body '{"ranks": [4]}' > r4_pre.txt
grep -q '^200 OK cache=miss' r4_pre.txt || fail "first ranks=4 not a miss"
"$PICPREDICT" query /v1/workload --port "$PORT" \
    --body '{"ranks": [4]}' > r4_hit.txt
grep -q '^200 OK cache=hit' r4_hit.txt || fail "ranks=4 replay not a hit"
tail -n +2 r4_pre.txt > body_r4.json
tail -n +2 r4_hit.txt > body_r4_hit.json
cmp body_r4.json body_r4_hit.json || fail "cached replay not byte-identical"

"$PICPREDICT" query /metricsz --port "$PORT" > metrics_base.txt
for m in serve.responses.5xx serve.degraded serve.deadline_exceeded \
         serve.cache.response.quarantined serve.cache.response.stale_served \
         serve.cache.response.spill_failures failpoint.armed; do
    v=$(metric metrics_base.txt "$m")
    [[ "$v" -eq 0 ]] || fail "disarmed daemon reports $m=$v (want 0)"
done

echo "== storm 1: disk-full spills are invisible to clients =="
arm "$PORT" "cache.spill=errno(28):1in2"
# Distinct rank counts churn both capacity-2 tiers: every new key evicts,
# every eviction tries to spill, roughly half the spills hit ENOSPC.
for r in 2 3 5 6 7 9 10 12; do
    "$PICPREDICT" query /v1/workload --port "$PORT" \
        --body "{\"ranks\": [$r]}" --quiet \
        || fail "client saw a failure during the spill storm (ranks=$r)"
done
disarm_all "$PORT"
"$PICPREDICT" query /metricsz --port "$PORT" > metrics_spill.txt
SPILL_FAILURES=$(metric metrics_spill.txt "serve.cache.response.spill_failures")
[[ "$SPILL_FAILURES" -ge 1 ]] \
    || fail "spill storm never tripped serve.cache.response.spill_failures"
[[ $(metric metrics_spill.txt "serve.responses.5xx") -eq 0 ]] \
    || fail "spill storm leaked a 5xx to a client"
leftover=$(find spill -name '*.tmp*' | wc -l)
[[ "$leftover" -eq 0 ]] || fail "spill storm left temp files in the spill dir"

echo "== storm 2: slow response writes never wedge workers =="
arm "$PORT" "http.write=delay(2):1in3"
"$PICPREDICT" query /v1/workload --port "$PORT" \
    --body '{"ranks": [4]}' --repeat 32 --parallel 8 --quiet \
    || fail "slow-write storm produced client-visible failures"
disarm_all "$PORT"

echo "== deadline: exhausted budget is a 504 with stage telemetry =="
arm "$PORT" "serve.generate=delay(80)"
set +e
"$PICPREDICT" query /v1/workload --port "$PORT" \
    --body '{"ranks": [14]}' --deadline-ms 20 --retries 0 > deadline.txt
DEADLINE_EXIT=$?
set -e
[[ $DEADLINE_EXIT -eq 1 ]] || fail "504 response should exit 1, got $DEADLINE_EXIT"
grep -q '^504 Gateway Timeout' deadline.txt \
    || fail "expired deadline was not a 504: $(head -1 deadline.txt)"
disarm_all "$PORT"
"$PICPREDICT" query /metricsz --port "$PORT" > metrics_deadline.txt
[[ $(metric metrics_deadline.txt "serve.deadline_exceeded") -ge 1 ]] \
    || fail "serve.deadline_exceeded counter never moved"
[[ $(metric metrics_deadline.txt "serve.deadline.stage.generate.partition") -ge 1 ]] \
    || fail "no per-stage deadline counter for generate.partition"

echo "== recovery: storms over, service replays byte-identically =="
"$PICPREDICT" query /metricsz --port "$PORT" > metrics_armedcheck.txt
[[ $(metric metrics_armedcheck.txt "failpoint.armed") -eq 0 ]] \
    || fail "failpoints still armed after disarm_all"
"$PICPREDICT" query /v1/workload --port "$PORT" \
    --body '{"ranks": [4]}' > r4_post.txt
grep -q '^200 OK' r4_post.txt || fail "ranks=4 unhealthy after the storms"
tail -n +2 r4_post.txt > body_r4_post.json
cmp body_r4.json body_r4_post.json \
    || fail "post-storm ranks=4 body differs from the pre-storm body"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || fail "chaos daemon did not exit 0 on SIGTERM"
SERVE_PID=""

echo "== storm 3: slow-loris peer + 503 retry contract (1-slot daemon) =="
cat > busy.ini <<'EOF'
[serve]
trace = mini.trace
threads = 1
max_connections = 1
request_timeout_ms = 1500
workload_cache = 2
response_cache = 2

[mesh]
nelx = 8
nely = 8
nelz = 16
EOF
boot busy.ini busy.port busy.log
"$PICPREDICT" query /v1/workload --port "$PORT" \
    --body '{"ranks": [4]}' --quiet || fail "busy daemon warmup failed"
# Hold the single connection slot with half a request and never finish it.
exec 3<>"/dev/tcp/127.0.0.1/$PORT" \
    || fail "could not open the slow-loris connection"
printf 'POST /v1/workload HTTP/1.1\r\nHost: loris\r\n' >&3
sleep 0.2
# Retry budget exhausted on 503s -> the documented exit 3, not a generic 1.
# --retries 0 keeps this deterministic: the single attempt lands while the
# loris provably still owns the slot.
set +e
"$PICPREDICT" query /healthz --port "$PORT" \
    --retries 0 > shed.txt 2>&1
SHED_EXIT=$?
set -e
[[ $SHED_EXIT -eq 3 ]] \
    || fail "expected exit 3 when every failure is a 503, got $SHED_EXIT"
grep -q '^503 Service Unavailable' shed.txt || fail "shed reply was not a 503"
# The loris must not outlive request_timeout_ms: with retries and backoff
# past the timeout, the very same query eventually lands — no stuck worker.
"$PICPREDICT" query /healthz --port "$PORT" \
    --retries 4 --max-backoff-ms 1000 --quiet \
    || fail "worker still wedged after the loris timeout — stuck worker"
exec 3>&- 3<&- || true
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || fail "busy daemon did not exit 0 on SIGTERM"
SERVE_PID=""

echo "== storm 4: crash mid-spill, quarantine on reboot, identical replay =="
cat > crash.ini <<'EOF'
[serve]
trace = mini.trace
threads = 2
workload_cache = 2
response_cache = 2
cache_dir = crash_spill

[mesh]
nelx = 8
nely = 8
nelz = 16
EOF
boot crash.ini crash.port crash.log
"$PICPREDICT" query /v1/workload --port "$PORT" \
    --body '{"ranks": [4]}' > crash_r4.txt
grep -q '^200 OK' crash_r4.txt || fail "crash-daemon warmup failed"
tail -n +2 crash_r4.txt > body_crash_r4.json
"$PICPREDICT" query /v1/workload --port "$PORT" \
    --body '{"ranks": [6]}' --quiet || fail "crash-daemon warmup (2) failed"
# The next distinct key evicts ranks=4, whose spill commit crashes the
# process — after the temp file was written but before the rename.
arm "$PORT" "atomicfile.commit=crash"
set +e
"$PICPREDICT" query /v1/workload --port "$PORT" \
    --body '{"ranks": [9]}' --retries 0 --quiet > crash_trigger.txt 2>&1
wait "$SERVE_PID" 2>/dev/null
CRASH_STATUS=$?
set -e
SERVE_PID=""
[[ $CRASH_STATUS -eq 134 ]] \
    || fail "crash failpoint should kill the daemon with exit 134, got $CRASH_STATUS"
[[ $(find crash_spill -name '*.tmp*' | wc -l) -eq 1 ]] \
    || fail "crash mid-commit should leave exactly one temp file"
[[ $(find crash_spill -maxdepth 1 -name '*.art' | wc -l) -eq 0 ]] \
    || fail "nothing should have been committed before the crash"

boot crash.ini crash2.port crash2.log
"$PICPREDICT" query /metricsz --port "$PORT" > metrics_reboot.txt
[[ $(metric metrics_reboot.txt "serve.cache.response.quarantined") -eq 1 ]] \
    || fail "reboot scan did not quarantine the orphaned temp file"
[[ $(find crash_spill/quarantine -type f | wc -l) -eq 1 ]] \
    || fail "quarantine dir should hold the orphan (moved, not deleted)"
"$PICPREDICT" query /v1/workload --port "$PORT" \
    --body '{"ranks": [4]}' > reborn_r4.txt
grep -q '^200 OK' reborn_r4.txt || fail "post-crash ranks=4 failed"
tail -n +2 reborn_r4.txt > body_reborn_r4.json
cmp body_crash_r4.json body_reborn_r4.json \
    || fail "post-crash replay is not byte-identical to the pre-crash body"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || fail "reborn daemon did not exit 0 on SIGTERM"
SERVE_PID=""

echo "check_chaos: OK"
