#!/usr/bin/env bash
# Serving-latency regression guard: run the micro_serve closed loop fresh
# (open-loop phase skipped — this is a p99 guard, not a concurrency test)
# and compare the baseline p99 against the last committed snapshot in
# BENCH_serve.json. Fails only when the fresh p99 exceeds the snapshot by
# BOTH >20% and >300 us — the absolute floor keeps microsecond jitter on
# loaded single-core CI machines from tripping the relative bound.
# One retry (best of two): p99 on a shared box has heavy right-tail noise.
#
# Usage: check_bench_serve.sh <micro_serve-binary> <committed-json> [workdir]
# Wired into ctest (fast tier, skipped under sanitizers) from
# tools/CMakeLists.txt.
set -euo pipefail

MICRO_SERVE=${1:?usage: check_bench_serve.sh <micro_serve-binary> <committed-json> [workdir]}
SNAPSHOT=${2:?usage: check_bench_serve.sh <micro_serve-binary> <committed-json> [workdir]}
WORK=${3:-$(mktemp -d)}
PYTHON=${PYTHON:-python3}

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

trap 'exit 130' INT
trap 'exit 143' TERM

fail() { echo "FAIL: $*" >&2; exit 1; }

baseline_p99() { # baseline_p99 <json-file>
    "$PYTHON" - "$1" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
# Committed file holds a snapshot history; a fresh run is one bare object.
snap = doc["snapshots"][-1] if "snapshots" in doc else doc
for phase in snap["phases"]:
    if phase["phase"] == "baseline":
        print(phase["p99_us"])
        sys.exit(0)
sys.exit("no baseline phase in " + sys.argv[1])
EOF
}

COMMITTED=$(baseline_p99 "$SNAPSHOT")

best=""
for attempt in 1 2; do
    echo "== micro_serve run $attempt =="
    "$MICRO_SERVE" --open-connections 0 --json "run_$attempt.json" \
        > "run_$attempt.csv" || fail "micro_serve exited nonzero (run $attempt)"
    fresh=$(baseline_p99 "run_$attempt.json")
    echo "baseline p99: fresh=${fresh}us committed=${COMMITTED}us"
    if [[ -z "$best" ]] || "$PYTHON" -c "import sys; sys.exit(0 if float('$fresh') < float('$best') else 1)"; then
        best=$fresh
    fi
    # Within bounds already? No need for the retry.
    if "$PYTHON" -c "
import sys
fresh, committed = float('$best'), float('$COMMITTED')
sys.exit(0 if fresh <= committed * 1.2 or fresh <= committed + 300.0 else 1)
"; then
        echo "check_bench_serve: OK (p99 ${best}us vs committed ${COMMITTED}us)"
        exit 0
    fi
done

fail "baseline p99 regressed: best-of-2 ${best}us vs committed ${COMMITTED}us (+20% and +300us both exceeded)"
