#!/usr/bin/env sh
# Paper-claims conformance gate: build, run the fast tier, then the claims
# tier (DESIGN.md per-experiment index — every figure/table row asserted as
# a shape claim on the cached calibrated fixture). Optionally finishes with
# the sanitizer suite for a full pre-merge check.
#
#   tools/check_claims.sh [build-dir] [--sanitize]
#
#   build-dir    out-of-source build directory (default: build)
#   --sanitize   also run tools/check_sanitize.sh afterwards
#
# Claims fixtures are generated once per build directory (into
# <build-dir>/picp_fixtures, content-addressed by config fingerprint);
# re-runs are cache hits and finish in seconds.
set -eu

BUILD_DIR="build"
RUN_SANITIZE=0
for arg in "$@"; do
  case "$arg" in
    --sanitize) RUN_SANITIZE=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$SRC_DIR"
cmake --build "$BUILD_DIR" -j
JOBS="$(nproc 2>/dev/null || echo 4)"
echo "== fast tier (ctest -LE claims) =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -LE claims
echo "== claims tier (ctest -L claims) =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -L claims
if [ "$RUN_SANITIZE" -eq 1 ]; then
  "$SRC_DIR/tools/check_sanitize.sh"
fi
echo "claims conformance suite passed"
