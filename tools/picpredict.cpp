// picpredict — command-line front end to the prediction framework.
//
//   picpredict simulate <config.ini> --trace <out.trace>
//                       [--timings <out.csv>] [--resume]
//       Run the PIC proxy application described by the config; write its
//       particle trace and (with [measure] enabled) instrumented timings.
//       With [run] checkpoint_every set, an interrupted run leaves
//       <out.trace>.part + <out.trace>.ckpt; --resume continues from the
//       checkpoint and produces a byte-identical trace.
//
//   picpredict trace verify <file.trace>
//       Walk every integrity check (header CRC, per-frame CRCs, sealed
//       footer, whole-file digest); exit 0 iff the trace is intact.
//
//   picpredict trace repair <file.trace> --out <fixed.trace>
//       Salvage: recover the longest valid sample prefix from a damaged or
//       unsealed trace into a freshly sealed v2 file.
//
//   picpredict train <timings.csv> --out <models.txt>
//                    [--method auto|linear|poly|symreg] [--seed N]
//       Model Generator: fit per-kernel performance models.
//
//   picpredict workload <trace> --ranks <R> [--mapper bin] [--filter F]
//                       [--out-prefix <path>]
//       Dynamic Workload Generator: replay the trace for one processor
//       count; print utilization/peak statistics and optionally dump the
//       computation matrix as CSV.
//
//   picpredict predict <trace> --models <models.txt> --ranks <R1,R2,...>
//                      [--mapper bin] [--filter F]
//       Full prediction: workload + models + trace-driven DES; prints one
//       row per target processor count.
//
//   picpredict extrapolate <trace> --out <out.trace> --particles <N>
//       Synthesize a larger representative trace from a small-scale run.
//
//   picpredict report <telemetry-dir> [--top N] [--check]
//       Pretty-print a run's telemetry: the manifest (identity, phase
//       totals, pool utilization) and the top-N hottest span families from
//       the Chrome trace. --check validates both files against the
//       required-key schemas and exits non-zero on any violation.
//
//   picpredict serve --config <serve.ini> [--port P] [--threads N]
//                    [--ready-file F] [--telemetry-dir D]
//                    [--enable-failpoints]
//       Long-lived prediction daemon: load the trace + models once, answer
//       /v1/predict, /v1/workload, /v1/models, /healthz, /metricsz over
//       HTTP/1.1 with a content-addressed artifact cache. SIGINT/SIGTERM
//       drain in-flight requests, then exit 0 (writing the telemetry
//       manifest when --telemetry-dir is set). --enable-failpoints exposes
//       the loopback-only /v1/failpoints fault-injection endpoint.
//
//   picpredict query <endpoint> [--port P] [--host H] [--body JSON]
//                    [--repeat N] [--parallel K] [--retries R]
//                    [--max-backoff-ms MS] [--deadline-ms MS] [--quiet]
//       Client for the daemon: one request (or a closed loop of N, K at a
//       time), printing status + body. 503 (server shedding load) is
//       retried up to --retries times with capped exponential backoff and
//       full jitter, honoring the server's Retry-After as a floor.
//       --deadline-ms stamps X-Picp-Deadline-Ms so the server can 504
//       instead of finishing work nobody is waiting for.
//
//   picpredict top --port P [--host H] [--interval-ms MS] [--iterations N]
//       Live serving stats: poll /metricsz and render a refreshing table
//       of RPS, in-flight requests, queue depth, latency p50/p95/p99 (from
//       the RED histograms), cache hit ratio, and shed/batch counters.
//       --iterations 0 (the default) polls until interrupted.
//
// Exit codes (contract, covered by tests/test_cli_errors.cpp): 0 success,
// 1 runtime failure (missing/corrupt input, prediction error, non-2xx
// query), 2 usage error (unknown command, bad flag, malformed value),
// 3 server busy — every failure was a 503 and the retry budget ran out.
//
// Fault injection: PICP_FAILPOINTS='site=action[:trigger];...' (with
// PICP_FAILPOINTS_SEED=N) arms failpoints in any command; see
// src/util/failpoint.hpp for the grammar.

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "mapping/mapper.hpp"
#include "picsim/checkpoint.hpp"
#include "picsim/sim_driver.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/extrapolate.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_salvage.hpp"
#include "util/atomic_file.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"
#include "workload/workload_stats.hpp"

namespace {

using namespace picp;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage:\n"
               "  picpredict simulate <config.ini> --trace <out> "
               "[--timings <csv>] [--resume]\n"
               "                      [--telemetry-dir <dir>]\n"
               "  picpredict trace verify <file>\n"
               "  picpredict trace repair <file> --out <fixed>\n"
               "  picpredict train <timings.csv> --out <models.txt> "
               "[--method auto|linear|poly|symreg] [--seed N]\n"
               "  picpredict workload <trace> --ranks <R> [--mapper M] "
               "[--filter F] [--out-prefix P]\n"
               "  picpredict predict <trace> --models <file> --ranks "
               "<R1,R2,...> [--mapper M] [--filter F]\n"
               "                     [--telemetry-dir <dir>]\n"
               "  picpredict extrapolate <trace> --out <out> --particles "
               "<N> [--seed N]\n"
               "  picpredict report <telemetry-dir> [--top N] [--check]\n"
               "  picpredict serve --config <serve.ini> [--port P] "
               "[--threads N]\n"
               "                   [--ready-file F] [--telemetry-dir D] "
               "[--enable-failpoints]\n"
               "  picpredict query <endpoint> [--port P] [--host H] "
               "[--body JSON]\n"
               "                  [--repeat N] [--parallel K] [--retries R] "
               "[--max-backoff-ms MS]\n"
               "                  [--deadline-ms MS] [--quiet]\n"
               "  picpredict top --port P [--host H] [--interval-ms MS] "
               "[--iterations N]\n"
               "\n"
               "exit codes: 0 success; 1 runtime failure (missing/corrupt "
               "input, non-2xx\n"
               "            response); 2 usage error; 3 server busy — every "
               "failure was a\n"
               "            503 and the --retries budget ran out\n"
               "\n"
               "fault injection: set PICP_FAILPOINTS="
               "'site=action[:trigger];...' (and\n"
               "optionally PICP_FAILPOINTS_SEED=N) to arm failpoints in any "
               "command\n");
  std::exit(2);
}

/// Usage-class failure (exit 2): one line, no usage wall — for malformed
/// flag *values*, where the user got the shape right but the content wrong.
[[noreturn]] void fail_usage(const std::string& msg) {
  std::fprintf(stderr, "picpredict: error: %s\n", msg.c_str());
  std::exit(2);
}

/// Numeric flag values route parse errors to exit 2 with the flag named —
/// `--ranks banana` is a usage error, not a runtime failure.
long long flag_int_value(const std::string& name, const std::string& text) {
  try {
    return parse_int(text);
  } catch (const Error&) {
    fail_usage("flag --" + name + " needs an integer, got \"" + text + "\"");
  }
}

double flag_double_value(const std::string& name, const std::string& text) {
  try {
    return parse_double(text);
  } catch (const Error&) {
    fail_usage("flag --" + name + " needs a number, got \"" + text + "\"");
  }
}

/// Fail early with errno context when an input file is absent/unreadable,
/// instead of whatever a deep parser would say (or, worse, a bare usage
/// dump). Runtime-class failure: exit 1 via the main() catch.
void require_readable(const std::string& path, const char* what) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0)
    throw Error(std::string(what) + " " + path + ": " +
                std::strerror(errno));
  if (!S_ISREG(st.st_mode))
    throw Error(std::string(what) + " " + path + ": not a regular file");
}

/// flag → value map from argv[first..). Flags take one value except the
/// names in `boolean`, which take none and map to "1".
std::map<std::string, std::string> parse_flags(
    int argc, char** argv, int first,
    const std::set<std::string>& boolean = {}) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      usage(("bad flag: " + arg).c_str());
    const std::string name = arg.substr(2);
    if (boolean.count(name) > 0) {
      flags[name] = "1";
      continue;
    }
    if (i + 1 >= argc) usage(("flag needs a value: " + arg).c_str());
    flags[name] = argv[++i];
  }
  return flags;
}

std::string require_flag(const std::map<std::string, std::string>& flags,
                         const std::string& name) {
  const auto it = flags.find(name);
  if (it == flags.end()) usage(("missing --" + name).c_str());
  return it->second;
}

std::string flag_or(const std::map<std::string, std::string>& flags,
                    const std::string& name, const std::string& fallback) {
  const auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

int cmd_simulate(int argc, char** argv) {
  if (argc < 3) usage("simulate needs a config file");
  const auto flags = parse_flags(argc, argv, 3, {"resume"});
  require_readable(argv[2], "cannot read config file");
  const SimConfig cfg = SimConfig::from_config(Config::from_file(argv[2]));
  SimDriver driver(cfg);
  RunOptions options;
  options.resume = flags.count("resume") > 0;
  bool telemetry_on = false;
  if (flags.count("telemetry-dir") > 0) {
    if (!cfg.telemetry) {
      std::fprintf(stderr, "warning: --telemetry-dir ignored — the config "
                           "sets run.telemetry = false\n");
    } else {
      telemetry::SessionOptions session;
      session.directory = flags.at("telemetry-dir");
      telemetry::configure(session);
      telemetry::set_run_info("simulate", sim_config_fingerprint(cfg),
                              driver.threads());
      telemetry::add_run_annotation("config", argv[2]);
      telemetry_on = true;
    }
  }
  const SimResult result = driver.run(require_flag(flags, "trace"), options);
  if (telemetry_on) telemetry::finalize();
  std::printf("simulated %lld iterations%s, %llu trace samples, "
              "wall %.2f s\n",
              static_cast<long long>(cfg.num_iterations -
                                     result.start_iteration),
              result.start_iteration > 0 ? " (resumed)" : "",
              static_cast<unsigned long long>(result.trace_samples),
              result.wall_seconds);
  if (flags.count("timings") > 0) {
    if (result.timings.empty())
      std::fprintf(stderr, "warning: no timings collected — enable "
                           "[measure] in the config\n");
    result.timings.save_csv(flags.at("timings"));
    std::printf("wrote %zu timing records to %s\n", result.timings.size(),
                flags.at("timings").c_str());
  }
  return 0;
}

int cmd_trace(int argc, char** argv) {
  if (argc < 4) usage("trace needs a subcommand and a trace file");
  const std::string sub = argv[2];
  const std::string path = argv[3];
  if (sub == "verify" || sub == "repair") require_readable(path, "cannot read trace file");
  if (sub == "verify") {
    if (argc > 4) usage("trace verify takes no flags");
    const SalvageReport report = scan_trace(path);
    std::printf("%s: %s\n", path.c_str(), describe(report).c_str());
    if (report.intact()) return 0;
    std::printf("recoverable: %llu samples (%llu bytes) — run `picpredict "
                "trace repair %s --out <fixed.trace>`\n",
                static_cast<unsigned long long>(report.valid_samples),
                static_cast<unsigned long long>(report.valid_bytes),
                path.c_str());
    return 1;
  }
  if (sub == "repair") {
    const auto flags = parse_flags(argc, argv, 4);
    const std::string out = require_flag(flags, "out");
    const SalvageReport report = repair_trace(path, out);
    std::printf("%s: %s\n", path.c_str(), describe(report).c_str());
    std::printf("recovered %llu samples into %s\n",
                static_cast<unsigned long long>(report.valid_samples),
                out.c_str());
    return report.valid_samples > 0 ? 0 : 1;
  }
  usage(("unknown trace subcommand: " + sub).c_str());
}

int cmd_train(int argc, char** argv) {
  if (argc < 3) usage("train needs a timings CSV");
  const auto flags = parse_flags(argc, argv, 3);
  require_readable(argv[2], "cannot read timings CSV");
  const KernelTimings timings = KernelTimings::load_csv(argv[2]);
  ModelGenConfig config;
  config.method = fit_method_from_name(flag_or(flags, "method", "auto"));
  config.symreg.seed = static_cast<std::uint64_t>(
      flag_int_value("seed", flag_or(flags, "seed", "1")));
  TrainReport report;
  const ModelSet models = train_models(timings, config, &report);
  models.save(require_flag(flags, "out"));
  std::printf("%-14s %8s %12s  formula\n", "kernel", "rows", "train MAPE");
  for (const auto& fit : report.kernels)
    std::printf("%-14s %8zu %11.2f%%  %s\n", fit.kernel.c_str(), fit.rows,
                fit.train_mape, fit.formula.c_str());
  return 0;
}

SpectralMesh mesh_for_trace(const TraceReader& trace,
                            const std::map<std::string, std::string>& flags) {
  // Mesh dimensions may be overridden; default to the scaled case study.
  const auto dim = [&flags](const char* name, long long fallback) {
    return static_cast<std::int64_t>(
        flag_int_value(name, flag_or(flags, name, std::to_string(fallback))));
  };
  return SpectralMesh(trace.header().domain, dim("nelx", 32), dim("nely", 32),
                      dim("nelz", 64),
                      static_cast<int>(dim("points-per-dim", 5)));
}

int cmd_workload(int argc, char** argv) {
  if (argc < 3) usage("workload needs a trace file");
  const auto flags = parse_flags(argc, argv, 3);
  require_readable(argv[2], "cannot read trace file");
  TraceReader trace(argv[2]);
  const SpectralMesh mesh = mesh_for_trace(trace, flags);
  // Same in-process entry point the daemon's cache fills from — the CLI is
  // a one-shot client of the pipeline, not a second implementation.
  const PredictionPipeline pipeline(mesh, ModelSet{});
  PredictionConfig pc;
  pc.num_ranks =
      static_cast<Rank>(flag_int_value("ranks", require_flag(flags, "ranks")));
  pc.mapper_kind = flag_or(flags, "mapper", "bin");
  pc.filter_size = flag_double_value("filter", flag_or(flags, "filter", "0.024"));
  const WorkloadResult workload = pipeline.generate_workload(trace, pc);

  const UtilizationStats stats = utilization(workload.comp_real);
  std::printf("intervals            : %zu\n", workload.num_intervals());
  std::printf("peak particles/rank  : %lld\n",
              static_cast<long long>(stats.peak_load));
  std::printf("resource utilization : %.2f%%\n",
              100.0 * stats.mean_active_fraction);
  std::printf("migrated particles   : %lld\n",
              static_cast<long long>(workload.comm_real.total_volume()));
  std::printf("ghost transfers      : %lld\n",
              static_cast<long long>(workload.comm_ghost.total_volume()));
  std::printf("%s", ascii_heatmap(workload.comp_real).c_str());
  if (flags.count("out-prefix") > 0) {
    const std::string prefix = flags.at("out-prefix");
    workload.comp_real.write_csv(prefix + ".comp_real.csv");
    workload.comp_ghost.write_csv(prefix + ".comp_ghost.csv");
    std::printf("matrices written to %s.comp_{real,ghost}.csv\n",
                prefix.c_str());
  }
  return 0;
}

int cmd_predict(int argc, char** argv) {
  if (argc < 3) usage("predict needs a trace file");
  const auto flags = parse_flags(argc, argv, 3);
  const bool telemetry_on = flags.count("telemetry-dir") > 0;
  if (telemetry_on) {
    telemetry::SessionOptions session;
    session.directory = flags.at("telemetry-dir");
    telemetry::configure(session);
    telemetry::set_run_info("predict", 0, 1);
    telemetry::add_run_annotation("trace", argv[2]);
    telemetry::add_run_annotation("models", require_flag(flags, "models"));
    telemetry::add_run_annotation("ranks", require_flag(flags, "ranks"));
    telemetry::add_run_annotation("mapper", flag_or(flags, "mapper", "bin"));
  }
  require_readable(argv[2], "cannot read trace file");
  require_readable(require_flag(flags, "models"), "cannot read models file");
  TraceReader trace(argv[2]);
  const SpectralMesh mesh = mesh_for_trace(trace, flags);
  const ModelSet models = ModelSet::load(require_flag(flags, "models"));
  const PredictionPipeline pipeline(mesh, models);

  std::printf("%8s %16s %18s %14s %12s\n", "ranks", "predicted time s",
              "critical path s", "workload gen s", "DES events");
  for (const std::string& field :
       split(require_flag(flags, "ranks"), ',')) {
    PredictionConfig pc;
    pc.num_ranks = static_cast<Rank>(flag_int_value("ranks", field));
    pc.mapper_kind = flag_or(flags, "mapper", "bin");
    pc.filter_size =
        flag_double_value("filter", flag_or(flags, "filter", "0.024"));
    const PredictionOutcome outcome = pipeline.predict(trace, pc);
    std::printf("%8d %16.5f %18.5f %14.3f %12llu\n", pc.num_ranks,
                outcome.sim.total_seconds,
                outcome.sim.critical_path_seconds,
                outcome.workload_gen_seconds,
                static_cast<unsigned long long>(outcome.sim.events));
  }
  if (telemetry_on) telemetry::finalize();
  return 0;
}

/// One span family rolled up from the Chrome trace: total/max duration and
/// how many threads emitted it.
struct SpanAggregate {
  double total_us = 0.0;
  double max_us = 0.0;
  std::uint64_t count = 0;
  std::set<std::int64_t> tids;
};

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PICP_REQUIRE(in.is_open(), "cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int cmd_report(int argc, char** argv) {
  if (argc < 3) usage("report needs a telemetry directory");
  const auto flags = parse_flags(argc, argv, 3, {"check"});
  const std::string dir = argv[2];
  const bool check = flags.count("check") > 0;
  const auto top_n = static_cast<std::size_t>(
      flag_int_value("top", flag_or(flags, "top", "10")));
  int violations = 0;
  const auto violation = [&violations](const std::string& what) {
    std::fprintf(stderr, "schema violation: %s\n", what.c_str());
    ++violations;
  };

  // --- Manifest: load_manifest() enforces the key schema itself ------------
  const telemetry::RunManifest manifest =
      telemetry::load_manifest(dir + "/manifest.json");
  std::printf("run      : %s %s on %s (%s)\n", manifest.tool.c_str(),
              manifest.command.c_str(), manifest.hostname.c_str(),
              manifest.created_utc.c_str());
  std::printf("build    : %s\n", manifest.git_describe.c_str());
  std::printf("config   : fingerprint 0x%016llx, %llu threads\n",
              static_cast<unsigned long long>(manifest.config_fingerprint),
              static_cast<unsigned long long>(manifest.threads));
  std::printf("totals   : wall %.3f s, process CPU %.3f s\n",
              manifest.wall_seconds, manifest.process_cpu_seconds);
  if (!manifest.extra.empty()) {
    for (const auto& [key, value] : manifest.extra)
      std::printf("extra    : %s = %s\n", key.c_str(), value.c_str());
  }

  std::vector<telemetry::PhaseTotal> phases = manifest.phases;
  std::sort(phases.begin(), phases.end(),
            [](const telemetry::PhaseTotal& a, const telemetry::PhaseTotal& b) {
              return a.wall_seconds > b.wall_seconds;
            });
  std::printf("\n%-28s %12s %12s %10s\n", "phase", "wall s", "cpu s",
              "count");
  for (const auto& p : phases)
    std::printf("%-28s %12.6f %12.6f %10llu\n", p.name.c_str(),
                p.wall_seconds, p.cpu_seconds,
                static_cast<unsigned long long>(p.count));

  const double util =
      manifest.metrics.gauge_value("threadpool.utilization");
  const double workers = manifest.metrics.gauge_value("threadpool.workers");
  if (workers > 0.0)
    std::printf("\npool     : %.0f workers, %.0f%% busy, %llu tasks\n",
                workers, 100.0 * util,
                static_cast<unsigned long long>(
                    manifest.metrics.counter_value("threadpool.tasks")));

  // --- Histogram quantiles: bucket-interpolated p50/p95/p99 ----------------
  bool histogram_header = false;
  for (const auto& h : manifest.metrics.histograms) {
    if (h.count == 0) continue;  // registered but never observed
    if (!histogram_header) {
      std::printf("\n%-36s %10s %12s %12s %12s\n", "histogram", "count",
                  "p50", "p95", "p99");
      histogram_header = true;
    }
    std::printf("%-36s %10llu %12.1f %12.1f %12.1f\n", h.name.c_str(),
                static_cast<unsigned long long>(h.count), h.quantile(0.50),
                h.quantile(0.95), h.quantile(0.99));
  }

  // --- Chrome trace: validate required keys, roll up span families ---------
  const Json trace = Json::parse(read_text_file(dir + "/trace.json"));
  if (!trace.is_object() || !trace.has("traceEvents")) {
    violation("trace.json: missing top-level traceEvents array");
  } else {
    const Json& events = trace.at("traceEvents");
    if (!events.is_array()) violation("trace.json: traceEvents not an array");
    std::map<std::string, SpanAggregate> families;
    std::uint64_t spans = 0;
    for (std::size_t i = 0; events.is_array() && i < events.size(); ++i) {
      const Json& e = events.at(i);
      // Trace-event format required keys: every event carries name/ph/pid/
      // tid; "X" complete events additionally carry ts + dur.
      if (!e.is_object() || !e.has("name") || !e.has("ph") ||
          !e.has("pid") || !e.has("tid")) {
        violation("trace.json: event " + std::to_string(i) +
                  " lacks a required key (name/ph/pid/tid)");
        continue;
      }
      const std::string& ph = e.at("ph").as_string();
      if (ph == "X") {
        if (!e.has("ts") || !e.has("dur")) {
          violation("trace.json: complete event " + std::to_string(i) +
                    " lacks ts/dur");
          continue;
        }
        ++spans;
        SpanAggregate& agg = families[e.at("name").as_string()];
        const double dur = e.at("dur").as_double();
        agg.total_us += dur;
        agg.max_us = std::max(agg.max_us, dur);
        ++agg.count;
        agg.tids.insert(e.at("tid").as_int());
      }
    }
    std::vector<std::pair<std::string, SpanAggregate>> hottest(
        families.begin(), families.end());
    std::sort(hottest.begin(), hottest.end(),
              [](const auto& a, const auto& b) {
                return a.second.total_us > b.second.total_us;
              });
    if (hottest.size() > top_n) hottest.resize(top_n);
    std::printf("\n%llu spans in trace.json; top %zu span families:\n",
                static_cast<unsigned long long>(spans), hottest.size());
    std::printf("%-28s %12s %12s %10s %8s\n", "span", "total ms", "max ms",
                "count", "threads");
    for (const auto& [name, agg] : hottest)
      std::printf("%-28s %12.3f %12.3f %10llu %8zu\n", name.c_str(),
                  agg.total_us * 1e-3, agg.max_us * 1e-3,
                  static_cast<unsigned long long>(agg.count),
                  agg.tids.size());
  }

  if (check) {
    if (violations > 0) {
      std::fprintf(stderr, "report --check: %d schema violation(s)\n",
                   violations);
      return 1;
    }
    std::printf("\nreport --check: manifest and trace pass the schema\n");
  }
  return 0;
}

int cmd_extrapolate(int argc, char** argv) {
  if (argc < 3) usage("extrapolate needs a trace file");
  const auto flags = parse_flags(argc, argv, 3);
  require_readable(argv[2], "cannot read trace file");
  TraceReader trace(argv[2]);
  ExtrapolationParams params;
  params.target_particles = static_cast<std::uint64_t>(
      flag_int_value("particles", require_flag(flags, "particles")));
  params.seed = static_cast<std::uint64_t>(
      flag_int_value("seed", flag_or(flags, "seed", "20210517")));
  const std::string out = require_flag(flags, "out");
  const std::uint64_t samples = extrapolate_trace(trace, out, params);
  std::printf("wrote %llu samples x %llu particles to %s\n",
              static_cast<unsigned long long>(samples),
              static_cast<unsigned long long>(params.target_particles),
              out.c_str());
  return 0;
}

// --- serve ------------------------------------------------------------------

serve::HttpServer* g_server = nullptr;  // signal handler target

extern "C" void handle_shutdown_signal(int) {
  // request_shutdown() is one write(2) to a self-pipe: async-signal-safe.
  if (g_server != nullptr) g_server->request_shutdown();
}

int cmd_serve(int argc, char** argv) {
  const auto flags = parse_flags(argc, argv, 2, {"enable-failpoints"});
  const std::string config_path = require_flag(flags, "config");
  require_readable(config_path, "cannot read serve config");
  const Config config = Config::from_file(config_path);
  serve::ServiceConfig service_config =
      serve::ServiceConfig::from_config(config);
  if (flags.count("enable-failpoints") > 0)
    service_config.enable_failpoints = true;
  require_readable(service_config.trace_path, "cannot read trace file");
  if (!service_config.models_path.empty())
    require_readable(service_config.models_path, "cannot read models file");

  serve::ServerOptions options;
  options.port = static_cast<std::uint16_t>(flag_int_value(
      "port", flag_or(flags, "port",
                      std::to_string(config.get_int("serve.port", 0)))));
  options.threads = static_cast<std::size_t>(flag_int_value(
      "threads", flag_or(flags, "threads",
                         std::to_string(config.get_int("serve.threads", 0)))));
  options.max_connections = static_cast<std::size_t>(
      config.get_int("serve.max_connections",
                     static_cast<long long>(options.max_connections)));
  options.request_timeout_ms = static_cast<int>(config.get_int(
      "serve.request_timeout_ms", options.request_timeout_ms));
  options.drain_timeout_ms = static_cast<int>(
      config.get_int("serve.drain_timeout_ms", options.drain_timeout_ms));
  options.max_pending_requests = static_cast<std::size_t>(
      config.get_int("serve.max_pending",
                     static_cast<long long>(options.max_pending_requests)));
  options.batch_window_ms = static_cast<int>(
      config.get_int("serve.batch_window_ms", options.batch_window_ms));
  options.max_batch = static_cast<std::size_t>(config.get_int(
      "serve.max_batch", static_cast<long long>(options.max_batch)));
  options.trace_sample_n = static_cast<std::uint64_t>(
      config.get_int("serve.trace_sample_n", 0));
  options.slow_request_ms = static_cast<int>(
      config.get_int("serve.slow_request_ms", 0));
  options.access_log_path = config.get_string("serve.access_log", "");
  options.access_log_max_bytes = static_cast<std::size_t>(config.get_int(
      "serve.access_log_max_bytes",
      static_cast<long long>(options.access_log_max_bytes)));
  options.limits.io_timeout_ms = options.request_timeout_ms;

  // The daemon always collects telemetry — /metricsz and the cache
  // hit/miss counters are part of the serving contract, not an opt-in.
  // --telemetry-dir additionally writes trace.json + manifest.json on
  // shutdown (the drain manifest the smoke test validates).
  const bool telemetry_persisted = flags.count("telemetry-dir") > 0;
  telemetry::SessionOptions session;
  if (telemetry_persisted) session.directory = flags.at("telemetry-dir");
  telemetry::configure(session);
  telemetry::add_run_annotation("config", config_path);
  telemetry::add_run_annotation("trace", service_config.trace_path);

  serve::PredictionService service(service_config);
  serve::HttpServer server(
      options, [&service](const serve::HttpRequest& request) {
        return service.handle(request);
      });
  // /healthz?ready=1 reads the server's drain flag and queue-depth SLO;
  // both outlive every request, so capturing the server by reference is
  // safe for the daemon's lifetime.
  service.set_readiness_probe([&server](std::string* reason) {
    return !server.not_ready(reason);
  });
  telemetry::set_run_info("serve", 0, server.workers());

  g_server = &server;
  struct sigaction action {};
  action.sa_handler = handle_shutdown_signal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  std::printf("picpredict serve: listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  if (flags.count("ready-file") > 0) {
    // Published atomically so a watcher never reads a half-written port.
    const std::string port_line = std::to_string(server.port()) + "\n";
    atomic_write_file(flags.at("ready-file"), port_line.data(),
                      port_line.size());
  }

  server.run();  // blocks until SIGINT/SIGTERM, then drains
  g_server = nullptr;

  const serve::ServerStats stats = server.stats();
  if (telemetry_persisted) telemetry::finalize();
  std::printf("picpredict serve: drained after %llu request(s), "
              "%llu connection(s) accepted, %llu shed\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.rejected_busy));
  return 0;
}

// --- query ------------------------------------------------------------------

int cmd_query(int argc, char** argv) {
  if (argc < 3 || argv[2][0] == '-')
    usage("query needs an endpoint path, e.g. /healthz");
  const std::string endpoint = argv[2];
  const auto flags = parse_flags(argc, argv, 3, {"quiet"});
  const std::string host = flag_or(flags, "host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(
      flag_int_value("port", require_flag(flags, "port")));
  const std::string body = flag_or(flags, "body", "");
  const auto repeat = static_cast<std::size_t>(
      flag_int_value("repeat", flag_or(flags, "repeat", "1")));
  const auto parallel = static_cast<std::size_t>(
      flag_int_value("parallel", flag_or(flags, "parallel", "1")));
  const auto retries = static_cast<std::size_t>(
      flag_int_value("retries", flag_or(flags, "retries", "3")));
  const long long max_backoff_ms = flag_int_value(
      "max-backoff-ms", flag_or(flags, "max-backoff-ms", "2000"));
  const long long deadline_ms =
      flag_int_value("deadline-ms", flag_or(flags, "deadline-ms", "0"));
  const bool quiet = flags.count("quiet") > 0;
  if (repeat < 1) fail_usage("--repeat must be >= 1");
  if (parallel < 1) fail_usage("--parallel must be >= 1");
  if (max_backoff_ms < 1) fail_usage("--max-backoff-ms must be >= 1");
  if (deadline_ms < 0) fail_usage("--deadline-ms must be >= 0");

  serve::HttpRequest request;
  request.method = body.empty() ? "GET" : "POST";
  request.target = endpoint;
  request.body = body;
  if (!body.empty())
    request.headers.emplace_back("Content-Type", "application/json");
  if (deadline_ms > 0)
    request.headers.emplace_back("X-Picp-Deadline-Ms",
                                 std::to_string(deadline_ms));
  const std::string host_header = host + ":" + std::to_string(port);

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> busy_failures{0};  // failures that were 503s
  std::mutex print_mutex;
  const auto print_response = [&](const serve::HttpResponse& response) {
    if (quiet) return;
    std::lock_guard<std::mutex> lock(print_mutex);
    const std::string* cache = response.header("x-picp-cache");
    const std::string* degraded = response.header("x-picp-degraded");
    std::printf("%d %s%s%s%s\n", response.status,
                serve::status_reason(response.status),
                cache != nullptr ? " cache=" : "",
                cache != nullptr ? cache->c_str() : "",
                degraded != nullptr ? " degraded=stale" : "");
    if (!response.body.empty())
      std::fwrite(response.body.data(), 1, response.body.size(), stdout);
  };

  const auto worker = [&](std::size_t worker_index) {
    // One connection per worker, reused across its share of requests —
    // the closed-loop shape the daemon's keep-alive path is built for.
    // Retry state: capped exponential backoff with *full jitter* (sleep a
    // uniform draw from [0, cap]) — the spread that keeps a shed fleet of
    // clients from re-arriving in lockstep — with the server's
    // Retry-After as a floor when it sent one.
    Xoshiro256 jitter(0x9e3779b97f4a7c15ULL + worker_index);
    std::unique_ptr<serve::HttpConnection> connection;
    serve::HttpLimits limits;
    const auto backoff = [&](std::size_t attempt, long long floor_ms) {
      long long cap = 100;  // base delay, doubled per attempt
      for (std::size_t i = 0; i < attempt && cap < max_backoff_ms; ++i)
        cap *= 2;
      if (cap > max_backoff_ms) cap = max_backoff_ms;
      long long delay = static_cast<long long>(
          jitter.uniform_below(static_cast<std::uint64_t>(cap) + 1));
      if (delay < floor_ms) delay = floor_ms;
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    };

    while (next.fetch_add(1) < repeat) {
      std::size_t attempt = 0;
      for (;;) {
        try {
          if (connection == nullptr)
            connection = std::make_unique<serve::HttpConnection>(
                serve::connect_tcp(host, port));
          connection->write_request(request, host_header);
          serve::HttpResponse response;
          if (!connection->read_response(response, limits))
            throw Error("server closed the connection");
          const std::string* connection_header =
              response.header("connection");
          if (connection_header != nullptr &&
              *connection_header == "close")
            connection.reset();  // reconnect before the next attempt

          if (response.status == 503 && attempt < retries) {
            // Shed by backpressure: retryable by contract. Honor the
            // server's Retry-After (seconds) as the minimum wait.
            long long floor_ms = 0;
            if (const std::string* after = response.header("retry-after")) {
              try {
                floor_ms = parse_int(*after) * 1000;
              } catch (const Error&) {
                floor_ms = 0;  // malformed header: jitter-only backoff
              }
            }
            ++attempt;
            backoff(attempt, floor_ms);
            continue;
          }
          if (response.status < 200 || response.status >= 300) {
            failures.fetch_add(1);
            if (response.status == 503) busy_failures.fetch_add(1);
          }
          print_response(response);
          break;
        } catch (const std::exception& e) {
          connection.reset();
          if (attempt < retries) {
            ++attempt;
            backoff(attempt, 0);
            continue;
          }
          failures.fetch_add(1);
          std::lock_guard<std::mutex> lock(print_mutex);
          std::fprintf(stderr, "query: %s\n", e.what());
          break;
        }
      }
    }
  };

  if (parallel == 1) {
    worker(0);
  } else {
    ThreadPool pool(parallel);
    for (std::size_t i = 0; i < parallel; ++i)
      pool.submit([&worker, i] { worker(i); });
    pool.wait_idle();
  }
  const std::size_t failed = failures.load();
  if (failed == 0) return 0;
  // Exit 3: the server was healthy but busy — every failure was a 503
  // that outlived the retry budget. Scripts can sleep-and-rerun on it.
  return failed == busy_failures.load() ? 3 : 1;
}

// --- top --------------------------------------------------------------------

/// One /metricsz scrape, parsed back into a MetricsSnapshot.
telemetry::MetricsSnapshot scrape_metrics(const std::string& host,
                                          std::uint16_t port) {
  serve::HttpConnection connection(serve::connect_tcp(host, port));
  serve::HttpRequest request;
  request.method = "GET";
  request.target = "/metricsz";
  connection.write_request(request,
                           host + ":" + std::to_string(port));
  serve::HttpResponse response;
  const serve::HttpLimits limits;
  if (!connection.read_response(response, limits))
    throw Error("server closed the connection");
  if (response.status != 200)
    throw Error("/metricsz returned " + std::to_string(response.status));
  const Json body = Json::parse(response.body);
  if (!body.is_object() || !body.has("metrics"))
    throw Error("/metricsz reply lacks a \"metrics\" object");
  return telemetry::metrics_from_json(body.at("metrics"));
}

/// Merge every per-route/per-class serve.red.total_us.* histogram into one
/// (they share the bucket ladder), so `top` quotes daemon-wide quantiles.
telemetry::HistogramSnapshot aggregate_red_total(
    const telemetry::MetricsSnapshot& snapshot) {
  telemetry::HistogramSnapshot total;
  for (const auto& h : snapshot.histograms) {
    if (h.name.rfind("serve.red.total_us.", 0) != 0) continue;
    if (total.bounds.empty()) {
      total.bounds = h.bounds;
      total.counts.assign(h.counts.size(), 0);
    }
    if (h.bounds != total.bounds || h.counts.size() != total.counts.size())
      continue;
    for (std::size_t i = 0; i < h.counts.size(); ++i)
      total.counts[i] += h.counts[i];
    total.count += h.count;
    total.sum += h.sum;
  }
  return total;
}

int cmd_top(int argc, char** argv) {
  const auto flags = parse_flags(argc, argv, 2);
  const std::string host = flag_or(flags, "host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(
      flag_int_value("port", require_flag(flags, "port")));
  const long long interval_ms = flag_int_value(
      "interval-ms", flag_or(flags, "interval-ms", "1000"));
  const long long iterations =
      flag_int_value("iterations", flag_or(flags, "iterations", "0"));
  if (interval_ms < 1) fail_usage("--interval-ms must be >= 1");
  if (iterations < 0) fail_usage("--iterations must be >= 0");

  // A terminal gets a refreshing screen; a pipe (scripts, the smoke test)
  // gets one header followed by one appended row per poll.
  const bool tty = ::isatty(::fileno(stdout)) != 0;
  const auto print_header = [&] {
    std::printf("picpredict top — %s:%u every %lld ms%s\n",
                host.c_str(), static_cast<unsigned>(port), interval_ms,
                iterations == 0 ? " (interrupt to quit)" : "");
    std::printf("%10s %9s %7s %10s %10s %10s %7s %7s %9s %10s\n", "rps",
                "inflight", "queue", "p50_us", "p95_us", "p99_us", "cache%",
                "shed", "batched", "requests");
  };

  std::uint64_t previous_requests = 0;
  for (long long i = 0; iterations == 0 || i < iterations; ++i) {
    const telemetry::MetricsSnapshot snapshot = scrape_metrics(host, port);
    const std::uint64_t requests = snapshot.counter_value("serve.requests");
    const double rps =
        i == 0 ? 0.0
               : static_cast<double>(requests - previous_requests) *
                     1000.0 / static_cast<double>(interval_ms);
    previous_requests = requests;

    const telemetry::HistogramSnapshot red = aggregate_red_total(snapshot);
    const double hits = static_cast<double>(
        snapshot.counter_value("serve.cache.response.hits"));
    const double misses = static_cast<double>(
        snapshot.counter_value("serve.cache.response.misses"));
    const double hit_pct =
        hits + misses > 0.0 ? 100.0 * hits / (hits + misses) : 0.0;
    const std::uint64_t shed =
        snapshot.counter_value("serve.shed_queue") +
        snapshot.counter_value("serve.rejected_busy");
    const std::uint64_t batched =
        snapshot.counter_value("serve.batch.members");

    if (tty) {
      std::printf("\x1b[2J\x1b[H");
      print_header();
    } else if (i == 0) {
      print_header();
    }
    std::printf("%10.1f %9.0f %7.0f %10.1f %10.1f %10.1f %7.1f %7llu "
                "%9llu %10llu\n",
                rps, snapshot.gauge_value("serve.inflight"),
                snapshot.gauge_value("serve.queue_depth"),
                red.quantile(0.50), red.quantile(0.95), red.quantile(0.99),
                hit_pct, static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(batched),
                static_cast<unsigned long long>(requests));
    std::fflush(stdout);
    if (iterations != 0 && i + 1 >= iterations) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  try {
    // Arm before dispatch so every command is injectable; a malformed
    // PICP_FAILPOINTS spec is a runtime failure (exit 1), not silence.
    failpoint::arm_from_env();
    if (command == "simulate") return cmd_simulate(argc, argv);
    if (command == "trace") return cmd_trace(argc, argv);
    if (command == "train") return cmd_train(argc, argv);
    if (command == "workload") return cmd_workload(argc, argv);
    if (command == "predict") return cmd_predict(argc, argv);
    if (command == "extrapolate") return cmd_extrapolate(argc, argv);
    if (command == "report") return cmd_report(argc, argv);
    if (command == "serve") return cmd_serve(argc, argv);
    if (command == "query") return cmd_query(argc, argv);
    if (command == "top") return cmd_top(argc, argv);
    usage(("unknown command: " + command).c_str());
  } catch (const std::exception& e) {
    // One-line diagnostic, never a bare stack of parser noise: the first
    // line carries the path + errno context, any hint lines follow.
    std::fprintf(stderr, "picpredict: %s\n", e.what());
    return 1;
  }
}
