#!/usr/bin/env sh
# Run the full test suite under AddressSanitizer + UBSan in a dedicated
# build tree. Use after touching I/O, framing, or checksum code — the
# corruption-sweep tests exercise every byte-level parse path, and this is
# the CI job that proves none of them read out of bounds or hit UB.
#
#   tools/check_sanitize.sh [sanitizer] [build-dir]
#
#   sanitizer  PICP_SANITIZE value (default: address,undefined)
#   build-dir  out-of-source build directory (default: build-asan)
set -eu

SANITIZE="${1:-address,undefined}"
BUILD_DIR="${2:-build-asan}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DPICP_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j
# halt_on_error keeps a UB report from being drowned out by later tests.
# The claims tier is excluded: its gates assert wall-clock accuracy claims
# (MAPE against measured kernel timings), and a sanitizer's nonuniform
# 10-50x slowdown makes those timings meaningless, not merely slow.
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -LE claims \
  -j "$(nproc 2>/dev/null || echo 4)"
# Chaos smoke under the sanitizer: the failpoint storms exercise the error
# unwind paths (torn writes, injected errno, crash recovery) that the happy
# path never touches — exactly where lifetime bugs hide. The instrumented
# ctest tier above already ran check_chaos once; this second run with
# abort_on_error surfaces leaks/UB reports the harness's own asserts
# would otherwise swallow into a generic FAIL.
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
  "$SRC_DIR/tools/check_chaos.sh" "$BUILD_DIR/tools/picpredict" \
  "$BUILD_DIR/check_chaos_sanitize_work"
echo "sanitizer suite (${SANITIZE}) passed"
