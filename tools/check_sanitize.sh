#!/usr/bin/env sh
# Run the full test suite under AddressSanitizer + UBSan in a dedicated
# build tree, then the reactor/serving suite under ThreadSanitizer in a
# second tree. Use after touching I/O, framing, or checksum code — the
# corruption-sweep tests exercise every byte-level parse path, and this is
# the CI job that proves none of them read out of bounds or hit UB. The
# TSan pass covers the one place the codebase hands data between threads
# on a hot path: reactor <-> worker-pool completion traffic.
#
#   tools/check_sanitize.sh [sanitizer] [build-dir] [tsan-build-dir]
#
#   sanitizer       PICP_SANITIZE value (default: address,undefined)
#   build-dir       out-of-source build directory (default: build-asan)
#   tsan-build-dir  build directory for the TSan pass (default: build-tsan;
#                   "none" skips the TSan pass)
set -eu

SANITIZE="${1:-address,undefined}"
BUILD_DIR="${2:-build-asan}"
TSAN_BUILD_DIR="${3:-build-tsan}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DPICP_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j
# halt_on_error keeps a UB report from being drowned out by later tests.
# The claims tier is excluded: its gates assert wall-clock accuracy claims
# (MAPE against measured kernel timings), and a sanitizer's nonuniform
# 10-50x slowdown makes those timings meaningless, not merely slow.
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -LE claims \
  -j "$(nproc 2>/dev/null || echo 4)"
# Chaos smoke under the sanitizer: the failpoint storms exercise the error
# unwind paths (torn writes, injected errno, crash recovery) that the happy
# path never touches — exactly where lifetime bugs hide. The instrumented
# ctest tier above already ran check_chaos once; this second run with
# abort_on_error surfaces leaks/UB reports the harness's own asserts
# would otherwise swallow into a generic FAIL.
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
  "$SRC_DIR/tools/check_chaos.sh" "$BUILD_DIR/tools/picpredict" \
  "$BUILD_DIR/check_chaos_sanitize_work"
echo "sanitizer suite (${SANITIZE}) passed"

# ThreadSanitizer pass over the concurrent serving stack. Scoped to the
# suites that actually cross threads — the reactor's pool dispatch and
# completion queue, the HTTP server end-to-end, the thread pool itself,
# the artifact cache's single-flight, and the observability layer (trace
# stages ride worker threads; the access log is reactor-written but
# mutex-guarded for embedders) — because a full-suite TSan run costs 10x+
# and everything else is single-threaded by construction.
if [ "$TSAN_BUILD_DIR" != "none" ]; then
  cmake -B "$TSAN_BUILD_DIR" -S "$SRC_DIR" -DPICP_SANITIZE=thread
  cmake --build "$TSAN_BUILD_DIR" -j --target picp_tests
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    "$TSAN_BUILD_DIR/tests/picp_tests" \
    --gtest_filter='Reactor*:Http*:ThreadPool*:ArtifactCache*:AccessLog*:RequestTrace*:TraceId*:HistogramQuantile*:Prometheus*'
  echo "thread-sanitizer reactor suite passed"
fi
