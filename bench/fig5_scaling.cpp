// Fig 5: maximum number of particles per processor over the simulation for
// the paper's processor configurations (1044 / 2088 / 4176 / 8352), under
// bin-based mapping. Shape claims: (i) early in the run every configuration
// shows the *same* peak (the bin-size threshold caps the bin count below
// 1044, so extra processors sit unused); (ii) once the particle boundary
// expands past ~1044 bins, configurations above 1044 dip below it and track
// each other.

#include <cstdio>
#include <iostream>
#include <map>

#include "core/claims.hpp"
#include "study.hpp"
#include "trace/trace_reader.hpp"
#include "util/csv.hpp"
#include "workload/generator.hpp"

using namespace picp;

int main(int argc, char** argv) {
  const bench::StudyOptions options = bench::parse_options(argc, argv);
  const SimConfig cfg = bench::hele_shaw_config(options.small);
  const std::string trace_path =
      bench::ensure_trace(options, cfg, "hele_shaw");

  const SpectralMesh mesh(cfg.domain, cfg.nelx, cfg.nely, cfg.nelz,
                          cfg.points_per_dim);

  const std::map<Rank, std::vector<std::int64_t>> peaks = claims::peak_series(
      mesh, trace_path, bench::paper_rank_counts(), "bin", cfg.filter_size);
  std::vector<std::uint64_t> iterations;
  {
    TraceReader trace(trace_path);
    TraceSample sample;
    while (trace.read_next(sample)) iterations.push_back(sample.iteration);
  }

  std::printf("# Fig 5: max particles per processor vs iteration, "
              "bin-based mapping\n");
  CsvWriter csv(std::cout);
  {
    std::vector<std::string> header = {"iteration"};
    for (const auto& [ranks, series] : peaks)
      header.push_back("R" + std::to_string(ranks));
    csv.write_row(header);
  }
  for (std::size_t t = 0; t < iterations.size(); ++t) {
    std::vector<std::string> row = {std::to_string(iterations[t])};
    for (const auto& [ranks, series] : peaks)
      row.push_back(std::to_string(series[t]));
    csv.write_row(row);
  }

  // Shape summary: where do the configurations separate?
  const claims::ScalingSplit split = claims::scaling_split(peaks, 1044);
  if (split.split_index < split.num_intervals)
    std::printf("# configurations >1044 dip below 1044 from iteration %llu "
                "(paper: after iteration 7800)\n",
                static_cast<unsigned long long>(
                    iterations[split.split_index]));
  else
    std::printf("# configurations never separated (bin count stayed below "
                "1044)\n");
  std::printf("# 2088/4176/8352 identical on %zu of %zu intervals "
              "(paper: identical throughout — bins never exceed 2088)\n",
              split.identical_above, split.num_intervals);
  return 0;
}
