// Fig 5: maximum number of particles per processor over the simulation for
// the paper's processor configurations (1044 / 2088 / 4176 / 8352), under
// bin-based mapping. Shape claims: (i) early in the run every configuration
// shows the *same* peak (the bin-size threshold caps the bin count below
// 1044, so extra processors sit unused); (ii) once the particle boundary
// expands past ~1044 bins, configurations above 1044 dip below it and track
// each other.

#include <cstdio>
#include <iostream>
#include <map>

#include "mapping/mapper.hpp"
#include "study.hpp"
#include "trace/trace_reader.hpp"
#include "util/csv.hpp"
#include "workload/generator.hpp"
#include "workload/workload_stats.hpp"

using namespace picp;

int main(int argc, char** argv) {
  const bench::StudyOptions options = bench::parse_options(argc, argv);
  const SimConfig cfg = bench::hele_shaw_config(options.small);
  const std::string trace_path =
      bench::ensure_trace(options, cfg, "hele_shaw");

  const SpectralMesh mesh(cfg.domain, cfg.nelx, cfg.nely, cfg.nelz,
                          cfg.points_per_dim);

  std::map<Rank, std::vector<std::int64_t>> peaks;
  std::vector<std::uint64_t> iterations;
  for (const Rank ranks : bench::paper_rank_counts()) {
    const MeshPartition partition = rcb_partition(mesh, ranks);
    const auto mapper = make_mapper("bin", mesh, partition, cfg.filter_size);
    WorkloadParams params;
    params.compute_ghosts = false;
    params.compute_comm = false;
    WorkloadGenerator generator(mesh, partition, *mapper, params);
    TraceReader trace(trace_path);
    const WorkloadResult workload = generator.generate(trace);
    peaks[ranks] = peak_per_interval(workload.comp_real);
    if (iterations.empty()) iterations = workload.iterations;
  }

  std::printf("# Fig 5: max particles per processor vs iteration, "
              "bin-based mapping\n");
  CsvWriter csv(std::cout);
  {
    std::vector<std::string> header = {"iteration"};
    for (const auto& [ranks, series] : peaks)
      header.push_back("R" + std::to_string(ranks));
    csv.write_row(header);
  }
  for (std::size_t t = 0; t < iterations.size(); ++t) {
    std::vector<std::string> row = {std::to_string(iterations[t])};
    for (const auto& [ranks, series] : peaks)
      row.push_back(std::to_string(series[t]));
    csv.write_row(row);
  }

  // Shape summary: where do the configurations separate?
  const auto& base = peaks.at(1044);
  std::size_t split_at = iterations.size();
  for (std::size_t t = 0; t < iterations.size(); ++t) {
    if (peaks.at(2088)[t] < base[t]) {
      split_at = t;
      break;
    }
  }
  std::size_t identical_above = 0;
  for (std::size_t t = 0; t < iterations.size(); ++t)
    if (peaks.at(2088)[t] == peaks.at(4176)[t] &&
        peaks.at(4176)[t] == peaks.at(8352)[t])
      ++identical_above;
  if (split_at < iterations.size())
    std::printf("# configurations >1044 dip below 1044 from iteration %llu "
                "(paper: after iteration 7800)\n",
                static_cast<unsigned long long>(iterations[split_at]));
  else
    std::printf("# configurations never separated (bin count stayed below "
                "1044)\n");
  std::printf("# 2088/4176/8352 identical on %zu of %zu intervals "
              "(paper: identical throughout — bins never exceed 2088)\n",
              identical_above, iterations.size());
  return 0;
}
