// Fig 9: processor utilization — the percentage of processors holding at
// least one particle — for bin-based vs element-based mapping. The paper
// reports 56.13% (584 of 1044 processors) for bin-based against 0.68%
// (4 processors) for element-based at R=1044.

#include <cstdio>
#include <iostream>

#include "core/claims.hpp"
#include "study.hpp"
#include "util/csv.hpp"

using namespace picp;

int main(int argc, char** argv) {
  const bench::StudyOptions options = bench::parse_options(argc, argv);
  const SimConfig cfg = bench::hele_shaw_config(options.small);
  const std::string trace_path =
      bench::ensure_trace(options, cfg, "hele_shaw");
  const SpectralMesh mesh(cfg.domain, cfg.nelx, cfg.nely, cfg.nelz,
                          cfg.points_per_dim);

  std::printf("# Fig 9: processor utilization (%% of processors with "
              "non-zero particle workload)\n");
  CsvWriter csv(std::cout);
  csv.row("ranks", "mapper", "mean_active_ranks", "resource_utilization_pct",
          "ever_active_ranks", "ever_active_pct");

  for (const Rank ranks : bench::paper_rank_counts()) {
    for (const std::string kind : {"bin", "element"}) {
      const WorkloadResult workload = claims::mapping_workload(
          mesh, trace_path, ranks, kind, cfg.filter_size);
      const claims::UtilizationClaim util =
          claims::utilization_claim(workload.comp_real);
      csv.row(ranks, kind,
              util.stats.mean_active_fraction * static_cast<double>(ranks),
              util.resource_utilization_pct, util.stats.ever_active,
              100.0 * util.stats.ever_active_fraction);
      if (ranks == 1044)
        std::printf("# R=1044 %s: RU %.2f%% (paper: %s)\n", kind.c_str(),
                    util.resource_utilization_pct,
                    kind == "bin" ? "56.13%" : "0.68%");
    }
  }
  return 0;
}
