#pragma once

// Shared infrastructure for the figure-reproduction benches: the scaled
// Hele-Shaw case study (DESIGN.md, "Default problem scale"), plus disk
// caching of the expensive artifacts (the particle trace and instrumented
// timings) so the bench binaries can be re-run and composed cheaply.
//
// Every bench accepts two optional CLI flags:
//   --data-dir <dir>   cache directory (default "picp_data")
//   --small            quarter-scale problem for quick smoke runs

#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "picsim/sim_config.hpp"
#include "picsim/sim_driver.hpp"

namespace picp::bench {

struct StudyOptions {
  std::string data_dir = "picp_data";
  bool small = false;
};

/// Parse the common flags; unknown flags abort with a usage message.
StudyOptions parse_options(int argc, char** argv);

/// The scaled Hele-Shaw case-study configuration (the paper's 599,257
/// particles / 216,225 elements on Quartz, scaled to one node — see
/// DESIGN.md). `small` quarters the particle count and halves the run.
SimConfig hele_shaw_config(bool small);

/// The paper's processor configurations (§IV-B).
std::vector<Rank> paper_rank_counts();

/// Run (or reuse a cached) trace-producing simulation. Returns the trace
/// path. A sidecar "<tag>.wall" file records the application wall time for
/// the trace-vs-run cost comparison (§II).
std::string ensure_trace(const StudyOptions& options, const SimConfig& config,
                         const std::string& tag);

/// Run (or reuse cached) instrumented measurements for one configuration.
/// Returns the timings CSV path.
std::string ensure_timings(const StudyOptions& options,
                           const SimConfig& config, const std::string& tag);

/// Application wall seconds recorded by ensure_trace / ensure_timings.
double recorded_wall_seconds(const StudyOptions& options,
                             const std::string& tag);

/// Train (or load cached) models from a timings CSV.
ModelSet ensure_models(const StudyOptions& options,
                       const std::string& timings_path,
                       const std::string& tag,
                       const ModelGenConfig& config);

/// Train (or load cached) models from the union of several timing CSVs
/// (spanning wider workload-parameter ranges than one configuration).
ModelSet ensure_models_merged(const StudyOptions& options,
                              const std::vector<std::string>& timing_paths,
                              const std::string& tag,
                              const ModelGenConfig& config);

}  // namespace picp::bench
