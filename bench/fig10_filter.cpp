// Fig 10: projection-filter-size parameter study.
//  (a) maximum number of particle bins generated for different projection
//      filter values — smaller filters (lower threshold bin size) generate
//      more bins;
//  (b) execution time of the create_ghost_particles kernel for different
//      filter values — larger filters spread particle influence further and
//      create more ghosts, so the kernel slows down sharply.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/claims.hpp"
#include "picsim/kernels.hpp"
#include "picsim/instrumentation.hpp"
#include "study.hpp"
#include "trace/trace_reader.hpp"
#include "util/csv.hpp"
#include "workload/ghost_finder.hpp"

using namespace picp;

int main(int argc, char** argv) {
  const bench::StudyOptions options = bench::parse_options(argc, argv);
  const SimConfig cfg = bench::hele_shaw_config(options.small);
  const std::string trace_path =
      bench::ensure_trace(options, cfg, "hele_shaw");
  const SpectralMesh mesh(cfg.domain, cfg.nelx, cfg.nely, cfg.nelz,
                          cfg.points_per_dim);
  const MeshPartition partition = rcb_partition(mesh, 1044);

  GasParams gas_params = cfg.gas;
  const GasModel gas(gas_params, cfg.domain);
  SolverKernels kernels(mesh, gas, cfg.physics);

  // Measure create_ghost on a late trace sample (expanded cloud — the
  // expensive regime) over all particles.
  TraceReader trace(trace_path);
  TraceSample sample;
  while (trace.read_next(sample)) {
  }  // keep the final sample
  std::vector<std::uint32_t> ids(sample.positions.size());
  for (std::size_t i = 0; i < ids.size(); ++i)
    ids[i] = static_cast<std::uint32_t>(i);

  std::printf("# Fig 10: projection filter size study (threshold bin size "
              "== filter size, as in CMT-nek)\n");
  CsvWriter csv(std::cout);
  csv.row("filter", "max_bins", "create_ghost_ms", "ghosts_created");

  const std::vector<double> filters = {0.012, 0.016, 0.023, 0.032,
                                       0.046, 0.064, 0.090};
  std::int64_t prev_bins = -1;
  double prev_ms = -1.0;
  bool bins_monotone_down = true;
  bool time_monotone_up = true;
  for (const double filter : filters) {
    // (a) relaxed bin count over the whole trace (strided for speed).
    const std::int64_t max_bins =
        claims::relaxed_bin_growth(trace_path, filter, 4).max_bins;

    // (b) measured create_ghost_particles execution time.
    const GhostFinder finder(mesh, partition, filter);
    std::vector<GhostRecord> ghosts;
    const double seconds = measure_adaptive(
        [&] {
          kernels.create_ghost(sample.positions, ids, /*owner=*/-1, finder,
                               ghosts);
        },
        5e-3, 16);

    csv.row(filter, max_bins, seconds * 1e3, ghosts.size());
    if (prev_bins >= 0 && max_bins > prev_bins) bins_monotone_down = false;
    if (prev_ms >= 0.0 && seconds * 1e3 < prev_ms * 0.95)
      time_monotone_up = false;
    prev_bins = max_bins;
    prev_ms = seconds * 1e3;
  }
  std::printf("# (a) bins %s with filter size (paper: smaller filter => "
              "more bins)\n",
              bins_monotone_down ? "decrease monotonically" : "NOT monotone");
  std::printf("# (b) create_ghost_particles time %s with filter size "
              "(paper: significant increase at large filters)\n",
              time_monotone_up ? "increases" : "NOT monotone");
  return 0;
}
