// Micro-benchmarks of the Dynamic Workload Generator internals: the
// ghost-rank search (the generator's dominant cost) and full per-interval
// accounting throughput.

#include <benchmark/benchmark.h>

#include "mapping/element_mapper.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"
#include "workload/ghost_finder.hpp"

namespace {

using namespace picp;

struct World {
  SpectralMesh mesh{Aabb(Vec3(0, 0, 0), Vec3(1, 1, 2)), 32, 32, 64, 5};
  MeshPartition partition{rcb_partition(mesh, 1044)};
};

std::vector<Vec3> cloud(std::size_t n) {
  Xoshiro256 rng(7);
  std::vector<Vec3> out(n);
  for (auto& p : out)
    p = Vec3(rng.uniform(0.3, 0.7), rng.uniform(0.3, 0.7),
             rng.uniform(0.05, 0.3));
  return out;
}

void BM_GhostRanksNear(benchmark::State& state) {
  World w;
  const GhostFinder finder(w.mesh, w.partition,
                           static_cast<double>(state.range(0)) * 1e-3);
  const auto positions = cloud(10000);
  std::vector<Rank> out;
  std::size_t i = 0;
  for (auto _ : state) {
    finder.ranks_near(positions[i], 0, out);
    benchmark::DoNotOptimize(out.data());
    i = (i + 1) % positions.size();
  }
}
BENCHMARK(BM_GhostRanksNear)->Arg(12)->Arg(23)->Arg(46)->Arg(92);

void BM_IntervalAccounting(benchmark::State& state) {
  World w;
  const auto positions = cloud(static_cast<std::size_t>(state.range(0)));
  ElementMapper mapper(w.mesh, w.partition);
  std::vector<Rank> owners;
  mapper.map(positions, owners);
  WorkloadParams params;
  params.ghost_radius = 0.023;
  for (auto _ : state) {
    WorkloadResult result;
    result.num_ranks = 1044;
    result.comp_real = CompMatrix(1044, 1);
    result.comp_ghost = CompMatrix(1044, 1);
    result.comm_real = CommMatrix(1044, 1);
    result.comm_ghost = CommMatrix(1044, 1);
    accumulate_interval_workload(w.mesh, w.partition, positions, owners, {},
                                 params, 0, result);
    benchmark::DoNotOptimize(result.comp_real.interval_total(0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IntervalAccounting)->Arg(10000)->Arg(30000);

void BM_CommMatrixAdd(benchmark::State& state) {
  CommMatrix comm(8352, 1);
  Xoshiro256 rng(9);
  for (auto _ : state) {
    const Rank from = static_cast<Rank>(rng.uniform_below(8352));
    const Rank to = static_cast<Rank>(rng.uniform_below(8352));
    comm.add(from, to, 0, 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CommMatrixAdd);

}  // namespace
