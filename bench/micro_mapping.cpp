// Micro-benchmarks of the particle-mapping hot paths: bin-tree construction
// (rebuilt every interval in bin-based mapping) and bulk owner assignment.

#include <benchmark/benchmark.h>

#include "mapping/bin_mapper.hpp"
#include "mapping/element_mapper.hpp"
#include "mapping/hilbert_mapper.hpp"
#include "util/rng.hpp"

namespace {

using namespace picp;

std::vector<Vec3> cloud(std::size_t n) {
  Xoshiro256 rng(42);
  std::vector<Vec3> out(n);
  for (auto& p : out)
    p = Vec3(rng.uniform(0.3, 0.7), rng.uniform(0.3, 0.7),
             rng.uniform(0.05, 0.25));
  return out;
}

void BM_BinTreeBuild(benchmark::State& state) {
  const auto positions = cloud(static_cast<std::size_t>(state.range(0)));
  BinTree tree;
  BinTree::BuildParams params;
  params.threshold = 0.02;
  params.max_bins = 1044;
  for (auto _ : state) {
    tree.build(positions, params);
    benchmark::DoNotOptimize(tree.num_bins());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BinTreeBuild)->Arg(10000)->Arg(30000)->Arg(100000);

void BM_BinTreePointQuery(benchmark::State& state) {
  const auto positions = cloud(30000);
  BinTree tree;
  tree.build(positions, {0.02, 1044, 1});
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.bin_of(positions[i]));
    i = (i + 1) % positions.size();
  }
}
BENCHMARK(BM_BinTreePointQuery);

void BM_ElementMap(benchmark::State& state) {
  const SpectralMesh mesh(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 2)), 32, 32, 64, 5);
  const MeshPartition partition = rcb_partition(mesh, 1044);
  ElementMapper mapper(mesh, partition);
  const auto positions = cloud(static_cast<std::size_t>(state.range(0)));
  std::vector<Rank> owners;
  for (auto _ : state) {
    mapper.map(positions, owners);
    benchmark::DoNotOptimize(owners.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ElementMap)->Arg(30000)->Arg(100000);

void BM_BinMap(benchmark::State& state) {
  BinMapper mapper(1044, 0.02);
  const auto positions = cloud(static_cast<std::size_t>(state.range(0)));
  std::vector<Rank> owners;
  for (auto _ : state) {
    mapper.map(positions, owners);
    benchmark::DoNotOptimize(owners.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BinMap)->Arg(30000)->Arg(100000);

void BM_HilbertMap(benchmark::State& state) {
  const SpectralMesh mesh(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 2)), 32, 32, 64, 5);
  HilbertMapper mapper(mesh, 1044);
  const auto positions = cloud(static_cast<std::size_t>(state.range(0)));
  std::vector<Rank> owners;
  for (auto _ : state) {
    mapper.map(positions, owners);
    benchmark::DoNotOptimize(owners.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HilbertMap)->Arg(30000);

void BM_RcbPartition(benchmark::State& state) {
  const SpectralMesh mesh(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 2)), 32, 32, 64, 5);
  for (auto _ : state) {
    const MeshPartition partition =
        rcb_partition(mesh, static_cast<Rank>(state.range(0)));
    benchmark::DoNotOptimize(partition.max_elements_per_rank());
  }
}
BENCHMARK(BM_RcbPartition)->Arg(1044)->Arg(8352);

}  // namespace
