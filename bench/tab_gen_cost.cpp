// §II cost claim: generating the particle workload from a trace is orders
// of magnitude cheaper than obtaining the same information by running the
// application. The paper quotes <2 minutes of workload generation for 4176
// processors against ~24 hours of application time.

#include <cstdio>
#include <iostream>

#include "core/claims.hpp"
#include "study.hpp"
#include "util/csv.hpp"

using namespace picp;

int main(int argc, char** argv) {
  const bench::StudyOptions options = bench::parse_options(argc, argv);
  const SimConfig cfg = bench::hele_shaw_config(options.small);
  const std::string trace_path =
      bench::ensure_trace(options, cfg, "hele_shaw");
  const double app_seconds =
      bench::recorded_wall_seconds(options, "hele_shaw");
  const SpectralMesh mesh(cfg.domain, cfg.nelx, cfg.nely, cfg.nelz,
                          cfg.points_per_dim);

  std::printf("# Table: workload-generation cost vs application run cost "
              "(paper: <2 min vs ~24 h at R=4176)\n");
  CsvWriter csv(std::cout);
  csv.row("ranks", "mapper", "ghosts", "gen_seconds", "app_seconds",
          "speedup");

  for (const Rank ranks : bench::paper_rank_counts()) {
    for (const bool ghosts : {false, true}) {
      const double gen_seconds = claims::time_workload_generation(
          mesh, trace_path, ranks, "bin", cfg.filter_size, ghosts);
      csv.row(ranks, "bin", ghosts ? "yes" : "no", gen_seconds, app_seconds,
              app_seconds / gen_seconds);
    }
  }
  std::printf("# note: app_seconds is this proxy's wall time; the real "
              "CMT-nek run the trace stands in for costs hours on\n"
              "# thousands of nodes, so the achievable speedup is far "
              "larger than measured here\n");
  return 0;
}
