// Fig 8: peak particle workload of the Hele-Shaw case study under (a)
// bin-based and (b) element-based mapping, per processor configuration.
// Shape claim: bin-based mapping reduces the peak particle workload by
// roughly two orders of magnitude.

#include <cstdio>
#include <iostream>
#include <map>

#include "core/claims.hpp"
#include "study.hpp"
#include "util/csv.hpp"
#include "workload/workload_stats.hpp"

using namespace picp;

int main(int argc, char** argv) {
  const bench::StudyOptions options = bench::parse_options(argc, argv);
  const SimConfig cfg = bench::hele_shaw_config(options.small);
  const std::string trace_path =
      bench::ensure_trace(options, cfg, "hele_shaw");
  const SpectralMesh mesh(cfg.domain, cfg.nelx, cfg.nely, cfg.nelz,
                          cfg.points_per_dim);

  std::printf("# Fig 8: peak particle workload per interval, bin-based vs "
              "element-based mapping\n");
  CsvWriter csv(std::cout);
  csv.row("ranks", "mapper", "global_peak", "final_interval_peak",
          "mean_interval_peak");

  std::map<Rank, std::map<std::string, std::int64_t>> global_peaks;
  for (const Rank ranks : bench::paper_rank_counts()) {
    for (const std::string kind : {"bin", "element"}) {
      const WorkloadResult workload = claims::mapping_workload(
          mesh, trace_path, ranks, kind, cfg.filter_size);
      const auto peaks = peak_per_interval(workload.comp_real);
      double mean_peak = 0.0;
      for (const std::int64_t p : peaks)
        mean_peak += static_cast<double>(p);
      mean_peak /= static_cast<double>(peaks.size());
      const std::int64_t global_peak = workload.comp_real.global_max();
      global_peaks[ranks][kind] = global_peak;
      csv.row(ranks, kind, global_peak, peaks.back(), mean_peak);
    }
  }
  for (const auto& [ranks, by_kind] : global_peaks) {
    const double ratio =
        claims::peak_ratio(by_kind.at("element"), by_kind.at("bin"));
    std::printf("# R=%d: element/bin peak-workload ratio %.0fx "
                "(paper: ~two orders of magnitude)\n",
                ranks, ratio);
  }
  return 0;
}
