// Micro-benchmarks of the PIC solver kernels — the workloads whose cost the
// performance models capture. Per-particle throughput here is what the
// trained models' coefficients correspond to.

#include <benchmark/benchmark.h>

#include <numeric>

#include "picsim/collision_grid.hpp"
#include "picsim/kernels.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/ghost_finder.hpp"

namespace {

using namespace picp;

struct KernelBench {
  SpectralMesh mesh{Aabb(Vec3(0, 0, 0), Vec3(1, 1, 2)), 32, 32, 64, 5};
  MeshPartition partition{rcb_partition(mesh, 1044)};
  GasModel gas{GasParams{}, mesh.domain()};
  PhysicsParams physics;
  SolverKernels kernels{mesh, gas, physics};
  std::vector<Vec3> positions;
  std::vector<Vec3> velocities;
  std::vector<Vec3> gas_values;
  std::vector<std::uint32_t> ids;

  explicit KernelBench(std::size_t n) {
    Xoshiro256 rng(11);
    positions.resize(n);
    velocities.resize(n);
    gas_values.resize(n);
    for (auto& p : positions)
      p = Vec3(rng.uniform(0.3, 0.7), rng.uniform(0.3, 0.7),
               rng.uniform(0.05, 0.3));
    ids.resize(n);
    std::iota(ids.begin(), ids.end(), 0u);
  }
};

void BM_Interpolate(benchmark::State& state) {
  KernelBench b(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    b.kernels.interpolate(b.positions, b.ids, 0.5, b.gas_values);
    benchmark::DoNotOptimize(b.gas_values.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Interpolate)->Arg(30000);

void BM_EqSolve(benchmark::State& state) {
  KernelBench b(static_cast<std::size_t>(state.range(0)));
  CollisionGrid grid(0.05);
  grid.rebuild(b.positions);
  std::vector<Vec3> out(b.positions.size());
  for (auto _ : state) {
    b.kernels.eq_solve(b.velocities, b.gas_values, grid, b.ids, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EqSolve)->Arg(30000);

void BM_Push(benchmark::State& state) {
  KernelBench b(static_cast<std::size_t>(state.range(0)));
  std::vector<Vec3> out(b.positions.size());
  for (auto _ : state) {
    b.kernels.push(b.positions, b.velocities, b.ids, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Push)->Arg(30000);

void BM_Project(benchmark::State& state) {
  KernelBench b(30000);
  ProjectionField field(b.mesh.points_per_dim());
  const double filter = static_cast<double>(state.range(0)) * 1e-3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        b.kernels.project(b.positions, b.ids, filter, field));
    field.clear();
  }
  state.SetItemsProcessed(state.iterations() * 30000);
}
BENCHMARK(BM_Project)->Arg(12)->Arg(23)->Arg(46);

void BM_CreateGhost(benchmark::State& state) {
  KernelBench b(30000);
  const GhostFinder finder(b.mesh, b.partition,
                           static_cast<double>(state.range(0)) * 1e-3);
  std::vector<GhostRecord> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        b.kernels.create_ghost(b.positions, b.ids, -1, finder, out));
  }
  state.SetItemsProcessed(state.iterations() * 30000);
}
BENCHMARK(BM_CreateGhost)->Arg(12)->Arg(23)->Arg(46);

void BM_CollisionRebuild(benchmark::State& state) {
  KernelBench b(static_cast<std::size_t>(state.range(0)));
  CollisionGrid grid(0.01);
  for (auto _ : state) {
    grid.rebuild(b.positions);
    benchmark::DoNotOptimize(grid.cell_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CollisionRebuild)->Arg(30000);

// Thread-scaling sweep of the driver's fused physics step (interpolate →
// eq_solve → push chunked over one pool, exactly as SimDriver::run executes
// it). Compare items_per_second across thread counts for the speedup; the
// Arg is the worker count.
void BM_PhysicsStepThreads(benchmark::State& state) {
  const std::size_t n = 30000;
  KernelBench b(n);
  const auto threads = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(threads);
  CollisionGrid grid(0.05);
  grid.rebuild(b.positions, &pool);
  std::vector<Vec3> next_vel(n);
  std::vector<Vec3> next_pos(n);
  const auto chunk = [&](std::size_t begin, std::size_t end) {
    const std::span<const std::uint32_t> ids(b.ids.data() + begin,
                                             end - begin);
    b.kernels.interpolate(b.positions, ids, 0.5, b.gas_values);
    b.kernels.eq_solve(b.velocities, b.gas_values, grid, ids, next_vel);
    b.kernels.push(b.positions, next_vel, ids, next_pos);
  };
  for (auto _ : state) {
    if (threads > 1)
      pool.parallel_for(n, 256, chunk);
    else
      chunk(0, n);
    benchmark::DoNotOptimize(next_pos.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PhysicsStepThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// The parallel counting-sort rebuild on its own.
void BM_CollisionRebuildThreads(benchmark::State& state) {
  KernelBench b(30000);
  const auto threads = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(threads);
  CollisionGrid grid(0.01);
  for (auto _ : state) {
    grid.rebuild(b.positions, threads > 1 ? &pool : nullptr);
    benchmark::DoNotOptimize(grid.cell_count());
  }
  state.SetItemsProcessed(state.iterations() * 30000);
}
BENCHMARK(BM_CollisionRebuildThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

}  // namespace
