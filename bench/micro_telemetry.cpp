// Micro-benchmarks of the telemetry hot paths: the cost the instrumented
// code pays per site with telemetry on, and — the number the <2% disabled
// regression budget rests on — with telemetry off.

#include <benchmark/benchmark.h>

#include "telemetry/telemetry.hpp"

namespace {

using namespace picp;

telemetry::SessionOptions session(bool enabled) {
  telemetry::SessionOptions options;
  options.enabled = enabled;
  return options;
}

void BM_CounterIncrement(benchmark::State& state) {
  telemetry::configure(session(true));
  telemetry::Counter& counter =
      telemetry::registry().counter("bench.counter");
  for (auto _ : state) counter.add();
  state.SetItemsProcessed(state.iterations());
  telemetry::configure(session(false));
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramObserve(benchmark::State& state) {
  telemetry::configure(session(true));
  const double bounds[] = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2};
  telemetry::Histogram& histogram =
      telemetry::registry().histogram("bench.histogram", bounds);
  double value = 1e-7;
  for (auto _ : state) {
    histogram.observe(value);
    value = value < 1e-1 ? value * 10.0 : 1e-7;  // sweep every bucket
  }
  state.SetItemsProcessed(state.iterations());
  telemetry::configure(session(false));
}
BENCHMARK(BM_HistogramObserve);

void BM_ScopedSpanEnabled(benchmark::State& state) {
  telemetry::configure(session(true));
  telemetry::Phase& phase = telemetry::phase("bench.span");
  for (auto _ : state) {
    const telemetry::ScopedSpan span("bench.span", phase, "bench");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
  telemetry::configure(session(false));
}
BENCHMARK(BM_ScopedSpanEnabled);

void BM_ScopedSpanDisabled(benchmark::State& state) {
  telemetry::configure(session(false));
  telemetry::Phase& phase = telemetry::phase("bench.span_off");
  for (auto _ : state) {
    const telemetry::ScopedSpan span("bench.span_off", phase, "bench");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopedSpanDisabled);

void BM_CounterIncrementDisabledGuard(benchmark::State& state) {
  // The idiom every hot site uses: one enabled() branch guarding the add.
  telemetry::configure(session(false));
  telemetry::Counter& counter =
      telemetry::registry().counter("bench.guarded");
  for (auto _ : state) {
    if (telemetry::enabled()) counter.add();
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterIncrementDisabledGuard);

}  // namespace
