// Ablation: dynamic workload generation vs the static-uniform-workload
// assumption of conventional prediction frameworks (the paper's §I
// motivation). Quantifies, for both mapping algorithms, how far a static
// model's per-interval peak load and migration traffic are from the
// trace-derived truth — the gap that makes PIC applications "irregular".

#include <cstdio>
#include <iostream>

#include "core/static_baseline.hpp"
#include "mapping/mapper.hpp"
#include "study.hpp"
#include "trace/trace_reader.hpp"
#include "util/csv.hpp"
#include "workload/generator.hpp"

using namespace picp;

int main(int argc, char** argv) {
  const bench::StudyOptions options = bench::parse_options(argc, argv);
  const SimConfig cfg = bench::hele_shaw_config(options.small);
  const std::string trace_path =
      bench::ensure_trace(options, cfg, "hele_shaw");
  const SpectralMesh mesh(cfg.domain, cfg.nelx, cfg.nely, cfg.nelz,
                          cfg.points_per_dim);

  std::printf("# Ablation: static-uniform workload assumption vs the "
              "Dynamic Workload Generator\n");
  CsvWriter csv(std::cout);
  csv.row("ranks", "mapper", "static_peak_mape_pct", "worst_peak_ratio",
          "missed_migration");

  for (const Rank ranks : {1044, 4176}) {
    for (const std::string kind : {"bin", "element"}) {
      const MeshPartition partition =
          rcb_partition(mesh, static_cast<Rank>(ranks));
      const auto mapper = make_mapper(kind, mesh, partition, cfg.filter_size);
      WorkloadParams params;
      params.compute_ghosts = false;
      WorkloadGenerator generator(mesh, partition, *mapper, params);
      TraceReader trace(trace_path);
      const WorkloadResult dynamic = generator.generate(trace);

      StaticBaselineParams sb;
      sb.num_ranks = static_cast<Rank>(ranks);
      sb.num_intervals = dynamic.num_intervals();
      sb.num_particles = static_cast<std::int64_t>(cfg.bed.num_particles);
      const WorkloadResult baseline = static_uniform_workload(sb);

      const WorkloadComparison cmp = compare_workloads(dynamic, baseline);
      csv.row(ranks, kind, cmp.peak_load_mape, cmp.worst_peak_ratio,
              cmp.missed_migration);
    }
  }
  std::printf(
      "# reading: a static model underestimates the critical-path rank by "
      "worst_peak_ratio at some interval\n"
      "# and misses every migrated particle — the error the paper's "
      "trace-driven generator eliminates.\n");
  return 0;
}
