#include "study.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace picp::bench {

namespace fs = std::filesystem;

StudyOptions parse_options(int argc, char** argv) {
  StudyOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--data-dir" && i + 1 < argc) {
      options.data_dir = argv[++i];
    } else if (arg == "--small") {
      options.small = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--data-dir <dir>] [--small]\n", argv[0]);
      std::exit(2);
    }
  }
  fs::create_directories(options.data_dir);
  return options;
}

SimConfig hele_shaw_config(bool small) {
  SimConfig cfg;  // defaults are the calibrated scaled case study
  cfg.bed.num_particles = small ? 8000 : 120000;
  cfg.num_iterations = small ? 2000 : 4000;
  cfg.sample_every = 50;
  cfg.num_ranks = 1044;
  cfg.mapper_kind = "bin";
  cfg.measure = false;
  // The trace producer threads its solver loop; results are bit-identical
  // for any thread count, so cached traces stay comparable across hosts.
  cfg.threads = 0;  // hardware concurrency
  // Compact (f32) trace, as in production PIC runs; the sub-micron rounding
  // is far below any mapping decision scale.
  cfg.trace_float64 = false;
  // Measurement settings tuned for microsecond-scale per-rank kernels:
  // longer windows and every second interval.
  cfg.measure_every = 2;
  cfg.measure_min_seconds = 3e-5;
  cfg.measure_max_reps = 2048;
  return cfg;
}

std::vector<Rank> paper_rank_counts() { return {1044, 2088, 4176, 8352}; }

namespace {
std::string wall_path(const StudyOptions& options, const std::string& tag) {
  return options.data_dir + "/" + tag + ".wall";
}

void record_wall(const StudyOptions& options, const std::string& tag,
                 double seconds) {
  std::ofstream out(wall_path(options, tag));
  out << seconds << '\n';
}
}  // namespace

double recorded_wall_seconds(const StudyOptions& options,
                             const std::string& tag) {
  std::ifstream in(wall_path(options, tag));
  PICP_REQUIRE(in.is_open(), "no recorded wall time for tag " + tag +
                                 " — run the producing bench first");
  double seconds = 0.0;
  in >> seconds;
  return seconds;
}

std::string ensure_trace(const StudyOptions& options, const SimConfig& config,
                         const std::string& tag) {
  const std::string path = options.data_dir + "/" + tag + ".trace";
  if (fs::exists(path) && fs::exists(wall_path(options, tag))) {
    PICP_LOG_INFO << "reusing cached trace " << path;
    return path;
  }
  PICP_LOG_INFO << "producing trace " << path << " ("
                << config.bed.num_particles << " particles, "
                << config.num_iterations << " iterations)";
  SimDriver driver(config);
  const SimResult result = driver.run(path);
  record_wall(options, tag, result.wall_seconds - result.measure_seconds);
  return path;
}

std::string ensure_timings(const StudyOptions& options,
                           const SimConfig& config, const std::string& tag) {
  const std::string path = options.data_dir + "/" + tag + ".timings.csv";
  if (fs::exists(path)) {
    PICP_LOG_INFO << "reusing cached timings " << path;
    return path;
  }
  SimConfig measured = config;
  measured.measure = true;
  PICP_LOG_INFO << "instrumented run for " << tag << " (R="
                << measured.num_ranks << ")";
  SimDriver driver(measured);
  const SimResult result = driver.run();
  result.timings.save_csv(path);
  record_wall(options, tag, result.wall_seconds - result.measure_seconds);
  return path;
}

namespace {
ModelSet train_and_cache(const StudyOptions& options,
                         const KernelTimings& timings, const std::string& tag,
                         const ModelGenConfig& config) {
  const std::string path = options.data_dir + "/" + tag + ".models.txt";
  TrainReport report;
  const ModelSet models = train_models(timings, config, &report);
  for (const auto& fit : report.kernels)
    PICP_LOG_INFO << "model " << fit.kernel << " (" << fit.rows
                  << " rows, train MAPE " << fit.train_mape
                  << "%): " << fit.formula;
  models.save(path);
  return models;
}
}  // namespace

ModelSet ensure_models(const StudyOptions& options,
                       const std::string& timings_path,
                       const std::string& tag,
                       const ModelGenConfig& config) {
  const std::string path = options.data_dir + "/" + tag + ".models.txt";
  if (fs::exists(path)) {
    PICP_LOG_INFO << "reusing cached models " << path;
    return ModelSet::load(path);
  }
  return train_and_cache(options, KernelTimings::load_csv(timings_path), tag,
                         config);
}

ModelSet ensure_models_merged(const StudyOptions& options,
                              const std::vector<std::string>& timing_paths,
                              const std::string& tag,
                              const ModelGenConfig& config) {
  const std::string path = options.data_dir + "/" + tag + ".models.txt";
  if (fs::exists(path)) {
    PICP_LOG_INFO << "reusing cached models " << path;
    return ModelSet::load(path);
  }
  KernelTimings merged;
  for (const std::string& timings_path : timing_paths) {
    const KernelTimings loaded = KernelTimings::load_csv(timings_path);
    for (const TimingRecord& rec : loaded.records()) merged.add(rec);
  }
  return train_and_cache(options, merged, tag, config);
}

}  // namespace picp::bench
