// Fig 7: Mean Absolute Percentage Error of the per-kernel performance
// predictions against instrumented measurements, for each processor
// configuration. The paper reports an average MAPE of 8.42% with a peak of
// 17.7%. The prediction side uses ONLY the trace (via the Dynamic Workload
// Generator) and the trained models — never the measured run's workload.
//
// This bench also exercises the trace-driven system-level simulation the
// paper lists as BE-SST's next version: it prints the DES-predicted
// particle-phase time per configuration.

#include <cstdio>
#include <iostream>

#include "core/claims.hpp"
#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "core/validation.hpp"
#include "study.hpp"
#include "util/csv.hpp"

using namespace picp;

int main(int argc, char** argv) {
  const bench::StudyOptions options = bench::parse_options(argc, argv);
  const SimConfig base = bench::hele_shaw_config(options.small);
  const std::string trace_path =
      bench::ensure_trace(options, base, "hele_shaw");

  // Instrumented runs (measurement does not perturb the physics, so the
  // shared trace describes every run's particle motion).
  std::vector<Rank> ranks = bench::paper_rank_counts();
  std::vector<std::string> timing_paths;
  for (const Rank r : ranks) {
    SimConfig cfg = base;
    cfg.num_ranks = r;
    timing_paths.push_back(bench::ensure_timings(
        options, cfg, "measured_R" + std::to_string(r)));
  }

  // Model Generator: train on the smallest and largest configurations (the
  // paper benchmarks "multiple parameter combinations" to span the workload
  // parameter ranges — here per-rank np and nel); the intermediate
  // configurations are pure prediction targets.
  ModelGenConfig mg;
  mg.symreg.threads = 0;
  const ModelSet models = bench::ensure_models_merged(
      options, {timing_paths.front(), timing_paths.back()}, "hele_shaw", mg);

  const SpectralMesh mesh(base.domain, base.nelx, base.nely, base.nelz,
                          base.points_per_dim);
  const PredictionPipeline pipeline(mesh, models);
  const Predictor predictor(models, base.filter_size);

  std::printf("# Fig 7: per-kernel prediction MAPE by processor "
              "configuration (paper: avg 8.42%%, peak 17.7%%)\n");
  CsvWriter csv(std::cout);
  csv.row("ranks", "kernel", "samples", "mape_pct", "aggregate_mape_pct",
          "peak_err_pct");

  claims::MapeSummary summary;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    PredictionConfig pc;
    pc.mapper_kind = base.mapper_kind;
    pc.num_ranks = ranks[i];
    pc.filter_size = base.filter_size;
    TraceReader trace(trace_path);
    const WorkloadResult workload = pipeline.generate_workload(trace, pc);

    const KernelTimings measured = KernelTimings::load_csv(timing_paths[i]);
    const ValidationReport report =
        validate_predictions(measured, predictor, workload, 1e-6);
    for (const KernelAccuracy& k : report.kernels)
      csv.row(ranks[i], k.kernel, k.samples, k.mape, k.aggregate_mape,
              k.peak_error);
    summary.add(report);

    // End-to-end system-level prediction (trace-driven DES).
    TraceReader trace2(trace_path);
    const PredictionOutcome outcome = pipeline.predict(trace2, pc);
    std::printf("# R=%d: DES-predicted particle-phase time %.4f s "
                "(compute critical path %.4f s, %llu events)\n",
                ranks[i], outcome.sim.total_seconds,
                outcome.sim.critical_path_seconds,
                static_cast<unsigned long long>(outcome.sim.events));
  }
  std::printf("# average per-record MAPE over all kernels and "
              "configurations: %.2f%%, aggregate (per-interval) MAPE: "
              "%.2f%% (paper: 8.42%%), worst per-kernel MAPE: %.2f%% "
              "(paper peak: 17.7%%)\n",
              summary.record_mape(), summary.aggregate_mape(),
              summary.peak_kernel_mape());
  return 0;
}
