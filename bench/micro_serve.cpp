// Load generator for the prediction daemon: spins up the real HttpServer
// (epoll reactor) + PredictionService in-process, then drives it through
// four phases over the same server:
//
//   warmup        one sequential pass per distinct config (cold
//                 generation, not measured) so the measured phases
//                 compare like with like;
//   baseline      closed loop, K persistent keep-alive connections — the
//                 all-hits hot path the daemon is built around;
//   delay_1in100  the same load with `http.write=delay(5):1in100` armed —
//                 the failure-mode column: what 1% slow writes do to p99;
//   open_loop_10k N concurrent connections (default 10000) opened by a
//                 forked client process, each issuing one identical
//                 cached request — the reactor's concurrency ceiling.
//                 Forked because the container caps fds at 20000 per
//                 process: the server holds N sockets, the client child
//                 holds the other N in its own fd table. Latency here is
//                 burst-to-response (open loop), not per-request service
//                 time; `peak_connections` proves all N were concurrent.
//
// Reports latency percentiles, throughput, and the cache hit rate observed
// on the wire (X-Picp-Cache) per phase. Snapshot rows live in
// results/micro_serve.txt; --json writes the machine-readable snapshot
// appended to BENCH_serve.json (see tools/check_bench_serve.sh for the
// p99 regression guard).
//
// Usage: micro_serve [--connections K] [--requests M] [--distinct D]
//                    [--open-connections N] [--json FILE]

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "picsim/sim_driver.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "telemetry/telemetry.hpp"
#include "util/failpoint.hpp"

namespace picp {
namespace {

struct LoadResult {
  std::vector<double> latencies_us;  // one per completed request
  std::uint64_t wire_hits = 0;
  std::uint64_t failures = 0;
};

/// One measured phase, aggregated over every client.
struct PhaseResult {
  std::string name;
  std::size_t samples = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0, max_us = 0;
  double throughput_rps = 0;
  double cache_hit_pct = 0;
  std::uint64_t failures = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) / 100.0 + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

/// One client: a persistent connection issuing `requests` POSTs, rotating
/// the rank count through `distinct` values.
LoadResult run_client(std::uint16_t port, std::size_t requests,
                      std::size_t distinct, std::size_t seed) {
  LoadResult result;
  result.latencies_us.reserve(requests);
  serve::HttpConnection conn(serve::connect_tcp("127.0.0.1", port));
  serve::HttpLimits limits;
  for (std::size_t i = 0; i < requests; ++i) {
    const int ranks = 16 + 16 * static_cast<int>((seed + i) % distinct);
    serve::HttpRequest request;
    request.method = "POST";
    request.target = "/v1/predict";
    request.body = "{\"ranks\": [" + std::to_string(ranks) + "]}";
    const auto start = std::chrono::steady_clock::now();
    conn.write_request(request, "127.0.0.1");
    serve::HttpResponse response;
    if (!conn.read_response(response, limits) || response.status != 200) {
      ++result.failures;
      continue;
    }
    const auto elapsed = std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    result.latencies_us.push_back(elapsed);
    const std::string* cache = response.header("x-picp-cache");
    if (cache != nullptr && *cache == "hit") ++result.wire_hits;
  }
  return result;
}

/// Drive the closed loop once and fold every client into one PhaseResult.
PhaseResult run_phase(const std::string& name, std::uint16_t port,
                      std::size_t connections, std::size_t requests,
                      std::size_t distinct) {
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<LoadResult> per_client(connections);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < connections; ++c)
    clients.emplace_back([&, c] {
      per_client[c] = run_client(port, requests, distinct, c);
    });
  for (auto& t : clients) t.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::vector<double> latencies;
  PhaseResult phase;
  phase.name = name;
  for (const LoadResult& r : per_client) {
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
    phase.cache_hit_pct += static_cast<double>(r.wire_hits);
    phase.failures += r.failures;
  }
  std::sort(latencies.begin(), latencies.end());
  phase.samples = latencies.size();
  const double total = static_cast<double>(latencies.size());
  phase.p50_us = percentile(latencies, 50);
  phase.p95_us = percentile(latencies, 95);
  phase.p99_us = percentile(latencies, 99);
  phase.max_us = latencies.empty() ? 0.0 : latencies.back();
  phase.throughput_rps = total / wall_seconds;
  phase.cache_hit_pct =
      total > 0 ? 100.0 * phase.cache_hit_pct / total : 0.0;
  return phase;
}

/// The open-loop client, run inside the forked child: open `n` concurrent
/// connections, send one identical cached request on every one of them,
/// then collect every response. All sockets stay open until every
/// response is read, so the server provably holds `n` connections at once.
PhaseResult run_open_loop_client(std::uint16_t port, std::size_t n) {
  PhaseResult phase;
  phase.name = "open_loop_10k";
  std::vector<std::unique_ptr<serve::HttpConnection>> conns;
  conns.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    try {
      conns.push_back(std::make_unique<serve::HttpConnection>(
          serve::connect_tcp("127.0.0.1", port)));
    } catch (const std::exception&) {
      ++phase.failures;
      conns.push_back(nullptr);
    }
  }

  serve::HttpRequest request;
  request.method = "POST";
  request.target = "/v1/predict";
  request.body = "{\"ranks\": [16]}";  // warmed by the closed-loop phases

  const auto burst_start = std::chrono::steady_clock::now();
  std::vector<std::chrono::steady_clock::time_point> sent(conns.size());
  for (std::size_t i = 0; i < conns.size(); ++i) {
    if (conns[i] == nullptr) continue;
    try {
      conns[i]->write_request(request, "127.0.0.1");
      sent[i] = std::chrono::steady_clock::now();
    } catch (const std::exception&) {
      ++phase.failures;
      conns[i].reset();
    }
  }

  std::vector<double> latencies;
  latencies.reserve(conns.size());
  std::uint64_t wire_hits = 0;
  serve::HttpLimits limits;
  limits.io_timeout_ms = 120000;  // the whole burst drains through 1 core
  for (std::size_t i = 0; i < conns.size(); ++i) {
    if (conns[i] == nullptr) continue;
    serve::HttpResponse response;
    try {
      if (!conns[i]->read_response(response, limits) ||
          response.status != 200) {
        ++phase.failures;
        continue;
      }
    } catch (const std::exception&) {
      ++phase.failures;
      continue;
    }
    latencies.push_back(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - sent[i])
                            .count());
    const std::string* cache = response.header("x-picp-cache");
    if (cache != nullptr && *cache == "hit") ++wire_hits;
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    burst_start)
          .count();

  std::sort(latencies.begin(), latencies.end());
  phase.samples = latencies.size();
  phase.p50_us = percentile(latencies, 50);
  phase.p95_us = percentile(latencies, 95);
  phase.p99_us = percentile(latencies, 99);
  phase.max_us = latencies.empty() ? 0.0 : latencies.back();
  phase.throughput_rps =
      wall_seconds > 0 ? static_cast<double>(latencies.size()) / wall_seconds
                       : 0.0;
  phase.cache_hit_pct = latencies.empty()
                            ? 0.0
                            : 100.0 * static_cast<double>(wire_hits) /
                                  static_cast<double>(latencies.size());
  return phase;
}

/// Fork the open-loop client and read its PhaseResult back over a pipe.
/// The fork keeps the client's n sockets out of the server process's fd
/// table (the per-process limit would not fit both sides of 10k pairs).
PhaseResult run_open_loop(std::uint16_t port, std::size_t n) {
  int fds[2];
  if (::pipe(fds) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::close(fds[0]);
    const PhaseResult phase = run_open_loop_client(port, n);
    ::dprintf(fds[1], "%zu %f %f %f %f %f %f %llu\n", phase.samples,
              phase.p50_us, phase.p95_us, phase.p99_us, phase.max_us,
              phase.throughput_rps, phase.cache_hit_pct,
              static_cast<unsigned long long>(phase.failures));
    ::close(fds[1]);
    std::_Exit(0);  // no atexit: the child must not tear down server state
  }
  ::close(fds[1]);
  std::string line;
  char buf[256];
  ssize_t got;
  while ((got = ::read(fds[0], buf, sizeof buf)) > 0)
    line.append(buf, static_cast<std::size_t>(got));
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);

  PhaseResult phase;
  phase.name = "open_loop_10k";
  unsigned long long failures = 0;
  if (std::sscanf(line.c_str(), "%zu %lf %lf %lf %lf %lf %lf %llu",
                  &phase.samples, &phase.p50_us, &phase.p95_us,
                  &phase.p99_us, &phase.max_us, &phase.throughput_rps,
                  &phase.cache_hit_pct, &failures) != 8) {
    std::fprintf(stderr, "micro_serve: open-loop child reported nothing "
                         "(exit status %d)\n", status);
    phase.failures = n;  // treat a vanished child as total failure
    return phase;
  }
  phase.failures = failures;
  return phase;
}

long long arg_or(int argc, char** argv, const char* name, long long fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  return fallback;
}

const char* arg_str(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  return nullptr;
}

}  // namespace
}  // namespace picp

int main(int argc, char** argv) {
  using namespace picp;
  namespace fs = std::filesystem;

  const auto connections =
      static_cast<std::size_t>(arg_or(argc, argv, "--connections", 8));
  const auto requests =
      static_cast<std::size_t>(arg_or(argc, argv, "--requests", 250));
  const auto distinct =
      static_cast<std::size_t>(arg_or(argc, argv, "--distinct", 8));
  const auto open_connections = static_cast<std::size_t>(
      arg_or(argc, argv, "--open-connections", 10000));
  const char* json_path = arg_str(argc, argv, "--json");

  // --- fixture: tiny trace + models, like the serving smoke test ----------
  const std::string work = fs::temp_directory_path() / "picp_micro_serve";
  fs::create_directories(work);
  const std::string trace_path = work + "/bench.trace";
  SimConfig cfg;
  cfg.nelx = 8;
  cfg.nely = 8;
  cfg.nelz = 16;
  cfg.bed.num_particles = 4000;
  cfg.num_iterations = 300;
  cfg.sample_every = 50;
  cfg.num_ranks = 32;
  cfg.filter_size = 0.08;
  cfg.measure = true;
  cfg.measure_min_seconds = 5e-6;
  cfg.measure_max_reps = 8;
  SimDriver driver(cfg);
  const SimResult app = driver.run(trace_path);
  ModelGenConfig mg;
  mg.symreg.population = 64;
  mg.symreg.generations = 8;
  mg.symreg.threads = 1;
  const ModelSet models = train_models(app.timings, mg);
  const std::string models_path = work + "/bench.models";
  models.save(models_path);

  telemetry::SessionOptions session;  // in-memory only: bench, no manifest
  telemetry::configure(session);

  serve::ServiceConfig service_config;
  service_config.trace_path = trace_path;
  service_config.models_path = models_path;
  service_config.nelx = cfg.nelx;
  service_config.nely = cfg.nely;
  service_config.nelz = cfg.nelz;
  serve::PredictionService service(service_config);

  serve::ServerOptions options;
  // One worker per client: the server's connection-per-task model would
  // otherwise serialize persistent connections on low-core machines and
  // the percentiles would measure queueing, not service.
  options.threads = connections;
  options.max_connections = std::max(connections + 4, open_connections + 64);
  // The open-loop burst parks every request behind one identical config —
  // most coalesce into batches, but the SLO must not shed the stragglers.
  options.max_pending_requests =
      std::max<std::size_t>(256, open_connections);
  options.listen_backlog = 4096;
  // Observability fully armed, as in production: every request traced
  // into spans and access-logged — the percentiles below price the
  // instrumented hot path, and the regression guard holds it to budget.
  options.trace_sample_n = 1;
  options.access_log_path = work + "/bench_access.ndjson";
  serve::HttpServer server(options,
                           [&](const serve::HttpRequest& request) {
                             return service.handle(request);
                           });
  std::thread server_thread([&] { server.run(); });

  // Warmup: generate each distinct config once, sequentially, so both
  // measured phases run against a fully warm cache and their percentiles
  // differ only by the injected fault.
  const PhaseResult warmup =
      run_phase("warmup", server.port(), 1, distinct, distinct);

  const PhaseResult baseline =
      run_phase("baseline", server.port(), connections, requests, distinct);

  // Failure mode: 1% of response writes sleep 5 ms — the p99-with-faults
  // column. Deterministic seed so two runs arm the same fire pattern.
  failpoint::set_seed(20210517);
  failpoint::arm("http.write=delay(5):1in100");
  const PhaseResult faulty = run_phase("delay_1in100", server.port(),
                                       connections, requests, distinct);
  failpoint::disarm_all();

  // Concurrency ceiling: every open-loop connection from a forked child so
  // the client's sockets live in a separate fd table. Runs last — the
  // closed-loop percentiles above are unaffected by its 10k accept storm.
  PhaseResult open_loop;
  open_loop.name = "open_loop_10k";
  if (open_connections > 0)
    open_loop = run_open_loop(server.port(), open_connections);

  server.request_shutdown();
  server_thread.join();
  // peak_connections is monotonic, so reading after the drain still
  // reflects the open-loop high-water mark (and avoids racing the reactor).
  const serve::ServerStats stats = server.stats();

  std::printf("# micro_serve: load against the prediction daemon "
              "(in-process server, loopback TCP)\n");
  std::printf("# %zu connections x %zu requests, %zu distinct configs, "
              "cache warmed before measurement; the delay_1in100 phase "
              "runs with http.write=delay(5):1in100 armed; open_loop_10k "
              "bursts %zu one-shot connections from a forked client "
              "(latency is burst-to-response)\n",
              connections, requests, distinct, open_connections);
  std::printf("phase,connections,requests,distinct,p50_us,p95_us,p99_us,"
              "max_us,throughput_rps,cache_hit_pct,failures\n");
  std::vector<const PhaseResult*> report = {&baseline, &faulty};
  if (open_connections > 0) report.push_back(&open_loop);
  for (const PhaseResult* phase : report) {
    const bool open = phase == &open_loop;
    std::printf("%s,%zu,%zu,%zu,%.1f,%.1f,%.1f,%.1f,%.0f,%.2f,%llu\n",
                phase->name.c_str(),
                open ? open_connections : connections,
                open ? std::size_t{1} : requests,
                open ? std::size_t{1} : distinct, phase->p50_us,
                phase->p95_us, phase->p99_us, phase->max_us,
                phase->throughput_rps, phase->cache_hit_pct,
                static_cast<unsigned long long>(phase->failures));
  }
  std::printf("# peak_connections=%zu batch_leaders=%llu "
              "batch_members=%llu\n",
              stats.peak_connections,
              static_cast<unsigned long long>(stats.batch_leaders),
              static_cast<unsigned long long>(stats.batch_members));

  if (json_path != nullptr) {
    std::FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "micro_serve: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"micro_serve\",\n"
                 "  \"connections\": %zu,\n"
                 "  \"requests\": %zu,\n"
                 "  \"distinct\": %zu,\n"
                 "  \"open_connections\": %zu,\n"
                 "  \"peak_connections\": %zu,\n"
                 "  \"batch_leaders\": %llu,\n"
                 "  \"batch_members\": %llu,\n"
                 "  \"phases\": [\n",
                 connections, requests, distinct, open_connections,
                 stats.peak_connections,
                 static_cast<unsigned long long>(stats.batch_leaders),
                 static_cast<unsigned long long>(stats.batch_members));
    bool first = true;
    for (const PhaseResult* phase : report) {
      std::fprintf(
          out,
          "%s    {\"phase\": \"%s\", \"samples\": %zu, \"p50_us\": %.1f, "
          "\"p95_us\": %.1f, \"p99_us\": %.1f, \"max_us\": %.1f, "
          "\"throughput_rps\": %.0f, \"cache_hit_pct\": %.2f, "
          "\"failures\": %llu}",
          first ? "" : ",\n", phase->name.c_str(), phase->samples,
          phase->p50_us, phase->p95_us, phase->p99_us, phase->max_us,
          phase->throughput_rps, phase->cache_hit_pct,
          static_cast<unsigned long long>(phase->failures));
      first = false;
    }
    std::fprintf(out, "\n  ]\n}\n");
    std::fclose(out);
  }

  fs::remove_all(work);
  // The open-loop phase must both complete cleanly and prove that all N
  // connections were concurrently open on the server.
  const bool open_ok =
      open_connections == 0 ||
      (open_loop.failures == 0 && stats.peak_connections >= open_connections);
  const bool closed_ok =
      warmup.failures + baseline.failures + faulty.failures == 0;
  return closed_ok && open_ok ? 0 : 1;
}
