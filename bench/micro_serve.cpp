// Closed-loop load generator for the prediction daemon: spins up the real
// HttpServer + PredictionService in-process, then drives it with K
// persistent keep-alive connections issuing M requests each over a small
// rotation of configs. Reports latency percentiles, throughput, and the
// cache hit rate observed on the wire (X-Picp-Cache), separating the
// cold-cache generation cost from the cached hot path the daemon is built
// around. Snapshot rows live in results/micro_serve.txt.
//
// Usage: micro_serve [--connections K] [--requests M] [--distinct D]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "picsim/sim_driver.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "telemetry/telemetry.hpp"

namespace picp {
namespace {

struct LoadResult {
  std::vector<double> latencies_us;  // one per completed request
  std::uint64_t wire_hits = 0;
  std::uint64_t failures = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) / 100.0 + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

/// One client: a persistent connection issuing `requests` POSTs, rotating
/// the rank count through `distinct` values so the first pass of each
/// config misses and everything after hits.
LoadResult run_client(std::uint16_t port, std::size_t requests,
                      std::size_t distinct, std::size_t seed) {
  LoadResult result;
  result.latencies_us.reserve(requests);
  serve::HttpConnection conn(serve::connect_tcp("127.0.0.1", port));
  serve::HttpLimits limits;
  for (std::size_t i = 0; i < requests; ++i) {
    const int ranks = 16 + 16 * static_cast<int>((seed + i) % distinct);
    serve::HttpRequest request;
    request.method = "POST";
    request.target = "/v1/predict";
    request.body = "{\"ranks\": [" + std::to_string(ranks) + "]}";
    const auto start = std::chrono::steady_clock::now();
    conn.write_request(request, "127.0.0.1");
    serve::HttpResponse response;
    if (!conn.read_response(response, limits) || response.status != 200) {
      ++result.failures;
      continue;
    }
    const auto elapsed = std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    result.latencies_us.push_back(elapsed);
    const std::string* cache = response.header("x-picp-cache");
    if (cache != nullptr && *cache == "hit") ++result.wire_hits;
  }
  return result;
}

long long arg_or(int argc, char** argv, const char* name, long long fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  return fallback;
}

}  // namespace
}  // namespace picp

int main(int argc, char** argv) {
  using namespace picp;
  namespace fs = std::filesystem;

  const auto connections =
      static_cast<std::size_t>(arg_or(argc, argv, "--connections", 8));
  const auto requests =
      static_cast<std::size_t>(arg_or(argc, argv, "--requests", 250));
  const auto distinct =
      static_cast<std::size_t>(arg_or(argc, argv, "--distinct", 8));

  // --- fixture: tiny trace + models, like the serving smoke test ----------
  const std::string work = fs::temp_directory_path() / "picp_micro_serve";
  fs::create_directories(work);
  const std::string trace_path = work + "/bench.trace";
  SimConfig cfg;
  cfg.nelx = 8;
  cfg.nely = 8;
  cfg.nelz = 16;
  cfg.bed.num_particles = 4000;
  cfg.num_iterations = 300;
  cfg.sample_every = 50;
  cfg.num_ranks = 32;
  cfg.filter_size = 0.08;
  cfg.measure = true;
  cfg.measure_min_seconds = 5e-6;
  cfg.measure_max_reps = 8;
  SimDriver driver(cfg);
  const SimResult app = driver.run(trace_path);
  ModelGenConfig mg;
  mg.symreg.population = 64;
  mg.symreg.generations = 8;
  mg.symreg.threads = 1;
  const ModelSet models = train_models(app.timings, mg);
  const std::string models_path = work + "/bench.models";
  models.save(models_path);

  telemetry::SessionOptions session;  // in-memory only: bench, no manifest
  telemetry::configure(session);

  serve::ServiceConfig service_config;
  service_config.trace_path = trace_path;
  service_config.models_path = models_path;
  service_config.nelx = cfg.nelx;
  service_config.nely = cfg.nely;
  service_config.nelz = cfg.nelz;
  serve::PredictionService service(service_config);

  serve::ServerOptions options;
  // One worker per client: the server's connection-per-task model would
  // otherwise serialize persistent connections on low-core machines and
  // the percentiles would measure queueing, not service.
  options.threads = connections;
  options.max_connections = connections + 4;
  serve::HttpServer server(options,
                           [&](const serve::HttpRequest& request) {
                             return service.handle(request);
                           });
  std::thread server_thread([&] { server.run(); });

  // --- closed loop ---------------------------------------------------------
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<LoadResult> per_client(connections);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < connections; ++c)
    clients.emplace_back([&, c] {
      per_client[c] = run_client(server.port(), requests, distinct, c);
    });
  for (auto& t : clients) t.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  server.request_shutdown();
  server_thread.join();

  std::vector<double> latencies;
  std::uint64_t wire_hits = 0, failures = 0;
  for (const LoadResult& r : per_client) {
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
    wire_hits += r.wire_hits;
    failures += r.failures;
  }
  std::sort(latencies.begin(), latencies.end());
  const double total = static_cast<double>(latencies.size());

  std::printf("# micro_serve: closed-loop load against the prediction "
              "daemon (in-process server, loopback TCP)\n");
  std::printf("# %zu connections x %zu requests, %zu distinct configs "
              "(first pass per config generates, the rest hit the cache)\n",
              connections, requests, distinct);
  std::printf("connections,requests,distinct,p50_us,p95_us,p99_us,max_us,"
              "throughput_rps,cache_hit_pct,failures\n");
  std::printf("%zu,%zu,%zu,%.1f,%.1f,%.1f,%.1f,%.0f,%.2f,%llu\n",
              connections, requests, distinct, percentile(latencies, 50),
              percentile(latencies, 95), percentile(latencies, 99),
              latencies.empty() ? 0.0 : latencies.back(),
              total / wall_seconds,
              total > 0 ? 100.0 * static_cast<double>(wire_hits) / total : 0.0,
              static_cast<unsigned long long>(failures));

  fs::remove_all(work);
  return failures == 0 ? 0 : 1;
}
