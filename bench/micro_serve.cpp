// Closed-loop load generator for the prediction daemon: spins up the real
// HttpServer + PredictionService in-process, then drives it with K
// persistent keep-alive connections issuing M requests each over a small
// rotation of configs. Runs three phases over the same server:
//
//   warmup    one sequential pass per distinct config (cold generation,
//             not measured) so the measured phases compare like with like;
//   baseline  the all-hits hot path the daemon is built around;
//   faulty    the same load with `http.write=delay(5):1in100` armed — the
//             failure-mode column: what 1% slow socket writes do to p99.
//
// Reports latency percentiles, throughput, and the cache hit rate observed
// on the wire (X-Picp-Cache) per phase. Snapshot rows live in
// results/micro_serve.txt; --json writes the machine-readable
// BENCH_serve.json snapshot the perf trajectory tracks.
//
// Usage: micro_serve [--connections K] [--requests M] [--distinct D]
//                    [--json FILE]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "picsim/sim_driver.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "telemetry/telemetry.hpp"
#include "util/failpoint.hpp"

namespace picp {
namespace {

struct LoadResult {
  std::vector<double> latencies_us;  // one per completed request
  std::uint64_t wire_hits = 0;
  std::uint64_t failures = 0;
};

/// One measured phase, aggregated over every client.
struct PhaseResult {
  std::string name;
  std::size_t samples = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0, max_us = 0;
  double throughput_rps = 0;
  double cache_hit_pct = 0;
  std::uint64_t failures = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) / 100.0 + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

/// One client: a persistent connection issuing `requests` POSTs, rotating
/// the rank count through `distinct` values.
LoadResult run_client(std::uint16_t port, std::size_t requests,
                      std::size_t distinct, std::size_t seed) {
  LoadResult result;
  result.latencies_us.reserve(requests);
  serve::HttpConnection conn(serve::connect_tcp("127.0.0.1", port));
  serve::HttpLimits limits;
  for (std::size_t i = 0; i < requests; ++i) {
    const int ranks = 16 + 16 * static_cast<int>((seed + i) % distinct);
    serve::HttpRequest request;
    request.method = "POST";
    request.target = "/v1/predict";
    request.body = "{\"ranks\": [" + std::to_string(ranks) + "]}";
    const auto start = std::chrono::steady_clock::now();
    conn.write_request(request, "127.0.0.1");
    serve::HttpResponse response;
    if (!conn.read_response(response, limits) || response.status != 200) {
      ++result.failures;
      continue;
    }
    const auto elapsed = std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    result.latencies_us.push_back(elapsed);
    const std::string* cache = response.header("x-picp-cache");
    if (cache != nullptr && *cache == "hit") ++result.wire_hits;
  }
  return result;
}

/// Drive the closed loop once and fold every client into one PhaseResult.
PhaseResult run_phase(const std::string& name, std::uint16_t port,
                      std::size_t connections, std::size_t requests,
                      std::size_t distinct) {
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<LoadResult> per_client(connections);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < connections; ++c)
    clients.emplace_back([&, c] {
      per_client[c] = run_client(port, requests, distinct, c);
    });
  for (auto& t : clients) t.join();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::vector<double> latencies;
  PhaseResult phase;
  phase.name = name;
  for (const LoadResult& r : per_client) {
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
    phase.cache_hit_pct += static_cast<double>(r.wire_hits);
    phase.failures += r.failures;
  }
  std::sort(latencies.begin(), latencies.end());
  phase.samples = latencies.size();
  const double total = static_cast<double>(latencies.size());
  phase.p50_us = percentile(latencies, 50);
  phase.p95_us = percentile(latencies, 95);
  phase.p99_us = percentile(latencies, 99);
  phase.max_us = latencies.empty() ? 0.0 : latencies.back();
  phase.throughput_rps = total / wall_seconds;
  phase.cache_hit_pct =
      total > 0 ? 100.0 * phase.cache_hit_pct / total : 0.0;
  return phase;
}

long long arg_or(int argc, char** argv, const char* name, long long fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  return fallback;
}

const char* arg_str(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  return nullptr;
}

}  // namespace
}  // namespace picp

int main(int argc, char** argv) {
  using namespace picp;
  namespace fs = std::filesystem;

  const auto connections =
      static_cast<std::size_t>(arg_or(argc, argv, "--connections", 8));
  const auto requests =
      static_cast<std::size_t>(arg_or(argc, argv, "--requests", 250));
  const auto distinct =
      static_cast<std::size_t>(arg_or(argc, argv, "--distinct", 8));
  const char* json_path = arg_str(argc, argv, "--json");

  // --- fixture: tiny trace + models, like the serving smoke test ----------
  const std::string work = fs::temp_directory_path() / "picp_micro_serve";
  fs::create_directories(work);
  const std::string trace_path = work + "/bench.trace";
  SimConfig cfg;
  cfg.nelx = 8;
  cfg.nely = 8;
  cfg.nelz = 16;
  cfg.bed.num_particles = 4000;
  cfg.num_iterations = 300;
  cfg.sample_every = 50;
  cfg.num_ranks = 32;
  cfg.filter_size = 0.08;
  cfg.measure = true;
  cfg.measure_min_seconds = 5e-6;
  cfg.measure_max_reps = 8;
  SimDriver driver(cfg);
  const SimResult app = driver.run(trace_path);
  ModelGenConfig mg;
  mg.symreg.population = 64;
  mg.symreg.generations = 8;
  mg.symreg.threads = 1;
  const ModelSet models = train_models(app.timings, mg);
  const std::string models_path = work + "/bench.models";
  models.save(models_path);

  telemetry::SessionOptions session;  // in-memory only: bench, no manifest
  telemetry::configure(session);

  serve::ServiceConfig service_config;
  service_config.trace_path = trace_path;
  service_config.models_path = models_path;
  service_config.nelx = cfg.nelx;
  service_config.nely = cfg.nely;
  service_config.nelz = cfg.nelz;
  serve::PredictionService service(service_config);

  serve::ServerOptions options;
  // One worker per client: the server's connection-per-task model would
  // otherwise serialize persistent connections on low-core machines and
  // the percentiles would measure queueing, not service.
  options.threads = connections;
  options.max_connections = connections + 4;
  serve::HttpServer server(options,
                           [&](const serve::HttpRequest& request) {
                             return service.handle(request);
                           });
  std::thread server_thread([&] { server.run(); });

  // Warmup: generate each distinct config once, sequentially, so both
  // measured phases run against a fully warm cache and their percentiles
  // differ only by the injected fault.
  const PhaseResult warmup =
      run_phase("warmup", server.port(), 1, distinct, distinct);

  const PhaseResult baseline =
      run_phase("baseline", server.port(), connections, requests, distinct);

  // Failure mode: 1% of response writes sleep 5 ms — the p99-with-faults
  // column. Deterministic seed so two runs arm the same fire pattern.
  failpoint::set_seed(20210517);
  failpoint::arm("http.write=delay(5):1in100");
  const PhaseResult faulty = run_phase("delay_1in100", server.port(),
                                       connections, requests, distinct);
  failpoint::disarm_all();

  server.request_shutdown();
  server_thread.join();

  std::printf("# micro_serve: closed-loop load against the prediction "
              "daemon (in-process server, loopback TCP)\n");
  std::printf("# %zu connections x %zu requests, %zu distinct configs, "
              "cache warmed before measurement; the delay_1in100 phase "
              "runs with http.write=delay(5):1in100 armed\n",
              connections, requests, distinct);
  std::printf("phase,connections,requests,distinct,p50_us,p95_us,p99_us,"
              "max_us,throughput_rps,cache_hit_pct,failures\n");
  for (const PhaseResult* phase : {&baseline, &faulty})
    std::printf("%s,%zu,%zu,%zu,%.1f,%.1f,%.1f,%.1f,%.0f,%.2f,%llu\n",
                phase->name.c_str(), connections, requests, distinct,
                phase->p50_us, phase->p95_us, phase->p99_us, phase->max_us,
                phase->throughput_rps, phase->cache_hit_pct,
                static_cast<unsigned long long>(phase->failures));

  if (json_path != nullptr) {
    std::FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "micro_serve: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"micro_serve\",\n"
                 "  \"connections\": %zu,\n"
                 "  \"requests\": %zu,\n"
                 "  \"distinct\": %zu,\n"
                 "  \"phases\": [\n",
                 connections, requests, distinct);
    bool first = true;
    for (const PhaseResult* phase : {&baseline, &faulty}) {
      std::fprintf(
          out,
          "%s    {\"phase\": \"%s\", \"samples\": %zu, \"p50_us\": %.1f, "
          "\"p95_us\": %.1f, \"p99_us\": %.1f, \"max_us\": %.1f, "
          "\"throughput_rps\": %.0f, \"cache_hit_pct\": %.2f, "
          "\"failures\": %llu}",
          first ? "" : ",\n", phase->name.c_str(), phase->samples,
          phase->p50_us, phase->p95_us, phase->p99_us, phase->max_us,
          phase->throughput_rps, phase->cache_hit_pct,
          static_cast<unsigned long long>(phase->failures));
      first = false;
    }
    std::fprintf(out, "\n  ]\n}\n");
    std::fclose(out);
  }

  fs::remove_all(work);
  return warmup.failures + baseline.failures + faulty.failures == 0 ? 0 : 1;
}
