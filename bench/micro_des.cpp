// Micro-benchmarks of the discrete-event engine: raw event throughput and
// a full trace-driven simulation at paper scale.

#include <benchmark/benchmark.h>

#include "bsst/engine.hpp"
#include "bsst/trace_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace picp;

class Bouncer final : public Component {
 public:
  Bouncer(ComponentId id, std::int64_t hops)
      : Component(id, "bouncer"), hops_(hops) {}
  void handle(Engine& engine, const Event& event) override {
    if (event.a < hops_)
      engine.schedule(id(), id(), 1e-6, 0, event.a + 1);
  }

 private:
  std::int64_t hops_;
};

void BM_EventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    Engine engine;
    engine.add_component(std::make_unique<Bouncer>(0, state.range(0)));
    engine.schedule(-1, 0, 0.0, 0, 0);
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventDispatch)->Arg(10000)->Arg(100000);

void BM_EventQueueChurn(benchmark::State& state) {
  EventQueue queue;
  Xoshiro256 rng(1);
  // Steady-state heap of 4096 events with push/pop churn.
  for (int i = 0; i < 4096; ++i) {
    Event e;
    e.time = rng.uniform(0, 1);
    queue.push(e);
  }
  double now = 0.0;
  for (auto _ : state) {
    Event e = queue.pop();
    now = e.time;
    e.time = now + rng.uniform(0, 1e-3);
    queue.push(e);
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueChurn);

void BM_TraceDrivenSim(benchmark::State& state) {
  const auto ranks = static_cast<Rank>(state.range(0));
  const std::size_t intervals = 80;
  TraceSimInput input;
  input.num_ranks = ranks;
  input.num_intervals = intervals;
  input.compute_seconds.resize(static_cast<std::size_t>(ranks) * intervals);
  Xoshiro256 rng(3);
  for (double& c : input.compute_seconds) c = rng.uniform(0, 1e-4);
  CommMatrix comm(ranks, intervals);
  for (std::size_t t = 1; t < intervals; ++t)
    for (int m = 0; m < 200; ++m)
      comm.add(static_cast<Rank>(rng.uniform_below(
                   static_cast<std::uint64_t>(ranks))),
               static_cast<Rank>(rng.uniform_below(
                   static_cast<std::uint64_t>(ranks))),
               t, 5);
  input.comm_real = &comm;
  for (auto _ : state) {
    const SimReport report = run_trace_simulation(input);
    benchmark::DoNotOptimize(report.total_seconds);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ranks) *
                          static_cast<std::int64_t>(intervals));
}
BENCHMARK(BM_TraceDrivenSim)->Arg(1044)->Arg(4176)->Unit(benchmark::kMillisecond);

}  // namespace
