// Micro-benchmarks of the Model Generator: expression evaluation (the GP
// inner loop), OLS fitting, and full symbolic-regression searches.

#include <benchmark/benchmark.h>

#include <array>

#include "model/linear.hpp"
#include "model/symreg.hpp"
#include "util/rng.hpp"

namespace {

using namespace picp;

Dataset synthetic(std::size_t rows, std::size_t features) {
  std::vector<std::string> names;
  for (std::size_t f = 0; f < features; ++f)
    names.push_back("x" + std::to_string(f));
  Dataset data(names);
  Xoshiro256 rng(1);
  std::vector<double> row(features);
  for (std::size_t i = 0; i < rows; ++i) {
    double y = 1e-6;
    for (std::size_t f = 0; f < features; ++f) {
      row[f] = rng.uniform(1, 100);
      y += 1e-7 * row[f];
    }
    data.add(row, y);
  }
  return data;
}

void BM_ExprEvaluate(benchmark::State& state) {
  const Expr expr =
      Expr::from_tokens("add mul v0 v1 div sq v2 add c3.5 sqrt v0");
  const std::array<double, 3> x = {12.0, 0.5, 7.0};
  for (auto _ : state) benchmark::DoNotOptimize(expr.evaluate(x));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExprEvaluate);

void BM_FitLinear(benchmark::State& state) {
  const Dataset data = synthetic(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    const LinearModel model = fit_linear(data);
    benchmark::DoNotOptimize(model.intercept());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FitLinear)->Arg(1000)->Arg(10000);

void BM_FitPolynomial(benchmark::State& state) {
  const Dataset data = synthetic(2000, 3);
  for (auto _ : state) {
    const PolynomialModel model =
        fit_polynomial(data, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(&model);
  }
}
BENCHMARK(BM_FitPolynomial)->Arg(2)->Arg(3);

void BM_FitSymbolic(benchmark::State& state) {
  const Dataset data = synthetic(500, 2);
  SymRegParams params;
  params.population = static_cast<std::size_t>(state.range(0));
  params.generations = 10;
  params.threads = 1;
  for (auto _ : state) {
    const SymbolicModel model = fit_symbolic(data, params);
    benchmark::DoNotOptimize(model.scale());
  }
}
BENCHMARK(BM_FitSymbolic)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace
