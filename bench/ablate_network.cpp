// Ablation: interconnect-model sensitivity of the trace-driven system
// simulation. Sweeps the α-β parameters across realistic fabric classes and
// reports the predicted particle-phase time against the zero-communication
// critical path — how much of the prediction is compute vs communication
// structure, and how robust the paper-style conclusions are to the network
// model choice (BE-SST's coarse-grained philosophy depends on this being a
// second-order effect).

#include <cstdio>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "study.hpp"
#include "util/csv.hpp"

using namespace picp;

int main(int argc, char** argv) {
  const bench::StudyOptions options = bench::parse_options(argc, argv);
  const SimConfig cfg = bench::hele_shaw_config(options.small);
  const std::string trace_path =
      bench::ensure_trace(options, cfg, "hele_shaw");
  const std::string timings_path = bench::ensure_timings(
      options, cfg, "measured_R" + std::to_string(cfg.num_ranks));
  ModelGenConfig mg;
  const ModelSet models =
      bench::ensure_models(options, timings_path, "hele_shaw", mg);

  const SpectralMesh mesh(cfg.domain, cfg.nelx, cfg.nely, cfg.nelz,
                          cfg.points_per_dim);
  const PredictionPipeline pipeline(mesh, models);

  struct Fabric {
    const char* name;
    double alpha;
    double beta;
  };
  const Fabric fabrics[] = {
      {"ideal (no comm)", 0.0, 1e18},
      {"modern HPC (1.5us, 10GB/s)", 1.5e-6, 1e10},
      {"commodity (15us, 1GB/s)", 15e-6, 1e9},
      {"congested (50us, 0.25GB/s)", 50e-6, 2.5e8},
  };

  std::printf("# Ablation: network-model sensitivity of the DES "
              "prediction (R=%d, bin mapping)\n",
              cfg.num_ranks);
  CsvWriter csv(std::cout);
  csv.row("fabric", "alpha_us", "beta_GBs", "predicted_s",
          "critical_path_s", "comm_overhead_pct");
  for (const Fabric& fabric : fabrics) {
    PredictionConfig pc;
    pc.num_ranks = cfg.num_ranks;
    pc.filter_size = cfg.filter_size;
    pc.network.alpha = fabric.alpha;
    pc.network.beta = fabric.beta;
    TraceReader trace(trace_path);
    const PredictionOutcome outcome = pipeline.predict(trace, pc);
    const double overhead =
        100.0 * (outcome.sim.total_seconds -
                 outcome.sim.critical_path_seconds) /
        outcome.sim.total_seconds;
    csv.row(fabric.name, fabric.alpha * 1e6, fabric.beta / 1e9,
            outcome.sim.total_seconds, outcome.sim.critical_path_seconds,
            overhead);
  }
  return 0;
}
