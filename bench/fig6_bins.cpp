// Fig 6: number of particle bins generated during the run with the
// processor-count cap relaxed (the paper's "we have relaxed the processor
// count limitation"). The bin count grows as the particle boundary expands;
// its maximum is the largest processor count that still improves the
// bin-based workload distribution — the paper's "optimal processor count"
// (1104 for their case study).

#include <cstdio>
#include <iostream>

#include "core/claims.hpp"
#include "study.hpp"
#include "util/csv.hpp"

using namespace picp;

int main(int argc, char** argv) {
  const bench::StudyOptions options = bench::parse_options(argc, argv);
  const SimConfig cfg = bench::hele_shaw_config(options.small);
  const std::string trace_path =
      bench::ensure_trace(options, cfg, "hele_shaw");

  std::printf("# Fig 6: particle bins generated during the run "
              "(processor-count cap relaxed), threshold bin size = %g\n",
              cfg.filter_size);
  const claims::BinGrowth growth =
      claims::relaxed_bin_growth(trace_path, cfg.filter_size);

  CsvWriter csv(std::cout);
  csv.row("iteration", "bins", "boundary_volume");
  for (std::size_t t = 0; t < growth.iterations.size(); ++t)
    csv.row(growth.iterations[t], growth.bins[t], growth.volumes[t]);

  std::printf("# bins grew from %lld to a maximum of %lld as the particle "
              "boundary expanded%s\n",
              static_cast<long long>(growth.first_bins),
              static_cast<long long>(growth.max_bins),
              growth.volume_monotone ? " (boundary volume monotone)" : "");
  std::printf("# => optimal processor count for this problem: %lld "
              "(paper: 1104); larger counts cannot improve bin-based "
              "distribution\n",
              static_cast<long long>(growth.max_bins));
  return 0;
}
