// Fig 6: number of particle bins generated during the run with the
// processor-count cap relaxed (the paper's "we have relaxed the processor
// count limitation"). The bin count grows as the particle boundary expands;
// its maximum is the largest processor count that still improves the
// bin-based workload distribution — the paper's "optimal processor count"
// (1104 for their case study).

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "mapping/bin_mapper.hpp"
#include "study.hpp"
#include "trace/trace_reader.hpp"
#include "util/csv.hpp"

using namespace picp;

int main(int argc, char** argv) {
  const bench::StudyOptions options = bench::parse_options(argc, argv);
  const SimConfig cfg = bench::hele_shaw_config(options.small);
  const std::string trace_path =
      bench::ensure_trace(options, cfg, "hele_shaw");

  BinMapper relaxed(1, cfg.filter_size, BinTree::kUnlimitedBins);
  TraceReader trace(trace_path);

  std::printf("# Fig 6: particle bins generated during the run "
              "(processor-count cap relaxed), threshold bin size = %g\n",
              cfg.filter_size);
  CsvWriter csv(std::cout);
  csv.row("iteration", "bins", "boundary_volume");

  TraceSample sample;
  std::vector<Rank> owners;
  std::int64_t max_bins = 0;
  std::int64_t first_bins = 0;
  double prev_volume = 0.0;
  bool volume_monotone = true;
  while (trace.read_next(sample)) {
    relaxed.map(sample.positions, owners);
    const std::int64_t bins = relaxed.num_partitions();
    const double volume = relaxed.tree().root_bounds().volume();
    csv.row(sample.iteration, bins, volume);
    if (trace.cursor() == 1) first_bins = bins;
    max_bins = std::max(max_bins, bins);
    if (volume + 1e-12 < prev_volume) volume_monotone = false;
    prev_volume = volume;
  }
  std::printf("# bins grew from %lld to a maximum of %lld as the particle "
              "boundary expanded%s\n",
              static_cast<long long>(first_bins),
              static_cast<long long>(max_bins),
              volume_monotone ? " (boundary volume monotone)" : "");
  std::printf("# => optimal processor count for this problem: %lld "
              "(paper: 1104); larger counts cannot improve bin-based "
              "distribution\n",
              static_cast<long long>(max_bins));
  return 0;
}
