// Fig 1 (a): heat-map of the particle distribution across 4096 processors
// under element-based mapping — the paper's motivation picture: a handful of
// hot processors, large idle regions.
// Fig 1 (b): processors with non-zero particle workload during the whole
// simulation, per processor configuration; the paper reports ~81% of
// processors idle on average.

#include <cstdio>
#include <iostream>

#include "mapping/mapper.hpp"
#include "study.hpp"
#include "trace/trace_reader.hpp"
#include "util/csv.hpp"
#include "workload/generator.hpp"
#include "workload/workload_stats.hpp"

using namespace picp;

int main(int argc, char** argv) {
  const bench::StudyOptions options = bench::parse_options(argc, argv);
  const SimConfig cfg = bench::hele_shaw_config(options.small);
  const std::string trace_path =
      bench::ensure_trace(options, cfg, "hele_shaw");

  const SpectralMesh mesh(cfg.domain, cfg.nelx, cfg.nely, cfg.nelz,
                          cfg.points_per_dim);

  // --- Fig 1a: computation matrix for 4096 ranks, element mapping --------
  const Rank heatmap_ranks = 4096;
  const MeshPartition partition = rcb_partition(mesh, heatmap_ranks);
  const auto mapper =
      make_mapper("element", mesh, partition, cfg.filter_size);
  WorkloadParams params;
  params.compute_ghosts = false;
  params.compute_comm = false;
  WorkloadGenerator generator(mesh, partition, *mapper, params);
  TraceReader trace(trace_path);
  const WorkloadResult workload = generator.generate(trace);

  const std::string csv_path = options.data_dir + "/fig1a_heatmap.csv";
  workload.comp_real.write_csv(csv_path);
  std::printf("# Fig 1a: particle distribution heat-map, %d ranks, "
              "element-based mapping (rows=rank groups, cols=intervals)\n",
              heatmap_ranks);
  std::printf("%s", ascii_heatmap(workload.comp_real, 72, 24).c_str());
  std::printf("# full matrix written to %s\n\n", csv_path.c_str());

  // --- Fig 1b: non-zero processors per configuration ----------------------
  std::printf("# Fig 1b: processors with non-zero particles during the "
              "simulation\n");
  CsvWriter csv(std::cout);
  csv.row("ranks", "ever_active", "ever_active_pct", "mean_active_pct",
          "idle_pct");
  double idle_sum = 0.0;
  int idle_count = 0;
  for (const Rank ranks : {1024, 2048, 4096, 8192}) {
    const MeshPartition part = rcb_partition(mesh, ranks);
    const auto m = make_mapper("element", mesh, part, cfg.filter_size);
    WorkloadGenerator gen(mesh, part, *m, params);
    TraceReader reader(trace_path);
    const WorkloadResult result = gen.generate(reader);
    const UtilizationStats stats = utilization(result.comp_real);
    const double idle_pct = 100.0 * (1.0 - stats.ever_active_fraction);
    idle_sum += idle_pct;
    ++idle_count;
    csv.row(ranks, stats.ever_active,
            100.0 * stats.ever_active_fraction,
            100.0 * stats.mean_active_fraction, idle_pct);
  }
  std::printf("# average idle fraction: %.1f%% (paper: ~81%%)\n",
              idle_sum / idle_count);
  return 0;
}
