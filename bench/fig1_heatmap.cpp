// Fig 1 (a): heat-map of the particle distribution across 4096 processors
// under element-based mapping — the paper's motivation picture: a handful of
// hot processors, large idle regions.
// Fig 1 (b): processors with non-zero particle workload during the whole
// simulation, per processor configuration; the paper reports ~81% of
// processors idle on average.

#include <cstdio>
#include <iostream>

#include "core/claims.hpp"
#include "study.hpp"
#include "util/csv.hpp"
#include "workload/workload_stats.hpp"

using namespace picp;

int main(int argc, char** argv) {
  const bench::StudyOptions options = bench::parse_options(argc, argv);
  const SimConfig cfg = bench::hele_shaw_config(options.small);
  const std::string trace_path =
      bench::ensure_trace(options, cfg, "hele_shaw");

  const SpectralMesh mesh(cfg.domain, cfg.nelx, cfg.nely, cfg.nelz,
                          cfg.points_per_dim);

  // --- Fig 1a: computation matrix for 4096 ranks, element mapping --------
  const Rank heatmap_ranks = 4096;
  const WorkloadResult workload = claims::mapping_workload(
      mesh, trace_path, heatmap_ranks, "element", cfg.filter_size);

  const std::string csv_path = options.data_dir + "/fig1a_heatmap.csv";
  workload.comp_real.write_csv(csv_path);
  std::printf("# Fig 1a: particle distribution heat-map, %d ranks, "
              "element-based mapping (rows=rank groups, cols=intervals)\n",
              heatmap_ranks);
  std::printf("%s", ascii_heatmap(workload.comp_real, 72, 24).c_str());
  std::printf("# full matrix written to %s\n\n", csv_path.c_str());

  // --- Fig 1b: non-zero processors per configuration ----------------------
  std::printf("# Fig 1b: processors with non-zero particles during the "
              "simulation\n");
  CsvWriter csv(std::cout);
  csv.row("ranks", "ever_active", "ever_active_pct", "mean_active_pct",
          "idle_pct");
  double idle_sum = 0.0;
  int idle_count = 0;
  for (const Rank ranks : {1024, 2048, 4096, 8192}) {
    const WorkloadResult result = claims::mapping_workload(
        mesh, trace_path, ranks, "element", cfg.filter_size);
    const claims::UtilizationClaim util =
        claims::utilization_claim(result.comp_real);
    idle_sum += util.idle_pct;
    ++idle_count;
    csv.row(ranks, util.stats.ever_active,
            100.0 * util.stats.ever_active_fraction,
            util.resource_utilization_pct, util.idle_pct);
  }
  std::printf("# average idle fraction: %.1f%% (paper: ~81%%)\n",
              idle_sum / idle_count);
  return 0;
}
