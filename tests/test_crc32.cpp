#include "util/crc32.hpp"

#include <cstdint>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

namespace picp {
namespace {

TEST(Crc32c, KnownAnswerVector) {
  // The canonical CRC32C check value (RFC 3720 / Castagnoli).
  const char* data = "123456789";
  EXPECT_EQ(crc32c(data, 9), 0xE3069283u);
}

TEST(Crc32c, EmptyInputIsZero) {
  EXPECT_EQ(crc32c("", 0), 0u);
  Crc32c crc;
  EXPECT_EQ(crc.value(), 0u);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  const std::string data =
      "the quick brown fox jumps over the lazy dog 0123456789";
  const std::uint32_t whole = crc32c(data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Crc32c crc;
    crc.update(data.data(), split);
    crc.update(data.data() + split, data.size() - split);
    EXPECT_EQ(crc.value(), whole) << "split at " << split;
  }
}

TEST(Crc32c, UpdatePodMatchesRawBytes) {
  const std::uint64_t v = 0x0123456789ABCDEFull;
  Crc32c a;
  a.update_pod(v);
  Crc32c b;
  b.update(&v, sizeof(v));
  EXPECT_EQ(a.value(), b.value());
}

TEST(Crc32c, ResetRestartsTheStream) {
  Crc32c crc;
  crc.update("garbage", 7);
  crc.reset();
  crc.update("123456789", 9);
  EXPECT_EQ(crc.value(), 0xE3069283u);
}

TEST(Crc32c, DetectsSingleBitFlips) {
  unsigned char buf[32];
  for (std::size_t i = 0; i < sizeof(buf); ++i)
    buf[i] = static_cast<unsigned char>(i * 37 + 11);
  const std::uint32_t clean = crc32c(buf, sizeof(buf));
  for (std::size_t byte = 0; byte < sizeof(buf); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      buf[byte] = static_cast<unsigned char>(buf[byte] ^ (1u << bit));
      EXPECT_NE(crc32c(buf, sizeof(buf)), clean)
          << "flip at byte " << byte << " bit " << bit;
      buf[byte] = static_cast<unsigned char>(buf[byte] ^ (1u << bit));
    }
  }
}

}  // namespace
}  // namespace picp
