#include "workload/comm_matrix.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace picp {
namespace {

TEST(CommMatrix, EmptyByDefault) {
  const CommMatrix m(4, 3);
  EXPECT_EQ(m.at(0, 1, 0), 0);
  EXPECT_EQ(m.interval_volume(0), 0);
  EXPECT_EQ(m.interval_pairs(0), 0u);
  EXPECT_EQ(m.total_volume(), 0);
}

TEST(CommMatrix, AddAccumulates) {
  CommMatrix m(4, 2);
  m.add(0, 1, 0);
  m.add(0, 1, 0, 2);
  m.add(2, 3, 0, 5);
  EXPECT_EQ(m.at(0, 1, 0), 3);
  EXPECT_EQ(m.at(2, 3, 0), 5);
  EXPECT_EQ(m.at(1, 0, 0), 0);  // direction matters
  EXPECT_EQ(m.interval_volume(0), 8);
  EXPECT_EQ(m.interval_pairs(0), 2u);
}

TEST(CommMatrix, ZeroCountIsNoOp) {
  CommMatrix m(2, 1);
  m.add(0, 1, 0, 0);
  EXPECT_EQ(m.interval_pairs(0), 0u);
}

TEST(CommMatrix, TransfersAreSortedAndComplete) {
  CommMatrix m(4, 1);
  m.add(3, 0, 0, 1);
  m.add(0, 2, 0, 4);
  m.add(0, 1, 0, 2);
  const auto transfers = m.interval_transfers(0);
  ASSERT_EQ(transfers.size(), 3u);
  EXPECT_EQ(transfers[0].from, 0);
  EXPECT_EQ(transfers[0].to, 1);
  EXPECT_EQ(transfers[0].count, 2);
  EXPECT_EQ(transfers[1].to, 2);
  EXPECT_EQ(transfers[2].from, 3);
}

TEST(CommMatrix, SentAndReceivedBy) {
  CommMatrix m(4, 2);
  m.add(1, 0, 0, 3);
  m.add(1, 2, 0, 4);
  m.add(0, 1, 0, 5);
  m.add(1, 3, 1, 9);
  EXPECT_EQ(m.sent_by(1, 0), 7);
  EXPECT_EQ(m.received_by(1, 0), 5);
  EXPECT_EQ(m.received_by(2, 0), 4);
  EXPECT_EQ(m.sent_by(1, 1), 9);
  EXPECT_EQ(m.total_volume(), 21);
}

TEST(CommMatrix, SelfTransfersAllowedButDistinct) {
  CommMatrix m(2, 1);
  m.add(0, 0, 0, 2);
  EXPECT_EQ(m.at(0, 0, 0), 2);
  EXPECT_EQ(m.sent_by(0, 0), 2);
  EXPECT_EQ(m.received_by(0, 0), 2);
}

TEST(CommMatrix, BoundsChecked) {
  CommMatrix m(2, 1);
  EXPECT_THROW(m.add(0, 5, 0), Error);
  EXPECT_THROW(m.add(0, 1, 3), Error);
  EXPECT_THROW(m.add(-1, 0, 0), Error);
}

}  // namespace
}  // namespace picp
