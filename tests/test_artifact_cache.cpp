// Unit tests for the serving layer's content-addressed artifact cache:
// LRU bounds, single-flight deduplication under real concurrency, exception
// propagation to waiters, and the crash-safe disk spill tier.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/artifact_cache.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace picp::serve {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/picp_artifact_" + name;
  fs::remove_all(dir);
  return dir;
}

TEST(ArtifactCache, MissComputesThenHitServesWithoutRecomputing) {
  ArtifactCache<int> cache(4);
  int computes = 0;
  bool from_cache = true;
  auto first = cache.get_or_compute(7, [&] { ++computes; return 41; },
                                    &from_cache);
  EXPECT_EQ(*first, 41);
  EXPECT_FALSE(from_cache);
  auto second = cache.get_or_compute(7, [&] { ++computes; return -1; },
                                     &from_cache);
  EXPECT_EQ(*second, 41);
  EXPECT_TRUE(from_cache);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ArtifactCache, LruEvictsLeastRecentlyTouchedKey) {
  ArtifactCache<int> cache(2);
  int computes = 0;
  const auto fill = [&](std::uint64_t key) {
    return *cache.get_or_compute(key, [&] { ++computes; return int(key); });
  };
  fill(1);
  fill(2);
  fill(1);  // touch 1 so 2 becomes the LRU victim
  fill(3);  // evicts 2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  computes = 0;
  fill(1);
  fill(3);
  EXPECT_EQ(computes, 0) << "survivors must still be resident";
  fill(2);
  EXPECT_EQ(computes, 1) << "the evicted key must recompute";
}

TEST(ArtifactCache, HundredConcurrentIdenticalRequestsComputeOnce) {
  // The serving acceptance criterion in miniature: N concurrent identical
  // queries → exactly one compute, everyone gets the same artifact.
  ArtifactCache<std::string> cache(4);
  std::atomic<int> computes{0};
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;

  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const std::string>> results(100);
  for (std::size_t i = 0; i < results.size(); ++i) {
    threads.emplace_back([&, i] {
      {
        std::unique_lock<std::mutex> lock(gate_mutex);
        gate_cv.wait(lock, [&] { return gate_open; });
      }
      results[i] = cache.get_or_compute(99, [&] {
        ++computes;
        // Stay in flight long enough that the stragglers must join.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return std::string("expensive artifact");
      });
    });
  }
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  for (auto& t : threads) t.join();

  EXPECT_EQ(computes.load(), 1);
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(*r, "expensive artifact");
    // Single-flight shares one object, not 100 copies.
    EXPECT_EQ(r.get(), results[0].get());
  }
  const ArtifactCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.inflight_waits, 99u);
}

TEST(ArtifactCache, ThrowingComputeReachesWaitersAndNextCallRetries) {
  ArtifactCache<int> cache(4);
  std::atomic<int> attempts{0};

  std::atomic<int> waiter_errors{0};
  std::thread loser([&] {
    // Give the main thread time to become the in-flight computer.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    try {
      cache.get_or_compute(5, [&] { ++attempts; return 0; });
    } catch (const Error&) {
      ++waiter_errors;
    }
  });

  EXPECT_THROW(cache.get_or_compute(5,
                                    [&]() -> int {
                                      ++attempts;
                                      std::this_thread::sleep_for(
                                          std::chrono::milliseconds(80));
                                      throw Error("artifact build failed");
                                    }),
               Error);
  loser.join();
  // The waiter either joined the failing flight (got the exception) or
  // arrived after the erase and retried successfully — both are legal;
  // what is illegal is a poisoned key.
  auto value = cache.get_or_compute(5, [&] { ++attempts; return 17; });
  EXPECT_EQ(*value, 17);
  EXPECT_GE(attempts.load(), 2);
}

TEST(ArtifactCache, EvictedEntriesSpillToDiskAndRepopulate) {
  const std::string dir = temp_dir("spill");
  ArtifactCache<std::string>::SpillHooks hooks;
  hooks.encode = [](const std::string& v) { return v; };
  hooks.decode = [](const std::string& bytes) { return bytes; };
  ArtifactCache<std::string> cache(1, dir, hooks);

  cache.get_or_compute(1, [] { return std::string("one"); });
  cache.get_or_compute(2, [] { return std::string("two"); });  // evicts 1
  EXPECT_TRUE(fs::exists(cache.spill_path(1))) << cache.spill_path(1);

  int computes = 0;
  bool from_cache = false;
  auto revived = cache.get_or_compute(
      1, [&] { ++computes; return std::string("recomputed"); }, &from_cache);
  EXPECT_EQ(*revived, "one") << "disk tier should have served the artifact";
  EXPECT_EQ(computes, 0);
  EXPECT_TRUE(from_cache);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  fs::remove_all(dir);
}

TEST(ArtifactCache, CorruptSpillFileFallsBackToCompute) {
  const std::string dir = temp_dir("corrupt");
  ArtifactCache<std::string>::SpillHooks hooks;
  hooks.encode = [](const std::string& v) { return v; };
  hooks.decode = [](const std::string& bytes) -> std::string {
    if (bytes.rfind("ok:", 0) != 0) throw Error("corrupt spill artifact");
    return bytes.substr(3);
  };
  ArtifactCache<std::string> cache(1, dir, hooks);

  // Plant garbage where key 9's spill would live.
  fs::create_directories(dir);
  std::ofstream(cache.spill_path(9), std::ios::binary) << "\x00garbage";

  int computes = 0;
  bool from_cache = true;
  auto value = cache.get_or_compute(
      9, [&] { ++computes; return std::string("fresh"); }, &from_cache);
  EXPECT_EQ(*value, "fresh");
  EXPECT_EQ(computes, 1);
  EXPECT_FALSE(from_cache);
  EXPECT_EQ(cache.stats().disk_hits, 0u);
  fs::remove_all(dir);
}

TEST(ArtifactCache, DistinctKeysNeverSingleFlightTogether) {
  ArtifactCache<int> cache(16);
  std::atomic<int> computes{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i)
    threads.emplace_back([&, i] {
      cache.get_or_compute(static_cast<std::uint64_t>(i),
                           [&] { ++computes; return i; });
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(computes.load(), 8);
  EXPECT_EQ(cache.stats().misses, 8u);
  EXPECT_EQ(cache.stats().inflight_waits, 0u);
}

TEST(ArtifactCache, ZeroCapacityIsClampedToOne) {
  ArtifactCache<int> cache(0);
  cache.get_or_compute(1, [] { return 1; });
  EXPECT_EQ(cache.size(), 1u);
  bool from_cache = false;
  cache.get_or_compute(1, [] { return -1; }, &from_cache);
  EXPECT_TRUE(from_cache);
}

// ---------------------------------------------------------------------------
// Robustness contract (PR 7): spill failures, quarantine, deadlines, stale.
// ---------------------------------------------------------------------------

ArtifactCache<std::string>::SpillHooks identity_hooks() {
  ArtifactCache<std::string>::SpillHooks hooks;
  hooks.encode = [](const std::string& v) { return v; };
  hooks.decode = [](const std::string& bytes) { return bytes; };
  return hooks;
}

TEST(ArtifactCache, FailedSpillNeverLeavesTruncatedReplayableEntry) {
  // The satellite regression: a short write during disk spill must not
  // publish a torn .art file that a later miss could replay. The eviction
  // itself must survive and be counted.
  const std::string dir = temp_dir("shortspill");
  ArtifactCache<std::string> cache(1, dir, identity_hooks());
  cache.get_or_compute(1, [] { return std::string("first"); });

  failpoint::arm("atomicfile.write=partial_write(4)");
  cache.get_or_compute(2, [] { return std::string("second"); });  // evicts 1
  failpoint::disarm_all();

  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().spill_failures, 1u);
  EXPECT_FALSE(fs::exists(cache.spill_path(1)))
      << "torn spill must not be published";
  for (const auto& item : fs::directory_iterator(dir))
    EXPECT_NE(item.path().extension(), ".tmp")
        << "aborted spill must not leave a temp file: " << item.path();

  // Key 1 fell out of both tiers; the next request recomputes cleanly.
  int computes = 0;
  bool from_cache = true;
  auto value = cache.get_or_compute(
      1, [&] { ++computes; return std::string("recomputed"); }, &from_cache);
  EXPECT_EQ(*value, "recomputed");
  EXPECT_EQ(computes, 1);
  EXPECT_FALSE(from_cache);
  fs::remove_all(dir);
}

TEST(ArtifactCache, InjectedSpillErrorIsToleratedAndCounted) {
  const std::string dir = temp_dir("spillerr");
  ArtifactCache<std::string> cache(1, dir, identity_hooks());
  cache.get_or_compute(1, [] { return std::string("one"); });
  failpoint::arm("cache.spill=errno(28)");  // ENOSPC
  cache.get_or_compute(2, [] { return std::string("two"); });
  failpoint::disarm_all();
  EXPECT_EQ(cache.stats().spill_failures, 1u);
  EXPECT_FALSE(fs::exists(cache.spill_path(1)));
  fs::remove_all(dir);
}

TEST(ArtifactCache, BootScanQuarantinesCorruptSpillEntries) {
  // Satellite (d) in unit form: corrupt one committed spill entry, restart
  // (construct a new cache over the same dir), and assert the entry is
  // quarantined — moved, not deleted — counted, and regenerated once.
  const std::string dir = temp_dir("bootscan");
  {
    ArtifactCache<std::string> cache(1, dir, identity_hooks());
    cache.get_or_compute(1, [] { return std::string("good one"); });
    cache.get_or_compute(2, [] { return std::string("good two"); });
    ASSERT_TRUE(fs::exists(cache.spill_path(1)));
  }
  // Flip payload bytes; the frame digest no longer matches.
  std::string path;
  for (const auto& item : fs::directory_iterator(dir))
    if (item.path().extension() == ".art") path = item.path().string();
  ASSERT_FALSE(path.empty());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('\xFF');
  }

  ArtifactCache<std::string> reborn(1, dir, identity_hooks());
  EXPECT_EQ(reborn.stats().quarantined, 1u);
  EXPECT_FALSE(fs::exists(path)) << "corrupt entry must leave the spill dir";
  EXPECT_TRUE(
      fs::exists(fs::path(reborn.quarantine_dir()) / fs::path(path).filename()))
      << "quarantine preserves the bytes as evidence";

  // The quarantined key regenerates exactly once; the intact key replays.
  int computes = 0;
  bool from_cache = true;
  auto fresh = reborn.get_or_compute(
      1, [&] { ++computes; return std::string("regenerated"); }, &from_cache);
  EXPECT_EQ(computes, 1);
  EXPECT_FALSE(from_cache);
  EXPECT_EQ(*fresh, "regenerated");
  fs::remove_all(dir);
}

TEST(ArtifactCache, BootScanQuarantinesOrphanedTempFiles) {
  const std::string dir = temp_dir("orphantmp");
  fs::create_directories(dir);
  std::ofstream(dir + "/0000000000000005.art.tmp", std::ios::binary)
      << "half a spill";
  ArtifactCache<std::string> cache(1, dir, identity_hooks());
  EXPECT_EQ(cache.stats().quarantined, 1u);
  EXPECT_FALSE(fs::exists(dir + "/0000000000000005.art.tmp"));
  fs::remove_all(dir);
}

TEST(ArtifactCache, RuntimeCorruptionQuarantinesInsteadOfReplaying) {
  const std::string dir = temp_dir("runtimequar");
  ArtifactCache<std::string> cache(1, dir, identity_hooks());
  cache.get_or_compute(3, [] { return std::string("spilled"); });
  cache.get_or_compute(4, [] { return std::string("evictor"); });
  const std::string path = cache.spill_path(3);
  ASSERT_TRUE(fs::exists(path));
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('\xFF');
  }
  int computes = 0;
  auto value =
      cache.get_or_compute(3, [&] { ++computes; return std::string("new"); });
  EXPECT_EQ(*value, "new");
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.stats().quarantined, 1u);
  EXPECT_FALSE(fs::exists(path));
  fs::remove_all(dir);
}

TEST(ArtifactCache, StaleTierServesDegradedWhenComputeFails) {
  ArtifactCache<std::string> cache(1);  // no disk tier: memory + stale only
  cache.get_or_compute(1, [] { return std::string("last good"); });
  cache.get_or_compute(2, [] { return std::string("evictor"); });  // 1 gone

  bool from_cache = false;
  bool degraded = false;
  auto value = cache.get_or_compute(
      1, [&]() -> std::string { throw Error("backend down"); }, &from_cache,
      Deadline(), /*allow_stale=*/true, &degraded);
  EXPECT_EQ(*value, "last good");
  EXPECT_TRUE(degraded);
  EXPECT_TRUE(from_cache);
  EXPECT_EQ(cache.stats().stale_served, 1u);

  // The slot is freed: the next request retries a fresh compute instead of
  // serving stale forever.
  degraded = false;
  auto healed = cache.get_or_compute(
      1, [] { return std::string("fresh again"); }, &from_cache, Deadline(),
      true, &degraded);
  EXPECT_EQ(*healed, "fresh again");
  EXPECT_FALSE(degraded);
}

TEST(ArtifactCache, ComputeFailureWithoutStalePermissionStillThrows) {
  ArtifactCache<std::string> cache(1);
  cache.get_or_compute(1, [] { return std::string("good"); });
  cache.get_or_compute(2, [] { return std::string("evictor"); });
  EXPECT_THROW(cache.get_or_compute(
                   1, [&]() -> std::string { throw Error("backend down"); }),
               Error);
}

TEST(ArtifactCache, DeadlineExpiryNeverServesStale) {
  // Stale-on-timeout would disguise a 504 as a 200: the deadline must win.
  ArtifactCache<std::string> cache(1);
  cache.get_or_compute(1, [] { return std::string("good"); });
  cache.get_or_compute(2, [] { return std::string("evictor"); });
  bool degraded = false;
  try {
    cache.get_or_compute(1, [] { return std::string("never runs"); }, nullptr,
                         Deadline::after_ms(0), /*allow_stale=*/true,
                         &degraded);
    FAIL() << "expired deadline must throw";
  } catch (const DeadlineExceeded& e) {
    EXPECT_EQ(e.stage(), "cache.compute");
  }
  EXPECT_FALSE(degraded);
  EXPECT_EQ(cache.stats().stale_served, 0u);
}

TEST(ArtifactCache, WaiterDeadlineBoundsInflightWait) {
  // A wedged computation must not strand waiters whose budget has expired
  // — the single-flight dewedging half of the tentpole.
  ArtifactCache<int> cache(4);
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool computing = false;
  bool release = false;

  std::thread computer([&] {
    cache.get_or_compute(8, [&] {
      {
        std::lock_guard<std::mutex> lock(gate_mutex);
        computing = true;
      }
      gate_cv.notify_all();
      std::unique_lock<std::mutex> lock(gate_mutex);
      gate_cv.wait(lock, [&] { return release; });
      return 42;
    });
  });
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return computing; });
  }
  try {
    cache.get_or_compute(8, [] { return -1; }, nullptr,
                         Deadline::after_ms(30));
    FAIL() << "waiter must give up at its deadline";
  } catch (const DeadlineExceeded& e) {
    EXPECT_EQ(e.stage(), "cache.wait");
  }
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    release = true;
  }
  gate_cv.notify_all();
  computer.join();
  // The flight itself was healthy: once it lands, the key serves normally.
  bool from_cache = false;
  EXPECT_EQ(*cache.get_or_compute(8, [] { return -1; }, &from_cache), 42);
  EXPECT_TRUE(from_cache);
}

}  // namespace
}  // namespace picp::serve
