// Unit tests for the serving layer's content-addressed artifact cache:
// LRU bounds, single-flight deduplication under real concurrency, exception
// propagation to waiters, and the crash-safe disk spill tier.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/artifact_cache.hpp"
#include "util/error.hpp"

namespace picp::serve {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/picp_artifact_" + name;
  fs::remove_all(dir);
  return dir;
}

TEST(ArtifactCache, MissComputesThenHitServesWithoutRecomputing) {
  ArtifactCache<int> cache(4);
  int computes = 0;
  bool from_cache = true;
  auto first = cache.get_or_compute(7, [&] { ++computes; return 41; },
                                    &from_cache);
  EXPECT_EQ(*first, 41);
  EXPECT_FALSE(from_cache);
  auto second = cache.get_or_compute(7, [&] { ++computes; return -1; },
                                     &from_cache);
  EXPECT_EQ(*second, 41);
  EXPECT_TRUE(from_cache);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ArtifactCache, LruEvictsLeastRecentlyTouchedKey) {
  ArtifactCache<int> cache(2);
  int computes = 0;
  const auto fill = [&](std::uint64_t key) {
    return *cache.get_or_compute(key, [&] { ++computes; return int(key); });
  };
  fill(1);
  fill(2);
  fill(1);  // touch 1 so 2 becomes the LRU victim
  fill(3);  // evicts 2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  computes = 0;
  fill(1);
  fill(3);
  EXPECT_EQ(computes, 0) << "survivors must still be resident";
  fill(2);
  EXPECT_EQ(computes, 1) << "the evicted key must recompute";
}

TEST(ArtifactCache, HundredConcurrentIdenticalRequestsComputeOnce) {
  // The serving acceptance criterion in miniature: N concurrent identical
  // queries → exactly one compute, everyone gets the same artifact.
  ArtifactCache<std::string> cache(4);
  std::atomic<int> computes{0};
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;

  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const std::string>> results(100);
  for (std::size_t i = 0; i < results.size(); ++i) {
    threads.emplace_back([&, i] {
      {
        std::unique_lock<std::mutex> lock(gate_mutex);
        gate_cv.wait(lock, [&] { return gate_open; });
      }
      results[i] = cache.get_or_compute(99, [&] {
        ++computes;
        // Stay in flight long enough that the stragglers must join.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return std::string("expensive artifact");
      });
    });
  }
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  for (auto& t : threads) t.join();

  EXPECT_EQ(computes.load(), 1);
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(*r, "expensive artifact");
    // Single-flight shares one object, not 100 copies.
    EXPECT_EQ(r.get(), results[0].get());
  }
  const ArtifactCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.inflight_waits, 99u);
}

TEST(ArtifactCache, ThrowingComputeReachesWaitersAndNextCallRetries) {
  ArtifactCache<int> cache(4);
  std::atomic<int> attempts{0};

  std::atomic<int> waiter_errors{0};
  std::thread loser([&] {
    // Give the main thread time to become the in-flight computer.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    try {
      cache.get_or_compute(5, [&] { ++attempts; return 0; });
    } catch (const Error&) {
      ++waiter_errors;
    }
  });

  EXPECT_THROW(cache.get_or_compute(5,
                                    [&]() -> int {
                                      ++attempts;
                                      std::this_thread::sleep_for(
                                          std::chrono::milliseconds(80));
                                      throw Error("artifact build failed");
                                    }),
               Error);
  loser.join();
  // The waiter either joined the failing flight (got the exception) or
  // arrived after the erase and retried successfully — both are legal;
  // what is illegal is a poisoned key.
  auto value = cache.get_or_compute(5, [&] { ++attempts; return 17; });
  EXPECT_EQ(*value, 17);
  EXPECT_GE(attempts.load(), 2);
}

TEST(ArtifactCache, EvictedEntriesSpillToDiskAndRepopulate) {
  const std::string dir = temp_dir("spill");
  ArtifactCache<std::string>::SpillHooks hooks;
  hooks.encode = [](const std::string& v) { return v; };
  hooks.decode = [](const std::string& bytes) { return bytes; };
  ArtifactCache<std::string> cache(1, dir, hooks);

  cache.get_or_compute(1, [] { return std::string("one"); });
  cache.get_or_compute(2, [] { return std::string("two"); });  // evicts 1
  EXPECT_TRUE(fs::exists(cache.spill_path(1))) << cache.spill_path(1);

  int computes = 0;
  bool from_cache = false;
  auto revived = cache.get_or_compute(
      1, [&] { ++computes; return std::string("recomputed"); }, &from_cache);
  EXPECT_EQ(*revived, "one") << "disk tier should have served the artifact";
  EXPECT_EQ(computes, 0);
  EXPECT_TRUE(from_cache);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  fs::remove_all(dir);
}

TEST(ArtifactCache, CorruptSpillFileFallsBackToCompute) {
  const std::string dir = temp_dir("corrupt");
  ArtifactCache<std::string>::SpillHooks hooks;
  hooks.encode = [](const std::string& v) { return v; };
  hooks.decode = [](const std::string& bytes) -> std::string {
    if (bytes.rfind("ok:", 0) != 0) throw Error("corrupt spill artifact");
    return bytes.substr(3);
  };
  ArtifactCache<std::string> cache(1, dir, hooks);

  // Plant garbage where key 9's spill would live.
  fs::create_directories(dir);
  std::ofstream(cache.spill_path(9), std::ios::binary) << "\x00garbage";

  int computes = 0;
  bool from_cache = true;
  auto value = cache.get_or_compute(
      9, [&] { ++computes; return std::string("fresh"); }, &from_cache);
  EXPECT_EQ(*value, "fresh");
  EXPECT_EQ(computes, 1);
  EXPECT_FALSE(from_cache);
  EXPECT_EQ(cache.stats().disk_hits, 0u);
  fs::remove_all(dir);
}

TEST(ArtifactCache, DistinctKeysNeverSingleFlightTogether) {
  ArtifactCache<int> cache(16);
  std::atomic<int> computes{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i)
    threads.emplace_back([&, i] {
      cache.get_or_compute(static_cast<std::uint64_t>(i),
                           [&] { ++computes; return i; });
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(computes.load(), 8);
  EXPECT_EQ(cache.stats().misses, 8u);
  EXPECT_EQ(cache.stats().inflight_waits, 0u);
}

TEST(ArtifactCache, ZeroCapacityIsClampedToOne) {
  ArtifactCache<int> cache(0);
  cache.get_or_compute(1, [] { return 1; });
  EXPECT_EQ(cache.size(), 1u);
  bool from_cache = false;
  cache.get_or_compute(1, [] { return -1; }, &from_cache);
  EXPECT_TRUE(from_cache);
}

}  // namespace
}  // namespace picp::serve
