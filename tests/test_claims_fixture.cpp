// Claims tier bootstrap and fixture-cache conformance. The
// `ClaimsFixtureBootstrap.Generate` test doubles as the ctest
// FIXTURES_SETUP step: it materializes every shared artifact, so the rest
// of the tier (possibly running as separate processes) starts on cache
// hits.

#include <gtest/gtest.h>

#include <filesystem>

#include "support/claims_fixture.hpp"
#include "support/fixture_cache.hpp"
#include "trace/trace_reader.hpp"

namespace picp::testing {
namespace {

namespace fs = std::filesystem;

TEST(ClaimsFixtureBootstrap, Generate) {
  const ClaimsFixture& fixture = claims_fixture();
  EXPECT_TRUE(fs::exists(fixture.trace_path));
  EXPECT_TRUE(fs::exists(fixture.timings_base));
  EXPECT_TRUE(fs::exists(fixture.timings_mid));
  EXPECT_TRUE(fs::exists(fixture.timings_top));
  EXPECT_TRUE(fs::exists(fixture.models_path));
  EXPECT_GT(fixture.app_seconds, 0.0);

  TraceReader trace(fixture.trace_path);
  const SimConfig cfg = claims_config();
  EXPECT_EQ(static_cast<std::int64_t>(trace.num_samples()),
            cfg.num_samples());
}

// Acceptance criterion: fixture generation runs once per build directory —
// a second ensure of the same artifact is a recorded cache hit and must not
// invoke the generator again.
TEST(ClaimsFixtureCache, SecondEnsureIsARecordedHit) {
  const ClaimsFixture& fixture = claims_fixture();
  const std::uint64_t generations_before =
      FixtureCache::generations(fixture.trace_path);
  const std::uint64_t hits_before = FixtureCache::hits(fixture.trace_path);
  ASSERT_GE(generations_before, 1u)
      << "trace artifact exists but was never recorded as generated";

  bool generator_ran = false;
  FixtureCache cache;
  const std::string again =
      cache.ensure("claims-trace", claims_trace_fingerprint(), ".trace",
                   [&generator_ran](const std::string&) {
                     generator_ran = true;
                   });
  EXPECT_EQ(again, fixture.trace_path);
  EXPECT_FALSE(generator_ran)
      << "cached claims trace was regenerated instead of reused";
  EXPECT_EQ(FixtureCache::generations(fixture.trace_path),
            generations_before);
  EXPECT_EQ(FixtureCache::hits(fixture.trace_path), hits_before + 1);
}

}  // namespace
}  // namespace picp::testing
