#include "core/validation.hpp"

#include <gtest/gtest.h>

#include "model/linear.hpp"

namespace picp {
namespace {

/// Workload + timings where predicted == measured by construction.
struct Fixture {
  WorkloadResult workload;
  KernelTimings timings;
  ModelSet models;

  Fixture() {
    workload.num_ranks = 4;
    workload.iterations = {0, 50, 100};
    workload.comp_real = CompMatrix(4, 3);
    workload.comp_ghost = CompMatrix(4, 3);
    workload.comm_real = CommMatrix(4, 3);
    workload.comm_ghost = CommMatrix(4, 3);
    for (std::size_t t = 0; t < 3; ++t)
      for (Rank r = 0; r < 4; ++r)
        workload.comp_real.set(r, t, 10 * (r + 1) + static_cast<Rank>(t));

    // Model: t = 1e-6 * np.
    models.set("push",
               std::make_unique<LinearModel>(std::vector<double>{1e-6}, 0.0,
                                             std::vector<std::string>{"np"}),
               {"np"});

    for (std::uint32_t t = 0; t < 3; ++t)
      for (Rank r = 0; r < 4; ++r) {
        TimingRecord rec;
        rec.interval = t;
        rec.rank = r;
        rec.kernel = Kernel::kPush;
        rec.np = static_cast<double>(workload.comp_real.at(r, t));
        rec.seconds = 1e-6 * rec.np;  // exactly the model
        timings.add(rec);
      }
  }
};

TEST(Validation, PerfectModelGivesZeroMape) {
  const Fixture f;
  const Predictor predictor(f.models, 0.05);
  const ValidationReport report =
      validate_predictions(f.timings, predictor, f.workload);
  ASSERT_EQ(report.kernels.size(), 1u);
  EXPECT_EQ(report.kernels[0].kernel, "push");
  EXPECT_EQ(report.kernels[0].samples, 12u);
  EXPECT_NEAR(report.kernels[0].mape, 0.0, 1e-9);
  EXPECT_NEAR(report.average_mape, 0.0, 1e-9);
}

TEST(Validation, BiasedModelReportsError) {
  Fixture f;
  // Replace with a model 20% high.
  f.models.set("push",
               std::make_unique<LinearModel>(std::vector<double>{1.2e-6}, 0.0,
                                             std::vector<std::string>{"np"}),
               {"np"});
  const Predictor predictor(f.models, 0.05);
  const ValidationReport report =
      validate_predictions(f.timings, predictor, f.workload);
  EXPECT_NEAR(report.kernels[0].mape, 20.0, 1e-6);
  EXPECT_NEAR(report.kernels[0].peak_error, 20.0, 1e-6);
  EXPECT_NEAR(report.average_mape, 20.0, 1e-6);
}

TEST(Validation, FloorSkipsTinyMeasurements) {
  Fixture f;
  TimingRecord rec;
  rec.interval = 0;
  rec.rank = 0;
  rec.kernel = Kernel::kPush;
  rec.np = 10;
  rec.seconds = 1e-12;  // below the floor
  f.timings.add(rec);
  const Predictor predictor(f.models, 0.05);
  const ValidationReport report =
      validate_predictions(f.timings, predictor, f.workload, 1e-7);
  EXPECT_EQ(report.kernels[0].samples, 12u);
}

TEST(Validation, OutOfRangeIntervalsSkipped) {
  Fixture f;
  TimingRecord rec;
  rec.interval = 99;
  rec.rank = 0;
  rec.kernel = Kernel::kPush;
  rec.np = 10;
  rec.seconds = 1e-5;
  f.timings.add(rec);
  const Predictor predictor(f.models, 0.05);
  const ValidationReport report =
      validate_predictions(f.timings, predictor, f.workload);
  EXPECT_EQ(report.kernels[0].samples, 12u);
}

TEST(Validation, WeightedAverageAcrossKernels) {
  Fixture f;
  // Add a second kernel with known 10% error on 12 samples.
  f.models.set("interpolate",
               std::make_unique<LinearModel>(std::vector<double>{1.1e-6}, 0.0,
                                             std::vector<std::string>{"np"}),
               {"np"});
  for (std::uint32_t t = 0; t < 3; ++t)
    for (Rank r = 0; r < 4; ++r) {
      TimingRecord rec;
      rec.interval = t;
      rec.rank = r;
      rec.kernel = Kernel::kInterpolate;
      rec.np = static_cast<double>(f.workload.comp_real.at(r, t));
      rec.seconds = 1e-6 * rec.np;
      f.timings.add(rec);
    }
  const Predictor predictor(f.models, 0.05);
  const ValidationReport report =
      validate_predictions(f.timings, predictor, f.workload);
  ASSERT_EQ(report.kernels.size(), 2u);
  EXPECT_NEAR(report.average_mape, 5.0, 1e-6);  // (0% * 12 + 10% * 12) / 24
}

TEST(PredictorTest, ComputeTableSumsKernels) {
  Fixture f;
  const Predictor predictor(f.models, 0.05);
  const auto table = predictor.compute_table(f.workload);
  ASSERT_EQ(table.size(), 12u);
  // Only "push" is modeled: table entry = 1e-6 * np.
  EXPECT_NEAR(table[0], 1e-6 * 10, 1e-15);
  EXPECT_NEAR(table[4 * 2 + 3], 1e-6 * 42, 1e-15);
}

TEST(PredictorTest, SimInputWiresMatrices) {
  Fixture f;
  const Predictor predictor(f.models, 0.05);
  NetworkParams net;
  const TraceSimInput input = predictor.sim_input(f.workload, net);
  EXPECT_EQ(input.num_ranks, 4);
  EXPECT_EQ(input.num_intervals, 3u);
  EXPECT_EQ(input.comm_real, &f.workload.comm_real);
  EXPECT_EQ(input.comm_ghost, &f.workload.comm_ghost);
}

}  // namespace
}  // namespace picp
