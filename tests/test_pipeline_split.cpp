// Regression tests for the pipeline stage split (serving refactor): the
// daemon calls generate_workload() / simulate_workload() separately with
// cached artifacts, the CLI calls the monolithic predict(). These tests pin
// the contract that both paths produce bit-identical numbers, so a cached
// response can never drift from what a fresh CLI run would print.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "picsim/sim_driver.hpp"

namespace picp {
namespace {

struct SplitFixture {
  SimConfig cfg;
  std::string trace_path;
  ModelSet models;
  std::unique_ptr<SimDriver> driver;

  SplitFixture() {
    cfg.nelx = 6;
    cfg.nely = 6;
    cfg.nelz = 12;
    cfg.bed.num_particles = 1500;
    cfg.num_iterations = 200;
    cfg.sample_every = 50;
    cfg.num_ranks = 12;
    cfg.filter_size = 0.09;
    cfg.measure = true;
    cfg.measure_min_seconds = 5e-6;
    cfg.measure_max_reps = 8;
    trace_path = testing::TempDir() + "/picp_split_" +
                 testing::UnitTest::GetInstance()->current_test_info()->name() +
                 ".bin";
    driver = std::make_unique<SimDriver>(cfg);
    const SimResult app = driver->run(trace_path);

    // Small models: the tests compare the two code paths against each
    // other, so fit quality is irrelevant — only determinism matters.
    ModelGenConfig mg;
    mg.symreg.population = 64;
    mg.symreg.generations = 8;
    mg.symreg.threads = 1;
    models = train_models(app.timings, mg);
  }
  ~SplitFixture() { std::remove(trace_path.c_str()); }
};

void expect_same_workload(const WorkloadResult& a, const WorkloadResult& b) {
  ASSERT_EQ(a.num_ranks, b.num_ranks);
  ASSERT_EQ(a.num_intervals(), b.num_intervals());
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.partitions_per_interval, b.partitions_per_interval);
  EXPECT_EQ(a.elements_per_rank, b.elements_per_rank);
  for (std::size_t t = 0; t < a.num_intervals(); ++t) {
    for (Rank r = 0; r < a.num_ranks; ++r) {
      ASSERT_EQ(a.comp_real.at(r, t), b.comp_real.at(r, t));
      ASSERT_EQ(a.comp_ghost.at(r, t), b.comp_ghost.at(r, t));
    }
    const auto ta = a.comm_real.interval_transfers(t);
    const auto tb = b.comm_real.interval_transfers(t);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
      ASSERT_EQ(ta[i].from, tb[i].from);
      ASSERT_EQ(ta[i].to, tb[i].to);
      ASSERT_EQ(ta[i].count, tb[i].count);
    }
    ASSERT_EQ(a.comm_ghost.interval_volume(t), b.comm_ghost.interval_volume(t));
    ASSERT_EQ(a.comm_ghost.interval_pairs(t), b.comm_ghost.interval_pairs(t));
  }
}

void expect_same_report(const SimReport& a, const SimReport& b) {
  // EXPECT_EQ on doubles is deliberate: the contract is bit-identical
  // replay, not approximate agreement.
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.critical_path_seconds, b.critical_path_seconds);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.interval_end, b.interval_end);
  EXPECT_EQ(a.rank_busy_seconds, b.rank_busy_seconds);
}

TEST(PipelineSplit, SplitStagesMatchMonolithicPredictExactly) {
  SplitFixture f;
  PredictionPipeline pipeline(f.driver->mesh(), f.models);
  PredictionConfig pc;
  pc.num_ranks = f.cfg.num_ranks;
  pc.filter_size = f.cfg.filter_size;

  TraceReader monolithic_reader(f.trace_path);
  const PredictionOutcome outcome = pipeline.predict(monolithic_reader, pc);

  TraceReader split_reader(f.trace_path);
  const WorkloadResult workload = pipeline.generate_workload(split_reader, pc);
  const SimReport sim = pipeline.simulate_workload(workload, pc);

  expect_same_workload(outcome.workload, workload);
  expect_same_report(outcome.sim, sim);
}

TEST(PipelineSplit, SimulateWorkloadIsPureOverCachedArtifacts) {
  // The daemon simulates against one cached WorkloadResult from many
  // threads; that is only sound if simulate_workload() mutates nothing and
  // replays identically.
  SplitFixture f;
  PredictionPipeline pipeline(f.driver->mesh(), f.models);
  PredictionConfig pc;
  pc.num_ranks = f.cfg.num_ranks;
  pc.filter_size = f.cfg.filter_size;

  TraceReader reader(f.trace_path);
  const WorkloadResult workload = pipeline.generate_workload(reader, pc);
  const SimReport first = pipeline.simulate_workload(workload, pc);

  std::vector<SimReport> reports(4);
  std::vector<std::thread> threads;
  for (auto& slot : reports)
    threads.emplace_back(
        [&, out = &slot] { *out = pipeline.simulate_workload(workload, pc); });
  for (auto& t : threads) t.join();
  for (const SimReport& report : reports) expect_same_report(first, report);
}

TEST(PipelineSplit, DifferentTargetsFromOneWorkloadStayIndependent) {
  // Serving reuses a cached workload across requests that differ only in
  // network parameters; the simulation must honor the per-request config
  // rather than anything captured at generation time.
  SplitFixture f;
  PredictionPipeline pipeline(f.driver->mesh(), f.models);
  PredictionConfig pc;
  pc.num_ranks = f.cfg.num_ranks;
  pc.filter_size = f.cfg.filter_size;

  TraceReader reader(f.trace_path);
  const WorkloadResult workload = pipeline.generate_workload(reader, pc);

  PredictionConfig slow = pc;
  slow.network.alpha = pc.network.alpha * 100.0;
  slow.network.beta = pc.network.beta / 100.0;
  const SimReport fast_net = pipeline.simulate_workload(workload, pc);
  const SimReport slow_net = pipeline.simulate_workload(workload, slow);
  EXPECT_GT(slow_net.total_seconds, fast_net.total_seconds);
  // Compute critical path has no network term, so it must not move.
  EXPECT_EQ(slow_net.critical_path_seconds, fast_net.critical_path_seconds);
}

}  // namespace
}  // namespace picp
