#include "mesh/partition.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace picp {
namespace {

SpectralMesh make_mesh(std::int64_t nx = 8, std::int64_t ny = 8,
                       std::int64_t nz = 8) {
  return SpectralMesh(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), nx, ny, nz, 3);
}

TEST(RcbPartition, EveryElementOwned) {
  const SpectralMesh mesh = make_mesh();
  const MeshPartition part = rcb_partition(mesh, 7);
  for (const Rank r : part.element_owners()) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 7);
  }
}

TEST(RcbPartition, CountsSumToTotal) {
  const SpectralMesh mesh = make_mesh();
  const MeshPartition part = rcb_partition(mesh, 5);
  std::int64_t total = 0;
  for (const std::int64_t n : part.elements_per_rank()) total += n;
  EXPECT_EQ(total, mesh.num_elements());
}

// Balance must hold for power-of-two and awkward rank counts alike (the
// paper's processor counts — 1044, 2088, ... — are not powers of two).
class RcbBalance : public testing::TestWithParam<Rank> {};

TEST_P(RcbBalance, MaxMinSpreadIsTight) {
  const SpectralMesh mesh = make_mesh();
  const MeshPartition part = rcb_partition(mesh, GetParam());
  EXPECT_LE(part.max_elements_per_rank() - part.min_elements_per_rank(), 1)
      << "ranks=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RankCounts, RcbBalance,
                         testing::Values<Rank>(1, 2, 3, 4, 5, 7, 8, 16, 21,
                                               64, 100, 261, 512));

TEST(RcbPartition, RegionsAreSpatiallyCompact) {
  const SpectralMesh mesh = make_mesh();
  const MeshPartition part = rcb_partition(mesh, 8);
  // With 8 ranks over a cube, RCB yields octants: each rank's bounding box
  // volume should be ~1/8 of the domain.
  for (Rank r = 0; r < 8; ++r)
    EXPECT_NEAR(part.rank_bounds(r).volume(), 1.0 / 8.0, 1e-9);
}

TEST(RcbPartition, Deterministic) {
  const SpectralMesh mesh = make_mesh();
  const MeshPartition a = rcb_partition(mesh, 13);
  const MeshPartition b = rcb_partition(mesh, 13);
  EXPECT_EQ(a.element_owners(), b.element_owners());
}

TEST(RcbPartition, MoreRanksThanElements) {
  const SpectralMesh mesh = make_mesh(2, 2, 2);  // 8 elements
  const MeshPartition part = rcb_partition(mesh, 16);
  EXPECT_EQ(part.max_elements_per_rank(), 1);
  EXPECT_EQ(part.min_elements_per_rank(), 0);
}

TEST(RcbPartition, SingleRankOwnsAll) {
  const SpectralMesh mesh = make_mesh(4, 4, 4);
  const MeshPartition part = rcb_partition(mesh, 1);
  EXPECT_EQ(part.elements_per_rank()[0], 64);
  EXPECT_NEAR(part.rank_bounds(0).volume(), 1.0, 1e-12);
}

TEST(BlockPartition, BalancedContiguous) {
  const SpectralMesh mesh = make_mesh();
  const MeshPartition part = block_partition(mesh, 6);
  EXPECT_LE(part.max_elements_per_rank() - part.min_elements_per_rank(), 1);
  // Owners are non-decreasing in element order.
  Rank prev = 0;
  for (const Rank r : part.element_owners()) {
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(MeshPartitionTest, RankBoundsCoverOwnedElements) {
  const SpectralMesh mesh = make_mesh();
  const MeshPartition part = rcb_partition(mesh, 12);
  for (ElementId e = 0; e < mesh.num_elements(); ++e) {
    const Rank r = part.owner_of(e);
    const Aabb eb = mesh.element_bounds(e);
    EXPECT_TRUE(part.rank_bounds(r).contains_closed(eb.center()));
  }
}

TEST(MeshPartitionTest, RejectsBadArguments) {
  const SpectralMesh mesh = make_mesh(2, 2, 2);
  EXPECT_THROW(rcb_partition(mesh, 0), Error);
  EXPECT_THROW(MeshPartition(2, std::vector<Rank>{0, 1}, mesh), Error);
  std::vector<Rank> bad(8, 5);
  EXPECT_THROW(MeshPartition(2, bad, mesh), Error);
}

}  // namespace
}  // namespace picp
