#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "util/error.hpp"

namespace picp {
namespace {

TEST(Mean, Basics) {
  const std::array<double, 4> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(Stddev, KnownValue) {
  const std::array<double, 4> v = {2.0, 4.0, 4.0, 6.0};
  EXPECT_NEAR(stddev(v), std::sqrt(2.0), 1e-12);
  const std::array<double, 1> one = {5.0};
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
}

TEST(MinMax, Basics) {
  const std::array<double, 3> v = {3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 3.0);
  EXPECT_THROW(min_value(std::span<const double>{}), Error);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::array<double, 5> v = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 12.5), 15.0);
}

TEST(Percentile, UnsortedInput) {
  const std::array<double, 3> v = {30.0, 10.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 20.0);
}

TEST(Percentile, OutOfRangeThrows) {
  const std::array<double, 1> v = {1.0};
  EXPECT_THROW(percentile(v, -1), Error);
  EXPECT_THROW(percentile(v, 101), Error);
}

TEST(Mape, KnownValue) {
  const std::array<double, 2> actual = {100.0, 200.0};
  const std::array<double, 2> predicted = {110.0, 180.0};
  // (10% + 10%) / 2 = 10%
  EXPECT_NEAR(mape(actual, predicted), 10.0, 1e-12);
}

TEST(Mape, SkipsNearZeroActuals) {
  const std::array<double, 3> actual = {0.0, 100.0, 1e-15};
  const std::array<double, 3> predicted = {5.0, 90.0, 1.0};
  EXPECT_NEAR(mape(actual, predicted), 10.0, 1e-12);
}

TEST(Mape, AllSkippedIsZero) {
  const std::array<double, 2> actual = {0.0, 0.0};
  const std::array<double, 2> predicted = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(mape(actual, predicted), 0.0);
}

TEST(Mape, SizeMismatchThrows) {
  const std::array<double, 2> a = {1.0, 2.0};
  const std::array<double, 1> p = {1.0};
  EXPECT_THROW(mape(a, p), Error);
}

TEST(RSquared, PerfectFit) {
  const std::array<double, 3> y = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(y, y), 1.0);
}

TEST(RSquared, MeanPredictorIsZero) {
  const std::array<double, 4> y = {1.0, 2.0, 3.0, 4.0};
  const std::array<double, 4> p = {2.5, 2.5, 2.5, 2.5};
  EXPECT_NEAR(r_squared(y, p), 0.0, 1e-12);
}

TEST(HistogramTest, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamped to bin 0
  h.add(42.0);  // clamped to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[4], 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(HistogramTest, BadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
}

TEST(RunningStatsTest, TracksMinMaxMean) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(2.0);
  s.add(-4.0);
  s.add(5.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.min(), -4.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 1.0);
}

}  // namespace
}  // namespace picp
