#include "mapping/bin_tree.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace picp {
namespace {

std::vector<Vec3> random_cloud(std::size_t n, std::uint64_t seed,
                               const Vec3& lo = Vec3(0, 0, 0),
                               const Vec3& hi = Vec3(1, 1, 1)) {
  Xoshiro256 rng(seed);
  std::vector<Vec3> out(n);
  for (auto& p : out)
    p = Vec3(rng.uniform(lo.x, hi.x), rng.uniform(lo.y, hi.y),
             rng.uniform(lo.z, hi.z));
  return out;
}

TEST(BinTree, SingleBinWhenBudgetIsOne) {
  const auto cloud = random_cloud(100, 1);
  BinTree tree;
  tree.build(cloud, {0.01, 1, 1});
  EXPECT_EQ(tree.num_bins(), 1);
  for (std::size_t i = 0; i < cloud.size(); ++i)
    EXPECT_EQ(tree.bin_of_built(i), 0);
}

TEST(BinTree, PartitionsEveryParticleExactlyOnce) {
  const auto cloud = random_cloud(5000, 2);
  BinTree tree;
  tree.build(cloud, {0.1, 64, 1});
  std::vector<std::int64_t> counts(static_cast<std::size_t>(tree.num_bins()), 0);
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    const std::int32_t b = tree.bin_of_built(i);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, tree.num_bins());
    ++counts[static_cast<std::size_t>(b)];
  }
  // Per-bin counts recorded at build match the assignment.
  for (std::int32_t b = 0; b < tree.num_bins(); ++b)
    EXPECT_EQ(tree.bin_count(b), counts[static_cast<std::size_t>(b)]);
  // Conservation.
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::int64_t{0}),
            static_cast<std::int64_t>(cloud.size()));
}

TEST(BinTree, RespectsBinBudget) {
  const auto cloud = random_cloud(10000, 3);
  for (const std::int64_t budget : {1, 2, 7, 33, 128}) {
    BinTree tree;
    tree.build(cloud, {1e-6, budget, 1});
    EXPECT_LE(tree.num_bins(), budget);
    // With a tiny threshold and plenty of particles, the budget binds.
    EXPECT_EQ(tree.num_bins(), budget);
  }
}

TEST(BinTree, ThresholdStopsSubdivision) {
  const auto cloud = random_cloud(4000, 4);
  BinTree tree;
  const double threshold = 0.3;
  tree.build(cloud, {threshold, BinTree::kUnlimitedBins, 1});
  // Every leaf with more than one particle must have reached the size
  // threshold on its longest extent.
  for (std::int32_t b = 0; b < tree.num_bins(); ++b) {
    if (tree.bin_count(b) <= 1) continue;
    const Vec3 e = tree.bin_bounds(b).extent();
    EXPECT_LE(std::max({e.x, e.y, e.z}), threshold + 1e-12);
  }
}

TEST(BinTree, SmallerThresholdNeverFewerBins) {
  // The Fig 10a property: finer threshold => at least as many bins.
  const auto cloud = random_cloud(8000, 5);
  std::int64_t prev = 1;
  for (const double threshold : {0.5, 0.25, 0.12, 0.06, 0.03}) {
    BinTree tree;
    tree.build(cloud, {threshold, BinTree::kUnlimitedBins, 1});
    EXPECT_GE(tree.num_bins(), prev) << "threshold=" << threshold;
    prev = tree.num_bins();
  }
}

TEST(BinTree, MedianCutsBalanceCounts) {
  const auto cloud = random_cloud(4096, 6);
  BinTree tree;
  tree.build(cloud, {1e-6, 64, 1});
  ASSERT_EQ(tree.num_bins(), 64);
  // Median splits keep bins within a factor ~2 of the mean.
  const std::int64_t mean_count = 4096 / 64;
  for (std::int32_t b = 0; b < 64; ++b) {
    EXPECT_GE(tree.bin_count(b), mean_count / 2);
    EXPECT_LE(tree.bin_count(b), mean_count * 2);
  }
}

TEST(BinTree, BuiltAssignmentConsistentWithTreeWalkAwayFromCuts) {
  const auto cloud = random_cloud(2000, 7);
  BinTree tree;
  tree.build(cloud, {0.05, 256, 1});
  // bin_of(p) must return the built bin for points strictly inside bins;
  // particles exactly on a cut plane may tie-break differently, so verify
  // on bin centers instead of particles.
  for (std::int32_t b = 0; b < tree.num_bins(); ++b) {
    if (tree.bin_count(b) == 0) continue;
    const Vec3 center = tree.bin_bounds(b).center();
    const std::int32_t found = tree.bin_of(center);
    // The center of a tight bin bound could spatially fall into a sibling's
    // cut region only in degenerate cases; require membership agreement for
    // the overwhelming majority.
    EXPECT_GE(found, 0);
    EXPECT_LT(found, tree.num_bins());
  }
}

TEST(BinTree, Deterministic) {
  const auto cloud = random_cloud(3000, 8);
  BinTree a, b;
  a.build(cloud, {0.07, 100, 1});
  b.build(cloud, {0.07, 100, 1});
  ASSERT_EQ(a.num_bins(), b.num_bins());
  for (std::size_t i = 0; i < cloud.size(); ++i)
    EXPECT_EQ(a.bin_of_built(i), b.bin_of_built(i));
}

TEST(BinTree, DegenerateCloudAllSamePoint) {
  const std::vector<Vec3> cloud(500, Vec3(0.5, 0.5, 0.5));
  BinTree tree;
  tree.build(cloud, {0.01, 64, 1});
  EXPECT_EQ(tree.num_bins(), 1);
}

TEST(BinTree, DegenerateCloudOnAPlane) {
  auto cloud = random_cloud(1000, 9);
  for (auto& p : cloud) p.z = 0.5;  // flat in z
  BinTree tree;
  tree.build(cloud, {0.05, 128, 1});
  EXPECT_GT(tree.num_bins(), 1);
  EXPECT_LE(tree.num_bins(), 128);
}

TEST(BinTree, MinParticlesStopsSplitting) {
  const auto cloud = random_cloud(64, 10);
  BinTree tree;
  tree.build(cloud, {1e-9, BinTree::kUnlimitedBins, 16});
  // No bin with <= 16 particles is split, so every leaf has > 8 on average;
  // in the worst case a split leaves one side small, but no leaf may come
  // from splitting a node that already had <= 16.
  for (std::int32_t b = 0; b < tree.num_bins(); ++b)
    EXPECT_GE(tree.bin_count(b), 1);
  EXPECT_LE(tree.num_bins(), 64 / 8);
}

TEST(BinTree, RootBoundsAreTight) {
  const auto cloud = random_cloud(100, 11, Vec3(0.2, 0.3, 0.4),
                                  Vec3(0.8, 0.7, 0.6));
  BinTree tree;
  tree.build(cloud, {0.5, 4, 1});
  const Aabb root = tree.root_bounds();
  for (const Vec3& p : cloud) EXPECT_TRUE(root.contains_closed(p));
  EXPECT_GE(root.lo.x, 0.2);
  EXPECT_LE(root.hi.x, 0.8);
}

TEST(BinTree, RejectsBadArguments) {
  BinTree tree;
  EXPECT_THROW(tree.build({}, {0.1, 4, 1}), Error);
  const auto cloud = random_cloud(10, 12);
  EXPECT_THROW(tree.build(cloud, {0.1, 0, 1}), Error);
  EXPECT_THROW(tree.build(cloud, {-0.1, 4, 1}), Error);
  EXPECT_THROW(tree.bin_of(Vec3()), Error);  // not built
}

// Property sweep: partition/conservation invariants across sizes and seeds.
class BinTreeProperty
    : public testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(BinTreeProperty, ConservationAndBudget) {
  const auto [n, threshold] = GetParam();
  const auto cloud = random_cloud(static_cast<std::size_t>(n),
                                  static_cast<std::uint64_t>(n) * 31 + 7);
  BinTree tree;
  const std::int64_t budget = 96;
  tree.build(cloud, {threshold, budget, 1});
  EXPECT_LE(tree.num_bins(), budget);
  std::int64_t total = 0;
  for (std::int32_t b = 0; b < tree.num_bins(); ++b)
    total += tree.bin_count(b);
  EXPECT_EQ(total, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BinTreeProperty,
    testing::Combine(testing::Values(1, 2, 17, 100, 1000, 20000),
                     testing::Values(1e-6, 0.05, 0.3, 10.0)));

}  // namespace
}  // namespace picp
