#include "bsst/network_model.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace picp {
namespace {

NetworkParams params() {
  NetworkParams p;
  p.alpha = 1e-6;
  p.beta = 1e9;
  p.bytes_per_particle = 100.0;
  p.bytes_per_ghost = 50.0;
  return p;
}

TEST(NetworkModel, MessageTimeIsAlphaBeta) {
  const NetworkModel net(params());
  EXPECT_DOUBLE_EQ(net.message_time(0.0), 1e-6);
  EXPECT_DOUBLE_EQ(net.message_time(1e6), 1e-6 + 1e-3);
}

TEST(NetworkModel, ParticleAndGhostMessages) {
  const NetworkModel net(params());
  EXPECT_DOUBLE_EQ(net.particle_message_time(10),
                   net.message_time(1000.0));
  EXPECT_DOUBLE_EQ(net.ghost_message_time(10), net.message_time(500.0));
}

TEST(NetworkModel, CollectiveScalesLogarithmically) {
  const NetworkModel net(params());
  EXPECT_DOUBLE_EQ(net.collective_time(1), 0.0);
  EXPECT_DOUBLE_EQ(net.collective_time(2), net.message_time(8.0));
  EXPECT_DOUBLE_EQ(net.collective_time(1024), 10 * net.message_time(8.0));
  // Non-power-of-two rounds up.
  EXPECT_DOUBLE_EQ(net.collective_time(1044), 11 * net.message_time(8.0));
}

TEST(NetworkModel, MonotoneInRanks) {
  const NetworkModel net(params());
  double prev = 0.0;
  for (std::int64_t r = 1; r < 10000; r *= 3) {
    const double t = net.collective_time(r);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(NetworkModel, RejectsBadParams) {
  NetworkParams p = params();
  p.beta = 0.0;
  EXPECT_THROW((NetworkModel(p)), Error);
  p = params();
  p.alpha = -1.0;
  EXPECT_THROW((NetworkModel(p)), Error);
}

}  // namespace
}  // namespace picp
