#include "workload/ghost_finder.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace picp {
namespace {

// 4x1x1 elements over [0,4]x[0,1]x[0,1], one element per rank: rank r owns
// x in [r, r+1).
struct Strip {
  SpectralMesh mesh{Aabb(Vec3(0, 0, 0), Vec3(4, 1, 1)), 4, 1, 1, 3};
  MeshPartition partition{block_partition(mesh, 4)};
};

TEST(GhostFinder, InteriorParticleHasNoGhosts) {
  Strip w;
  GhostFinder finder(w.mesh, w.partition, 0.2);
  std::vector<Rank> out;
  finder.ranks_near(Vec3(0.5, 0.5, 0.5), 0, out);
  EXPECT_TRUE(out.empty());
}

TEST(GhostFinder, NearBoundaryGhostsOnNeighbor) {
  Strip w;
  GhostFinder finder(w.mesh, w.partition, 0.2);
  std::vector<Rank> out;
  // 0.1 from the rank0/rank1 boundary at x=1.
  finder.ranks_near(Vec3(0.9, 0.5, 0.5), 0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1);
}

TEST(GhostFinder, ExcludesOwnRank) {
  Strip w;
  GhostFinder finder(w.mesh, w.partition, 0.2);
  std::vector<Rank> out;
  finder.ranks_near(Vec3(0.9, 0.5, 0.5), 1, out);
  // Rank 1 excluded; the particle's own element belongs to rank 0.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0);
}

TEST(GhostFinder, LargeRadiusReachesTwoNeighbors) {
  Strip w;
  GhostFinder finder(w.mesh, w.partition, 1.2);
  std::vector<Rank> out;
  finder.ranks_near(Vec3(1.5, 0.5, 0.5), 1, out);
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 2);
}

TEST(GhostFinder, RadiusExactlyToFaceDoesNotCount) {
  Strip w;
  // Distance to the boundary equals the radius: strict < comparison.
  GhostFinder finder(w.mesh, w.partition, 0.5);
  std::vector<Rank> out;
  finder.ranks_near(Vec3(0.5, 0.5, 0.5), 0, out);
  EXPECT_TRUE(out.empty());
}

TEST(GhostFinder, ZeroRadiusNeverGhosts) {
  Strip w;
  GhostFinder finder(w.mesh, w.partition, 0.0);
  std::vector<Rank> out;
  finder.ranks_near(Vec3(0.999, 0.5, 0.5), 0, out);
  EXPECT_TRUE(out.empty());
}

TEST(GhostFinder, DedupesRanksOwningMultipleElements) {
  // 4 elements, 2 ranks: rank 0 owns x in [0,2), rank 1 owns [2,4).
  SpectralMesh mesh(Aabb(Vec3(0, 0, 0), Vec3(4, 1, 1)), 4, 1, 1, 3);
  MeshPartition partition = block_partition(mesh, 2);
  GhostFinder finder(mesh, partition, 1.5);
  std::vector<Rank> out;
  // Radius covers both of rank 1's elements; rank 1 must appear once.
  finder.ranks_near(Vec3(1.9, 0.5, 0.5), 0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1);
}

TEST(GhostFinder, ResidentGridRank) {
  Strip w;
  GhostFinder finder(w.mesh, w.partition, 0.1);
  EXPECT_EQ(finder.resident_grid_rank(Vec3(2.5, 0.5, 0.5)), 2);
  EXPECT_EQ(finder.resident_grid_rank(Vec3(0.1, 0.5, 0.5)), 0);
}

TEST(GhostFinder, CornerTouchesDiagonalRank) {
  // 2x2 elements in xy, 4 ranks; a particle near the shared corner sees all
  // three foreign ranks.
  SpectralMesh mesh(Aabb(Vec3(0, 0, 0), Vec3(2, 2, 1)), 2, 2, 1, 3);
  MeshPartition partition = block_partition(mesh, 4);
  GhostFinder finder(mesh, partition, 0.1);
  std::vector<Rank> out;
  finder.ranks_near(Vec3(0.95, 0.95, 0.5), 0, out);
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(out[2], 3);
}

TEST(GhostFinder, NegativeRadiusThrows) {
  Strip w;
  EXPECT_THROW(GhostFinder(w.mesh, w.partition, -0.1), Error);
}

}  // namespace
}  // namespace picp
