#include "mesh/spectral_mesh.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace picp {
namespace {

SpectralMesh make_mesh() {
  return SpectralMesh(Aabb(Vec3(0, 0, 0), Vec3(4, 2, 2)), 8, 4, 4, 5);
}

TEST(SpectralMeshTest, Counts) {
  const SpectralMesh mesh = make_mesh();
  EXPECT_EQ(mesh.num_elements(), 128);
  EXPECT_EQ(mesh.points_per_dim(), 5);
  EXPECT_EQ(mesh.points_per_element(), 125);
  EXPECT_EQ(mesh.total_grid_points(), 128 * 125);
}

TEST(SpectralMeshTest, ElementLookup) {
  const SpectralMesh mesh = make_mesh();
  // Element size is 0.5 in each dimension.
  const ElementId e = mesh.element_of(Vec3(0.25, 0.25, 0.25));
  EXPECT_EQ(e, mesh.element_at(0, 0, 0));
  const ElementId e2 = mesh.element_of(Vec3(3.9, 1.9, 1.9));
  EXPECT_EQ(e2, mesh.element_at(7, 3, 3));
}

TEST(SpectralMeshTest, ElementBoundsContainPoint) {
  const SpectralMesh mesh = make_mesh();
  const Vec3 p(1.23, 0.77, 1.91);
  const ElementId e = mesh.element_of(p);
  EXPECT_TRUE(mesh.element_bounds(e).contains_closed(p));
}

TEST(SpectralMeshTest, OutsidePointsClampToBoundaryElements) {
  const SpectralMesh mesh = make_mesh();
  EXPECT_EQ(mesh.element_of(Vec3(-1, -1, -1)), mesh.element_at(0, 0, 0));
  EXPECT_EQ(mesh.element_of(Vec3(10, 10, 10)), mesh.element_at(7, 3, 3));
}

TEST(SpectralMeshTest, CoordsRoundTrip) {
  const SpectralMesh mesh = make_mesh();
  for (ElementId e = 0; e < mesh.num_elements(); ++e) {
    const auto c = mesh.element_coords(e);
    EXPECT_EQ(mesh.element_at(c[0], c[1], c[2]), e);
  }
}

TEST(SpectralMeshTest, ElementCenterInsideBounds) {
  const SpectralMesh mesh = make_mesh();
  for (ElementId e = 0; e < mesh.num_elements(); e += 7) {
    const Aabb box = mesh.element_bounds(e);
    EXPECT_TRUE(box.contains(mesh.element_center(e)));
  }
}

TEST(SpectralMeshTest, ElementSize) {
  const SpectralMesh mesh = make_mesh();
  EXPECT_EQ(mesh.element_size(), Vec3(0.5, 0.5, 0.5));
}

TEST(SpectralMeshTest, RejectsBadN) {
  EXPECT_THROW(
      SpectralMesh(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), 2, 2, 2, 1), Error);
}

}  // namespace
}  // namespace picp
