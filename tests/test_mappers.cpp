#include "mapping/mapper.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "mapping/bin_mapper.hpp"
#include "mapping/element_mapper.hpp"
#include "mapping/hilbert_mapper.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace picp {
namespace {

struct World {
  SpectralMesh mesh{Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), 8, 8, 8, 3};
  MeshPartition partition{rcb_partition(mesh, 16)};
};

std::vector<Vec3> random_cloud(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Vec3> out(n);
  for (auto& p : out)
    p = Vec3(rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1));
  return out;
}

TEST(ElementMapperTest, OwnerMatchesElementPartition) {
  World w;
  ElementMapper mapper(w.mesh, w.partition);
  const auto cloud = random_cloud(500, 1);
  std::vector<Rank> owners;
  mapper.map(cloud, owners);
  ASSERT_EQ(owners.size(), cloud.size());
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    EXPECT_EQ(owners[i], w.partition.owner_of(w.mesh.element_of(cloud[i])));
    EXPECT_EQ(owners[i], mapper.owner_of_point(cloud[i]));
  }
}

TEST(ElementMapperTest, PartitionsEqualsRanks) {
  World w;
  ElementMapper mapper(w.mesh, w.partition);
  EXPECT_EQ(mapper.num_partitions(), 16);
  EXPECT_EQ(mapper.num_ranks(), 16);
  EXPECT_EQ(mapper.name(), "element");
}

TEST(BinMapperTest, OwnersInRange) {
  World w;
  BinMapper mapper(16, 0.1);
  const auto cloud = random_cloud(2000, 2);
  std::vector<Rank> owners;
  mapper.map(cloud, owners);
  for (const Rank r : owners) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 16);
  }
}

TEST(BinMapperTest, BalancesConcentratedCloud) {
  // Particles concentrated in one corner: element mapping would place all
  // of them on one or two ranks; bin mapping must spread them.
  World w;
  Xoshiro256 rng(3);
  std::vector<Vec3> cloud(4000);
  for (auto& p : cloud)
    p = Vec3(rng.uniform(0, 0.2), rng.uniform(0, 0.2), rng.uniform(0, 0.2));

  ElementMapper em(w.mesh, w.partition);
  BinMapper bm(16, 1e-4);
  std::vector<Rank> eo, bo;
  em.map(cloud, eo);
  bm.map(cloud, bo);

  const auto peak = [](const std::vector<Rank>& owners, Rank ranks) {
    std::vector<std::int64_t> counts(static_cast<std::size_t>(ranks), 0);
    for (const Rank r : owners) ++counts[static_cast<std::size_t>(r)];
    return *std::max_element(counts.begin(), counts.end());
  };
  EXPECT_LT(peak(bo, 16) * 4, peak(eo, 16));
}

TEST(BinMapperTest, PartitionsReportBinCount) {
  BinMapper mapper(16, 1e-5);
  const auto cloud = random_cloud(1000, 4);
  std::vector<Rank> owners;
  mapper.map(cloud, owners);
  EXPECT_EQ(mapper.num_partitions(), 16);  // budget-capped
  BinMapper relaxed(16, 0.4, BinTree::kUnlimitedBins);
  relaxed.map(cloud, owners);
  EXPECT_GE(relaxed.num_partitions(), 8);  // threshold-limited, not 16
}

TEST(BinMapperTest, OwnerOfPointRequiresMap) {
  BinMapper mapper(4, 0.1);
  EXPECT_THROW(mapper.owner_of_point(Vec3(0.5, 0.5, 0.5)), Error);
  const auto cloud = random_cloud(100, 5);
  std::vector<Rank> owners;
  mapper.map(cloud, owners);
  EXPECT_NO_THROW(mapper.owner_of_point(Vec3(0.5, 0.5, 0.5)));
}

TEST(BinMapperTest, MappedOwnersMatchOwnerOfPointForInteriorPoints) {
  BinMapper mapper(8, 0.2);
  const auto cloud = random_cloud(300, 6);
  std::vector<Rank> owners;
  mapper.map(cloud, owners);
  // owner_of_point walks cut planes; built owners use construction ids.
  // They agree except for particles exactly on a cut plane (measure zero
  // for random doubles).
  std::size_t agree = 0;
  for (std::size_t i = 0; i < cloud.size(); ++i)
    if (mapper.owner_of_point(cloud[i]) == owners[i]) ++agree;
  EXPECT_GE(agree, cloud.size() - 2);
}

TEST(HilbertMapperTest, CountsAreBalanced) {
  World w;
  HilbertMapper mapper(w.mesh, 16);
  const auto cloud = random_cloud(3200, 7);
  std::vector<Rank> owners;
  mapper.map(cloud, owners);
  std::vector<std::int64_t> counts(16, 0);
  for (const Rank r : owners) ++counts[static_cast<std::size_t>(r)];
  // Hilbert chunks balance counts up to element granularity: with 3200
  // particles over 512 elements, chunks stay within ~2x of the mean.
  EXPECT_LE(*std::max_element(counts.begin(), counts.end()), 2 * 200);
}

TEST(HilbertMapperTest, SameElementSameRank) {
  World w;
  HilbertMapper mapper(w.mesh, 7);
  const auto cloud = random_cloud(1000, 8);
  std::vector<Rank> owners;
  mapper.map(cloud, owners);
  // Particles in the same element share a Hilbert key, hence a rank.
  std::map<ElementId, Rank> seen;
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    const ElementId e = w.mesh.element_of(cloud[i]);
    const auto it = seen.find(e);
    if (it == seen.end()) {
      seen[e] = owners[i];
    } else {
      EXPECT_EQ(it->second, owners[i]) << "element " << e;
    }
  }
}

TEST(HilbertMapperTest, OwnerOfPointMatchesMap) {
  World w;
  HilbertMapper mapper(w.mesh, 5);
  const auto cloud = random_cloud(400, 9);
  std::vector<Rank> owners;
  mapper.map(cloud, owners);
  for (std::size_t i = 0; i < cloud.size(); ++i)
    EXPECT_EQ(mapper.owner_of_point(cloud[i]), owners[i]);
}

TEST(MapperFactory, CreatesAllKinds) {
  World w;
  EXPECT_EQ(make_mapper("element", w.mesh, w.partition, 0.1)->name(),
            "element");
  EXPECT_EQ(make_mapper("bin", w.mesh, w.partition, 0.1)->name(), "bin");
  EXPECT_EQ(make_mapper("Bin-Based", w.mesh, w.partition, 0.1)->name(),
            "bin");
  EXPECT_EQ(make_mapper("hilbert", w.mesh, w.partition, 0.1)->name(),
            "hilbert");
  EXPECT_THROW(make_mapper("magic", w.mesh, w.partition, 0.1), Error);
}

// All mappers must partition every particle to a valid rank — the property
// the Dynamic Workload Generator's conservation invariant rests on.
class MapperPartitionProperty
    : public testing::TestWithParam<std::string> {};

TEST_P(MapperPartitionProperty, AssignsEveryParticleToValidRank) {
  World w;
  const auto mapper = make_mapper(GetParam(), w.mesh, w.partition, 0.05);
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const auto cloud = random_cloud(1500, seed);
    std::vector<Rank> owners;
    mapper->map(cloud, owners);
    ASSERT_EQ(owners.size(), cloud.size());
    for (const Rank r : owners) {
      EXPECT_GE(r, 0);
      EXPECT_LT(r, 16);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMappers, MapperPartitionProperty,
                         testing::Values("element", "bin", "hilbert"));

}  // namespace
}  // namespace picp
