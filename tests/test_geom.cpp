#include <gtest/gtest.h>

#include "geom/aabb.hpp"
#include "geom/grid_indexer.hpp"
#include "geom/vec3.hpp"
#include "util/error.hpp"

namespace picp {
namespace {

TEST(Vec3Test, Arithmetic) {
  const Vec3 a(1, 2, 3), b(4, 5, 6);
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).norm(), 5.0);
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).norm2(), 25.0);
}

TEST(Vec3Test, IndexAccess) {
  Vec3 v(1, 2, 3);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
  v.set(1, 9.0);
  EXPECT_DOUBLE_EQ(v.y, 9.0);
}

TEST(AabbTest, DefaultIsEmpty) {
  const Aabb box;
  EXPECT_TRUE(box.empty());
  EXPECT_FALSE(box.valid());
}

TEST(AabbTest, ExpandByPoints) {
  Aabb box;
  box.expand(Vec3(1, 2, 3));
  box.expand(Vec3(-1, 5, 0));
  EXPECT_TRUE(box.valid());
  EXPECT_EQ(box.lo, Vec3(-1, 2, 0));
  EXPECT_EQ(box.hi, Vec3(1, 5, 3));
}

TEST(AabbTest, ContainsHalfOpen) {
  const Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  EXPECT_TRUE(box.contains(Vec3(0, 0, 0)));
  EXPECT_FALSE(box.contains(Vec3(1, 1, 1)));
  EXPECT_TRUE(box.contains_closed(Vec3(1, 1, 1)));
  EXPECT_TRUE(box.contains(Vec3(0.5, 0.5, 0.5)));
  EXPECT_FALSE(box.contains(Vec3(-0.1, 0.5, 0.5)));
}

TEST(AabbTest, ExtentCenterVolume) {
  const Aabb box(Vec3(0, 0, 0), Vec3(2, 4, 8));
  EXPECT_EQ(box.extent(), Vec3(2, 4, 8));
  EXPECT_EQ(box.center(), Vec3(1, 2, 4));
  EXPECT_DOUBLE_EQ(box.volume(), 64.0);
}

TEST(AabbTest, LongestAxis) {
  EXPECT_EQ(Aabb(Vec3(0, 0, 0), Vec3(3, 1, 1)).longest_axis(), 0);
  EXPECT_EQ(Aabb(Vec3(0, 0, 0), Vec3(1, 3, 1)).longest_axis(), 1);
  EXPECT_EQ(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 3)).longest_axis(), 2);
  // Ties go to the earlier axis.
  EXPECT_EQ(Aabb(Vec3(0, 0, 0), Vec3(2, 2, 1)).longest_axis(), 0);
}

TEST(AabbTest, Overlaps) {
  const Aabb a(Vec3(0, 0, 0), Vec3(2, 2, 2));
  EXPECT_TRUE(a.overlaps(Aabb(Vec3(1, 1, 1), Vec3(3, 3, 3))));
  EXPECT_FALSE(a.overlaps(Aabb(Vec3(3, 0, 0), Vec3(4, 1, 1))));
  // Touching faces (open overlap) do not count.
  EXPECT_FALSE(a.overlaps(Aabb(Vec3(2, 0, 0), Vec3(3, 1, 1))));
}

TEST(AabbTest, Distance2) {
  const Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  EXPECT_DOUBLE_EQ(box.distance2(Vec3(0.5, 0.5, 0.5)), 0.0);
  EXPECT_DOUBLE_EQ(box.distance2(Vec3(2, 0.5, 0.5)), 1.0);
  EXPECT_DOUBLE_EQ(box.distance2(Vec3(2, 2, 0.5)), 2.0);
  EXPECT_DOUBLE_EQ(box.distance2(Vec3(-1, -1, -1)), 3.0);
}

TEST(AabbTest, Inflated) {
  const Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  const Aabb big = box.inflated(0.5);
  EXPECT_EQ(big.lo, Vec3(-0.5, -0.5, -0.5));
  EXPECT_EQ(big.hi, Vec3(1.5, 1.5, 1.5));
}

TEST(GridIndexerTest, CellLookup) {
  const GridIndexer grid(Aabb(Vec3(0, 0, 0), Vec3(4, 2, 2)), 4, 2, 2);
  EXPECT_EQ(grid.cell_count(), 16);
  const auto c = grid.cell_of(Vec3(2.5, 1.5, 0.5));
  EXPECT_EQ(c[0], 2);
  EXPECT_EQ(c[1], 1);
  EXPECT_EQ(c[2], 0);
}

TEST(GridIndexerTest, BoundaryClamping) {
  const GridIndexer grid(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), 2, 2, 2);
  // Upper boundary and beyond clamp to the last cell.
  auto c = grid.cell_of(Vec3(1.0, 1.0, 1.0));
  EXPECT_EQ(c[0], 1);
  c = grid.cell_of(Vec3(-5.0, 0.5, 2.0));
  EXPECT_EQ(c[0], 0);
  EXPECT_EQ(c[2], 1);
}

TEST(GridIndexerTest, FlatIndexRoundTrip) {
  const GridIndexer grid(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), 3, 4, 5);
  for (std::int64_t flat = 0; flat < grid.cell_count(); ++flat) {
    const auto c = grid.unflatten(flat);
    EXPECT_EQ(grid.flat_index(c[0], c[1], c[2]), flat);
  }
}

TEST(GridIndexerTest, CellBoundsTileDomain) {
  const GridIndexer grid(Aabb(Vec3(0, 0, 0), Vec3(2, 2, 2)), 2, 2, 2);
  double volume = 0.0;
  for (std::int64_t flat = 0; flat < grid.cell_count(); ++flat)
    volume += grid.cell_bounds(flat).volume();
  EXPECT_NEAR(volume, 8.0, 1e-12);
}

TEST(GridIndexerTest, PointInItsCellBounds) {
  const GridIndexer grid(Aabb(Vec3(0, 0, 0), Vec3(1, 2, 3)), 7, 5, 3);
  const Vec3 p(0.73, 1.21, 2.9);
  const auto c = grid.cell_of(p);
  EXPECT_TRUE(grid.cell_bounds(c[0], c[1], c[2]).contains_closed(p));
}

TEST(GridIndexerTest, InvalidConstruction) {
  EXPECT_THROW(GridIndexer(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), 0, 1, 1),
               Error);
  EXPECT_THROW(GridIndexer(Aabb(Vec3(1, 1, 1), Vec3(1, 2, 2)), 2, 2, 2),
               Error);
}

}  // namespace
}  // namespace picp
