// Fuzz/property tests for src/telemetry/json — the serving daemon parses
// untrusted request bodies through this reader, so "malformed input throws,
// valid input round-trips, u64 counters stay exact" is now a security
// contract, not just a telemetry convenience.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "telemetry/json.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace picp {
namespace {

// --- random document generator ---------------------------------------------

std::string random_string(Xoshiro256& rng) {
  static const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
      " _-./:\\\"\n\t\b\f\r{}[],";
  const std::size_t length = rng.uniform_below(12);
  std::string out;
  for (std::size_t i = 0; i < length; ++i)
    out += alphabet[rng.uniform_below(sizeof alphabet - 1)];
  return out;
}

Json random_document(Xoshiro256& rng, int depth) {
  const std::uint64_t kind = rng.uniform_below(depth <= 0 ? 5 : 7);
  switch (kind) {
    case 0: return Json();  // null
    case 1: return Json(rng.uniform_below(2) == 0);
    case 2: {
      // Bias toward boundary integers: the interesting failure mode is a
      // counter silently routed through a double mantissa.
      static const std::int64_t interesting[] = {
          0,
          1,
          -1,
          (std::int64_t{1} << 53) + 1,
          std::numeric_limits<std::int64_t>::max(),
          std::numeric_limits<std::int64_t>::min()};
      if (rng.uniform_below(2) == 0)
        return Json(interesting[rng.uniform_below(6)]);
      return Json(static_cast<std::int64_t>(rng()));
    }
    case 3: {
      const double value = rng.uniform(-1e12, 1e12);
      return Json(value);
    }
    case 4: return Json(random_string(rng));
    case 5: {
      Json array = Json::array();
      const std::size_t n = rng.uniform_below(5);
      for (std::size_t i = 0; i < n; ++i)
        array.push_back(random_document(rng, depth - 1));
      return array;
    }
    default: {
      Json object = Json::object();
      const std::size_t n = rng.uniform_below(5);
      for (std::size_t i = 0; i < n; ++i)
        object.set("k" + std::to_string(i) + random_string(rng),
                   random_document(rng, depth - 1));
      return object;
    }
  }
}

// --- round-trip properties ---------------------------------------------------

TEST(JsonFuzz, RandomDocumentsRoundTripThroughDump) {
  Xoshiro256 rng(20260806);
  for (int trial = 0; trial < 500; ++trial) {
    const Json document = random_document(rng, 4);
    const std::string compact = document.dump();
    Json reparsed;
    ASSERT_NO_THROW(reparsed = Json::parse(compact))
        << "trial " << trial << ": " << compact;
    // dump∘parse∘dump must be a fixed point: the second dump proves the
    // parsed tree is structurally identical to the original.
    EXPECT_EQ(reparsed.dump(), compact) << "trial " << trial;
    // Pretty-printing must not change the value either.
    EXPECT_EQ(Json::parse(document.dump(2)).dump(), compact)
        << "trial " << trial;
  }
}

TEST(JsonFuzz, U64CountersStayExact) {
  const std::uint64_t values[] = {
      0,
      1,
      (std::uint64_t{1} << 32),
      (std::uint64_t{1} << 53) + 1,  // not representable as a double
      (std::uint64_t{1} << 53) + 123456789,
      std::uint64_t{std::numeric_limits<std::int64_t>::max()}};
  for (const std::uint64_t value : values) {
    Json object = Json::object();
    object.set("counter", Json(value));
    const Json reparsed = Json::parse(object.dump());
    EXPECT_EQ(reparsed.at("counter").as_uint(), value)
        << "u64 counter went through a lossy representation";
  }
}

// --- malformed input must throw, never crash or misparse --------------------

TEST(JsonFuzz, EveryTruncationOfValidDocumentThrows) {
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    Json document = Json::object();
    document.set("a", random_document(rng, 3));
    document.set("b", random_document(rng, 2));
    const std::string text = document.dump();
    for (std::size_t cut = 0; cut < text.size(); ++cut) {
      const std::string prefix = text.substr(0, cut);
      // A strict prefix of an object document is never a complete
      // document; the parser must reject every single one.
      EXPECT_THROW(Json::parse(prefix), Error)
          << "accepted truncation at byte " << cut << " of: " << text;
    }
    ASSERT_NO_THROW(Json::parse(text));
  }
}

TEST(JsonFuzz, GarbageBytesThrowOrRoundTrip) {
  Xoshiro256 rng(4242);
  int accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bytes;
    const std::size_t length = rng.uniform_below(24);
    for (std::size_t i = 0; i < length; ++i)
      bytes += static_cast<char>(rng.uniform_below(256));
    try {
      const Json parsed = Json::parse(bytes);
      // Rarely random bytes form a legal document ("1", "true", ...);
      // then the parse must at least be self-consistent.
      ++accepted;
      EXPECT_EQ(Json::parse(parsed.dump()).dump(), parsed.dump());
    } catch (const Error&) {
      // Expected for almost all inputs — and the only legal exception type.
    }
  }
  // Sanity: the corpus actually exercised the reject path.
  EXPECT_LT(accepted, 2000);
}

TEST(JsonFuzz, ClassicMalformedDocumentsThrow) {
  const char* cases[] = {
      "",
      "   ",
      "{",
      "}",
      "[",
      "]",
      "{]",
      "[}",
      "{\"a\":}",
      "{\"a\" 1}",
      "{\"a\":1,}",
      "[1,]",
      "[1 2]",
      "{\"a\":1}extra",
      "\"unterminated",
      "\"bad escape \\q\"",
      "01",
      "+1",
      "1e",
      "- 1",
      "nul",
      "truth",
      "falsey",
      "{\"dup\"}",
      "{1: 2}",
      "\xff\xfe",
      "{\"a\":\x01}",
  };
  for (const char* text : cases)
    EXPECT_THROW(Json::parse(text), Error) << "accepted: " << text;
}

TEST(JsonFuzz, DeepNestingEitherParsesOrThrowsCleanly) {
  // 64 levels must work (real manifests nest ~4); absurd nesting may be
  // rejected but must not crash.
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 64; ++i) deep += "]";
  Json parsed;
  ASSERT_NO_THROW(parsed = Json::parse(deep));
  EXPECT_EQ(parsed.dump(), deep);

  std::string absurd;
  for (int i = 0; i < 200000; ++i) absurd += "[";
  try {
    (void)Json::parse(absurd);
    FAIL() << "unterminated 200k-deep array parsed";
  } catch (const Error&) {
    // rejected cleanly — good (stack-overflow crash would kill the test)
  }
}

}  // namespace
}  // namespace picp
