// Failure injection: corrupted or truncated on-disk artifacts (traces,
// timing CSVs, model files) must surface as picp::Error with context —
// never as silent bad data or crashes. These are the files users hand the
// framework from other machines, so robust rejection is part of the API.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "model/model_set.hpp"
#include "picsim/checkpoint.hpp"
#include "picsim/instrumentation.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_salvage.hpp"
#include "trace/trace_writer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace picp {
namespace {

namespace fs = std::filesystem;

std::string write_valid_trace(const std::string& name, std::size_t np = 50,
                              std::size_t samples = 3) {
  const std::string path = testing::TempDir() + "/" + name;
  TraceWriter writer(path, np, 10, Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)),
                     CoordKind::kFloat64);
  Xoshiro256 rng(1);
  std::vector<Vec3> pos(np);
  for (std::size_t s = 0; s < samples; ++s) {
    for (auto& p : pos)
      p = Vec3(rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1));
    writer.append(s * 10, pos);
  }
  writer.close();
  return path;
}

void truncate_file(const std::string& path, std::uintmax_t keep) {
  fs::resize_file(path, keep);
}

TEST(FailureInjection, TraceTruncatedMidSampleRejectedStrictSalvageable) {
  const std::string path = write_valid_trace("fi_trunc.bin");
  const auto size = fs::file_size(path);
  truncate_file(path, size - 100);  // chop into the last sample + footer
  // Strict open rejects up front — the header's claims no longer fit the
  // file, so we never hand back partial data as if it were complete.
  EXPECT_THROW(TraceReader reader(path), TraceCorruptError);
  // Salvage mode recovers every complete sample instead.
  TraceReader salvage(path, TraceReadMode::kSalvage);
  EXPECT_EQ(salvage.num_samples(), 2u);
  EXPECT_FALSE(salvage.salvage_report().intact());
  TraceSample sample;
  ASSERT_TRUE(salvage.read_next(sample));
  ASSERT_TRUE(salvage.read_next(sample));
  EXPECT_FALSE(salvage.read_next(sample));
  std::remove(path.c_str());
}

TEST(FailureInjection, TraceTruncatedInHeaderThrowsOnOpen) {
  const std::string path = write_valid_trace("fi_hdr.bin");
  truncate_file(path, 20);  // inside the header
  EXPECT_THROW(TraceReader reader(path), Error);
  std::remove(path.c_str());
}

TEST(FailureInjection, TraceWithCorruptedMagicRejected) {
  const std::string path = write_valid_trace("fi_magic.bin");
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.write("NOTATRCE", 8);
  }
  EXPECT_THROW(TraceReader reader(path), Error);
  std::remove(path.c_str());
}

TEST(FailureInjection, TraceWithFutureVersionRejected) {
  const std::string path = write_valid_trace("fi_ver.bin");
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);  // version field follows the magic
    const std::uint32_t version = 99;
    f.write(reinterpret_cast<const char*>(&version), sizeof(version));
  }
  EXPECT_THROW(TraceReader reader(path), Error);
  std::remove(path.c_str());
}

TEST(FailureInjection, TimingsCsvWithUnknownKernelRejected) {
  const std::string path = testing::TempDir() + "/fi_timings.csv";
  {
    std::ofstream out(path);
    out << "interval,rank,kernel,seconds,np,ngp,nmove,filter,nel\n";
    out << "0,1,warp_drive,1e-6,10,0,0,0.02,4\n";
  }
  EXPECT_THROW(KernelTimings::load_csv(path), Error);
  std::remove(path.c_str());
}

TEST(FailureInjection, TimingsCsvWithMissingColumnsRejected) {
  const std::string path = testing::TempDir() + "/fi_cols.csv";
  {
    std::ofstream out(path);
    out << "interval,rank,kernel,seconds\n";
    out << "0,1,push,1e-6\n";
  }
  EXPECT_THROW(KernelTimings::load_csv(path), Error);
  std::remove(path.c_str());
}

TEST(FailureInjection, TimingsCsvWithGarbageNumbersRejected) {
  const std::string path = testing::TempDir() + "/fi_nums.csv";
  {
    std::ofstream out(path);
    out << "interval,rank,kernel,seconds,np,ngp,nmove,filter,nel\n";
    out << "0,1,push,not_a_number,10,0,0,0.02,4\n";
  }
  EXPECT_THROW(KernelTimings::load_csv(path), Error);
  std::remove(path.c_str());
}

TEST(FailureInjection, LegacyEightColumnTimingsAccepted) {
  // Backward compatibility: pre-fluid CSVs lack the nel column.
  const std::string path = testing::TempDir() + "/fi_legacy.csv";
  {
    std::ofstream out(path);
    out << "interval,rank,kernel,seconds,np,ngp,nmove,filter\n";
    out << "2,7,push,1.5e-6,10,0,0,0.02\n";
  }
  const KernelTimings timings = KernelTimings::load_csv(path);
  ASSERT_EQ(timings.size(), 1u);
  EXPECT_DOUBLE_EQ(timings.records()[0].nel, 0.0);
  EXPECT_EQ(timings.records()[0].rank, 7);
  std::remove(path.c_str());
}

TEST(FailureInjection, ModelFileWithBadStructureRejected) {
  const std::string path = testing::TempDir() + "/fi_models.txt";
  {
    std::ofstream out(path);
    out << "push | np | linear 1e-7 2e-8 3e-8\n";  // arity mismatch (2 coefs)
  }
  EXPECT_THROW(ModelSet::load(path), Error);
  std::remove(path.c_str());
}

TEST(FailureInjection, ModelFileWithMalformedExpressionRejected) {
  const std::string path = testing::TempDir() + "/fi_expr.txt";
  {
    std::ofstream out(path);
    out << "project | np,ngp,filter | sym 1 0 add v0\n";  // missing operand
  }
  EXPECT_THROW(ModelSet::load(path), Error);
  std::remove(path.c_str());
}

TEST(FailureInjection, ModelFileWithMissingSectionsRejected) {
  const std::string path = testing::TempDir() + "/fi_sections.txt";
  {
    std::ofstream out(path);
    out << "push np linear 1 2\n";  // no '|' separators
  }
  EXPECT_THROW(ModelSet::load(path), Error);
  std::remove(path.c_str());
}

TEST(FailureInjection, ReaderSurvivesEmptyFile) {
  const std::string path = testing::TempDir() + "/fi_empty.bin";
  { std::ofstream out(path, std::ios::binary); }
  EXPECT_THROW(TraceReader reader(path), Error);
  std::remove(path.c_str());
}

TEST(FailureInjection, HeaderClaimingAbsurdSampleCountRejectedCheaply) {
  // A flipped num_samples field must produce a typed error at open, not a
  // multi-terabyte allocation attempt (satellite: header plausibility).
  const std::string path = write_valid_trace("fi_absurd.bin");
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8 + 4 + 4 + 8);  // magic, version, coord_kind, num_particles
    const std::uint64_t claimed = 1ull << 50;
    f.write(reinterpret_cast<const char*>(&claimed), sizeof(claimed));
  }
  EXPECT_THROW(TraceReader reader(path), TraceCorruptError);
  std::remove(path.c_str());
}

TEST(FailureInjection, HeaderClaimingOverflowingParticleCountRejected) {
  const std::string path = write_valid_trace("fi_overflow.bin");
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8 + 4 + 4);  // num_particles field
    const std::uint64_t np = ~0ull / 2;  // payload_bytes would overflow
    f.write(reinterpret_cast<const char*>(&np), sizeof(np));
  }
  EXPECT_THROW(TraceReader reader(path), TraceCorruptError);
  std::remove(path.c_str());
}

// --- Deterministic corruption sweeps ---------------------------------------
// Small geometry so the sweeps stay exhaustive: np = 4 doubles, 3 samples.
//   header 92 bytes; frame = 4 (magic) + 8 (iter) + 4*24 (payload) + 4 (crc)
//   = 112; frame boundaries at 92, 204, 316, 428; footer ends at 452.
constexpr std::size_t kSweepNp = 4;
constexpr std::size_t kSweepSamples = 3;
constexpr std::uintmax_t kSweepHeader = 92;
constexpr std::uintmax_t kSweepFrame = 112;
constexpr std::uintmax_t kSweepTotal =
    kSweepHeader + kSweepSamples * kSweepFrame + 24;

TEST(FailureInjection, TruncationSweepSalvagesEveryCompletePrefix) {
  const std::string path =
      write_valid_trace("fi_sweep_trunc.bin", kSweepNp, kSweepSamples);
  ASSERT_EQ(fs::file_size(path), kSweepTotal);

  std::vector<std::uintmax_t> cuts;
  for (std::uintmax_t b = 0; b <= kSweepSamples; ++b) {
    const std::uintmax_t boundary = kSweepHeader + b * kSweepFrame;
    for (std::intmax_t d = -3; d <= 3; ++d) {
      const auto cut = static_cast<std::intmax_t>(boundary) + d;
      if (cut >= 0 && cut < static_cast<std::intmax_t>(kSweepTotal))
        cuts.push_back(static_cast<std::uintmax_t>(cut));
    }
  }
  cuts.push_back(kSweepTotal - 1);  // lost last footer byte

  for (const std::uintmax_t cut : cuts) {
    const std::string damaged = testing::TempDir() + "/fi_sweep_cut.bin";
    fs::copy_file(path, damaged, fs::copy_options::overwrite_existing);
    truncate_file(damaged, cut);

    if (cut < kSweepHeader) {
      // No header → nothing recoverable, typed error even in salvage mode.
      EXPECT_THROW(TraceReader(damaged, TraceReadMode::kSalvage), Error)
          << "cut at " << cut;
    } else {
      const std::uintmax_t expected = (cut - kSweepHeader) / kSweepFrame;
      const SalvageReport report = scan_trace(damaged);
      EXPECT_FALSE(report.intact()) << "cut at " << cut;
      EXPECT_EQ(report.valid_samples,
                std::min<std::uintmax_t>(expected, kSweepSamples))
          << "cut at " << cut;
      // Strict mode never silently serves a truncated file.
      EXPECT_THROW(TraceReader reader(damaged), TraceCorruptError)
          << "cut at " << cut;
    }
    std::remove(damaged.c_str());
  }
  std::remove(path.c_str());
}

TEST(FailureInjection, BitFlipSweepEveryByteIsDetected) {
  // Flip one bit in every byte of a sealed v2 trace: the strict read path
  // must throw a typed error (never crash, never return doctored data),
  // and the salvage scanner must survive and mark the file not-intact.
  const std::string path =
      write_valid_trace("fi_sweep_flip.bin", kSweepNp, kSweepSamples);
  std::string clean;
  {
    std::ifstream in(path, std::ios::binary);
    clean.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_EQ(clean.size(), kSweepTotal);

  const std::string damaged = testing::TempDir() + "/fi_sweep_bit.bin";
  for (std::size_t byte = 0; byte < clean.size(); ++byte) {
    std::string mutated = clean;
    mutated[byte] = static_cast<char>(mutated[byte] ^ 0x10);
    {
      std::ofstream out(damaged, std::ios::binary | std::ios::trunc);
      out.write(mutated.data(),
                static_cast<std::streamsize>(mutated.size()));
    }

    // Strict full read must fail somewhere — open or read_next.
    EXPECT_THROW(
        {
          TraceReader reader(damaged);
          TraceSample sample;
          while (reader.read_next(sample)) {
          }
        },
        Error)
        << "flip at byte " << byte;

    // Salvage scan never crashes and never calls a damaged file intact.
    // A flip inside the header itself (magic, version, ...) may make the
    // file unreadable — then the scan throws a typed error instead.
    try {
      const SalvageReport report = scan_trace(damaged);
      EXPECT_FALSE(report.intact()) << "flip at byte " << byte;
      EXPECT_LE(report.valid_samples, kSweepSamples);
    } catch (const Error&) {
      EXPECT_LT(byte, kSweepHeader) << "non-header flip killed the scan";
    }
  }
  std::remove(damaged.c_str());
  std::remove(path.c_str());
}

TEST(FailureInjection, RepairRecoversPrefixIntoSealedTrace) {
  const std::string path =
      write_valid_trace("fi_repair.bin", kSweepNp, kSweepSamples);
  // Corrupt the middle frame's payload: samples 0 intact, 1 damaged.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(kSweepHeader + kSweepFrame + 40));
    f.put('\x7f');
  }
  const std::string fixed = testing::TempDir() + "/fi_repair_fixed.bin";
  const SalvageReport report = repair_trace(path, fixed);
  EXPECT_EQ(report.valid_samples, 1u);

  // The repaired file is a fully sealed v2 trace readable in strict mode.
  EXPECT_TRUE(scan_trace(fixed).intact());
  TraceReader reader(fixed);
  EXPECT_EQ(reader.num_samples(), 1u);
  TraceSample sample;
  ASSERT_TRUE(reader.read_next(sample));
  EXPECT_EQ(sample.iteration, 0u);
  std::remove(path.c_str());
  std::remove(fixed.c_str());
}

TEST(FailureInjection, CheckpointBitFlipRejectedWithHint) {
  const std::string path = testing::TempDir() + "/fi_ckpt.bin";
  SimCheckpoint ckpt;
  ckpt.config_fingerprint = 0x1234;
  ckpt.next_iteration = 40;
  ckpt.sim_time = 0.25;
  ckpt.positions.assign(16, Vec3(1, 2, 3));
  ckpt.velocities.assign(16, Vec3(4, 5, 6));
  ckpt.save(path);
  {
    const SimCheckpoint loaded = SimCheckpoint::load(path);
    EXPECT_EQ(loaded.next_iteration, 40);
    EXPECT_EQ(loaded.positions.size(), 16u);
  }
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(60);
    f.put('\x01');
  }
  try {
    SimCheckpoint::load(path);
    FAIL() << "corrupt checkpoint accepted";
  } catch (const CorruptInputError& e) {
    EXPECT_FALSE(e.hint().empty());
    EXPECT_EQ(e.input_path(), path);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace picp
