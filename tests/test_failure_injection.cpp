// Failure injection: corrupted or truncated on-disk artifacts (traces,
// timing CSVs, model files) must surface as picp::Error with context —
// never as silent bad data or crashes. These are the files users hand the
// framework from other machines, so robust rejection is part of the API.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "model/model_set.hpp"
#include "picsim/instrumentation.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_writer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace picp {
namespace {

namespace fs = std::filesystem;

std::string write_valid_trace(const std::string& name, std::size_t np = 50,
                              std::size_t samples = 3) {
  const std::string path = testing::TempDir() + "/" + name;
  TraceWriter writer(path, np, 10, Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)),
                     CoordKind::kFloat64);
  Xoshiro256 rng(1);
  std::vector<Vec3> pos(np);
  for (std::size_t s = 0; s < samples; ++s) {
    for (auto& p : pos)
      p = Vec3(rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1));
    writer.append(s * 10, pos);
  }
  writer.close();
  return path;
}

void truncate_file(const std::string& path, std::uintmax_t keep) {
  fs::resize_file(path, keep);
}

TEST(FailureInjection, TraceTruncatedMidSampleThrowsOnRead) {
  const std::string path = write_valid_trace("fi_trunc.bin");
  const auto size = fs::file_size(path);
  truncate_file(path, size - 100);  // chop into the last sample
  TraceReader reader(path);
  TraceSample sample;
  ASSERT_TRUE(reader.read_next(sample));
  ASSERT_TRUE(reader.read_next(sample));
  EXPECT_THROW(reader.read_next(sample), Error);
  std::remove(path.c_str());
}

TEST(FailureInjection, TraceTruncatedInHeaderThrowsOnOpen) {
  const std::string path = write_valid_trace("fi_hdr.bin");
  truncate_file(path, 20);  // inside the header
  EXPECT_THROW(TraceReader reader(path), Error);
  std::remove(path.c_str());
}

TEST(FailureInjection, TraceWithCorruptedMagicRejected) {
  const std::string path = write_valid_trace("fi_magic.bin");
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.write("NOTATRCE", 8);
  }
  EXPECT_THROW(TraceReader reader(path), Error);
  std::remove(path.c_str());
}

TEST(FailureInjection, TraceWithFutureVersionRejected) {
  const std::string path = write_valid_trace("fi_ver.bin");
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);  // version field follows the magic
    const std::uint32_t version = 99;
    f.write(reinterpret_cast<const char*>(&version), sizeof(version));
  }
  EXPECT_THROW(TraceReader reader(path), Error);
  std::remove(path.c_str());
}

TEST(FailureInjection, TimingsCsvWithUnknownKernelRejected) {
  const std::string path = testing::TempDir() + "/fi_timings.csv";
  {
    std::ofstream out(path);
    out << "interval,rank,kernel,seconds,np,ngp,nmove,filter,nel\n";
    out << "0,1,warp_drive,1e-6,10,0,0,0.02,4\n";
  }
  EXPECT_THROW(KernelTimings::load_csv(path), Error);
  std::remove(path.c_str());
}

TEST(FailureInjection, TimingsCsvWithMissingColumnsRejected) {
  const std::string path = testing::TempDir() + "/fi_cols.csv";
  {
    std::ofstream out(path);
    out << "interval,rank,kernel,seconds\n";
    out << "0,1,push,1e-6\n";
  }
  EXPECT_THROW(KernelTimings::load_csv(path), Error);
  std::remove(path.c_str());
}

TEST(FailureInjection, TimingsCsvWithGarbageNumbersRejected) {
  const std::string path = testing::TempDir() + "/fi_nums.csv";
  {
    std::ofstream out(path);
    out << "interval,rank,kernel,seconds,np,ngp,nmove,filter,nel\n";
    out << "0,1,push,not_a_number,10,0,0,0.02,4\n";
  }
  EXPECT_THROW(KernelTimings::load_csv(path), Error);
  std::remove(path.c_str());
}

TEST(FailureInjection, LegacyEightColumnTimingsAccepted) {
  // Backward compatibility: pre-fluid CSVs lack the nel column.
  const std::string path = testing::TempDir() + "/fi_legacy.csv";
  {
    std::ofstream out(path);
    out << "interval,rank,kernel,seconds,np,ngp,nmove,filter\n";
    out << "2,7,push,1.5e-6,10,0,0,0.02\n";
  }
  const KernelTimings timings = KernelTimings::load_csv(path);
  ASSERT_EQ(timings.size(), 1u);
  EXPECT_DOUBLE_EQ(timings.records()[0].nel, 0.0);
  EXPECT_EQ(timings.records()[0].rank, 7);
  std::remove(path.c_str());
}

TEST(FailureInjection, ModelFileWithBadStructureRejected) {
  const std::string path = testing::TempDir() + "/fi_models.txt";
  {
    std::ofstream out(path);
    out << "push | np | linear 1e-7 2e-8 3e-8\n";  // arity mismatch (2 coefs)
  }
  EXPECT_THROW(ModelSet::load(path), Error);
  std::remove(path.c_str());
}

TEST(FailureInjection, ModelFileWithMalformedExpressionRejected) {
  const std::string path = testing::TempDir() + "/fi_expr.txt";
  {
    std::ofstream out(path);
    out << "project | np,ngp,filter | sym 1 0 add v0\n";  // missing operand
  }
  EXPECT_THROW(ModelSet::load(path), Error);
  std::remove(path.c_str());
}

TEST(FailureInjection, ModelFileWithMissingSectionsRejected) {
  const std::string path = testing::TempDir() + "/fi_sections.txt";
  {
    std::ofstream out(path);
    out << "push np linear 1 2\n";  // no '|' separators
  }
  EXPECT_THROW(ModelSet::load(path), Error);
  std::remove(path.c_str());
}

TEST(FailureInjection, ReaderSurvivesEmptyFile) {
  const std::string path = testing::TempDir() + "/fi_empty.bin";
  { std::ofstream out(path, std::ios::binary); }
  EXPECT_THROW(TraceReader reader(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace picp
