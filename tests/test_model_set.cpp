#include "model/model_set.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>

#include "model/linear.hpp"
#include "model/symreg.hpp"
#include "util/error.hpp"

namespace picp {
namespace {

ModelSet sample_set() {
  ModelSet set;
  set.set("interpolate",
          std::make_unique<LinearModel>(std::vector<double>{2e-8}, 1e-7,
                                        std::vector<std::string>{"np"}),
          {"np"});
  set.set("project",
          std::make_unique<SymbolicModel>(
              Expr::from_tokens("mul v0 v2"), 3e-9, 5e-8,
              std::vector<std::string>{"np", "ngp", "filter"}),
          {"np", "ngp", "filter"});
  return set;
}

TEST(ModelSetTest, PredictEvaluatesModel) {
  const ModelSet set = sample_set();
  EXPECT_NEAR(set.predict("interpolate", std::array<double, 1>{100.0}),
              2e-6 + 1e-7, 1e-15);
}

TEST(ModelSetTest, NegativePredictionsClampToZero) {
  ModelSet set;
  set.set("k",
          std::make_unique<LinearModel>(std::vector<double>{-1.0}, 0.0,
                                        std::vector<std::string>{"x"}),
          {"x"});
  EXPECT_DOUBLE_EQ(set.predict("k", std::array<double, 1>{5.0}), 0.0);
}

TEST(ModelSetTest, UnknownKernelThrows) {
  const ModelSet set = sample_set();
  EXPECT_THROW(set.predict("nope", std::array<double, 1>{1.0}), Error);
  EXPECT_THROW(set.features_of("nope"), Error);
  EXPECT_THROW(set.model_of("nope"), Error);
}

TEST(ModelSetTest, FeatureCountMismatchThrows) {
  const ModelSet set = sample_set();
  EXPECT_THROW(set.predict("interpolate", std::array<double, 2>{1.0, 2.0}),
               Error);
}

TEST(ModelSetTest, KernelsAndHas) {
  const ModelSet set = sample_set();
  EXPECT_TRUE(set.has("project"));
  EXPECT_FALSE(set.has("migrate"));
  const auto kernels = set.kernels();
  ASSERT_EQ(kernels.size(), 2u);
  EXPECT_EQ(kernels[0], "interpolate");
  EXPECT_EQ(kernels[1], "project");
}

TEST(ModelSetTest, CopyIsDeep) {
  const ModelSet original = sample_set();
  ModelSet copy = original;
  EXPECT_DOUBLE_EQ(copy.predict("interpolate", std::array<double, 1>{10.0}),
                   original.predict("interpolate", std::array<double, 1>{10.0}));
  copy.set("interpolate",
           std::make_unique<LinearModel>(std::vector<double>{0.0}, 9.0,
                                         std::vector<std::string>{"np"}),
           {"np"});
  EXPECT_NE(copy.predict("interpolate", std::array<double, 1>{10.0}),
            original.predict("interpolate", std::array<double, 1>{10.0}));
}

TEST(ModelSetTest, SaveLoadRoundTrip) {
  const ModelSet set = sample_set();
  const std::string path = testing::TempDir() + "/picp_models.txt";
  set.save(path);
  const ModelSet loaded = ModelSet::load(path);
  EXPECT_EQ(loaded.kernels(), set.kernels());
  const std::array<double, 3> f = {20.0, 5.0, 0.1};
  EXPECT_NEAR(loaded.predict("project", f), set.predict("project", f), 1e-18);
  const std::array<double, 1> g = {33.0};
  EXPECT_NEAR(loaded.predict("interpolate", g),
              set.predict("interpolate", g), 1e-18);
  EXPECT_EQ(loaded.features_of("project"),
            (std::vector<std::string>{"np", "ngp", "filter"}));
  std::remove(path.c_str());
}

TEST(ModelSetTest, ParseModelKinds) {
  const auto linear =
      ModelSet::parse_model("linear 0.5 2 3", {"a", "b"});
  EXPECT_DOUBLE_EQ(linear->evaluate(std::array<double, 2>{1.0, 1.0}), 5.5);
  const auto sym = ModelSet::parse_model("sym 2 1 mul v0 v0", {"x"});
  EXPECT_DOUBLE_EQ(sym->evaluate(std::array<double, 1>{3.0}), 19.0);
  EXPECT_THROW(ModelSet::parse_model("mystery 1 2", {"x"}), Error);
  EXPECT_THROW(ModelSet::parse_model("linear 0.5 2 3", {"a"}), Error);
}

TEST(ModelSetTest, LoadMissingFileThrows) {
  EXPECT_THROW(ModelSet::load("/nonexistent/models.txt"), Error);
}

TEST(ModelSetTest, NullModelRejected) {
  ModelSet set;
  EXPECT_THROW(set.set("k", nullptr, {"x"}), Error);
}

}  // namespace
}  // namespace picp
