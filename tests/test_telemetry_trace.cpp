// Chrome-trace emission, the minimal JSON reader/writer, and the manifest
// round-trip through util::AtomicFile.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/span_tracer.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace picp::telemetry {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- Json ------------------------------------------------------------------

TEST(Json, DumpGolden) {
  // Byte-exact golden of the writer: key order preserved, integers kept
  // integral, doubles shortest-round-trip, strings escaped.
  Json doc = Json::object();
  doc.set("name", "spans \"hot\"\n");
  doc.set("count", std::uint64_t{18446744073709551615ull});
  doc.set("ratio", 0.5);
  doc.set("on", true);
  doc.set("none", Json());
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back(2.5);
  doc.set("items", arr);

  EXPECT_EQ(doc.dump(),
            "{\"name\":\"spans \\\"hot\\\"\\n\","
            "\"count\":-1,"
            "\"ratio\":0.5,"
            "\"on\":true,"
            "\"none\":null,"
            "\"items\":[1,2.5]}");
  EXPECT_EQ(arr.dump(2), "[\n  1,\n  2.5\n]");
}

TEST(Json, ParseRoundTrip) {
  const std::string text =
      R"({"a": [1, -2, 3.75], "b": {"nested": "v\u0041l\nue"}, "c": null,)"
      R"( "d": false, "big": 9007199254740993})";
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.at("a").size(), 3u);
  EXPECT_EQ(doc.at("a").at(1).as_int(), -2);
  EXPECT_DOUBLE_EQ(doc.at("a").at(2).as_double(), 3.75);
  EXPECT_EQ(doc.at("b").at("nested").as_string(), "vAl\nue");
  EXPECT_EQ(doc.at("c").kind(), Json::Kind::kNull);
  EXPECT_FALSE(doc.at("d").as_bool());
  // 2^53+1 survives exactly because integers are not squeezed into doubles.
  EXPECT_EQ(doc.at("big").as_int(), 9007199254740993ll);
  EXPECT_EQ(Json::parse(doc.dump()).dump(), doc.dump());
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), Error);
  EXPECT_THROW(Json::parse("'single'"), Error);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), Error);
}

// --- Chrome trace ----------------------------------------------------------

TEST(ChromeTrace, EmitsRequiredKeysAndThreadAttribution) {
  SpanTracer tracer;
  tracer.set_thread_name("main");
  tracer.record("alpha", "test", 10.0, 5.0);
  std::thread worker([&tracer] {
    tracer.set_thread_name("worker");
    tracer.record("beta", "test", 12.0, 1.0);
  });
  worker.join();
  ASSERT_EQ(tracer.span_count(), 2u);

  const Json doc = Json::parse(tracer.chrome_trace_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.has("displayTimeUnit"));
  ASSERT_TRUE(doc.has("traceEvents"));
  const Json& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  std::set<std::string> thread_names;
  std::set<std::int64_t> span_tids;
  std::size_t complete_events = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    // Required keys of the trace-event format.
    ASSERT_TRUE(e.has("name"));
    ASSERT_TRUE(e.has("ph"));
    ASSERT_TRUE(e.has("pid"));
    ASSERT_TRUE(e.has("tid"));
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M") {
      EXPECT_EQ(e.at("name").as_string(), "thread_name");
      thread_names.insert(e.at("args").at("name").as_string());
    } else {
      ASSERT_EQ(ph, "X");
      ASSERT_TRUE(e.has("ts"));
      ASSERT_TRUE(e.has("dur"));
      ASSERT_TRUE(e.has("cat"));
      span_tids.insert(e.at("tid").as_int());
      ++complete_events;
    }
  }
  EXPECT_EQ(complete_events, 2u);
  EXPECT_EQ(span_tids.size(), 2u) << "spans must be thread-attributed";
  EXPECT_TRUE(thread_names.count("main") == 1);
  EXPECT_TRUE(thread_names.count("worker") == 1);

  // Complete events are sorted by start time.
  EXPECT_EQ(tracer.collect().size(), 2u);
}

TEST(ChromeTrace, SpansSortedByStartAndClearDropsAll) {
  SpanTracer tracer;
  tracer.record("late", "test", 100.0, 1.0);
  tracer.record("early", "test", 1.0, 1.0);
  const Json doc = Json::parse(tracer.chrome_trace_json());
  std::vector<std::string> order;
  const Json& events = doc.at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i)
    if (events.at(i).at("ph").as_string() == "X")
      order.push_back(events.at(i).at("name").as_string());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "early");
  EXPECT_EQ(order[1], "late");

  tracer.clear();
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(ChromeTrace, WriteChromeTraceLeavesNoTempResidue) {
  SpanTracer tracer;
  tracer.record("span", "test", 1.0, 2.0);
  const std::string dir = temp_path("picp_trace_test_dir");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/trace.json";
  tracer.write_chrome_trace(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NO_THROW(Json::parse(text));
  std::size_t residue = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().filename().string() != "trace.json") ++residue;
  EXPECT_EQ(residue, 0u) << "atomic write must not leave temp files";
  std::filesystem::remove_all(dir);
}

// --- Manifest --------------------------------------------------------------

RunManifest sample_manifest() {
  RunManifest m;
  m.command = "simulate";
  m.git_describe = "v1.2.3-4-gabc";
  m.hostname = "node017";
  m.created_utc = "2026-08-06T12:00:00Z";
  m.config_fingerprint = 0xdeadbeefcafef00dull;  // needs all 64 bits
  m.threads = 8;
  m.wall_seconds = 1.25;
  m.process_cpu_seconds = 9.5;
  m.phases.push_back({"picsim.push", 0.5, 0.45, 6000});
  m.phases.push_back({"picsim.interpolate", 0.25, 0.2, 6000});
  m.metrics.counters.push_back({"picsim.iterations", 6000});
  m.metrics.gauges.push_back({"threadpool.utilization", 0.875});
  HistogramSnapshot h;
  h.name = "picsim.kernel.push.seconds";
  h.bounds = {1e-6, 1e-3};
  h.counts = {10, 5, 1};
  h.count = 16;
  h.sum = 0.0125;
  m.metrics.histograms.push_back(h);
  m.extra.emplace_back("config", "mini.ini");
  return m;
}

TEST(Manifest, JsonRoundTripIsLossless) {
  const RunManifest m = sample_manifest();
  const RunManifest back = manifest_from_json(manifest_to_json(m));
  EXPECT_EQ(back.tool, m.tool);
  EXPECT_EQ(back.command, m.command);
  EXPECT_EQ(back.git_describe, m.git_describe);
  EXPECT_EQ(back.hostname, m.hostname);
  EXPECT_EQ(back.created_utc, m.created_utc);
  EXPECT_EQ(back.config_fingerprint, m.config_fingerprint);
  EXPECT_EQ(back.threads, m.threads);
  EXPECT_DOUBLE_EQ(back.wall_seconds, m.wall_seconds);
  EXPECT_DOUBLE_EQ(back.process_cpu_seconds, m.process_cpu_seconds);
  ASSERT_EQ(back.phases.size(), 2u);
  EXPECT_EQ(back.phases[0].name, "picsim.push");
  EXPECT_EQ(back.phases[0].count, 6000u);
  EXPECT_DOUBLE_EQ(back.phases[1].wall_seconds, 0.25);
  EXPECT_EQ(back.metrics.counter_value("picsim.iterations"), 6000u);
  EXPECT_DOUBLE_EQ(back.metrics.gauge_value("threadpool.utilization"), 0.875);
  ASSERT_EQ(back.metrics.histograms.size(), 1u);
  EXPECT_EQ(back.metrics.histograms[0].counts,
            (std::vector<std::uint64_t>{10, 5, 1}));
  EXPECT_DOUBLE_EQ(back.metrics.histograms[0].sum, 0.0125);
  ASSERT_EQ(back.extra.size(), 1u);
  EXPECT_EQ(back.extra[0].second, "mini.ini");
}

TEST(Manifest, AtomicFileRoundTripLeavesNoTempResidue) {
  const std::string dir = temp_path("picp_manifest_test_dir");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/manifest.json";

  const RunManifest m = sample_manifest();
  write_manifest(m, path);
  const RunManifest back = load_manifest(path);
  EXPECT_EQ(back.config_fingerprint, m.config_fingerprint);
  EXPECT_EQ(back.command, m.command);

  std::size_t residue = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().filename().string() != "manifest.json") ++residue;
  EXPECT_EQ(residue, 0u) << "atomic write must not leave temp files";
  std::filesystem::remove_all(dir);
}

TEST(Manifest, LoadRejectsWrongSchema) {
  const std::string path = temp_path("picp_manifest_bad.json");
  std::ofstream out(path);
  out << R"({"schema": "something-else/v9", "tool": "x"})";
  out.close();
  EXPECT_THROW(load_manifest(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace picp::telemetry
